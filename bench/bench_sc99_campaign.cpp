// Section 4.1 (SC99 Research Exhibit): throughput over the two network
// paths used on the show floor.
//
// Paper numbers to reproduce (shape):
//   * DPSS(LBL) -> CPlant over NTON:          ~250 Mbps
//     (the pre-optimization Visapult: fewer parallel streams, untuned
//     staging -- the later campaign reached 433 Mbps on the same link)
//   * DPSS(LBL) -> show floor over SciNet:    ~150 Mbps
//     ("the link between the SC99 show floor and LBL required resource
//     sharing over SciNet")
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netsim/topology.h"
#include "sim/campaign.h"

using namespace visapult;

namespace {

// One 160 MB frame pulled over `parallel` connections from src to dst,
// through a receiving-application ceiling of `app_cap_mbps` (the SC99-era
// Visapult data staging, before the "change to data staging and
// communications streamlining" that later reached 433 Mbps).  Returns
// aggregate bytes/sec.
double measure_path(netsim::Network& net, netsim::NodeId src, netsim::NodeId dst,
                    int parallel, double app_cap_mbps) {
  // Model the application ceiling as a host-side link in front of dst.
  const netsim::NodeId app = net.add_node("receiving-app");
  netsim::LinkConfig cap;
  cap.name = "app-staging-ceiling";
  cap.bandwidth_bytes_per_sec = core::bytes_per_sec_from_mbps(app_cap_mbps);
  cap.latency_sec = 50e-6;
  net.add_link(dst, app, cap);

  const double bytes = 160.0 * 1024 * 1024;
  netsim::TcpParams tcp;
  tcp.max_window_bytes = 1024.0 * 1024;
  double done_at = 0.0;
  int remaining = parallel;
  const double t0 = net.now();
  for (int i = 0; i < parallel; ++i) {
    (void)net.start_flow(src, app, bytes / parallel, tcp, [&] {
      if (--remaining == 0) done_at = net.now();
    });
  }
  net.run();
  return bytes / (done_at - t0);
}

}  // namespace

int main() {
  std::printf("=== SC99 exhibit (section 4.1): NTON vs shared SciNet ===\n\n");

  // The SC99-era Visapult's data staging could absorb ~260 Mbps (the same
  // application later reached 433 Mbps on this link after streamlining,
  // section 4.2) -- that ceiling, not NTON, bounds the CPlant path.
  const double kSc99AppMbps = 260.0;

  netsim::Sc99Testbed to_cplant = netsim::make_sc99();
  const double nton_bps =
      measure_path(to_cplant.net, to_cplant.lbl_dpss, to_cplant.cplant,
                   /*parallel=*/4, kSc99AppMbps);

  netsim::Sc99Testbed to_floor = netsim::make_sc99();
  // SciNet sharing during the demo left ~160 Mbps to the booth; with the
  // same application, the shared segment becomes the constraint.
  to_floor.net.set_background(to_floor.scinet_link,
                              core::bytes_per_sec_from_mbps(840.0));
  const double scinet_bps =
      measure_path(to_floor.net, to_floor.lbl_dpss, to_floor.showfloor_cluster,
                   /*parallel=*/8, kSc99AppMbps);

  // Booth DPSS (ANL) to the booth cluster: pure show-floor gigabit.
  netsim::Sc99Testbed local = netsim::make_sc99();
  const double booth_bps =
      measure_path(local.net, local.anl_booth_dpss, local.showfloor_cluster,
                   /*parallel=*/8, kSc99AppMbps);

  core::TableWriter table({"path", "paper (Mbps)", "measured (Mbps)"});
  table.add_row({"LBL DPSS -> CPlant (NTON)", "250",
                 core::fmt_double(core::mbps_from_bytes_per_sec(nton_bps), 0)});
  table.add_row({"LBL DPSS -> show floor (SciNet, shared)", "150",
                 core::fmt_double(core::mbps_from_bytes_per_sec(scinet_bps), 0)});
  table.add_row({"ANL booth DPSS -> booth cluster (local)", "(not reported)",
                 core::fmt_double(core::mbps_from_bytes_per_sec(booth_bps), 0)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("The NTON path outruns the shared SciNet path by %.1fx "
              "(paper: 250/150 = 1.7x).\n",
              nton_bps / scinet_bps);
  return bench::Summary("sc99_campaign")
      .metric("nton_mbps", core::mbps_from_bytes_per_sec(nton_bps))
      .metric("scinet_mbps", core::mbps_from_bytes_per_sec(scinet_bps))
      .metric("booth_mbps", core::mbps_from_bytes_per_sec(booth_bps))
      .metric("nton_over_scinet", nton_bps / scinet_bps)
      .write();
}
