// Block-cache bench: cold vs. warm read throughput through a DPSS
// deployment, and eviction-policy hit ratios on a mixed hot-set/scan
// workload.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"cache","cold_mbps":...,"cold_p50_ms":...,"cold_p95_ms":...,
//    "cold_p99_ms":...,"warm_mbps":... (same p50/p95/p99 trio),
//    "warm_hit_ratio":...,"cold_disk_s":...,"warm_disk_s":...,
//    "policies":{"lru":...,...}}
// Each pass reads the file block by block so every pread lands in an
// obs::Histogram: the warm pass collapses the whole distribution, not just
// the mean, and the percentile columns show it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cache/block_cache.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"
#include "obs/metrics.h"

using namespace visapult;

namespace {

struct PassResult {
  double seconds = 0.0;
  double disk_seconds = 0.0;  // modeled DiskModel charge during the pass
  double hit_ratio = 0.0;
  // Per-block pread latency tail (ms) across the pass.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double aggregate_disk_seconds(dpss::PipeDeployment& d) {
  double total = 0.0;
  for (int i = 0; i < d.server_count(); ++i) {
    total += d.server(i).modeled_disk_seconds();
  }
  return total;
}

cache::MetricsSnapshot aggregate_metrics(dpss::PipeDeployment& d) {
  cache::MetricsSnapshot total;
  for (int i = 0; i < d.server_count(); ++i) {
    const auto m = d.server(i).cache_metrics();
    total.hits += m.hits;
    total.misses += m.misses;
  }
  return total;
}

PassResult timed_read(dpss::PipeDeployment& deployment, dpss::DpssFile& file,
                      std::vector<std::uint8_t>& buf) {
  const auto before = aggregate_metrics(deployment);
  const double disk_before = aggregate_disk_seconds(deployment);
  PassResult r;
  // Block-by-block so every pread is one latency sample.
  obs::Histogram latency;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t off = 0; off < buf.size();
       off += dpss::kDefaultBlockBytes) {
    const std::size_t len = std::min<std::size_t>(dpss::kDefaultBlockBytes,
                                                  buf.size() - off);
    const auto r0 = std::chrono::steady_clock::now();
    auto n = file.pread(buf.data() + off, len, off);
    if (!n.is_ok() || n.value() != len) {
      std::fprintf(stderr, "read failed\n");
      return r;
    }
    latency.observe(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - r0)
                        .count());
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto snap = latency.snapshot();
  r.p50_ms = snap.p50() * 1e3;
  r.p95_ms = snap.p95() * 1e3;
  r.p99_ms = snap.p99() * 1e3;
  r.disk_seconds = aggregate_disk_seconds(deployment) - disk_before;
  const auto after = aggregate_metrics(deployment);
  const auto hits = after.hits - before.hits;
  const auto misses = after.misses - before.misses;
  r.hit_ratio = hits + misses == 0
                    ? 0.0
                    : static_cast<double>(hits) / (hits + misses);
  return r;
}

// Mixed workload for the policy comparison: a hot set re-referenced
// zipf-ishly, interleaved with one-touch scan blocks -- the access mix a
// DPSS serving interactive browsing plus batch staging sees.
double policy_hit_ratio(cache::PolicyKind policy) {
  cache::BlockCacheConfig cc;
  cc.capacity_bytes = 64 * 32 * 1024;  // 64 blocks resident
  cc.shards = 1;
  cc.policy = policy;
  cache::BlockCache bc(cc);

  core::Rng rng(20000412);  // fixed seed: comparable across runs/policies
  const std::uint64_t kHot = 48;     // fits alongside scan churn
  const std::uint64_t kScan = 4096;  // far exceeds capacity
  std::uint64_t scan_at = 0;
  for (int op = 0; op < 60000; ++op) {
    std::uint64_t block;
    if (rng.chance(0.7)) {
      // Hot set, skewed towards low indices.
      block = std::min(rng.next_below(kHot), rng.next_below(kHot));
    } else {
      block = kHot + (scan_at++ % kScan);  // one-touch scan stream
    }
    cache::BlockKey key;
    key.dataset = "workload";
    key.block = block;
    if (!bc.lookup(key)) {
      bc.insert(key, std::vector<std::uint8_t>(32 * 1024, 0));
    }
  }
  return bc.metrics().hit_ratio();
}

}  // namespace

int main() {
  std::printf("=== DPSS block-cache bench ===\n\n");

  // ---- cold vs warm through the deployment ------------------------------
  const auto dataset = vol::DatasetDesc{"cache-bench", {128, 64, 64}, 4,
                                        vol::Generator::kCombustion, 42};
  dpss::ServerCacheConfig cc;
  cc.capacity_bytes = 256ull << 20;
  dpss::PipeDeployment deployment(4, dpss::DiskModel{}, cc);
  if (!deployment.ingest(dataset).is_ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  for (int i = 0; i < deployment.server_count(); ++i) {
    deployment.server(i).drop_cache();  // cold start
  }

  auto client = deployment.make_client();
  auto file = client.open(dataset.name);
  if (!file.is_ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  std::vector<std::uint8_t> buf(dataset.total_bytes());

  const PassResult cold = timed_read(deployment, *file.value(), buf);
  const PassResult warm = timed_read(deployment, *file.value(), buf);
  const double cold_mbps = static_cast<double>(buf.size()) / cold.seconds / 1e6;
  const double warm_mbps = static_cast<double>(buf.size()) / warm.seconds / 1e6;

  core::TableWriter table({"pass", "wall time", "throughput",
                           "pread p50/p95/p99 ms", "hit ratio",
                           "modeled disk time"});
  auto fmt_tail = [](const PassResult& p) {
    return core::fmt_double(p.p50_ms, 2) + "/" + core::fmt_double(p.p95_ms, 2) +
           "/" + core::fmt_double(p.p99_ms, 2);
  };
  table.add_row({"cold", core::fmt_double(cold.seconds * 1e3, 1) + " ms",
                 core::format_rate(static_cast<double>(buf.size()) / cold.seconds),
                 fmt_tail(cold), core::fmt_double(cold.hit_ratio, 3),
                 core::fmt_double(cold.disk_seconds, 3) + " s"});
  table.add_row({"warm", core::fmt_double(warm.seconds * 1e3, 1) + " ms",
                 core::format_rate(static_cast<double>(buf.size()) / warm.seconds),
                 fmt_tail(warm), core::fmt_double(warm.hit_ratio, 3),
                 core::fmt_double(warm.disk_seconds, 3) + " s"});
  std::printf("Whole-file read, %s across 4 servers (64 KB blocks):\n%s\n",
              core::format_bytes(static_cast<double>(buf.size())).c_str(),
              table.to_string().c_str());

  // ---- eviction-policy comparison ---------------------------------------
  core::TableWriter policies({"policy", "hit ratio (hot-set + scan mix)"});
  const double lru = policy_hit_ratio(cache::PolicyKind::kLru);
  const double slru = policy_hit_ratio(cache::PolicyKind::kSegmentedLru);
  const double clock = policy_hit_ratio(cache::PolicyKind::kClock);
  policies.add_row({"lru", core::fmt_double(lru, 4)});
  policies.add_row({"slru", core::fmt_double(slru, 4)});
  policies.add_row({"clock", core::fmt_double(clock, 4)});
  std::printf("Eviction policies, 2 MB cache vs ~130 MB touched:\n%s\n",
              policies.to_string().c_str());

  // ---- machine-readable summary (keep last, one line) -------------------
  return bench::Summary("cache")
      .metric("cold_mbps", cold_mbps)
      .metric("cold_p50_ms", cold.p50_ms)
      .metric("cold_p95_ms", cold.p95_ms)
      .metric("cold_p99_ms", cold.p99_ms)
      .metric("warm_mbps", warm_mbps)
      .metric("warm_p50_ms", warm.p50_ms)
      .metric("warm_p95_ms", warm.p95_ms)
      .metric("warm_p99_ms", warm.p99_ms)
      .metric("warm_hit_ratio", warm.hit_ratio)
      .metric("cold_disk_s", cold.disk_seconds)
      .metric("warm_disk_s", warm.disk_seconds)
      .metric("policy_lru_hit_ratio", lru)
      .metric("policy_slru_hit_ratio", slru)
      .metric("policy_clock_hit_ratio", clock)
      .write();
}
