// Figure 10: NetLogger profile of the (serial) Visapult back end on the
// 12 April 2000 Combustion Corridor campaign -- DPSS at LBL, 4-PE back end
// on CPlant at SNL-CA over NTON, viewer at SNL-CA.
//
// Paper numbers to reproduce (shape):
//   * 160 MB loaded in ~3 s  =>  ~433 Mbps aggregate
//   * ~70% utilization of the theoretical OC-12 (622 Mbps) limit
//   * software rendering ~8-9 s on four CPlant processors
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netlog/nlv.h"
#include "sim/campaign.h"

using namespace visapult;

int main() {
  std::printf("=== Figure 10: LBL DPSS -> CPlant over NTON, serial back end ===\n\n");

  sim::CampaignConfig cfg;
  cfg.dataset = vol::paper_combustion_dataset();
  cfg.timesteps = 8;
  cfg.overlapped = false;
  cfg.platform = sim::cplant_platform(4);

  auto result = sim::run_campaign(netsim::make_nton(), cfg);

  const double load_mean = result.load_seconds.mean();
  const double render_mean = result.render_seconds.mean();
  const double agg_bps = result.frame_load_throughput_bps.mean();

  core::TableWriter table({"metric", "paper", "measured"});
  table.add_row({"load time, 160 MB frame (s)", "~3",
                 core::fmt_double(load_mean, 2)});
  table.add_row({"aggregate load throughput (Mbps)", "~433",
                 core::fmt_double(core::mbps_from_bytes_per_sec(agg_bps), 1)});
  table.add_row({"OC-12 utilization (%)", "~70",
                 core::fmt_double(100.0 * result.utilization, 1)});
  table.add_row({"render time, 4 PEs (s)", "8-9",
                 core::fmt_double(render_mean, 2)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("NLV profile (o = even frames, x = odd frames):\n%s\n",
              netlog::ascii_gantt(result.events).c_str());

  return bench::Summary("fig10_nton_profile")
      .metric("load_mean_s", load_mean)
      .metric("agg_load_mbps", core::mbps_from_bytes_per_sec(agg_bps))
      .metric("oc12_utilization_pct", 100.0 * result.utilization)
      .metric("render_mean_s", render_mean)
      .write();
}
