// Section 5 (future work): QoS / bandwidth reservation.
//
// "In our testing we were able to completely saturate the WAN link in each
// network configuration.  QoS is needed to insure that this application
// does not adversely affect other bandwidth-sensitive applications using
// the link, and to provide some minimum bandwidth guarantees to a Visapult
// session."
//
// Scenario: a Visapult session (16 parallel DPSS load streams) shares an
// OC-12 with a bandwidth-sensitive application (a 100 Mbps "video" flow).
// Three policies: best effort, a reservation protecting the other
// application, and a reservation guaranteeing Visapult a session minimum
// while background flows come and go.
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netsim/network.h"

using namespace visapult;

namespace {

struct Scenario {
  netsim::Network net;
  netsim::NodeId src, dst;
};

Scenario make_oc12() {
  Scenario s;
  s.src = s.net.add_node("lbl");
  s.dst = s.net.add_node("remote");
  netsim::LinkConfig link;
  link.name = "oc12";
  link.bandwidth_bytes_per_sec = core::bytes_per_sec_from_mbps(622.08 * 0.75);
  link.latency_sec = 1e-3;
  s.net.add_link(s.src, s.dst, link);
  return s;
}

netsim::TcpParams greedy(double reserved_mbps = 0.0) {
  netsim::TcpParams t;
  t.handshake = false;
  t.max_window_bytes = 1e18;
  t.initial_window_bytes = 1e18;
  t.reserved_bytes_per_sec = core::bytes_per_sec_from_mbps(reserved_mbps);
  return t;
}

}  // namespace

int main() {
  std::printf("=== Section 5: QoS / bandwidth reservation ===\n\n");

  core::TableWriter table({"policy", "visapult (Mbps)", "other app (Mbps)",
                           "other app protected?"});
  bench::Summary summary("qos_reservation");
  const char* policy_keys[] = {"best_effort", "other_reserved",
                               "visapult_floor"};

  for (int policy = 0; policy < 3; ++policy) {
    Scenario s = make_oc12();
    // The bandwidth-sensitive application wants a steady 100 Mbps.
    const double other_reservation = policy >= 1 ? 100.0 : 0.0;
    auto other = s.net.start_flow(s.src, s.dst, 1e12, greedy(other_reservation));

    // Visapult: 16 parallel load streams; under policy 2 the session also
    // carries a 300 Mbps aggregate guarantee (spread across streams).
    std::vector<netsim::FlowId> visapult;
    for (int i = 0; i < 16; ++i) {
      const double per_stream = policy == 2 ? 300.0 / 16.0 : 0.0;
      auto f = s.net.start_flow(s.src, s.dst, 1e12, greedy(per_stream));
      visapult.push_back(f.value());
    }
    s.net.run_until(1.0);

    double visapult_mbps = 0.0;
    for (auto f : visapult) {
      visapult_mbps += core::mbps_from_bytes_per_sec(s.net.flow_rate(f));
    }
    const double other_mbps =
        core::mbps_from_bytes_per_sec(s.net.flow_rate(other.value()));

    const char* name = policy == 0 ? "best effort (paper's testbeds)"
                       : policy == 1 ? "100 Mbps reserved for other app"
                                     : "other app + 300 Mbps visapult floor";
    table.add_row({name, core::fmt_double(visapult_mbps, 0),
                   core::fmt_double(other_mbps, 0),
                   other_mbps >= 99.0 ? "yes" : "no (squeezed)"});
    summary
        .metric(std::string(policy_keys[policy]) + "_visapult_mbps",
                visapult_mbps)
        .metric(std::string(policy_keys[policy]) + "_other_mbps", other_mbps);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Without QoS, Visapult's 16 streams take 16/17ths of the link;\n"
              "with reservations both the competing application and the\n"
              "Visapult session floor survive saturation.\n");
  return summary.write();
}
