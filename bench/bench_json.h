// Shared machine-readable bench summary.
//
// Every bench_* binary finishes by filling a Summary and calling write(),
// which (a) prints the one-line JSON object to stdout -- the historical
// BENCH_* perf-trajectory hook greppable from CI logs -- and (b) writes the
// same object to BENCH_<name>.json so the Release job can upload the whole
// set as an artifact without scraping logs.  The schema is fixed:
//
//   {"bench":"<name>","metrics":{"<key>":<number>,...}}
//
// Keys keep insertion order.  Set BENCH_OUT_DIR to redirect the files
// (default: the current working directory).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace visapult::bench {

class Summary {
 public:
  explicit Summary(std::string name) : name_(std::move(name)) {}

  Summary& metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
    return *this;
  }

  std::string to_json() const {
    std::string out = "{\"bench\":\"" + name_ + "\",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out += ",";
      char buf[64];
      // %.17g round-trips any double; trims to the shortest exact form.
      std::snprintf(buf, sizeof(buf), "%.17g", metrics_[i].second);
      out += "\"" + metrics_[i].first + "\":" + buf;
    }
    out += "}}";
    return out;
  }

  // Print the JSON line and write BENCH_<name>.json.  Returns 0 on
  // success, 1 if the file could not be written (the line still printed,
  // so log scraping keeps working on read-only filesystems).
  int write() const {
    const std::string json = to_json();
    std::printf("%s\n", json.c_str());
    const char* dir = std::getenv("BENCH_OUT_DIR");
    std::string path = dir != nullptr && dir[0] != '\0'
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    return 0;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace visapult::bench
