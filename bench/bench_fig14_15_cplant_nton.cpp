// Figures 14 & 15: serial vs overlapped back end on eight CPlant nodes
// reading the LBL DPSS over NTON (section 4.4.1).
//
// Paper observations to reproduce (shape):
//   * 8-node load time ~= 4-node load time (the OC-12, not the node count,
//     is the constraint once the WAN saturates)
//   * render time halves from 4 -> 8 nodes (linear speedup)
//   * overlapped loads are longer and more variable than serial loads
//     (reader thread and render process share one CPU per node)
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netlog/nlv.h"
#include "sim/campaign.h"

using namespace visapult;

int main() {
  std::printf("=== Figures 14/15: CPlant over NTON, serial vs overlapped ===\n\n");

  auto run = [](int pes, bool overlapped) {
    sim::CampaignConfig cfg;
    cfg.dataset = vol::paper_combustion_dataset();
    cfg.timesteps = 8;
    cfg.overlapped = overlapped;
    cfg.platform = sim::cplant_platform(pes);
    return sim::run_campaign(netsim::make_nton(), cfg);
  };

  auto serial4 = run(4, false);
  auto serial8 = run(8, false);
  auto overlapped8 = run(8, true);

  core::TableWriter table({"metric", "paper", "measured"});
  table.add_row({"load (s), 4 nodes serial", "~3",
                 core::fmt_double(serial4.load_seconds.mean(), 2)});
  table.add_row({"load (s), 8 nodes serial", "~= 4-node",
                 core::fmt_double(serial8.load_seconds.mean(), 2)});
  table.add_row({"render (s), 4 nodes", "8-9",
                 core::fmt_double(serial4.render_seconds.mean(), 2)});
  table.add_row({"render (s), 8 nodes", "~half of 4-node",
                 core::fmt_double(serial8.render_seconds.mean(), 2)});
  table.add_row({"load (s), 8 nodes overlapped", "> serial",
                 core::fmt_double(overlapped8.load_seconds.mean(), 2)});
  table.add_row({"load stddev, serial (s)", "small",
                 core::fmt_double(serial8.load_seconds.stddev(), 3)});
  table.add_row({"load stddev, overlapped (s)", "larger (staggered)",
                 core::fmt_double(overlapped8.load_seconds.stddev(), 3)});
  table.add_row({"total (s), 8 nodes serial", "-",
                 core::fmt_double(serial8.total_seconds, 1)});
  table.add_row({"total (s), 8 nodes overlapped", "< serial",
                 core::fmt_double(overlapped8.total_seconds, 1)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Fig. 14 (serial, 8 nodes) NLV profile:\n%s\n",
              netlog::ascii_gantt(serial8.events).c_str());
  std::printf("Fig. 15 (overlapped, 8 nodes) NLV profile:\n%s\n",
              netlog::ascii_gantt(overlapped8.events).c_str());

  return bench::Summary("fig14_15_cplant_nton")
      .metric("load_4node_serial_s", serial4.load_seconds.mean())
      .metric("load_8node_serial_s", serial8.load_seconds.mean())
      .metric("render_4node_s", serial4.render_seconds.mean())
      .metric("render_8node_s", serial8.render_seconds.mean())
      .metric("load_8node_overlapped_s", overlapped8.load_seconds.mean())
      .metric("load_stddev_serial_s", serial8.load_seconds.stddev())
      .metric("load_stddev_overlapped_s", overlapped8.load_seconds.stddev())
      .metric("total_8node_serial_s", serial8.total_seconds)
      .metric("total_8node_overlapped_s", overlapped8.total_seconds)
      .write();
}
