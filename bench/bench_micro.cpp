// Microbenchmarks (google-benchmark) for the hot paths of the library:
// software volume rendering, Porter-Duff compositing, DPSS client reads,
// striped-socket transfers, the netsim engine, and the scene-graph
// rasterizer.
#include <benchmark/benchmark.h>

#include <cctype>
#include <thread>

#include "bench_json.h"
#include "core/image.h"
#include "core/thread_pool.h"
#include "dpss/deployment.h"
#include "ibravr/ibravr.h"
#include "net/striped.h"
#include "netsim/topology.h"
#include "render/parallel.h"
#include "scenegraph/rasterizer.h"
#include "sim/campaign.h"
#include "vol/generate.h"

using namespace visapult;

namespace {

const vol::Volume& bench_volume() {
  static const vol::Volume v = vol::generate_combustion({64, 48, 48}, 1);
  return v;
}

void BM_VolumeRenderSlab(benchmark::State& state) {
  const auto& v = bench_volume();
  const render::TransferFunction tf = render::TransferFunction::fire();
  auto bricks = vol::slab_decompose(v.dims(), 8, vol::Axis::kZ);
  for (auto _ : state) {
    auto img = render::render_brick_along_axis(v, bricks.value()[3],
                                               vol::Axis::kZ, tf);
    benchmark::DoNotOptimize(img);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bricks.value()[3].cell_count()));
}
BENCHMARK(BM_VolumeRenderSlab);

void BM_ObjectOrderParallel(benchmark::State& state) {
  const auto& v = bench_volume();
  const render::TransferFunction tf = render::TransferFunction::fire();
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  auto bricks = vol::slab_decompose(v.dims(), static_cast<int>(state.range(0)),
                                    vol::Axis::kZ);
  for (auto _ : state) {
    auto report = render::render_object_order(v, bricks.value(), vol::Axis::kZ,
                                              tf, pool);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ObjectOrderParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CompositeOver(benchmark::State& state) {
  core::ImageRGBA back(256, 256, core::Pixel{0.1f, 0.2f, 0.3f, 0.4f});
  core::ImageRGBA front(256, 256, core::Pixel{0.3f, 0.2f, 0.1f, 0.5f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(back.composite_over(front));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(back.byte_size()));
}
BENCHMARK(BM_CompositeOver);

void BM_DpssRead(benchmark::State& state) {
  static dpss::PipeDeployment* deployment = [] {
    auto* d = new dpss::PipeDeployment(4);
    (void)d->ingest(vol::small_combustion_dataset(1));
    return d;
  }();
  auto client = deployment->make_client();
  auto file = client.open("combustion-64");
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto n = file.value()->pread(buf.data(), buf.size(), 0);
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DpssRead)->Arg(64 * 1024)->Arg(256 * 1024)->Arg(1024 * 1024);

void BM_StripedTransfer(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  std::vector<net::StreamPtr> left, right;
  for (int i = 0; i < lanes; ++i) {
    auto [a, b] = net::make_pipe(8u << 20);
    left.push_back(a);
    right.push_back(b);
  }
  net::StripedStream tx(std::move(left));
  net::StripedStream rx(std::move(right));
  std::vector<std::uint8_t> payload(1 << 20, 0x5A);
  for (auto _ : state) {
    std::thread sender([&] { (void)tx.send(payload); });
    auto got = rx.recv();
    sender.join();
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_StripedTransfer)->Arg(1)->Arg(2)->Arg(4);

void BM_NetsimCampaignFrame(benchmark::State& state) {
  for (auto _ : state) {
    sim::CampaignConfig cfg;
    cfg.dataset = vol::paper_combustion_dataset();
    cfg.timesteps = 2;
    cfg.platform = sim::e4500_platform(8);
    auto result = sim::run_campaign(netsim::make_lan_gige(), cfg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NetsimCampaignFrame);

void BM_RasterizeIbravrModel(benchmark::State& state) {
  const auto& v = bench_volume();
  ibravr::ModelOptions opts;
  opts.slab_count = 8;
  auto model = ibravr::build_model(v, render::TransferFunction::fire(), opts);
  auto root = std::make_shared<scenegraph::GroupNode>("root");
  root->add_child(model.value());
  scenegraph::Rasterizer raster(
      ibravr::make_rotated_camera(v.dims(), vol::Axis::kZ, 0.2f));
  for (auto _ : state) {
    auto img = raster.render_node(*root);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_RasterizeIbravrModel);

void BM_CombustionGeneration(benchmark::State& state) {
  const vol::Dims dims{32, 32, 32};
  int t = 0;
  for (auto _ : state) {
    auto v = vol::generate_combustion(dims, t++);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dims.cell_count()));
}
BENCHMARK(BM_CombustionGeneration);

// Console reporter that also records each run's per-iteration real time
// (seconds) into the bench::Summary, so this binary emits the same
// BENCH_<name>.json as the table-style benches.
class RecordingReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bench::Summary* summary) : summary_(summary) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string key = run.benchmark_name();
      for (char& c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      summary_->metric(key + "_real_s", run.real_accumulated_time / iters);
    }
  }

 private:
  bench::Summary* summary_;
};

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::Summary summary("micro");
  RecordingReporter reporter(&summary);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  return summary.write();
}
