// Section 5 (future work): DPSS wire-level compression.
//
// "'wire level' compression would benefit a wide array of applications.
// In the case of lossy compression techniques, the degree of lossiness
// could be a function of network line parameters and under application
// control."
//
// Measures, on real combustion data through a real (pipe-transport) DPSS:
//   * compression ratio per codec (lossless byte-plane RLE, 16-bit and
//     8-bit lossy quantization),
//   * the implied effective bandwidth multiplier on a WAN,
//   * the reconstruction error of the lossy modes vs the renderer's
//     tolerance (does the rendered image change?).
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"
#include "render/raycast.h"
#include "vol/generate.h"

using namespace visapult;

int main() {
  std::printf("=== Section 5: DPSS wire-level compression ===\n\n");

  const auto desc = vol::DatasetDesc{"combustion-c", {64, 48, 48}, 1,
                                     vol::Generator::kCombustion, 42};
  dpss::PipeDeployment deployment(4);
  if (auto st = deployment.ingest(desc); !st.is_ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.to_string().c_str());
    return 1;
  }
  const vol::Volume original = desc.generate(0);
  const render::TransferFunction tf = render::TransferFunction::fire();
  vol::Brick full;
  full.dims = desc.dims;
  const auto reference_image =
      render::render_brick_along_axis(original, full, vol::Axis::kZ, tf);

  struct Mode {
    const char* name;
    dpss::CompressionConfig config;
  };
  const Mode modes[] = {
      {"none", {dpss::Codec::kNone, 8}},
      {"lossless (byte-plane RLE)", {dpss::Codec::kLossless, 8}},
      {"lossy 16-bit", {dpss::Codec::kLossyQuant, 16}},
      {"lossy 8-bit", {dpss::Codec::kLossyQuant, 8}},
  };

  core::TableWriter table({"codec", "wire bytes", "ratio",
                           "ESnet effective Mbps", "max abs error",
                           "image diff (MAD)"});
  bench::Summary summary("dpss_compression");
  const char* keys[] = {"none", "lossless", "lossy16", "lossy8"};
  int mode_index = 0;
  for (const Mode& mode : modes) {
    auto client = deployment.make_client();
    auto file = client.open(desc.name);
    if (!file.is_ok()) return 1;
    file.value()->set_compression(mode.config);

    std::vector<std::uint8_t> buf(desc.bytes_per_step());
    if (!file.value()->read(buf.data(), buf.size()).is_ok()) return 1;

    const double raw = static_cast<double>(file.value()->raw_bytes_received());
    const double wire = static_cast<double>(file.value()->wire_bytes_received());
    const double ratio = raw / wire;

    // Reconstruction error + rendered-image impact.
    vol::Volume decoded(desc.dims,
                        std::vector<float>(
                            reinterpret_cast<const float*>(buf.data()),
                            reinterpret_cast<const float*>(buf.data()) +
                                desc.dims.cell_count()));
    double max_err = 0.0;
    for (std::size_t i = 0; i < decoded.data().size(); ++i) {
      max_err = std::max(max_err,
                         static_cast<double>(std::abs(decoded.data()[i] -
                                                      original.data()[i])));
    }
    const auto image =
        render::render_brick_along_axis(decoded, full, vol::Axis::kZ, tf);
    const double image_diff =
        core::ImageRGBA::mean_abs_diff(image.value(), reference_image.value());

    // "a function of network line parameters": effective rate on the
    // ~130 Mbps ESnet path scales with the ratio.
    table.add_row({mode.name, core::format_bytes(wire),
                   core::fmt_double(ratio, 2),
                   core::fmt_double(130.0 * ratio, 0),
                   core::fmt_double(max_err, 6),
                   core::fmt_double(image_diff, 6)});
    const std::string key = keys[mode_index++];
    summary.metric(key + "_ratio", ratio)
        .metric(key + "_max_err", max_err)
        .metric(key + "_image_mad", image_diff);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Lossy 8-bit trades a bounded per-value error for a multi-x\n"
              "effective-bandwidth gain; 16-bit is visually lossless for\n"
              "this transfer function (image diff at the sampling floor).\n");
  return summary.write();
}
