// Section 3.5 footnote 5 + SC99 observation: "the majority of communication
// was between the DPSS and the Visapult back end, with the link between the
// Visapult back end and viewer requiring much less bandwidth."
//
// Runs real in-process sessions at increasing volume sizes and reports the
// measured bytes on each hop: DPSS->backend is O(n^3), backend->viewer is
// O(n^2).  Also verifies the paper's per-texture heavy-payload magnitude
// at the paper's grid size (0.25 - 1 MB per texture, plus tens of KB of
// AMR geometry).
#include <cstdio>

#include "app/session.h"
#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "sim/campaign.h"

using namespace visapult;

int main() {
  std::printf("=== Payload scaling: O(n^3) source vs O(n^2) viewer data ===\n\n");

  core::TableWriter t({"grid", "raw step (source->backend)",
                       "heavy bytes (backend->viewer)", "ratio"});
  bench::Summary summary("payload_scaling");
  for (int n : {16, 24, 32, 48}) {
    app::SessionOptions opts;
    opts.dataset = vol::DatasetDesc{"combustion-" + std::to_string(n),
                                    {n, n, n}, 1,
                                    vol::Generator::kCombustion, 42};
    opts.backend_pes = 2;
    opts.dpss_servers = 2;
    opts.overlapped = false;
    opts.axis_feedback = false;
    opts.send_amr_grid = true;
    auto result = app::run_session(opts);
    if (!result.is_ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    const double raw = static_cast<double>(opts.dataset.bytes_per_step());
    const double heavy = result.value().viewer.heavy_bytes_total;
    t.add_row({std::to_string(n) + "^3", core::format_bytes(raw),
               core::format_bytes(heavy),
               core::fmt_double(raw / heavy, 1) + "x"});
    if (n == 48) summary.metric("raw_over_heavy_n48", raw / heavy);
  }
  std::printf("%s\n", t.to_string().c_str());

  // At the paper's full 640x256x256 scale (computed, not executed).
  const auto paper = vol::paper_combustion_dataset();
  const double heavy_paper = sim::default_heavy_payload_bytes(paper);
  core::TableWriter p({"paper-scale quantity", "value", "paper"});
  p.add_row({"raw timestep", core::format_bytes(static_cast<double>(paper.bytes_per_step())),
             "160 MB"});
  p.add_row({"per-PE texture (float RGBA)",
             core::format_bytes(static_cast<double>(paper.dims.nx) * paper.dims.ny * 16.0),
             "0.25-1.0 MB per texture (8-bit era)"});
  p.add_row({"heavy payload incl. AMR grid", core::format_bytes(heavy_paper),
             "texture + tens of KB geometry"});
  p.add_row({"backend->viewer vs source ratio",
             core::fmt_double(static_cast<double>(paper.bytes_per_step()) / heavy_paper, 0) + "x less",
             "\"much less bandwidth\""});
  std::printf("%s\n", p.to_string().c_str());
  return summary
      .metric("paper_scale_ratio",
              static_cast<double>(paper.bytes_per_step()) / heavy_paper)
      .metric("paper_heavy_bytes", heavy_paper)
      .write();
}
