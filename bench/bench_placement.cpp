// Placement bench: ingest and read throughput across replication factors,
// plus degraded-read throughput after killing a server (the client fails
// over to surviving replicas).
//
// Four pipe-transport servers host a synthetic combustion series.  For
// each replication factor we measure: ingest (every block written to all
// of its replicas), a healthy sequential scan, and -- where replicas exist
// -- the same scan with server 0 killed mid-deployment.  Replication
// factor 1 has no degraded figure: a kill there loses data outright.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"placement","rf1_ingest_mbps":...,"rf1_read_mbps":...,
//    "rf2_ingest_mbps":...,"rf2_read_mbps":...,"rf2_degraded_mbps":...,
//    "rf3_ingest_mbps":...,"rf3_read_mbps":...,"rf3_degraded_mbps":...,
//    "rf2_failover_reads":...}
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"

using namespace visapult;

namespace {

double mbps(double bytes, double seconds) {
  return seconds > 0 ? bytes / seconds / 1e6 : 0.0;
}

struct RfResult {
  double ingest_mbps = 0.0;
  double read_mbps = 0.0;
  double degraded_mbps = 0.0;  // 0 when rf == 1 (no failover possible)
  std::uint64_t failover_reads = 0;
};

RfResult run_rf(const vol::DatasetDesc& dataset, std::uint32_t rf) {
  RfResult out;
  dpss::PipeDeployment deployment(4);
  const double total = static_cast<double>(dataset.total_bytes());

  auto t0 = std::chrono::steady_clock::now();
  if (!deployment.ingest(dataset, dpss::kDefaultBlockBytes, 1, rf).is_ok()) {
    std::fprintf(stderr, "ingest failed (rf=%u)\n", rf);
    return out;
  }
  out.ingest_mbps = mbps(
      total * rf,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());

  std::vector<std::uint8_t> buf(dataset.total_bytes());
  {
    auto client = deployment.make_client();
    auto file = client.open(dataset.name);
    if (!file.is_ok()) return out;
    t0 = std::chrono::steady_clock::now();
    auto n = file.value()->read(buf.data(), buf.size());
    if (!n.is_ok() || n.value() != buf.size()) return out;
    out.read_mbps = mbps(
        total,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }

  if (rf >= 2) {
    auto client = deployment.make_client();
    auto file = client.open(dataset.name);
    if (!file.is_ok()) return out;
    deployment.kill_server(0);
    t0 = std::chrono::steady_clock::now();
    auto n = file.value()->read(buf.data(), buf.size());
    if (!n.is_ok() || n.value() != buf.size()) {
      std::fprintf(stderr, "degraded read failed (rf=%u)\n", rf);
      return out;
    }
    out.degraded_mbps = mbps(
        total,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    out.failover_reads = file.value()->failover_reads();
  }
  return out;
}

}  // namespace

int main() {
  const auto dataset = vol::DatasetDesc{"placement-bench", {96, 64, 64}, 2,
                                        vol::Generator::kCombustion, 7};
  std::printf("bench_placement: %s x%d (%s), 4 pipe servers\n\n",
              dataset.dims.to_string().c_str(), dataset.timesteps,
              core::format_bytes(static_cast<double>(dataset.total_bytes()))
                  .c_str());

  core::TableWriter table({"rf", "ingest MB/s", "healthy read MB/s",
                           "degraded read MB/s", "failover reads"});
  RfResult results[4];
  for (std::uint32_t rf = 1; rf <= 3; ++rf) {
    results[rf] = run_rf(dataset, rf);
    table.add_row({std::to_string(rf),
                   core::fmt_double(results[rf].ingest_mbps, 1),
                   core::fmt_double(results[rf].read_mbps, 1),
                   rf >= 2 ? core::fmt_double(results[rf].degraded_mbps, 1)
                           : std::string("n/a"),
                   std::to_string(results[rf].failover_reads)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "{\"bench\":\"placement\","
      "\"rf1_ingest_mbps\":%.1f,\"rf1_read_mbps\":%.1f,"
      "\"rf2_ingest_mbps\":%.1f,\"rf2_read_mbps\":%.1f,"
      "\"rf2_degraded_mbps\":%.1f,"
      "\"rf3_ingest_mbps\":%.1f,\"rf3_read_mbps\":%.1f,"
      "\"rf3_degraded_mbps\":%.1f,"
      "\"rf2_failover_reads\":%llu}\n",
      results[1].ingest_mbps, results[1].read_mbps, results[2].ingest_mbps,
      results[2].read_mbps, results[2].degraded_mbps, results[3].ingest_mbps,
      results[3].read_mbps, results[3].degraded_mbps,
      static_cast<unsigned long long>(results[2].failover_reads));
  return 0;
}
