// Placement bench: ingest and read throughput across replication factors,
// plus degraded-read throughput after killing a server (the client fails
// over to surviving replicas).
//
// Four pipe-transport servers host a synthetic combustion series.  For
// each replication factor we measure: ingest (every block written to all
// of its replicas), a healthy sequential scan, and -- where replicas exist
// -- the same scan with server 0 killed mid-deployment.  Replication
// factor 1 has no degraded figure: a kill there loses data outright.
//
// A second section sweeps concurrent reader connections against one real
// TCP block server, reactor front door vs the thread-per-connection
// baseline: same request stream, growing fan-in, aggregate pread
// throughput per point.  This is the knee the reactor refactor moved.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"placement","rf1_ingest_mbps":...,"rf1_read_mbps":...,
//    "rf2_ingest_mbps":...,"rf2_read_mbps":...,"rf2_degraded_mbps":...,
//    "rf3_ingest_mbps":...,"rf3_read_mbps":...,"rf3_degraded_mbps":...,
//    "rf2_failover_reads":...,
//    "sweep_reactor_c<N>_mbps":...,"sweep_reactor_c<N>_p50_ms":...,
//    "sweep_reactor_c<N>_p95_ms":...,"sweep_reactor_c<N>_p99_ms":...,
//    "sweep_threads_c<N>_mbps":... (same p50/p95/p99 trio),
//    "sweep_reactor_max_conns":...,"sweep_threads_max_conns":...}
// Latency percentiles come from an obs::Histogram shared by every driver
// thread -- the same log-bucketed instrument the servers export.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"
#include "obs/metrics.h"

using namespace visapult;

namespace {

double mbps(double bytes, double seconds) {
  return seconds > 0 ? bytes / seconds / 1e6 : 0.0;
}

struct RfResult {
  double ingest_mbps = 0.0;
  double read_mbps = 0.0;
  double degraded_mbps = 0.0;  // 0 when rf == 1 (no failover possible)
  std::uint64_t failover_reads = 0;
};

RfResult run_rf(const vol::DatasetDesc& dataset, std::uint32_t rf) {
  RfResult out;
  dpss::PipeDeployment deployment(4);
  const double total = static_cast<double>(dataset.total_bytes());

  auto t0 = std::chrono::steady_clock::now();
  if (!deployment.ingest(dataset, dpss::kDefaultBlockBytes, 1, rf).is_ok()) {
    std::fprintf(stderr, "ingest failed (rf=%u)\n", rf);
    return out;
  }
  out.ingest_mbps = mbps(
      total * rf,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());

  std::vector<std::uint8_t> buf(dataset.total_bytes());
  {
    auto client = deployment.make_client();
    auto file = client.open(dataset.name);
    if (!file.is_ok()) return out;
    t0 = std::chrono::steady_clock::now();
    auto n = file.value()->read(buf.data(), buf.size());
    if (!n.is_ok() || n.value() != buf.size()) return out;
    out.read_mbps = mbps(
        total,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }

  if (rf >= 2) {
    auto client = deployment.make_client();
    auto file = client.open(dataset.name);
    if (!file.is_ok()) return out;
    deployment.kill_server(0);
    t0 = std::chrono::steady_clock::now();
    auto n = file.value()->read(buf.data(), buf.size());
    if (!n.is_ok() || n.value() != buf.size()) {
      std::fprintf(stderr, "degraded read failed (rf=%u)\n", rf);
      return out;
    }
    out.degraded_mbps = mbps(
        total,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    out.failover_reads = file.value()->failover_reads();
  }
  return out;
}

// ---- connections-vs-throughput sweep (reactor vs thread-per-conn) ----

constexpr int kSweepConns[] = {64, 256, 512, 1024, 2048};
// Thread-per-connection burns ~2 service threads per client (server +
// master side); past ~1024 connections the process needs >4k threads and
// the host kills it outright.  The reactor side has no such cliff, which
// is exactly the knee this sweep exists to show.
constexpr int kThreadModeConnCap = 1024;
constexpr int kSweepDrivers = 16;
constexpr int kReadsPerConn = 8;
constexpr std::size_t kSweepReadBytes = 4096;

struct SweepPoint {
  int target_conns = 0;
  int sustained_conns = 0;  // opens that succeeded and read error-free
  double aggregate_mbps = 0.0;
  // Per-pread latency tail (ms) across every connection at this point.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

SweepPoint run_sweep_point(dpss::ServeMode mode,
                           const vol::DatasetDesc& dataset, int conns) {
  SweepPoint out;
  out.target_conns = conns;

  dpss::TcpDeploymentOptions options;
  options.serve_mode = mode;
  options.worker_threads = 8;
  // Openings at the high end race a cold accept path; a short connect
  // deadline turns a fallen-over baseline into a counted failure instead
  // of a minutes-long stall.
  options.connect_timeout_seconds = 5.0;
  dpss::TcpDeployment deployment(1, dpss::DiskModel{}, /*throttle=*/false,
                                 dpss::ServerCacheConfig{}, options);
  if (!deployment.start().is_ok()) return out;
  if (!deployment.ingest(dataset, /*block_bytes=*/8192).is_ok()) return out;

  struct Reader {
    dpss::DpssClient client;
    std::unique_ptr<dpss::DpssFile> file;
  };
  std::vector<std::unique_ptr<Reader>> readers(
      static_cast<std::size_t>(conns));
  std::atomic<int> open_failures{0};
  {
    std::vector<std::thread> drivers;
    for (int d = 0; d < kSweepDrivers; ++d) {
      drivers.emplace_back([&, d] {
        for (int i = d; i < conns; i += kSweepDrivers) {
          auto client = deployment.make_client();
          if (!client.is_ok()) {
            open_failures.fetch_add(1);
            continue;
          }
          auto file = client.value().open(dataset.name);
          if (!file.is_ok()) {
            open_failures.fetch_add(1);
            continue;
          }
          readers[static_cast<std::size_t>(i)] = std::unique_ptr<Reader>(
              new Reader{std::move(client).take(), std::move(file).take()});
        }
      });
    }
    for (auto& t : drivers) t.join();
  }

  std::atomic<int> read_errors{0};
  obs::Histogram latency;  // sharded: all drivers observe concurrently
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> drivers;
    for (int d = 0; d < kSweepDrivers; ++d) {
      drivers.emplace_back([&, d] {
        std::vector<std::uint8_t> buf(kSweepReadBytes);
        for (int i = d; i < conns; i += kSweepDrivers) {
          if (!readers[static_cast<std::size_t>(i)]) continue;
          auto& file = *readers[static_cast<std::size_t>(i)]->file;
          for (int r = 0; r < kReadsPerConn; ++r) {
            const std::uint64_t offset =
                (static_cast<std::uint64_t>(i) * kReadsPerConn + r) * 8192 %
                (dataset.total_bytes() - kSweepReadBytes);
            const auto r0 = std::chrono::steady_clock::now();
            auto n = file.pread(buf.data(), buf.size(), offset);
            if (!n.is_ok() || n.value() != kSweepReadBytes) {
              read_errors.fetch_add(1);
              break;
            }
            latency.observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - r0)
                                .count());
          }
        }
      });
    }
    for (auto& t : drivers) t.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  out.sustained_conns = conns - open_failures.load() - read_errors.load();
  const double bytes = static_cast<double>(conns - open_failures.load()) *
                       kReadsPerConn * kSweepReadBytes;
  out.aggregate_mbps = mbps(bytes, secs);
  const auto snap = latency.snapshot();
  out.p50_ms = snap.p50() * 1e3;
  out.p95_ms = snap.p95() * 1e3;
  out.p99_ms = snap.p99() * 1e3;
  readers.clear();
  deployment.stop();
  return out;
}

}  // namespace

int main() {
  const auto dataset = vol::DatasetDesc{"placement-bench", {96, 64, 64}, 2,
                                        vol::Generator::kCombustion, 7};
  std::printf("bench_placement: %s x%d (%s), 4 pipe servers\n\n",
              dataset.dims.to_string().c_str(), dataset.timesteps,
              core::format_bytes(static_cast<double>(dataset.total_bytes()))
                  .c_str());

  core::TableWriter table({"rf", "ingest MB/s", "healthy read MB/s",
                           "degraded read MB/s", "failover reads"});
  RfResult results[4];
  for (std::uint32_t rf = 1; rf <= 3; ++rf) {
    results[rf] = run_rf(dataset, rf);
    table.add_row({std::to_string(rf),
                   core::fmt_double(results[rf].ingest_mbps, 1),
                   core::fmt_double(results[rf].read_mbps, 1),
                   rf >= 2 ? core::fmt_double(results[rf].degraded_mbps, 1)
                           : std::string("n/a"),
                   std::to_string(results[rf].failover_reads)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Fan-in sweep: one TCP block server, growing concurrent readers,
  // reactor vs thread-per-connection front door.
  std::printf("connection sweep: 1 TCP server, %d preads x %zu B/conn\n",
              kReadsPerConn, kSweepReadBytes);
  core::TableWriter sweep_table({"conns", "reactor MB/s",
                                 "reactor p50/p95/p99 ms", "reactor sustained",
                                 "threads MB/s", "threads p50/p95/p99 ms",
                                 "threads sustained"});
  auto fmt_tail = [](const SweepPoint& p) {
    return core::fmt_double(p.p50_ms, 2) + "/" + core::fmt_double(p.p95_ms, 2) +
           "/" + core::fmt_double(p.p99_ms, 2);
  };
  std::vector<SweepPoint> reactor_pts, thread_pts;
  for (int conns : kSweepConns) {
    reactor_pts.push_back(
        run_sweep_point(dpss::ServeMode::kReactor, dataset, conns));
    const bool thread_measurable = conns <= kThreadModeConnCap;
    if (thread_measurable) {
      thread_pts.push_back(
          run_sweep_point(dpss::ServeMode::kThreadPerConnection, dataset,
                          conns));
    }
    sweep_table.add_row(
        {std::to_string(conns),
         core::fmt_double(reactor_pts.back().aggregate_mbps, 1),
         fmt_tail(reactor_pts.back()),
         std::to_string(reactor_pts.back().sustained_conns),
         thread_measurable
             ? core::fmt_double(thread_pts.back().aggregate_mbps, 1)
             : std::string("n/a (>4k threads)"),
         thread_measurable ? fmt_tail(thread_pts.back()) : std::string("n/a"),
         thread_measurable
             ? std::to_string(thread_pts.back().sustained_conns)
             : std::string("0")});
  }
  std::printf("%s\n", sweep_table.to_string().c_str());
  auto max_sustained = [](const std::vector<SweepPoint>& pts) {
    int best = 0;
    for (const auto& p : pts) {
      if (p.sustained_conns == p.target_conns) {
        best = std::max(best, p.sustained_conns);
      }
    }
    return best;
  };

  bench::Summary summary("placement");
  summary.metric("rf1_ingest_mbps", results[1].ingest_mbps)
      .metric("rf1_read_mbps", results[1].read_mbps)
      .metric("rf2_ingest_mbps", results[2].ingest_mbps)
      .metric("rf2_read_mbps", results[2].read_mbps)
      .metric("rf2_degraded_mbps", results[2].degraded_mbps)
      .metric("rf3_ingest_mbps", results[3].ingest_mbps)
      .metric("rf3_read_mbps", results[3].read_mbps)
      .metric("rf3_degraded_mbps", results[3].degraded_mbps)
      .metric("rf2_failover_reads",
              static_cast<double>(results[2].failover_reads));
  for (std::size_t i = 0; i < reactor_pts.size(); ++i) {
    const std::string c = std::to_string(reactor_pts[i].target_conns);
    summary.metric("sweep_reactor_c" + c + "_mbps",
                   reactor_pts[i].aggregate_mbps)
        .metric("sweep_reactor_c" + c + "_p50_ms", reactor_pts[i].p50_ms)
        .metric("sweep_reactor_c" + c + "_p95_ms", reactor_pts[i].p95_ms)
        .metric("sweep_reactor_c" + c + "_p99_ms", reactor_pts[i].p99_ms);
    // Unmeasurable thread-mode points report 0 (the baseline cannot stand
    // up that many connections on this host at all).
    const bool tm = i < thread_pts.size();
    summary
        .metric("sweep_threads_c" + c + "_mbps",
                tm ? thread_pts[i].aggregate_mbps : 0.0)
        .metric("sweep_threads_c" + c + "_p50_ms",
                tm ? thread_pts[i].p50_ms : 0.0)
        .metric("sweep_threads_c" + c + "_p95_ms",
                tm ? thread_pts[i].p95_ms : 0.0)
        .metric("sweep_threads_c" + c + "_p99_ms",
                tm ? thread_pts[i].p99_ms : 0.0);
  }
  summary.metric("sweep_reactor_max_conns",
                 static_cast<double>(max_sustained(reactor_pts)))
      .metric("sweep_threads_max_conns",
              static_cast<double>(max_sustained(thread_pts)));
  return summary.write();
}
