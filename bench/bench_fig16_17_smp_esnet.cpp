// Figures 16 & 17: serial vs overlapped back end on the ANL Onyx2 SMP
// reading the LBL DPSS over ESnet (section 4.4.2).
//
// Paper numbers to reproduce (shape):
//   * ~10 s to move 160 MB per frame  =>  ~128 Mbps consumed
//   * iperf on the same path measures ~100 Mbps (single stream,
//     window-limited); Visapult's parallel loads do better
//   * load dominates render (low network capacity)
//   * frame 0 loads slower, "after the first time step's worth of data was
//     loaded and the TCP window fully opened" throughput is steady
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netlog/nlv.h"
#include "sim/campaign.h"

using namespace visapult;

int main() {
  std::printf("=== Figures 16/17: ANL Onyx2 over ESnet, serial vs overlapped ===\n\n");

  sim::CampaignConfig cfg;
  cfg.dataset = vol::paper_combustion_dataset();
  cfg.timesteps = 8;
  cfg.platform = sim::onyx2_platform(8);

  cfg.overlapped = false;
  auto serial = sim::run_campaign(netsim::make_esnet(), cfg);
  cfg.overlapped = true;
  auto overlapped = sim::run_campaign(netsim::make_esnet(), cfg);

  const double iperf = sim::measure_iperf(netsim::make_esnet());

  // Steady-state load throughput: skip frame 0 (window opening).
  auto loads = netlog::extract_intervals(serial.events,
                                         netlog::tags::kBeLoadStart,
                                         netlog::tags::kBeLoadEnd);
  double frame0 = 0.0;
  core::RunningStat steady;
  for (const auto& l : loads) {
    if (l.frame == 0) {
      frame0 = std::max(frame0, l.duration());
    } else {
      steady.add(l.duration());
    }
  }
  const double steady_agg_bps = serial.frame_load_throughput_bps.mean();

  core::TableWriter table({"metric", "paper", "measured"});
  table.add_row({"iperf single stream (Mbps)", "~100",
                 core::fmt_double(core::mbps_from_bytes_per_sec(iperf), 1)});
  table.add_row({"visapult aggregate load (Mbps)", "~128",
                 core::fmt_double(core::mbps_from_bytes_per_sec(steady_agg_bps), 1)});
  table.add_row({"load time, 160 MB frame (s)", "~10",
                 core::fmt_double(steady.mean(), 2)});
  table.add_row({"frame-0 load (window opening) (s)", "> steady",
                 core::fmt_double(frame0, 2)});
  table.add_row({"render (s), 8 procs", "~4 (minor)",
                 core::fmt_double(serial.render_seconds.mean(), 2)});
  table.add_row({"load dominates render", "yes",
                 serial.load_seconds.mean() > serial.render_seconds.mean()
                     ? "yes" : "no"});
  table.add_row({"total (s), serial", "-",
                 core::fmt_double(serial.total_seconds, 1)});
  table.add_row({"total (s), overlapped", "< serial",
                 core::fmt_double(overlapped.total_seconds, 1)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Fig. 16 (serial) NLV profile:\n%s\n",
              netlog::ascii_gantt(serial.events).c_str());
  std::printf("Fig. 17 (overlapped) NLV profile:\n%s\n",
              netlog::ascii_gantt(overlapped.events).c_str());

  return bench::Summary("fig16_17_smp_esnet")
      .metric("iperf_mbps", core::mbps_from_bytes_per_sec(iperf))
      .metric("agg_load_mbps", core::mbps_from_bytes_per_sec(steady_agg_bps))
      .metric("steady_load_s", steady.mean())
      .metric("frame0_load_s", frame0)
      .metric("render_mean_s", serial.render_seconds.mean())
      .metric("serial_total_s", serial.total_seconds)
      .metric("overlapped_total_s", overlapped.total_seconds)
      .write();
}
