// Figures 12 & 13: serial vs overlapped loading+rendering on the
// eight-processor Sun E4500 ("diesel") connected to the LBL DPSS over
// gigabit-ethernet LAN, ten timesteps.
//
// Paper numbers to reproduce (shape):
//   * serial total   ~265 s
//   * overlapped     ~169 s
//   * L ~ 15 s, R ~ 12 s per frame
//   * speedup consistent with Ts = N(L+R), To = N*max(L,R)+min(L,R)
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netlog/nlv.h"
#include "sim/campaign.h"

using namespace visapult;

int main() {
  std::printf("=== Figures 12/13: serial vs overlapped on the E4500 SMP (LAN) ===\n\n");

  sim::CampaignConfig cfg;
  cfg.dataset = vol::paper_combustion_dataset();
  cfg.timesteps = 10;
  cfg.platform = sim::e4500_platform(8);

  cfg.overlapped = false;
  auto serial = sim::run_campaign(netsim::make_lan_gige(), cfg);
  cfg.overlapped = true;
  auto overlapped = sim::run_campaign(netsim::make_lan_gige(), cfg);

  const double l = serial.load_seconds.mean();
  const double r = serial.render_seconds.mean();

  core::TableWriter table({"metric", "paper", "measured"});
  table.add_row({"L, per-frame load (s)", "~15", core::fmt_double(l, 1)});
  table.add_row({"R, per-frame render (s)", "~12", core::fmt_double(r, 1)});
  table.add_row({"serial total, 10 steps (s)", "~265",
                 core::fmt_double(serial.total_seconds, 1)});
  table.add_row({"overlapped total, 10 steps (s)", "~169",
                 core::fmt_double(overlapped.total_seconds, 1)});
  table.add_row({"speedup", core::fmt_double(265.0 / 169.0, 2),
                 core::fmt_double(serial.total_seconds / overlapped.total_seconds, 2)});
  table.add_row({"model Ts = N(L+R) (s)",
                 "270", core::fmt_double(sim::serial_time_model(10, l, r), 1)});
  table.add_row({"model To = N*max+min (s)",
                 "162", core::fmt_double(sim::overlapped_time_model(10, l, r), 1)});
  std::printf("%s\n", table.to_string().c_str());

  // Where the time goes, per phase (the question the NLV figures answer).
  for (const auto& [label, result] :
       {std::pair<const char*, const sim::CampaignResult*>{"serial", &serial},
        {"overlapped", &overlapped}}) {
    core::TableWriter phases({"phase", "occurrences", "mean (s)",
                              "busy (s)", "span %"});
    for (const auto& p : netlog::phase_breakdown(result->events)) {
      phases.add_row({p.name, std::to_string(p.per_occurrence.count()),
                      core::fmt_double(p.per_occurrence.mean(), 2),
                      core::fmt_double(p.busy_seconds, 1),
                      core::fmt_double(100.0 * p.span_fraction, 1)});
    }
    std::printf("Phase breakdown (%s):\n%s\n", label, phases.to_string().c_str());
  }

  std::printf("Fig. 12 (serial) NLV profile:\n%s\n",
              netlog::ascii_gantt(serial.events).c_str());
  std::printf("Fig. 13 (overlapped) NLV profile:\n%s\n",
              netlog::ascii_gantt(overlapped.events).c_str());

  return bench::Summary("fig12_13_smp_lan")
      .metric("load_mean_s", l)
      .metric("render_mean_s", r)
      .metric("serial_total_s", serial.total_seconds)
      .metric("overlapped_total_s", overlapped.total_seconds)
      .metric("speedup", serial.total_seconds / overlapped.total_seconds)
      .metric("model_serial_s", sim::serial_time_model(10, l, r))
      .metric("model_overlapped_s", sim::overlapped_time_model(10, l, r))
      .write();
}
