// Ingest-pipeline bench: overwrite throughput via the classic client
// fanout vs server-driven chain replication at rf 1/2/3, and replicated
// vs EC(4,2) parity-delta overwrites.
//
// Six pipe-transport servers host a synthetic combustion series.  For
// each replication factor we ingest, open a file, and overwrite the whole
// dataset twice: once with the client fanning every replica out itself,
// once with one copy per block sent to its primary and the chain moving
// the rest server-to-server.  The EC section overwrites a (4,2) dataset
// through parity-delta writes (client ships each block once; m GF deltas
// move server-to-server) and reports the parity-delta kernel ops.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"ingest","rf1_fanout_mbps":...,"rf1_chain_mbps":...,
//    "rf2_fanout_mbps":...,"rf2_chain_mbps":...,
//    "rf3_fanout_mbps":...,"rf3_chain_mbps":...,
//    "ec42_chain_mbps":...,"ec42_parity_deltas":...,
//    "rf2_chain_forwards":...}
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"

using namespace visapult;

namespace {

double mbps(double bytes, double seconds) {
  return seconds > 0 ? bytes / seconds / 1e6 : 0.0;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return out;
}

struct OverwriteResult {
  double fanout_mbps = 0.0;
  double chain_mbps = 0.0;
  std::uint64_t chain_forwards = 0;
};

double timed_overwrite(dpss::DpssFile& file,
                       const std::vector<std::uint8_t>& bytes) {
  if (file.lseek(0) != 0) return 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  if (!file.write(bytes.data(), bytes.size()).is_ok()) return 0.0;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return mbps(static_cast<double>(bytes.size()), secs);
}

OverwriteResult run_rf(const vol::DatasetDesc& dataset, std::uint32_t rf) {
  OverwriteResult out;
  dpss::PipeDeployment deployment(6);
  if (!deployment.ingest(dataset, dpss::kDefaultBlockBytes, 1, rf).is_ok()) {
    std::fprintf(stderr, "ingest failed (rf=%u)\n", rf);
    return out;
  }
  auto client = deployment.make_client();
  auto file = client.open(dataset.name);
  if (!file.is_ok()) return out;

  const auto fanout_bytes = pattern_bytes(dataset.total_bytes(), 1);
  file.value()->set_write_mode(dpss::DpssFile::WriteMode::kClientFanout);
  out.fanout_mbps = timed_overwrite(*file.value(), fanout_bytes);

  const auto chain_bytes = pattern_bytes(dataset.total_bytes(), 2);
  file.value()->set_write_mode(dpss::DpssFile::WriteMode::kServerChain);
  out.chain_mbps = timed_overwrite(*file.value(), chain_bytes);
  for (int s = 0; s < deployment.server_count(); ++s) {
    out.chain_forwards += deployment.server(s).chain_forwards();
  }
  return out;
}

}  // namespace

int main() {
  const auto dataset = vol::DatasetDesc{"ingest-bench", {96, 64, 64}, 2,
                                        vol::Generator::kCombustion, 7};
  std::printf("bench_ingest: %s x%d (%s), 6 pipe servers\n\n",
              dataset.dims.to_string().c_str(), dataset.timesteps,
              core::format_bytes(static_cast<double>(dataset.total_bytes()))
                  .c_str());

  core::TableWriter table({"mode", "fanout MB/s", "chain MB/s",
                           "chain forwards"});
  OverwriteResult results[4];
  for (std::uint32_t rf = 1; rf <= 3; ++rf) {
    results[rf] = run_rf(dataset, rf);
    table.add_row({"rf=" + std::to_string(rf),
                   core::fmt_double(results[rf].fanout_mbps, 1),
                   core::fmt_double(results[rf].chain_mbps, 1),
                   std::to_string(results[rf].chain_forwards)});
  }

  // EC(4,2): writable only through the parity-delta pipeline.
  double ec_mbps = 0.0;
  std::uint64_t ec_deltas = 0;
  {
    dpss::PipeDeployment deployment(6);
    if (deployment
            .ingest(dataset, dpss::kDefaultBlockBytes, 1, 1,
                    codec::EcProfile{4, 2})
            .is_ok()) {
      auto client = deployment.make_client();
      auto file = client.open(dataset.name);
      if (file.is_ok()) {
        const auto bytes = pattern_bytes(dataset.total_bytes(), 3);
        ec_mbps = timed_overwrite(*file.value(), bytes);
        for (int s = 0; s < deployment.server_count(); ++s) {
          ec_deltas += deployment.server(s).parity_deltas_applied();
        }
      }
    }
    table.add_row({"EC(4,2)", "n/a", core::fmt_double(ec_mbps, 1),
                   std::to_string(ec_deltas) + " deltas"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "{\"bench\":\"ingest\","
      "\"rf1_fanout_mbps\":%.1f,\"rf1_chain_mbps\":%.1f,"
      "\"rf2_fanout_mbps\":%.1f,\"rf2_chain_mbps\":%.1f,"
      "\"rf3_fanout_mbps\":%.1f,\"rf3_chain_mbps\":%.1f,"
      "\"ec42_chain_mbps\":%.1f,\"ec42_parity_deltas\":%llu,"
      "\"rf2_chain_forwards\":%llu}\n",
      results[1].fanout_mbps, results[1].chain_mbps, results[2].fanout_mbps,
      results[2].chain_mbps, results[3].fanout_mbps, results[3].chain_mbps,
      ec_mbps, static_cast<unsigned long long>(ec_deltas),
      static_cast<unsigned long long>(results[2].chain_forwards));
  return 0;
}
