// Ingest-pipeline bench: overwrite throughput via the classic client
// fanout vs server-driven chain replication at rf 1/2/3, and replicated
// vs EC(4,2) parity-delta overwrites.
//
// Six pipe-transport servers host a synthetic combustion series.  For
// each replication factor we ingest, open a file, and overwrite the whole
// dataset twice: once with the client fanning every replica out itself,
// once with one copy per block sent to its primary and the chain moving
// the rest server-to-server.  The EC section overwrites a (4,2) dataset
// through parity-delta writes (client ships each block once; m GF deltas
// move server-to-server) and reports the parity-delta kernel ops.
//
// A final section sweeps concurrent writer connections against a real TCP
// deployment, reactor front door vs the thread-per-connection baseline:
// each writer chain-replicates its own slice, and the aggregate write
// throughput per connection count shows where each front door knees over.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"ingest","rf1_fanout_mbps":...,"rf1_chain_mbps":...,
//    "rf2_fanout_mbps":...,"rf2_chain_mbps":...,
//    "rf3_fanout_mbps":...,"rf3_chain_mbps":...,
//    "ec42_chain_mbps":...,"ec42_parity_deltas":...,
//    "rf2_chain_forwards":...,
//    "sweep_reactor_w<N>_mbps":...,"sweep_reactor_w<N>_p50_ms":...,
//    "sweep_reactor_w<N>_p95_ms":...,"sweep_reactor_w<N>_p99_ms":...,
//    "sweep_threads_w<N>_mbps":... (same p50/p95/p99 trio)}
// Per-write latency percentiles come from an obs::Histogram shared by the
// driver threads -- mean throughput alone hides the chain's tail.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"
#include "obs/metrics.h"

using namespace visapult;

namespace {

double mbps(double bytes, double seconds) {
  return seconds > 0 ? bytes / seconds / 1e6 : 0.0;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return out;
}

struct OverwriteResult {
  double fanout_mbps = 0.0;
  double chain_mbps = 0.0;
  std::uint64_t chain_forwards = 0;
};

double timed_overwrite(dpss::DpssFile& file,
                       const std::vector<std::uint8_t>& bytes) {
  if (file.lseek(0) != 0) return 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  if (!file.write(bytes.data(), bytes.size()).is_ok()) return 0.0;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return mbps(static_cast<double>(bytes.size()), secs);
}

OverwriteResult run_rf(const vol::DatasetDesc& dataset, std::uint32_t rf) {
  OverwriteResult out;
  dpss::PipeDeployment deployment(6);
  if (!deployment.ingest(dataset, dpss::kDefaultBlockBytes, 1, rf).is_ok()) {
    std::fprintf(stderr, "ingest failed (rf=%u)\n", rf);
    return out;
  }
  auto client = deployment.make_client();
  auto file = client.open(dataset.name);
  if (!file.is_ok()) return out;

  const auto fanout_bytes = pattern_bytes(dataset.total_bytes(), 1);
  file.value()->set_write_mode(dpss::DpssFile::WriteMode::kClientFanout);
  out.fanout_mbps = timed_overwrite(*file.value(), fanout_bytes);

  const auto chain_bytes = pattern_bytes(dataset.total_bytes(), 2);
  file.value()->set_write_mode(dpss::DpssFile::WriteMode::kServerChain);
  out.chain_mbps = timed_overwrite(*file.value(), chain_bytes);
  for (int s = 0; s < deployment.server_count(); ++s) {
    out.chain_forwards += deployment.server(s).chain_forwards();
  }
  return out;
}

// ---- writer-connections sweep (reactor vs thread-per-conn) ----

constexpr int kWriterCounts[] = {16, 64, 256};
constexpr int kWriterDrivers = 8;
constexpr int kWriteRounds = 4;
constexpr std::size_t kSliceBytes = 8192;

struct WriterPoint {
  int conns = 0;
  double aggregate_mbps = 0.0;
  int write_errors = 0;
  // Per-write (lseek+write of one slice) latency tail in milliseconds.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

WriterPoint run_writer_point(dpss::ServeMode mode,
                             const vol::DatasetDesc& dataset, int conns) {
  WriterPoint out;
  out.conns = conns;

  dpss::TcpDeploymentOptions options;
  options.serve_mode = mode;
  options.worker_threads = 8;
  dpss::TcpDeployment deployment(4, dpss::DiskModel{}, /*throttle=*/false,
                                 dpss::ServerCacheConfig{}, options);
  if (!deployment.start().is_ok()) return out;
  // Block size == slice size: every writer owns whole blocks, so the
  // sweep measures the front door, not generation races on shared blocks.
  if (!deployment.ingest(dataset, kSliceBytes, 1, 2).is_ok()) {
    return out;
  }

  struct Writer {
    dpss::DpssClient client;
    std::unique_ptr<dpss::DpssFile> file;
  };
  std::vector<std::unique_ptr<Writer>> writers(
      static_cast<std::size_t>(conns));
  std::atomic<int> errors{0};
  {
    std::vector<std::thread> drivers;
    for (int d = 0; d < kWriterDrivers; ++d) {
      drivers.emplace_back([&, d] {
        for (int i = d; i < conns; i += kWriterDrivers) {
          auto client = deployment.make_client();
          if (!client.is_ok()) {
            errors.fetch_add(1);
            continue;
          }
          auto file = client.value().open(dataset.name);
          if (!file.is_ok()) {
            errors.fetch_add(1);
            continue;
          }
          file.value()->set_write_mode(dpss::DpssFile::WriteMode::kServerChain);
          writers[static_cast<std::size_t>(i)] = std::unique_ptr<Writer>(
              new Writer{std::move(client).take(), std::move(file).take()});
        }
      });
    }
    for (auto& t : drivers) t.join();
  }

  // Every writer chain-replicates its own slice of the file, repeatedly.
  obs::Histogram latency;  // sharded: all drivers observe concurrently
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> drivers;
    for (int d = 0; d < kWriterDrivers; ++d) {
      drivers.emplace_back([&, d] {
        for (int i = d; i < conns; i += kWriterDrivers) {
          if (!writers[static_cast<std::size_t>(i)]) continue;
          auto& file = *writers[static_cast<std::size_t>(i)]->file;
          const std::uint64_t offset =
              static_cast<std::uint64_t>(i) * kSliceBytes %
              (dataset.total_bytes() - kSliceBytes);
          const auto bytes = pattern_bytes(
              kSliceBytes, static_cast<std::uint8_t>(i));
          for (int r = 0; r < kWriteRounds; ++r) {
            const auto w0 = std::chrono::steady_clock::now();
            if (file.lseek(static_cast<std::int64_t>(offset)) < 0 ||
                !file.write(bytes.data(), bytes.size()).is_ok()) {
              errors.fetch_add(1);
              break;
            }
            latency.observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - w0)
                                .count());
          }
        }
      });
    }
    for (auto& t : drivers) t.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  out.write_errors = errors.load();
  out.aggregate_mbps = mbps(
      static_cast<double>(conns - errors.load()) * kWriteRounds * kSliceBytes,
      secs);
  const auto snap = latency.snapshot();
  out.p50_ms = snap.p50() * 1e3;
  out.p95_ms = snap.p95() * 1e3;
  out.p99_ms = snap.p99() * 1e3;
  writers.clear();
  deployment.stop();
  return out;
}

}  // namespace

int main() {
  const auto dataset = vol::DatasetDesc{"ingest-bench", {96, 64, 64}, 2,
                                        vol::Generator::kCombustion, 7};
  std::printf("bench_ingest: %s x%d (%s), 6 pipe servers\n\n",
              dataset.dims.to_string().c_str(), dataset.timesteps,
              core::format_bytes(static_cast<double>(dataset.total_bytes()))
                  .c_str());

  core::TableWriter table({"mode", "fanout MB/s", "chain MB/s",
                           "chain forwards"});
  OverwriteResult results[4];
  for (std::uint32_t rf = 1; rf <= 3; ++rf) {
    results[rf] = run_rf(dataset, rf);
    table.add_row({"rf=" + std::to_string(rf),
                   core::fmt_double(results[rf].fanout_mbps, 1),
                   core::fmt_double(results[rf].chain_mbps, 1),
                   std::to_string(results[rf].chain_forwards)});
  }

  // EC(4,2): writable only through the parity-delta pipeline.
  double ec_mbps = 0.0;
  std::uint64_t ec_deltas = 0;
  {
    dpss::PipeDeployment deployment(6);
    if (deployment
            .ingest(dataset, dpss::kDefaultBlockBytes, 1, 1,
                    codec::EcProfile{4, 2})
            .is_ok()) {
      auto client = deployment.make_client();
      auto file = client.open(dataset.name);
      if (file.is_ok()) {
        const auto bytes = pattern_bytes(dataset.total_bytes(), 3);
        ec_mbps = timed_overwrite(*file.value(), bytes);
        for (int s = 0; s < deployment.server_count(); ++s) {
          ec_deltas += deployment.server(s).parity_deltas_applied();
        }
      }
    }
    table.add_row({"EC(4,2)", "n/a", core::fmt_double(ec_mbps, 1),
                   std::to_string(ec_deltas) + " deltas"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Writer fan-in sweep over real TCP: 4 servers, rf=2 chain writes.
  std::printf("writer sweep: 4 TCP servers, rf=2 chain, %d x %zu B/conn\n",
              kWriteRounds, kSliceBytes);
  core::TableWriter sweep_table(
      {"writers", "reactor MB/s", "reactor p50/p95/p99 ms", "reactor errors",
       "threads MB/s", "threads p50/p95/p99 ms", "threads errors"});
  auto fmt_tail = [](const WriterPoint& p) {
    return core::fmt_double(p.p50_ms, 2) + "/" + core::fmt_double(p.p95_ms, 2) +
           "/" + core::fmt_double(p.p99_ms, 2);
  };
  std::vector<WriterPoint> reactor_pts, thread_pts;
  for (int conns : kWriterCounts) {
    reactor_pts.push_back(
        run_writer_point(dpss::ServeMode::kReactor, dataset, conns));
    thread_pts.push_back(run_writer_point(
        dpss::ServeMode::kThreadPerConnection, dataset, conns));
    sweep_table.add_row(
        {std::to_string(conns),
         core::fmt_double(reactor_pts.back().aggregate_mbps, 1),
         fmt_tail(reactor_pts.back()),
         std::to_string(reactor_pts.back().write_errors),
         core::fmt_double(thread_pts.back().aggregate_mbps, 1),
         fmt_tail(thread_pts.back()),
         std::to_string(thread_pts.back().write_errors)});
  }
  std::printf("%s\n", sweep_table.to_string().c_str());

  bench::Summary summary("ingest");
  summary.metric("rf1_fanout_mbps", results[1].fanout_mbps)
      .metric("rf1_chain_mbps", results[1].chain_mbps)
      .metric("rf2_fanout_mbps", results[2].fanout_mbps)
      .metric("rf2_chain_mbps", results[2].chain_mbps)
      .metric("rf3_fanout_mbps", results[3].fanout_mbps)
      .metric("rf3_chain_mbps", results[3].chain_mbps)
      .metric("ec42_chain_mbps", ec_mbps)
      .metric("ec42_parity_deltas", static_cast<double>(ec_deltas))
      .metric("rf2_chain_forwards",
              static_cast<double>(results[2].chain_forwards));
  for (std::size_t i = 0; i < reactor_pts.size(); ++i) {
    const std::string w = std::to_string(reactor_pts[i].conns);
    summary.metric("sweep_reactor_w" + w + "_mbps",
                   reactor_pts[i].aggregate_mbps)
        .metric("sweep_threads_w" + w + "_mbps", thread_pts[i].aggregate_mbps)
        .metric("sweep_reactor_w" + w + "_p50_ms", reactor_pts[i].p50_ms)
        .metric("sweep_reactor_w" + w + "_p95_ms", reactor_pts[i].p95_ms)
        .metric("sweep_reactor_w" + w + "_p99_ms", reactor_pts[i].p99_ms)
        .metric("sweep_threads_w" + w + "_p50_ms", thread_pts[i].p50_ms)
        .metric("sweep_threads_w" + w + "_p95_ms", thread_pts[i].p95_ms)
        .metric("sweep_threads_w" + w + "_p99_ms", thread_pts[i].p99_ms);
  }
  return summary.write();
}
