// Back-of-envelope tables the paper derives around its design:
//
//   * Footnote 3: render-remote needs 960 Mbps for 1K x 1K RGBA @ 30 fps.
//   * Footnote 5: viewer data is O(n^2) of the O(n^3) source.
//   * Section 5: moving the 41.4 GB, 265-step dataset takes ~8 min over
//     NTON (a new timestep every 3 s) and ~44 min over ESnet (every 10 s);
//     the 5-steps/s target needs ~15x the OC-12 -- "approximately a
//     dedicated OC192 link".
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "netsim/network.h"
#include "sim/campaign.h"
#include "vol/dataset.h"

using namespace visapult;

int main() {
  std::printf("=== Pipeline bandwidth arithmetic (footnotes 3/5, section 5) ===\n\n");

  bench::Summary summary("pipeline_models");

  // Footnote 3.
  {
    const double bps = 1000.0 * 1000 * 4 * 30;  // 1K x 1K RGBA @ 30 fps
    core::TableWriter t({"render-remote requirement", "value"});
    t.add_row({"1Kx1K RGBA @ 30 fps",
               core::fmt_double(core::mbps_from_bytes_per_sec(bps), 0) + " Mbps (paper: 960)"});
    std::printf("%s\n", t.to_string().c_str());
    summary.metric("render_remote_mbps", core::mbps_from_bytes_per_sec(bps));
  }

  // Footnote 5: O(n^2) vs O(n^3) for the paper's dataset.
  {
    const auto ds = vol::paper_combustion_dataset();
    const double heavy = sim::default_heavy_payload_bytes(ds);
    core::TableWriter t({"per-frame data", "bytes", "ratio"});
    t.add_row({"raw volume O(n^3)", core::format_bytes(static_cast<double>(ds.bytes_per_step())),
               "1"});
    t.add_row({"viewer textures O(n^2)", core::format_bytes(heavy),
               core::fmt_double(static_cast<double>(ds.bytes_per_step()) / heavy, 0) + "x smaller"});
    std::printf("%s\n", t.to_string().c_str());
  }

  // Section 5 transfer-time table, computed from the netsim link models
  // (available capacity after protocol overhead / sharing).
  {
    const auto ds = vol::paper_combustion_dataset();
    const double total = static_cast<double>(ds.total_bytes());
    const double per_step = static_cast<double>(ds.bytes_per_step());

    struct Net {
      const char* name;
      double mbps_available;
      const char* paper_total;
      const char* paper_step;
    };
    const Net nets[] = {
        {"NTON (OC-12, ~70% goodput)", 622.08 * 0.75, "~8 min", "3 s"},
        {"ESnet (shared)", 130.0, "~44 min", "10 s"},
    };
    core::TableWriter t({"network", "timestep (s)", "paper", "full 41.4 GB",
                         "paper total"});
    const char* net_keys[] = {"nton", "esnet"};
    int net_index = 0;
    for (const auto& n : nets) {
      const double bps = core::bytes_per_sec_from_mbps(n.mbps_available);
      t.add_row({n.name, core::fmt_double(per_step / bps, 1), n.paper_step,
                 core::format_seconds(total / bps), n.paper_total});
      summary.metric(std::string(net_keys[net_index++]) + "_step_s",
                     per_step / bps);
    }
    std::printf("Dataset transfer times (section 5):\n%s\n", t.to_string().c_str());

    // The QoS argument: bandwidth needed for 5 timesteps per second.
    const double target_bps = per_step * 5.0;
    const double oc12_multiple =
        core::mbps_from_bytes_per_sec(target_bps) / core::kOC12Mbps;
    core::TableWriter q({"target", "required", "vs OC-12", "paper"});
    q.add_row({"5 timesteps/s",
               core::format_rate(target_bps),
               core::fmt_double(oc12_multiple, 1) + "x",
               "~15x OC-12 => dedicated OC-192"});
    std::printf("%s\n", q.to_string().c_str());
    summary.metric("oc12_multiple_for_5fps", oc12_multiple);
  }
  return summary.write();
}
