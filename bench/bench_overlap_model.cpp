// Section 4.3: the overlapped-pipeline timing model.
//
//   Ts = N (L + R)            serial
//   To = N max(L,R) + min(L,R)  overlapped
//
// With L ~= R the speedup approaches 2N/(N+1) ~ 2x.  As |L - R| grows the
// benefit shrinks toward 1x.  This bench sweeps the L/R ratio and the
// timestep count, comparing the measured virtual-time campaigns against the
// closed forms -- the ablation DESIGN.md calls out for the overlap design
// choice.
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "netsim/topology.h"
#include "sim/campaign.h"

using namespace visapult;

int main() {
  std::printf("=== Section 4.3: overlapped I/O + rendering model ===\n\n");

  bench::Summary summary("overlap_model");

  // Closed-form sweep over the L/R ratio at N = 10.
  {
    core::TableWriter table({"L/R ratio", "Ts (s)", "To (s)", "speedup",
                             "2N/(N+1) cap"});
    const int n = 10;
    const double r = 10.0;
    for (double ratio : {0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0}) {
      const double l = r * ratio;
      const double ts = sim::serial_time_model(n, l, r);
      const double to = sim::overlapped_time_model(n, l, r);
      table.add_row({core::fmt_double(ratio, 2), core::fmt_double(ts, 1),
                     core::fmt_double(to, 1), core::fmt_double(ts / to, 3),
                     core::fmt_double(2.0 * n / (n + 1), 3)});
      if (ratio == 1.0) {
        summary.metric("closed_form_speedup_ratio1", ts / to)
            .metric("closed_form_cap", 2.0 * n / (n + 1));
      }
    }
    std::printf("Closed forms (N = 10, R = 10 s):\n%s\n", table.to_string().c_str());
  }

  // Measured: replay the E4500/LAN campaign at several timestep counts and
  // compare against the model evaluated at the measured L and R.
  {
    core::TableWriter table({"N steps", "measured Ts", "model Ts",
                             "measured To", "model To", "speedup"});
    for (int n : {2, 5, 10, 20}) {
      sim::CampaignConfig cfg;
      cfg.dataset = vol::paper_combustion_dataset();
      cfg.timesteps = n;
      cfg.platform = sim::e4500_platform(8);

      cfg.overlapped = false;
      auto serial = sim::run_campaign(netsim::make_lan_gige(), cfg);
      cfg.overlapped = true;
      auto overlapped = sim::run_campaign(netsim::make_lan_gige(), cfg);

      const double l = serial.load_seconds.mean();
      const double r = serial.render_seconds.mean();
      table.add_row({std::to_string(n),
                     core::fmt_double(serial.total_seconds, 1),
                     core::fmt_double(sim::serial_time_model(n, l, r), 1),
                     core::fmt_double(overlapped.total_seconds, 1),
                     core::fmt_double(sim::overlapped_time_model(n, l, r), 1),
                     core::fmt_double(serial.total_seconds /
                                          overlapped.total_seconds, 2)});
      if (n == 10) {
        summary
            .metric("measured_speedup_n10",
                    serial.total_seconds / overlapped.total_seconds)
            .metric("measured_serial_n10_s", serial.total_seconds)
            .metric("measured_overlapped_n10_s", overlapped.total_seconds);
      }
    }
    std::printf("Measured campaigns vs model (E4500 / gigabit LAN):\n%s\n",
                table.to_string().c_str());
  }
  return summary.write();
}
