// Codec bench: raw Reed-Solomon encode/decode rates, plus the redundancy
// trade-off the EC mode exists for -- healthy and degraded read throughput
// of rf=2 replication (2.0x capacity, tolerates one dead server) against
// (4,2) erasure coding (1.5x capacity, tolerates two) on the same
// six-server pipe farm.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"codec","enc_2_1_gbps":...,"dec_2_1_gbps":...,
//    "enc_4_2_gbps":...,"dec_4_2_gbps":...,"enc_8_3_gbps":...,
//    "dec_8_3_gbps":...,"rf2_capacity":...,"ec42_capacity":...,
//    "rf2_healthy_mbps":...,"rf2_degraded_mbps":...,
//    "ec42_healthy_mbps":...,"ec42_degraded_mbps":...,
//    "ec42_degraded2_mbps":...,"ec42_reconstructed_reads":...}
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "codec/reed_solomon.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/units.h"
#include "dpss/deployment.h"

using namespace visapult;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CodecRate {
  double encode_gbps = 0.0;
  double decode_gbps = 0.0;
};

// Encode/decode rate over 64 KB slices, measured on data bytes processed.
CodecRate measure_codec(std::uint32_t k, std::uint32_t m) {
  const std::size_t n = 64 * 1024;
  const int reps = 64;
  core::Rng rng(42);
  const codec::ReedSolomon rs(k, m);

  std::vector<std::vector<std::uint8_t>> data(k);
  std::vector<const std::uint8_t*> ptrs(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    data[i].resize(n);
    for (auto& b : data[i]) b = static_cast<std::uint8_t>(rng.next_below(256));
    ptrs[i] = data[i].data();
  }

  CodecRate out;
  std::vector<std::vector<std::uint8_t>> parity;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) rs.encode(ptrs, n, &parity);
  out.encode_gbps =
      static_cast<double>(n) * k * reps / seconds_since(t0) / 1e9;

  // Worst-case decode: the first m slices (all data for m <= k) erased.
  // Working sets are built OUTSIDE the timing window so decode_gbps
  // measures the RS math, not memcpy -- the figure calibrates the
  // campaign model's ec_decode_bytes_per_sec.
  std::vector<std::vector<std::uint8_t>> stored = data;
  for (auto& p : parity) stored.push_back(p);
  std::vector<std::vector<std::vector<std::uint8_t>>> work(
      static_cast<std::size_t>(reps));
  std::vector<char> present(k + m, 1);
  for (std::uint32_t s = 0; s < m; ++s) present[s] = 0;
  for (auto& shards : work) {
    shards = stored;
    for (std::uint32_t s = 0; s < m; ++s) shards[s].clear();
  }
  t0 = std::chrono::steady_clock::now();
  for (auto& shards : work) {
    if (!rs.reconstruct(shards, present, n).is_ok()) {
      std::fprintf(stderr, "decode failed (%u,%u)\n", k, m);
      return out;
    }
  }
  out.decode_gbps =
      static_cast<double>(n) * k * reps / seconds_since(t0) / 1e9;
  return out;
}

struct FarmResult {
  double capacity_ratio = 0.0;
  double healthy_mbps = 0.0;
  double degraded_mbps = 0.0;    // one server killed
  double degraded2_mbps = 0.0;   // two servers killed (EC only survives)
  std::uint64_t reconstructed_reads = 0;
};

double scan_mbps(dpss::PipeDeployment& deployment, const vol::DatasetDesc& desc,
                 std::uint64_t* reconstructed) {
  auto client = deployment.make_client();
  auto file = client.open(desc.name);
  if (!file.is_ok()) return 0.0;
  std::vector<std::uint8_t> buf(desc.total_bytes());
  const auto t0 = std::chrono::steady_clock::now();
  auto n = file.value()->read(buf.data(), buf.size());
  const double secs = seconds_since(t0);
  if (!n.is_ok() || n.value() != buf.size()) return 0.0;
  if (reconstructed) *reconstructed = file.value()->reconstructed_reads();
  return static_cast<double>(buf.size()) / secs / 1e6;
}

FarmResult run_farm(const vol::DatasetDesc& desc, std::uint32_t rf,
                    const codec::EcProfile& ec) {
  FarmResult out;
  dpss::PipeDeployment deployment(6);
  if (!deployment.ingest(desc, dpss::kDefaultBlockBytes, 1, rf, ec).is_ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return out;
  }
  std::size_t stored = 0;
  for (int i = 0; i < deployment.server_count(); ++i) {
    stored += deployment.server(i).total_bytes();
  }
  out.capacity_ratio =
      static_cast<double>(stored) / static_cast<double>(desc.total_bytes());

  out.healthy_mbps = scan_mbps(deployment, desc, nullptr);
  deployment.kill_server(0);
  out.degraded_mbps = scan_mbps(deployment, desc, &out.reconstructed_reads);
  if (ec.enabled() && ec.parity_slices >= 2) {
    deployment.kill_server(1);
    std::uint64_t recon2 = 0;
    out.degraded2_mbps = scan_mbps(deployment, desc, &recon2);
    out.reconstructed_reads += recon2;
  }
  return out;
}

}  // namespace

int main() {
  const auto dataset = vol::DatasetDesc{"codec-bench", {96, 64, 64}, 2,
                                        vol::Generator::kCombustion, 7};
  std::printf("bench_codec: GF(2^8) Reed-Solomon + redundancy modes on a "
              "6-server pipe farm (%s)\n\n",
              core::format_bytes(static_cast<double>(dataset.total_bytes()))
                  .c_str());

  core::TableWriter codec_table({"(k,m)", "encode GB/s", "decode GB/s"});
  CodecRate rates[3];
  const std::pair<std::uint32_t, std::uint32_t> profiles[3] = {
      {2, 1}, {4, 2}, {8, 3}};
  for (int i = 0; i < 3; ++i) {
    rates[i] = measure_codec(profiles[i].first, profiles[i].second);
    codec_table.add_row(
        {"(" + std::to_string(profiles[i].first) + "," +
             std::to_string(profiles[i].second) + ")",
         core::fmt_double(rates[i].encode_gbps, 2),
         core::fmt_double(rates[i].decode_gbps, 2)});
  }
  std::printf("%s\n", codec_table.to_string().c_str());

  const FarmResult rf2 = run_farm(dataset, 2, {});
  const FarmResult ec42 = run_farm(dataset, 1, codec::EcProfile{4, 2});

  core::TableWriter farm_table({"mode", "capacity", "healthy MB/s",
                                "1 dead MB/s", "2 dead MB/s",
                                "reconstructed"});
  farm_table.add_row({"rf=2", core::fmt_double(rf2.capacity_ratio, 2) + "x",
                      core::fmt_double(rf2.healthy_mbps, 1),
                      core::fmt_double(rf2.degraded_mbps, 1), "lost",
                      "0"});
  farm_table.add_row({"(4,2)", core::fmt_double(ec42.capacity_ratio, 2) + "x",
                      core::fmt_double(ec42.healthy_mbps, 1),
                      core::fmt_double(ec42.degraded_mbps, 1),
                      core::fmt_double(ec42.degraded2_mbps, 1),
                      std::to_string(ec42.reconstructed_reads)});
  std::printf("%s\n", farm_table.to_string().c_str());

  return bench::Summary("codec")
      .metric("enc_2_1_gbps", rates[0].encode_gbps)
      .metric("dec_2_1_gbps", rates[0].decode_gbps)
      .metric("enc_4_2_gbps", rates[1].encode_gbps)
      .metric("dec_4_2_gbps", rates[1].decode_gbps)
      .metric("enc_8_3_gbps", rates[2].encode_gbps)
      .metric("dec_8_3_gbps", rates[2].decode_gbps)
      .metric("rf2_capacity", rf2.capacity_ratio)
      .metric("ec42_capacity", ec42.capacity_ratio)
      .metric("rf2_healthy_mbps", rf2.healthy_mbps)
      .metric("rf2_degraded_mbps", rf2.degraded_mbps)
      .metric("ec42_healthy_mbps", ec42.healthy_mbps)
      .metric("ec42_degraded_mbps", ec42.degraded_mbps)
      .metric("ec42_degraded2_mbps", ec42.degraded2_mbps)
      .metric("ec42_reconstructed_reads",
              static_cast<double>(ec42.reconstructed_reads))
      .write();
}
