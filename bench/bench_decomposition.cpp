// Figure 4 / section 3.2: the decomposition and algorithm-taxonomy bench.
//
// Measures, on a real render of a combustion volume:
//   * object-order slab rendering: per-processor balance and compositing
//     cost, per decomposition axis,
//   * image-order rendering: per-processor balance vs view axis (the
//     paper: "there may be some processors with little or no work" and the
//     performance "is more sensitive to view orientation"),
//   * the I/O access pattern cost of each decomposition (byte ranges per
//     brick -- why Visapult prefers slabs that are contiguous on disk).
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/thread_pool.h"
#include "render/parallel.h"
#include "vol/generate.h"

using namespace visapult;

int main() {
  std::printf("=== Figure 4 / section 3.2: decomposition taxonomy ===\n\n");

  const vol::Dims dims{96, 64, 48};
  const vol::Volume volume = vol::generate_combustion(dims, 2);
  const render::TransferFunction tf = render::TransferFunction::fire();
  core::ThreadPool pool(8);
  render::RenderOptions opts;
  opts.step = 1.0f;

  bench::Summary summary("decomposition");

  // Object order, per axis.
  {
    core::TableWriter t({"axis", "render max/mean (balance)",
                         "composite (ms)", "ranges/brick (I/O)"});
    for (vol::Axis axis : {vol::Axis::kX, vol::Axis::kY, vol::Axis::kZ}) {
      auto bricks = vol::slab_decompose(dims, 8, axis);
      auto report = render_object_order(volume, bricks.value(), axis, tf, pool, opts);
      if (!report.is_ok()) continue;
      core::RunningStat times;
      for (double s : report.value().per_processor_seconds) times.add(s);
      const auto ranges =
          vol::brick_byte_ranges(dims, bricks.value()[0]).size();
      const double balance = times.max() / std::max(times.mean(), 1e-12);
      t.add_row({vol::axis_name(axis),
                 core::fmt_double(balance, 2),
                 core::fmt_double(report.value().composite_seconds * 1e3, 2),
                 std::to_string(ranges)});
      summary
          .metric(std::string("object_order_") + vol::axis_name(axis) +
                      "_balance",
                  balance)
          .metric(std::string("object_order_") + vol::axis_name(axis) +
                      "_composite_ms",
                  report.value().composite_seconds * 1e3);
    }
    std::printf("Object-order slab rendering (8 processors):\n%s\n",
                t.to_string().c_str());
  }

  // Image order: balance across tiles.
  {
    core::TableWriter t({"tiles", "render max/mean (balance)",
                         "data fraction/processor"});
    for (int tiles : {2, 4, 8}) {
      auto report = render_image_order(volume, tiles, vol::Axis::kZ, tf, pool, opts);
      if (!report.is_ok()) continue;
      core::RunningStat times;
      for (double s : report.value().per_processor_seconds) times.add(s);
      const double balance = times.max() / std::max(times.mean(), 1e-12);
      t.add_row({std::to_string(tiles),
                 core::fmt_double(balance, 2),
                 core::fmt_double(report.value().mean_data_fraction, 3)});
      summary.metric("image_order_" + std::to_string(tiles) + "_balance",
                     balance);
    }
    std::printf("Image-order rendering:\n%s\n", t.to_string().c_str());
  }

  // Decomposition shapes: balance + I/O pattern.
  {
    core::TableWriter t({"decomposition", "bricks", "imbalance",
                         "byte ranges/brick"});
    auto add = [&](const char* name,
                   const core::Result<std::vector<vol::Brick>>& bricks) {
      if (!bricks.is_ok()) return;
      std::size_t worst_ranges = 0;
      for (const auto& b : bricks.value()) {
        worst_ranges = std::max(worst_ranges,
                                vol::brick_byte_ranges(dims, b).size());
      }
      const double imbalance =
          vol::decomposition_imbalance(bricks.value());
      t.add_row({name, std::to_string(bricks.value().size()),
                 core::fmt_double(imbalance, 3),
                 std::to_string(worst_ranges)});
      std::string key = name;
      for (char& c : key) {
        if (c == ' ') c = '_';
      }
      summary.metric(key + "_imbalance", imbalance)
          .metric(key + "_ranges_per_brick",
                  static_cast<double>(worst_ranges));
    };
    add("slab Z x8", vol::slab_decompose(dims, 8, vol::Axis::kZ));
    add("slab X x8", vol::slab_decompose(dims, 8, vol::Axis::kX));
    add("shaft Z 4x2", vol::shaft_decompose(dims, 4, 2, vol::Axis::kZ));
    add("block 2x2x2", vol::block_decompose(dims, 2, 2, 2));
    std::printf("Decomposition shapes (Fig. 4):\n%s\n", t.to_string().c_str());
  }
  return summary.write();
}
