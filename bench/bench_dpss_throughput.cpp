// Section 2 / 3.5: DPSS performance claims.
//
// Paper numbers to reproduce (shape):
//   * "Current performance results are 980 Mbps across a LAN and 570 Mbps
//     across a WAN."
//   * "A four-server DPSS ... can thus deliver throughput of over 150
//     megabytes per second by providing parallel access to 15-20 disks."
//   * client throughput scales with the number of servers ("the speed of
//     the client scales with the speed of the server").
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "core/units.h"
#include "dpss/server.h"
#include "netsim/network.h"
#include "netsim/topology.h"

using namespace visapult;

namespace {

// Aggregate throughput of a DPSS with `servers` block servers feeding one
// client over `testbed_mbps` WAN/LAN capacity: the disk farm and the
// network in series, with one parallel stream per server.
double dpss_throughput(int servers, const dpss::DiskModel& disk,
                       double link_mbps, double latency_s,
                       double window_bytes) {
  netsim::Network net;
  const auto farm = net.add_node("disk-farm");
  const auto dpss_host = net.add_node("dpss");
  const auto client = net.add_node("client");

  netsim::LinkConfig disks;
  disks.name = "disks";
  disks.bandwidth_bytes_per_sec =
      disk.streaming_bytes_per_sec(64 * 1024) * servers;
  disks.latency_sec = disk.seek_seconds;
  net.add_link(farm, dpss_host, disks);

  netsim::LinkConfig wan;
  wan.name = "wan";
  wan.bandwidth_bytes_per_sec = core::bytes_per_sec_from_mbps(link_mbps);
  wan.latency_sec = latency_s;
  net.add_link(dpss_host, client, wan);

  const double bytes = 256.0 * 1024 * 1024;
  netsim::TcpParams tcp;
  tcp.max_window_bytes = window_bytes;
  int remaining = servers;
  double done_at = 0.0;
  for (int s = 0; s < servers; ++s) {
    (void)net.start_flow(farm, client, bytes / servers, tcp, [&] {
      if (--remaining == 0) done_at = net.now();
    });
  }
  net.run();
  return done_at > 0 ? bytes / done_at : 0.0;
}

}  // namespace

int main() {
  std::printf("=== DPSS throughput (sections 2 and 3.5) ===\n\n");

  // The mid-2000 "$15K, 1 TB, 4 server" configuration: "15-20 disks"
  // across four servers (5 each), ~20 MB/s media rate per spindle.
  dpss::DiskModel disk2000;
  disk2000.disks = 5;
  disk2000.seek_seconds = 0.005;
  disk2000.disk_bytes_per_sec = 20e6;

  const double lan = dpss_throughput(4, disk2000, 1000.0, 0.1e-3, 4e6);
  const double wan = dpss_throughput(4, disk2000, 622.08, 14e-3, 700.0 * 1024);
  // Aggregate disk-farm rate (the ">150 MB/s from 15-20 disks" claim).
  const double farm_mb_s =
      disk2000.streaming_bytes_per_sec(64 * 1024) * 4 / 1e6;

  core::TableWriter table({"metric", "paper", "measured"});
  table.add_row({"LAN throughput (Mbps)", "980",
                 core::fmt_double(core::mbps_from_bytes_per_sec(lan), 0)});
  table.add_row({"WAN throughput (Mbps)", "570",
                 core::fmt_double(core::mbps_from_bytes_per_sec(wan), 0)});
  table.add_row({"4-server disk farm (MB/s)", ">150",
                 core::fmt_double(farm_mb_s, 0)});
  std::printf("%s\n", table.to_string().c_str());

  // Scaling with server count on an uncongested LAN.
  core::TableWriter scaling({"servers", "throughput (Mbps)", "scaling"});
  double base = 0.0;
  double scale8 = 0.0;
  for (int s : {1, 2, 4, 8}) {
    const double bps = dpss_throughput(s, disk2000, 10000.0, 0.1e-3, 4e6);
    if (s == 1) base = bps;
    if (s == 8) scale8 = bps / base;
    scaling.add_row({std::to_string(s),
                     core::fmt_double(core::mbps_from_bytes_per_sec(bps), 0),
                     core::fmt_double(bps / base, 2)});
  }
  std::printf("Throughput scaling with server count (LAN, disk-bound):\n%s\n",
              scaling.to_string().c_str());

  // Block-size sweep: seek amortisation.
  core::TableWriter blocks({"block size (KB)", "per-server streaming (MB/s)"});
  for (int kb : {4, 16, 64, 256, 1024}) {
    blocks.add_row({std::to_string(kb),
                    core::fmt_double(disk2000.streaming_bytes_per_sec(
                                         static_cast<std::size_t>(kb) * 1024) / 1e6, 1)});
  }
  std::printf("Disk-model block-size ablation:\n%s\n", blocks.to_string().c_str());

  return bench::Summary("dpss_throughput")
      .metric("lan_mbps", core::mbps_from_bytes_per_sec(lan))
      .metric("wan_mbps", core::mbps_from_bytes_per_sec(wan))
      .metric("farm_mb_per_sec", farm_mb_s)
      .metric("scaling_8_servers", scale8)
      .write();
}
