// Metadata-plane bench: what sharding and delta opens buy on the catalog
// path (PR 9, the src/meta plane).
//
// Three experiments, one MetaCluster harness:
//   1. Open storm, 1 shard vs 4: eight worker threads share one client
//      (one backend process), and every master link is shaped with a
//      WAN-scale one-way delay, as metadata RPCs in the paper's ESnet
//      deployments are.  The single master is one link, one request in
//      flight -- the classic SPOF serialisation, paying one RTT per open.
//      Four shards mean four links and four opens in flight: the RTTs
//      overlap, which is the whole point of killing the SPOF.
//   2. Delta vs snapshot open latency, single threaded: the first open of
//      a dataset ships the full placement (membership, health, load); a
//      re-open with known_epoch comes back not_modified.
//   3. Re-open storm through a leader kill: warm cache, kill one shard's
//      leader, re-open everything.  Errors must be zero -- followers
//      answer, the client fails over and reports the dead endpoint.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"meta","single_opens_per_sec":...,"sharded_opens_per_sec":...,
//    "shard_speedup":...,"snapshot_p50_ms":... (p95/p99),"delta_p50_ms":...
//    (p95/p99),"storm_opens":...,"storm_errors":...,"storm_failovers":...,
//    "storm_opens_per_sec":...}
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/stats.h"
#include "dpss/client.h"
#include "dpss/meta_cluster.h"
#include "dpss/server.h"
#include "net/shaper.h"
#include "net/stream.h"
#include "obs/metrics.h"

using namespace visapult;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A catalog population heavy enough that the open path does real work:
// wide membership makes every snapshot reply copy the server list plus a
// health/load column per server.
constexpr int kDatasets = 512;
constexpr int kServers = 16;
constexpr int kThreads = 8;

std::string dataset_name(int i) { return "bench-ds-" + std::to_string(i); }

dpss::DatasetLayout bench_layout() {
  dpss::DatasetLayout layout;
  layout.block_bytes = 65536;
  layout.total_bytes = 16 * layout.block_bytes;
  layout.stripe_blocks = 1;
  layout.server_count = kServers;
  return layout;
}

std::vector<dpss::ServerAddress> bench_farm() {
  std::vector<dpss::ServerAddress> servers;
  for (int i = 0; i < kServers; ++i) {
    servers.push_back(dpss::ServerAddress{
        "bench-server-" + std::to_string(i),
        static_cast<std::uint16_t>(9000 + i)});
  }
  return servers;
}

void populate(dpss::MetaCluster& cluster, int datasets) {
  const auto layout = bench_layout();
  const auto farm = bench_farm();
  dpss::PlacementOptions options;
  options.replication_factor = 2;
  for (int i = 0; i < datasets; ++i) {
    auto st = cluster.register_dataset(dataset_name(i), layout, farm, options);
    if (!st.is_ok()) {
      std::fprintf(stderr, "register %s: %s\n", dataset_name(i).c_str(),
                   st.message().c_str());
      std::exit(1);
    }
  }
}

// One-way delay injected on every master link for the WAN storm; the
// data plane and the latency microbenches stay on raw pipes.
constexpr double kWanDelaySec = 1.5e-3;

dpss::Connector master_connector(dpss::MetaCluster& cluster, bool wan) {
  dpss::Connector inner = cluster.connector();
  if (!wan) return inner;
  return [inner](const dpss::ServerAddress& addr)
             -> core::Result<net::StreamPtr> {
    auto stream = inner(addr);
    if (!stream.is_ok()) return stream;
    net::ShaperConfig cfg;
    cfg.latency_sec = kWanDelaySec;
    net::StreamPtr shaped =
        std::make_shared<net::ShapedStream>(std::move(stream).take(), cfg);
    return shaped;
  };
}

std::unique_ptr<dpss::DpssClient> make_client(dpss::MetaCluster& cluster,
                                              bool wan = false) {
  dpss::Connector masters = master_connector(cluster, wan);
  auto stream = masters(cluster.address(0, 0));
  if (!stream.is_ok()) std::exit(1);
  // open() dials every placement server; this bench never reads blocks,
  // so hand out live pipe ends with nobody on the other side.
  dpss::Connector no_data =
      [](const dpss::ServerAddress&) -> core::Result<net::StreamPtr> {
    auto [client_end, server_end] = net::make_pipe();
    (void)server_end;
    return client_end;
  };
  auto client = std::make_unique<dpss::DpssClient>(std::move(stream).take(),
                                                   std::move(no_data));
  client->enable_sharded_meta(cluster.shard_map(), cluster.member_addresses(),
                              std::move(masters));
  return client;
}

// Eight threads share one client and split the dataset space; every open
// is the first for its dataset, so each ships a full snapshot reply.
double storm_opens_per_sec(dpss::DpssClient& client, int datasets) {
  const double t0 = now_seconds();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&client, t, datasets] {
      for (int i = t; i < datasets; i += kThreads) {
        auto file = client.open(dataset_name(i));
        if (!file.is_ok()) std::exit(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  return static_cast<double>(datasets) / (now_seconds() - t0);
}

}  // namespace

int main() {
  // ---- 1. open storm: single master vs four shards ----------------------
  dpss::MetaCluster single(1, 1);
  populate(single, kDatasets);
  auto single_client = make_client(single, /*wan=*/true);
  const double single_ops = storm_opens_per_sec(*single_client, kDatasets);

  dpss::MetaCluster sharded(4, 1);
  populate(sharded, kDatasets);
  auto sharded_client = make_client(sharded, /*wan=*/true);
  const double sharded_ops = storm_opens_per_sec(*sharded_client, kDatasets);
  const double speedup = sharded_ops / single_ops;

  // ---- 2. snapshot vs delta open latency, single threaded ---------------
  obs::Histogram snapshot_ms, delta_ms;
  auto lat_client = make_client(sharded);
  for (int pass = 0; pass < 2; ++pass) {
    obs::Histogram& hist = pass == 0 ? snapshot_ms : delta_ms;
    for (int i = 0; i < kDatasets; ++i) {
      const double t0 = now_seconds();
      auto file = lat_client->open(dataset_name(i));
      if (!file.is_ok()) return 1;
      hist.observe((now_seconds() - t0) * 1e3);
    }
  }
  if (lat_client->snapshot_opens() != static_cast<std::uint64_t>(kDatasets) ||
      lat_client->delta_opens() != static_cast<std::uint64_t>(kDatasets)) {
    std::fprintf(stderr, "latency passes did not split snapshot/delta\n");
    return 1;
  }
  const auto snap = snapshot_ms.snapshot();
  const auto delta = delta_ms.snapshot();

  // ---- 3. re-open storm through a shard-leader kill ----------------------
  constexpr int kStormDatasets = 256;
  dpss::MetaCluster ha(4, 3);
  populate(ha, kStormDatasets);
  auto storm_client = make_client(ha);
  for (int i = 0; i < kStormDatasets; ++i) {
    if (!storm_client->open(dataset_name(i)).is_ok()) return 1;
  }
  ha.kill(0, 0);  // shard 0's leader: ~1/4 of the catalog loses its master
  std::uint64_t storm_errors = 0;
  const double t0 = now_seconds();
  for (int i = 0; i < kStormDatasets; ++i) {
    if (!storm_client->open(dataset_name(i)).is_ok()) ++storm_errors;
  }
  const double storm_ops = static_cast<double>(kStormDatasets) /
                           (now_seconds() - t0);
  const std::uint64_t failovers = storm_client->master_failovers();

  // ---- report ------------------------------------------------------------
  core::TableWriter table({"experiment", "opens/sec", "p50/p95/p99 ms"});
  auto tail = [](const obs::HistogramSnapshot& h) {
    return core::fmt_double(h.p50(), 3) + "/" + core::fmt_double(h.p95(), 3) +
           "/" + core::fmt_double(h.p99(), 3);
  };
  table.add_row({"storm, 1 shard", core::fmt_double(single_ops, 0), "-"});
  table.add_row({"storm, 4 shards", core::fmt_double(sharded_ops, 0),
                 "speedup " + core::fmt_double(speedup, 2) + "x"});
  table.add_row({"open, snapshot path", "-", tail(snap)});
  table.add_row({"open, delta path", "-", tail(delta)});
  table.add_row({"re-open storm after kill", core::fmt_double(storm_ops, 0),
                 std::to_string(storm_errors) + " errors, " +
                     std::to_string(failovers) + " failovers"});
  std::printf("Metadata plane, %d datasets x %d servers, %d threads:\n%s\n",
              kDatasets, kServers, kThreads, table.to_string().c_str());

  return bench::Summary("meta")
      .metric("single_opens_per_sec", single_ops)
      .metric("sharded_opens_per_sec", sharded_ops)
      .metric("shard_speedup", speedup)
      .metric("snapshot_p50_ms", snap.p50())
      .metric("snapshot_p95_ms", snap.p95())
      .metric("snapshot_p99_ms", snap.p99())
      .metric("delta_p50_ms", delta.p50())
      .metric("delta_p95_ms", delta.p95())
      .metric("delta_p99_ms", delta.p99())
      .metric("storm_opens", kStormDatasets)
      .metric("storm_errors", static_cast<double>(storm_errors))
      .metric("storm_failovers", static_cast<double>(failovers))
      .metric("storm_opens_per_sec", storm_ops)
      .write();
}
