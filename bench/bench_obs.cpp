// Observability-plane bench: the analysis pipeline's own overhead.
//
// The collector runs inside the master's tick path, so its costs are paid
// on the control plane of every traced deployment.  This bench measures
// each hop of the pipeline in isolation: lifeline-event -> span extraction
// rate, collector ingest rate (spans/sec into the bounded trace ring,
// clock rebasing included), critical-path attribution latency over an
// assembled fan-out trace, and alert-engine scrape rate against a
// realistic sample set.
//
// The last stdout line is a single machine-readable JSON object (the
// BENCH_* perf-trajectory hook):
//   {"bench":"obs","extract_events_per_sec":...,"ingest_spans_per_sec":...,
//    "critical_path_us":...,"finalize_traces_per_sec":...,
//    "alert_scrape_per_sec":...}
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "netlog/event.h"
#include "netlog/span_extract.h"
#include "obs/alert.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace.h"

using namespace visapult;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One traced request's lifeline: client START/END bracketing `fan` server
// IN/OUT pairs, the wire-format events the extractor sees.
std::vector<netlog::Event> lifeline(std::uint64_t trace, int fan) {
  std::vector<netlog::Event> events;
  const std::string t = obs::trace_hex(trace);
  double clock = static_cast<double>(trace);
  events.push_back({clock, "client", "dpss", netlog::tags::kDpssReadStart, -1,
                    -1, {{"TRACE", t}, {"SPAN", "1"}}});
  for (int s = 0; s < fan; ++s) {
    const std::string span = obs::trace_hex(2 + static_cast<std::uint64_t>(s));
    events.push_back({clock + 0.001, "server-" + std::to_string(s), "dpss",
                      netlog::tags::kDpssServIn, -1, -1,
                      {{"TRACE", t}, {"SPAN", span}}});
    events.push_back({clock + 0.004, "server-" + std::to_string(s), "dpss",
                      netlog::tags::kDpssServOut, -1, -1,
                      {{"TRACE", t},
                       {"SPAN", span},
                       {"QUEUE", "0.001"},
                       {"BYTES", "8192"}}});
  }
  events.push_back({clock + 0.006, "client", "dpss",
                    netlog::tags::kDpssReadEnd, -1, -1,
                    {{"TRACE", t}, {"SPAN", "1"}}});
  return events;
}

// Fixed work at the traced-hop tag density: two nested OBS_STAGE scopes
// around a several-microsecond compute chunk -- the granularity of a real
// stage, which wraps a dispatch + handler hop, not an inner loop.  Each
// chunk is timed individually; appends the per-chunk seconds to `out` so
// the caller can take a median, which sheds preemption spikes and load
// drift that poison aggregate wall-time comparisons on a shared host.
void tagged_chunk_times(int iters, std::vector<double>& out) {
  static double sink = 0.0;
  for (int i = 0; i < iters; ++i) {
    const double t0 = now_seconds();
    {
      OBS_STAGE("bench.outer");
      {
        OBS_STAGE("bench.inner");
        for (int j = 0; j < 2048; ++j) {
          sink += std::sqrt(static_cast<double>(i + j + 1));
        }
      }
    }
    out.push_back(now_seconds() - t0);
  }
  // Keep the compiler honest about the chunk's work.
  if (sink < 0.0) std::printf("%f\n", sink);
}

double median_of(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  constexpr int kTraces = 4000;
  constexpr int kFan = 6;

  // ---- extraction ----------------------------------------------------------
  std::vector<std::vector<netlog::Event>> batches;
  batches.reserve(kTraces);
  std::size_t total_events = 0;
  for (int i = 1; i <= kTraces; ++i) {
    batches.push_back(lifeline(static_cast<std::uint64_t>(i), kFan));
    total_events += batches.back().size();
  }
  netlog::SpanExtractor extractor;
  std::vector<obs::SpanRecord> spans;
  spans.reserve(static_cast<std::size_t>(kTraces) * (kFan + 1));
  double t0 = now_seconds();
  for (const auto& batch : batches) extractor.feed(batch, spans);
  const double extract_secs = now_seconds() - t0;
  const double extract_rate = static_cast<double>(total_events) / extract_secs;
  std::printf("extract: %zu events -> %zu spans in %.3f ms (%.0f events/s)\n",
              total_events, spans.size(), extract_secs * 1e3, extract_rate);

  // ---- collector ingest ----------------------------------------------------
  obs::SpanCollector collector(/*capacity=*/kTraces);
  t0 = now_seconds();
  std::uint64_t accepted = 0;
  // Ship per-trace batches like a per-component exporter would, with a
  // fixed simulated clock offset so the rebase path is exercised.
  for (int i = 0; i < kTraces; ++i) {
    const std::size_t per = spans.size() / static_cast<std::size_t>(kTraces);
    const auto* base = spans.data() + static_cast<std::size_t>(i) * per;
    accepted += collector.ingest(
        "host", static_cast<double>(i) + 0.05, static_cast<double>(i),
        std::vector<obs::SpanRecord>(base, base + per));
  }
  const double ingest_secs = now_seconds() - t0;
  const double ingest_rate = static_cast<double>(accepted) / ingest_secs;
  std::printf("ingest: %llu spans in %.3f ms (%.0f spans/s)\n",
              static_cast<unsigned long long>(accepted), ingest_secs * 1e3,
              ingest_rate);

  // ---- critical path -------------------------------------------------------
  obs::TraceTree tree;
  collector.tree(1, &tree);
  t0 = now_seconds();
  constexpr int kAttrReps = 20000;
  double checksum = 0.0;
  for (int i = 0; i < kAttrReps; ++i) {
    checksum += obs::critical_path(tree).total_seconds;
  }
  const double attr_us = (now_seconds() - t0) / kAttrReps * 1e6;
  std::printf("critical_path: %.2f us/trace (%d spans, checksum %.1f)\n",
              attr_us, static_cast<int>(tree.spans.size()), checksum);

  // ---- finalize (histogram + exemplar feed) --------------------------------
  t0 = now_seconds();
  const std::size_t finalized = collector.finalize_all();
  const double fin_secs = now_seconds() - t0;
  const double fin_rate = static_cast<double>(finalized) / fin_secs;
  std::printf("finalize: %zu traces in %.3f ms (%.0f traces/s)\n", finalized,
              fin_secs * 1e3, fin_rate);

  // ---- alert scrape --------------------------------------------------------
  obs::AlertEngine alerts;
  (void)alerts.add_rule("surge: rate(dpss_reads_total) > 100");
  (void)alerts.add_rule("hot_p99: dpss_read_seconds_p99 > 0.25 for 3");
  (void)alerts.add_rule("timeouts: rate(dpss_net_read_timeouts_total) > 0");
  std::vector<obs::Sample> samples;
  for (int i = 0; i < 64; ++i) {
    samples.push_back({"dpss_metric_" + std::to_string(i), "",
                       static_cast<double>(i)});
  }
  samples.push_back({"dpss_reads_total", "", 0.0});
  samples.push_back({"dpss_read_seconds_p99", "", 0.01});
  samples.push_back({"dpss_net_read_timeouts_total", "", 0.0});
  constexpr int kScrapes = 50000;
  t0 = now_seconds();
  for (int i = 0; i < kScrapes; ++i) {
    samples[64].value += 10.0;  // climbing counter
    alerts.scrape(samples, static_cast<double>(i));
  }
  const double scrape_secs = now_seconds() - t0;
  const double scrape_rate = kScrapes / scrape_secs;
  std::printf("alerts: %d scrapes x %zu samples in %.3f ms (%.0f scrapes/s)\n",
              kScrapes, samples.size(), scrape_secs * 1e3, scrape_rate);

  // ---- stage-profiler overhead ---------------------------------------------
  // The same tagged workload with the sampler stopped (tags must cost two
  // relaxed atomic ops) and with it running hot.  The on/off delta is the
  // price of leaving the tags compiled into every traced hop.
  // Interleaved off/on blocks of individually-timed chunks; the medians
  // see the same load profile on both sides and ignore scheduler spikes.
  constexpr int kTagBlock = 200;
  constexpr int kTagBlocks = 100;
  std::vector<double> off_times, on_times, warmup;
  off_times.reserve(kTagBlock * kTagBlocks);
  on_times.reserve(kTagBlock * kTagBlocks);
  tagged_chunk_times(kTagBlock, warmup);  // warm up
  for (int block = 0; block < kTagBlocks; ++block) {
    tagged_chunk_times(kTagBlock, off_times);
    obs::Profiler::global().start(397.0);
    tagged_chunk_times(kTagBlock, on_times);
    obs::Profiler::global().stop();
  }
  const double med_off = median_of(off_times);
  const double med_on = median_of(on_times);
  const double overhead_pct =
      med_off > 0.0 ? (med_on - med_off) / med_off * 100.0 : 0.0;
  std::printf(
      "profiler: %d tagged chunks, sampling off %.3f us / on %.3f us median "
      "(overhead %+.2f%%)\n",
      kTagBlock * kTagBlocks, med_off * 1e6, med_on * 1e6, overhead_pct);

  return bench::Summary("obs")
      .metric("extract_events_per_sec", extract_rate)
      .metric("ingest_spans_per_sec", ingest_rate)
      .metric("critical_path_us", attr_us)
      .metric("finalize_traces_per_sec", fin_rate)
      .metric("alert_scrape_per_sec", scrape_rate)
      .metric("profiler_overhead_pct", overhead_pct)
      .write();
}
