// Figure 6: IBRAVR off-axis artifacts.
//
// "[14] reports that objects viewed within a cone of about sixteen degrees
// will appear to be relatively free of visual artifacts."
//
// This bench renders the IBRAVR slab-texture model at increasing rotation
// angles, compares each against a ground-truth rotated volume rendering,
// and reports the artifact error curve.  The shape to reproduce: near-zero
// error on-axis, slow growth within a ~16 degree cone, rapid growth beyond.
// A second sweep shows the slab-count ablation (more slabs = wider clean
// cone), and a third the depth-mesh extension's improvement.
#include <cstdio>

#include "bench_json.h"
#include "core/stats.h"
#include "ibravr/ibravr.h"
#include "vol/generate.h"

using namespace visapult;

int main() {
  std::printf("=== Figure 6: IBRAVR off-axis artifact growth ===\n\n");

  const vol::Volume volume = vol::generate_combustion({48, 40, 32}, 3);
  const render::TransferFunction tf = render::TransferFunction::fire();

  ibravr::ModelOptions opts;
  opts.slab_count = 10;
  opts.render.step = 0.75f;

  const std::vector<double> angles = {0, 4, 8, 12, 16, 20, 25, 30, 40, 50};
  auto sweep = ibravr::artifact_sweep(volume, tf, opts, angles);
  if (!sweep.is_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", sweep.status().to_string().c_str());
    return 1;
  }

  core::TableWriter table({"angle (deg)", "error (MAD)", "relative", "curve"});
  for (const auto& s : sweep.value()) {
    std::string bar(static_cast<std::size_t>(s.relative * 40.0), '#');
    table.add_row({core::fmt_double(s.angle_deg, 0),
                   core::fmt_double(s.error, 5),
                   core::fmt_double(s.relative, 3), bar});
  }
  std::printf("%s\n", table.to_string().c_str());

  const double err16 = sweep.value()[4].error;  // 16 degrees
  const double err40 = sweep.value()[8].error;
  std::printf("error at 40deg / error at 16deg = %.1fx "
              "(paper: artifacts become pronounced beyond the ~16deg cone)\n\n",
              err40 / std::max(err16, 1e-9));

  bench::Summary summary("ibravr_artifacts");
  summary.metric("err_16deg_mad", err16)
      .metric("err_40deg_mad", err40)
      .metric("err_40_over_16", err40 / std::max(err16, 1e-9));

  // Slab-count ablation at a fixed off-axis angle.
  core::TableWriter slabs({"slabs", "error at 20 deg (MAD)"});
  for (int count : {2, 4, 8, 16}) {
    ibravr::ModelOptions o = opts;
    o.slab_count = count;
    auto err = ibravr::offaxis_error(volume, tf, o, 20.0f * 3.14159265f / 180.0f);
    slabs.add_row({std::to_string(count),
                   err.is_ok() ? core::fmt_double(err.value(), 5) : "error"});
    if (err.is_ok()) {
      summary.metric("slabs_" + std::to_string(count) + "_err_20deg",
                     err.value());
    }
  }
  std::printf("Slab-count ablation:\n%s\n", slabs.to_string().c_str());

  // Depth-mesh extension ablation.
  core::TableWriter mesh({"variant", "error at 12 deg (MAD)"});
  for (bool use_mesh : {false, true}) {
    ibravr::ModelOptions o = opts;
    o.depth_mesh = use_mesh;
    o.mesh_resolution = 8;
    auto err = ibravr::offaxis_error(volume, tf, o, 12.0f * 3.14159265f / 180.0f);
    mesh.add_row({use_mesh ? "quad mesh + offsets" : "flat quads",
                  err.is_ok() ? core::fmt_double(err.value(), 5) : "error"});
    if (err.is_ok()) {
      summary.metric(use_mesh ? "depth_mesh_err_12deg" : "flat_quads_err_12deg",
                     err.value());
    }
  }
  std::printf("Depth-offset-mesh extension (section 3.3):\n%s\n",
              mesh.to_string().c_str());
  return summary.write();
}
