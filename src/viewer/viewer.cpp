#include "viewer/viewer.h"

#include <algorithm>

namespace visapult::viewer {

namespace tags = netlog::tags;

ViewerSession::ViewerSession(netlog::NetLogger logger, ViewerOptions options)
    : logger_(std::move(logger)),
      options_(std::move(options)),
      axis_feedback_(std::make_shared<std::atomic<int>>(
          static_cast<int>(options_.base_axis))),
      angle_(options_.initial_angle) {}

core::Result<ViewerReport> ViewerSession::run(
    std::vector<net::StreamPtr> streams) {
  if (streams.empty()) return core::invalid_argument("no backend connections");
  {
    std::lock_guard lk(mu_);
    connections_ = static_cast<int>(streams.size());
    report_ = ViewerReport{};
  }
  open_connections_.store(static_cast<int>(streams.size()));

  // One I/O service thread per back-end PE (Fig. 18's "multiple data I/O
  // threads").
  std::vector<std::thread> io_threads;
  io_threads.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    io_threads.emplace_back([this, stream = streams[i], i] {
      io_service_loop(stream, static_cast<int>(i));
      if (open_connections_.fetch_sub(1) == 1) {
        frame_ready_.put(-1);  // all connections drained: wake the renderer
      }
    });
  }

  // The single render thread (this thread): waits for frame-completion
  // signals, renders the scene graph at the current interactive rotation,
  // and publishes best-axis feedback.
  for (;;) {
    const std::int64_t signal = frame_ready_.take();
    const bool final_pass = signal < 0 && open_connections_.load() == 0;
    core::ImageRGBA img = render_once();
    {
      std::lock_guard lk(mu_);
      ++report_.renders;
    }
    if (options_.on_frame) {
      std::int64_t done;
      {
        std::lock_guard lk(mu_);
        done = frames_completed_;
      }
      options_.on_frame(signal >= 0 ? signal : done - 1, img);
    }
    // Axis switching feedback for the back end.
    const auto dir = ibravr::rotated_view_dir(options_.base_axis, angle());
    axis_feedback_->store(static_cast<int>(ibravr::best_view_axis(dir)),
                          std::memory_order_release);
    if (final_pass) break;
  }

  for (auto& t : io_threads) t.join();
  std::lock_guard lk(mu_);
  report_.frames_completed = frames_completed_;
  return report_;
}

core::ImageRGBA ViewerSession::render_once() {
  vol::Dims dims;
  {
    std::lock_guard lk(mu_);
    if (!dims_known_) return core::ImageRGBA(1, 1);
    dims = volume_dims_;
  }
  scenegraph::Rasterizer raster(ibravr::make_rotated_camera(
      dims, options_.base_axis, angle(), options_.resolution_scale));
  return raster.render(graph_);
}

void ViewerSession::io_service_loop(net::StreamPtr stream, int index) {
  auto fail = [&](const core::Status& st) {
    std::lock_guard lk(mu_);
    if (report_.first_error.is_ok()) report_.first_error = st;
  };

  auto hello_msg = net::recv_message(*stream);
  if (!hello_msg.is_ok()) return fail(hello_msg.status());
  auto hello = ibravr::decode_hello(hello_msg.value());
  if (!hello.is_ok()) return fail(hello.status());
  bool dims_mismatch = false;
  {
    std::lock_guard lk(mu_);
    if (!dims_known_) {
      volume_dims_ = hello.value().volume_dims;
      expected_frames_ = hello.value().timesteps;
      dims_known_ = true;
    } else if (!(volume_dims_ == hello.value().volume_dims)) {
      dims_mismatch = true;
    }
  }
  if (dims_mismatch) {
    return fail(core::failed_precondition(
        "backend PEs disagree about volume dimensions"));
  }
  const int rank = hello.value().rank;

  for (;;) {
    logger_.log(tags::kVFrameStart, -1, rank);
    logger_.log(tags::kVLightStart, -1, rank);
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) return fail(msg.status());
    if (msg.value().type == ibravr::kEndOfData) return;
    auto light = ibravr::decode_light(msg.value());
    if (!light.is_ok()) return fail(light.status());
    const std::int64_t frame = light.value().frame;
    logger_.log(tags::kVLightEnd, frame, rank);

    logger_.log(tags::kVHeavyStart, frame, rank);
    auto heavy_msg = net::recv_message(*stream);
    if (!heavy_msg.is_ok()) return fail(heavy_msg.status());
    auto heavy = ibravr::decode_heavy(heavy_msg.value());
    if (!heavy.is_ok()) return fail(heavy.status());
    const double heavy_bytes = static_cast<double>(heavy.value().wire_bytes());
    logger_.log_bytes(tags::kVHeavyEnd, frame, rank, heavy_bytes);

    apply_heavy(light.value(), std::move(heavy).take());
    logger_.log(tags::kVFrameEnd, frame, rank);
    {
      std::lock_guard lk(mu_);
      report_.heavy_bytes_total += heavy_bytes;
    }
    note_frame_progress(frame);
  }
  (void)index;
}

void ViewerSession::apply_heavy(const ibravr::LightPayload& light,
                                ibravr::HeavyPayload heavy) {
  // Build the replacement node outside the scene-graph semaphore.
  scenegraph::NodePtr node;
  if (options_.use_depth_mesh && !heavy.offsets.empty() &&
      light.mesh_nu > 0 && light.mesh_nv > 0) {
    auto mesh = ibravr::make_slab_mesh(
        light.info, std::move(heavy.texture), std::move(heavy.offsets),
        static_cast<int>(light.mesh_nu), static_cast<int>(light.mesh_nv));
    if (mesh.is_ok()) node = std::move(mesh).take();
  }
  if (!node) {
    node = ibravr::make_slab_quad(light.info, std::move(heavy.texture));
  }

  scenegraph::NodePtr grid;
  if (options_.draw_amr_grid && !heavy.grid.empty()) {
    auto lines = std::make_shared<scenegraph::LinesNode>(
        "amr-grid", scenegraph::Color{0.6f, 0.6f, 0.6f, 0.5f});
    for (const auto& seg : heavy.grid) {
      lines->add_segment({seg.ax, seg.ay, seg.az}, {seg.bx, seg.by, seg.bz});
    }
    grid = lines;
  }

  std::lock_guard lk(mu_);
  slab_nodes_[light.rank] = node;
  if (grid) grid_node_ = grid;
  // Rebuild the root's children under the access semaphore: slabs in rank
  // order, grid on top.
  auto txn = graph_.begin_update();
  txn.root().clear_children();
  for (const auto& [r, n] : slab_nodes_) txn.root().add_child(n);
  if (grid_node_) txn.root().add_child(grid_node_);
}

void ViewerSession::note_frame_progress(std::int64_t frame) {
  bool complete = false;
  {
    std::lock_guard lk(mu_);
    if (++frame_arrivals_[frame] == connections_) {
      frame_arrivals_.erase(frame);
      ++frames_completed_;
      complete = true;
    }
  }
  if (complete) frame_ready_.put(frame);
}

}  // namespace visapult::viewer
