// Display-device adapters for the final rendering stage.
//
// Section 4.1: "We also used multiple display devices for final rendering
// at SC99, including an ImmersaDesk located in the LBL booth, and a tiled
// surface display, located in the SNL booth.  The ImmersaDesk allowed us
// to render the results in stereo.  The tiled display system allowed us to
// demonstrate Visapult using a large-screen, theater-sized output format."
//
// These adapters sit after the viewer's rasterizer:
//   * StereoRenderer  -- renders a left/right eye pair with a small
//     horizontal view-angle offset (the motion-parallax/stereo cue the
//     paper cites as improving depth comprehension by 200% [7]);
//   * TiledDisplay    -- splits a frame into an M x N wall of tiles, each
//     a standalone image (optionally with bezel borders), as a tiled
//     projector array would consume them.
#pragma once

#include <vector>

#include "core/image.h"
#include "core/status.h"
#include "ibravr/ibravr.h"
#include "scenegraph/rasterizer.h"

namespace visapult::viewer {

struct StereoPair {
  core::ImageRGBA left;
  core::ImageRGBA right;
  // Side-by-side packing (left | right) for single-stream transport.
  core::ImageRGBA side_by_side() const;
};

struct StereoOptions {
  // Half of the interocular view-angle difference, radians (~1.5 deg).
  float half_angle = 0.026f;
  float resolution_scale = 1.0f;
};

// Render the scene from two eye positions about the given centre angle.
StereoPair render_stereo(const scenegraph::GroupNode& root, vol::Dims dims,
                         vol::Axis base_axis, float angle_rad,
                         const StereoOptions& options = {});

struct TileOptions {
  int columns = 2;
  int rows = 2;
  // Pixels of black bezel drawn at each tile's edges (0 = seamless).
  int bezel = 0;
};

struct TiledFrame {
  int columns = 0;
  int rows = 0;
  std::vector<core::ImageRGBA> tiles;  // row-major

  core::ImageRGBA& tile(int col, int row) {
    return tiles[static_cast<std::size_t>(row * columns + col)];
  }
  const core::ImageRGBA& tile(int col, int row) const {
    return tiles[static_cast<std::size_t>(row * columns + col)];
  }
  // Reassemble the wall into one image (bezels included).
  core::ImageRGBA assemble() const;
};

// Slice `frame` into a tile wall.  Edge tiles absorb remainder pixels.
core::Result<TiledFrame> split_tiles(const core::ImageRGBA& frame,
                                     const TileOptions& options = {});

}  // namespace visapult::viewer
