#include "viewer/display.h"

#include <algorithm>

namespace visapult::viewer {

core::ImageRGBA StereoPair::side_by_side() const {
  if (left.empty() || right.empty()) return {};
  core::ImageRGBA out(left.width() + right.width(),
                      std::max(left.height(), right.height()));
  for (int y = 0; y < left.height(); ++y) {
    for (int x = 0; x < left.width(); ++x) {
      out.at(x, y) = left.at(x, y);
    }
  }
  for (int y = 0; y < right.height(); ++y) {
    for (int x = 0; x < right.width(); ++x) {
      out.at(left.width() + x, y) = right.at(x, y);
    }
  }
  return out;
}

StereoPair render_stereo(const scenegraph::GroupNode& root, vol::Dims dims,
                         vol::Axis base_axis, float angle_rad,
                         const StereoOptions& options) {
  StereoPair pair;
  scenegraph::Rasterizer left(ibravr::make_rotated_camera(
      dims, base_axis, angle_rad - options.half_angle, options.resolution_scale));
  scenegraph::Rasterizer right(ibravr::make_rotated_camera(
      dims, base_axis, angle_rad + options.half_angle, options.resolution_scale));
  pair.left = left.render_node(root);
  pair.right = right.render_node(root);
  return pair;
}

core::Result<TiledFrame> split_tiles(const core::ImageRGBA& frame,
                                     const TileOptions& options) {
  if (options.columns <= 0 || options.rows <= 0) {
    return core::invalid_argument("tile grid must be positive");
  }
  if (frame.width() < options.columns || frame.height() < options.rows) {
    return core::invalid_argument("more tiles than pixels");
  }
  TiledFrame out;
  out.columns = options.columns;
  out.rows = options.rows;

  const int base_w = frame.width() / options.columns;
  const int base_h = frame.height() / options.rows;
  const int extra_w = frame.width() % options.columns;
  const int extra_h = frame.height() % options.rows;

  int y0 = 0;
  for (int r = 0; r < options.rows; ++r) {
    const int h = base_h + (r < extra_h ? 1 : 0);
    int x0 = 0;
    for (int c = 0; c < options.columns; ++c) {
      const int w = base_w + (c < extra_w ? 1 : 0);
      core::ImageRGBA tile(w, h);
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const bool bezel = x < options.bezel || y < options.bezel ||
                             x >= w - options.bezel || y >= h - options.bezel;
          tile.at(x, y) = bezel ? core::Pixel{0, 0, 0, 1}
                                : frame.at(x0 + x, y0 + y);
        }
      }
      out.tiles.push_back(std::move(tile));
      x0 += w;
    }
    y0 += h;
  }
  return out;
}

core::ImageRGBA TiledFrame::assemble() const {
  if (tiles.empty()) return {};
  int total_w = 0, total_h = 0;
  for (int c = 0; c < columns; ++c) total_w += tile(c, 0).width();
  for (int r = 0; r < rows; ++r) total_h += tile(0, r).height();
  core::ImageRGBA out(total_w, total_h);
  int y0 = 0;
  for (int r = 0; r < rows; ++r) {
    int x0 = 0;
    for (int c = 0; c < columns; ++c) {
      const auto& t = tile(c, r);
      for (int y = 0; y < t.height(); ++y) {
        for (int x = 0; x < t.width(); ++x) {
          out.at(x0 + x, y0 + y) = t.at(x, y);
        }
      }
      x0 += t.width();
    }
    y0 += tile(0, r).height();
  }
  return out;
}

}  // namespace visapult::viewer
