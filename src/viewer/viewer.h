// The Visapult viewer.
//
// Multi-threaded, as in section 3.4 / Fig. 18: one I/O service thread per
// back-end PE connection receives light + heavy payloads and updates the
// shared scene graph under its access semaphore; a single decoupled render
// thread rasterizes the scene graph whenever frames complete (and at its
// own pace for interaction), so "graphics interactivity is effectively
// decoupled from the latency inherent in network applications".
//
// Per frame the viewer computes the best view axis from the current
// interactive rotation and publishes it for the back end (axis switching,
// section 3.3) via a shared atomic -- see backend::AtomicAxisProvider.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/image.h"
#include "core/status.h"
#include "core/sync.h"
#include "ibravr/payload.h"
#include "net/stream.h"
#include "netlog/logger.h"
#include "scenegraph/rasterizer.h"
#include "scenegraph/scenegraph.h"

namespace visapult::viewer {

struct ViewerOptions {
  // Rotation (radians, about the image-vertical axis) applied when
  // rendering; tests/examples animate this to exercise interactivity and
  // axis switching.
  float initial_angle = 0.0f;
  vol::Axis base_axis = vol::Axis::kZ;
  float resolution_scale = 1.0f;
  bool use_depth_mesh = false;  // build QuadMeshNodes when offsets arrive
  bool draw_amr_grid = true;
  // Called from the render thread with each newly rendered frame.
  std::function<void(std::int64_t frame, const core::ImageRGBA&)> on_frame;
};

struct ViewerReport {
  std::int64_t frames_completed = 0;
  std::int64_t renders = 0;
  double heavy_bytes_total = 0.0;
  core::Status first_error;
};

class ViewerSession {
 public:
  ViewerSession(netlog::NetLogger logger, ViewerOptions options);

  // The cell the back end's AtomicAxisProvider reads.
  std::shared_ptr<std::atomic<int>> axis_feedback() { return axis_feedback_; }

  // Adjust the interactive rotation (thread-safe; render thread picks it up
  // on its next pass -- the decoupling the scene graph buys).
  void set_angle(float radians) {
    angle_.store(radians, std::memory_order_release);
  }
  float angle() const { return angle_.load(std::memory_order_acquire); }

  scenegraph::SceneGraph& graph() { return graph_; }

  // Run the session over one connection per back-end PE.  Spawns the I/O
  // service threads and the render thread; blocks until every connection
  // delivers end-of-data and the final frame has been rendered.
  core::Result<ViewerReport> run(std::vector<net::StreamPtr> streams);

  // Render the current scene graph once with the current rotation (also
  // used by tests for deterministic single renders).
  core::ImageRGBA render_once();

 private:
  void io_service_loop(net::StreamPtr stream, int index);
  void apply_heavy(const ibravr::LightPayload& light,
                   ibravr::HeavyPayload heavy);
  void note_frame_progress(std::int64_t frame);

  netlog::NetLogger logger_;
  ViewerOptions options_;
  scenegraph::SceneGraph graph_;
  std::shared_ptr<std::atomic<int>> axis_feedback_;
  std::atomic<float> angle_;

  std::mutex mu_;
  vol::Dims volume_dims_;
  bool dims_known_ = false;
  std::int64_t expected_frames_ = 0;
  int connections_ = 0;
  std::map<std::int64_t, int> frame_arrivals_;  // frame -> PE payloads seen
  std::int64_t frames_completed_ = 0;
  core::Mailbox<std::int64_t> frame_ready_;
  std::atomic<int> open_connections_{0};
  ViewerReport report_;
  // Scene nodes per PE rank, replaced as new frames arrive.
  std::map<int, scenegraph::NodePtr> slab_nodes_;
  scenegraph::NodePtr grid_node_;
};

}  // namespace visapult::viewer
