#include "placement/rebalancer.h"

#include <algorithm>

namespace visapult::placement {

double RebalancePlan::moved_fraction() const {
  if (group_count == 0) return 0.0;
  // Copies and drops each touch one slot; a slot that moves servers costs
  // one of each, so normalise by twice the slot count.
  const double slots_per_group =
      is_ec() ? static_cast<double>(ec.total_slices())
              : static_cast<double>(replication_factor);
  if (slots_per_group == 0) return 0.0;
  const double moved = static_cast<double>(copies.size() + drops.size() +
                                           slice_copies.size() +
                                           slice_drops.size());
  return moved /
         (2.0 * static_cast<double>(group_count) * slots_per_group);
}

RebalancePlan Rebalancer::plan(const PlacementMap& from,
                               const PlacementMap& to,
                               const GenerationView& generations) {
  RebalancePlan plan;
  plan.dataset = to.dataset();
  plan.group_count = to.group_count();
  plan.stripe_blocks = to.stripe_blocks();
  plan.block_count = to.block_count();
  plan.replication_factor = to.replication_factor();
  plan.ec = to.ec_profile();
  if (from.group_count() != to.group_count() ||
      from.stripe_blocks() != to.stripe_blocks() ||
      from.block_count() != to.block_count() ||
      from.ec_profile() != to.ec_profile()) {
    return plan;  // incompatible geometries: nothing safe to emit
  }

  const auto& old_servers = from.ring().servers();
  const auto& new_servers = to.ring().servers();

  if (plan.is_ec()) {
    // Slice granularity: slot s of a group is slice s; a slot whose owner
    // changed moves exactly that slice.  Data slices past the dataset's
    // last block (the zero-padded tail of the final group) are skipped --
    // nothing is stored for them.
    const std::uint32_t k = plan.ec.data_slices;
    for (std::uint64_t g = 0; g < to.group_count(); ++g) {
      const ReplicaSet& old_set = from.replicas_for_group(g);
      const ReplicaSet& new_set = to.replicas_for_group(g);
      const std::uint32_t slices = static_cast<std::uint32_t>(
          std::min(old_set.servers.size(), new_set.servers.size()));
      bool touched = false;
      for (std::uint32_t s = 0; s < slices; ++s) {
        const ServerAddress& old_owner = old_servers[old_set.servers[s]];
        const ServerAddress& new_owner = new_servers[new_set.servers[s]];
        if (old_owner == new_owner) continue;
        if (s < k && g * k + s >= to.block_count()) continue;  // padded tail
        plan.slice_copies.push_back(SliceCopy{g, s, old_owner, new_owner});
        plan.slice_drops.push_back(SliceDrop{g, s, old_owner});
        touched = true;
      }
      if (touched) {
        std::vector<ServerAddress> owners;
        owners.reserve(old_set.servers.size());
        for (std::uint32_t s : old_set.servers) {
          owners.push_back(old_servers[s]);
        }
        plan.old_slice_owners.emplace(g, std::move(owners));
      }
    }
    return plan;
  }

  for (std::uint64_t g = 0; g < to.group_count(); ++g) {
    const ReplicaSet& old_set = from.replicas_for_group(g);
    const ReplicaSet& new_set = to.replicas_for_group(g);

    std::vector<ServerAddress> old_addrs, new_addrs;
    for (std::uint32_t s : old_set.servers) old_addrs.push_back(old_servers[s]);
    for (std::uint32_t s : new_set.servers) new_addrs.push_back(new_servers[s]);

    auto in = [](const std::vector<ServerAddress>& v, const ServerAddress& a) {
      return std::find(v.begin(), v.end(), a) != v.end();
    };

    // Source for any copy: an old replica, preferring one that survives
    // into the new set (it is certainly not being decommissioned).  With a
    // generation view the freshest stamp wins first, and survival only
    // breaks ties -- copying from a stale replica would propagate data a
    // fixup has to overwrite again.
    ServerAddress source;
    bool have_source = false;
    std::int64_t source_gen = -1;
    bool source_survives = false;
    for (const auto& a : old_addrs) {
      const bool survives = in(new_addrs, a);
      const std::int64_t gen = generations ? generations(a, g) : -1;
      const bool better =
          !have_source || gen > source_gen ||
          (gen == source_gen && survives && !source_survives);
      if (better) {
        source = a;
        have_source = true;
        source_gen = gen;
        source_survives = survives;
      }
    }

    for (const auto& a : new_addrs) {
      if (!in(old_addrs, a) && have_source) {
        if (generations && source_gen >= 0 &&
            generations(a, g) >= source_gen) {
          // The target already holds the freshest stamp (e.g. it briefly
          // left and rejoined): nothing to move.
          continue;
        }
        plan.copies.push_back(GroupCopy{g, source, a});
      }
    }
    for (const auto& a : old_addrs) {
      if (!in(new_addrs, a)) {
        plan.drops.push_back(GroupDrop{g, a});
      }
    }
  }
  return plan;
}

}  // namespace visapult::placement
