#include "placement/rebalancer.h"

#include <algorithm>

namespace visapult::placement {

double RebalancePlan::moved_fraction() const {
  if (group_count == 0 || replication_factor == 0) return 0.0;
  // Copies and drops each touch one replica slot; a slot that moves
  // servers costs one of each, so normalise by twice the slot count.
  const double slots = static_cast<double>(copies.size() + drops.size());
  return slots / (2.0 * static_cast<double>(group_count) *
                  static_cast<double>(replication_factor));
}

RebalancePlan Rebalancer::plan(const PlacementMap& from,
                               const PlacementMap& to) {
  RebalancePlan plan;
  plan.dataset = to.dataset();
  plan.group_count = to.group_count();
  plan.stripe_blocks = to.stripe_blocks();
  plan.block_count = to.block_count();
  plan.replication_factor = to.replication_factor();
  if (from.group_count() != to.group_count() ||
      from.stripe_blocks() != to.stripe_blocks() ||
      from.block_count() != to.block_count()) {
    return plan;  // incompatible geometries: nothing safe to emit
  }

  const auto& old_servers = from.ring().servers();
  const auto& new_servers = to.ring().servers();

  for (std::uint64_t g = 0; g < to.group_count(); ++g) {
    const ReplicaSet& old_set = from.replicas_for_group(g);
    const ReplicaSet& new_set = to.replicas_for_group(g);

    std::vector<ServerAddress> old_addrs, new_addrs;
    for (std::uint32_t s : old_set.servers) old_addrs.push_back(old_servers[s]);
    for (std::uint32_t s : new_set.servers) new_addrs.push_back(new_servers[s]);

    auto in = [](const std::vector<ServerAddress>& v, const ServerAddress& a) {
      return std::find(v.begin(), v.end(), a) != v.end();
    };

    // Source for any copy: an old replica, preferring one that survives
    // into the new set (it is certainly not being decommissioned).
    ServerAddress source;
    bool have_source = false;
    for (const auto& a : old_addrs) {
      if (in(new_addrs, a)) {
        source = a;
        have_source = true;
        break;
      }
    }
    if (!have_source && !old_addrs.empty()) {
      source = old_addrs.front();
      have_source = true;
    }

    for (const auto& a : new_addrs) {
      if (!in(old_addrs, a) && have_source) {
        plan.copies.push_back(GroupCopy{g, source, a});
      }
    }
    for (const auto& a : old_addrs) {
      if (!in(new_addrs, a)) {
        plan.drops.push_back(GroupDrop{g, a});
      }
    }
  }
  return plan;
}

}  // namespace visapult::placement
