// Consistent-hash ring with virtual nodes.
//
// The DPSS master's "logical to physical block lookup" (paper Fig. 7) is a
// fixed round-robin stripe in the classic reproduction; the ring replaces
// it with consistent hashing so that (a) any replication factor falls out
// of walking the ring, and (b) a server joining or leaving moves only the
// ring-adjacent share of blocks (~1/n), which is what keeps Rebalancer
// plans minimal.
//
// Each server contributes `vnodes_per_server` points (hashes of
// "host:port#v"), which evens out ownership across the hash space.  A
// lookup walks clockwise from the key's hash collecting the first `count`
// *distinct* servers -- the replica set in ring preference order.
//
// The ring is a value type: membership changes rebuild the point table
// (O(total vnodes * log)), which at DPSS farm sizes (tens of servers) is
// microseconds.  Server indices are positions in `servers()` and are
// reassigned on removal; a PlacementMap snapshots the ring it was built
// from, so indices inside one map are always self-consistent.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "placement/server_address.h"

namespace visapult::placement {

// Default virtual nodes per server: enough that ownership imbalance stays
// within ~20% of fair share for small farms.
inline constexpr int kDefaultVnodes = 64;

class HashRing {
 public:
  explicit HashRing(int vnodes_per_server = kDefaultVnodes);
  HashRing(std::vector<ServerAddress> servers,
           int vnodes_per_server = kDefaultVnodes);

  // Appends the server (no-op if already present) and returns its index.
  std::uint32_t add_server(const ServerAddress& addr);
  // Removes the server and its points; later servers shift down one index.
  bool remove_server(const ServerAddress& addr);

  const std::vector<ServerAddress>& servers() const { return servers_; }
  int vnodes_per_server() const { return vnodes_; }
  bool empty() const { return servers_.empty(); }
  std::size_t size() const { return servers_.size(); }

  // Index of `addr` in servers(), or -1.
  int index_of(const ServerAddress& addr) const;

  // First `count` distinct servers clockwise from `key_hash`, as indices
  // into servers().  Fewer than `count` when the ring is smaller.
  std::vector<std::uint32_t> lookup(std::uint64_t key_hash, int count = 1) const;

  // Fraction of the hash space owned by each server (sums to 1 when
  // non-empty).  Introspection for the dpss_tool placement report.
  std::vector<double> ownership() const;

 private:
  void rebuild();

  int vnodes_;
  std::vector<ServerAddress> servers_;
  // (ring position, server index), sorted by position.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace visapult::placement
