// Per-server health state for the DPSS farm.
//
// The master is the only component that sees every client and every server,
// so it arbitrates health: block servers (or the deployment on their
// behalf) send periodic heartbeats carrying their served-request count, and
// clients report I/O errors they hit mid-read.  A server walks
//
//     up --(client-reported failure)--> suspect --(more failures)--> down
//      ^                                                               |
//      +----------------------(heartbeat: rejoin)---------------------+
//
// plus time-based demotion via tick(now) when heartbeats go stale.  Time is
// an explicit parameter (seconds on whatever clock the caller runs), never
// wall clock read internally, so tests drive transitions deterministically.
//
// Servers never seen before report kUp: the classic deployments do not
// heartbeat at all, and their servers must stay eligible.
//
// The tracker also keeps the last heartbeat's load figure (served-request
// count); the master snapshots it into OpenReplys so clients can rank
// replicas least-loaded-first.
//
// Thread safety: all methods lock an internal mutex; heartbeat, failure
// reports, and lookups arrive concurrently from the master's per-connection
// service threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "placement/server_address.h"

namespace visapult::placement {

enum class HealthState : std::uint8_t { kUp = 0, kSuspect = 1, kDown = 2 };

const char* health_state_name(HealthState state);

struct HealthConfig {
  // Client-reported I/O errors: the first puts an up server on suspicion;
  // reaching `failures_to_down` takes it down.
  int failures_to_suspect = 1;
  int failures_to_down = 3;
  // Heartbeat staleness thresholds for tick(now).
  double suspect_after_seconds = 5.0;
  double down_after_seconds = 15.0;
};

class HealthTracker {
 public:
  explicit HealthTracker(HealthConfig config = {});

  // A server (re)announced itself: state returns to kUp, failure count
  // clears, `load` (its served-request counter) is recorded.
  void heartbeat(const ServerAddress& server, std::uint64_t load = 0,
                 double now = 0.0);
  // A client hit an I/O error against this server.
  void report_failure(const ServerAddress& server);
  // Operator/deployment knowledge: the server is gone (killed), no need to
  // wait for failure reports to accumulate.
  void mark_down(const ServerAddress& server);
  // Demote servers whose heartbeats are stale as of `now`.  Servers that
  // never heartbeated are left alone (classic deployments never beat).
  void tick(double now);

  HealthState state(const ServerAddress& server) const;
  bool is_live(const ServerAddress& server) const {
    return state(server) != HealthState::kDown;
  }
  std::uint64_t load(const ServerAddress& server) const;

  struct Entry {
    ServerAddress server;
    HealthState state = HealthState::kUp;
    std::uint64_t load = 0;
    int failures = 0;
    double last_heartbeat = 0.0;
  };
  std::vector<Entry> snapshot() const;

  std::uint64_t heartbeats_received() const;
  std::uint64_t failures_reported() const;

 private:
  struct Slot {
    ServerAddress server;
    HealthState state = HealthState::kUp;
    std::uint64_t load = 0;
    int failures = 0;
    double last_heartbeat = 0.0;
    bool ever_heartbeat = false;
  };
  Slot& slot_for(const ServerAddress& server);  // caller holds mu_

  mutable std::mutex mu_;
  HealthConfig config_;
  std::map<std::string, Slot> slots_;  // keyed by address key()
  std::uint64_t heartbeats_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace visapult::placement
