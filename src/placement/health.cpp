#include "placement/health.h"

namespace visapult::placement {

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kUp: return "up";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kDown: return "down";
  }
  return "?";
}

HealthTracker::HealthTracker(HealthConfig config) : config_(config) {}

HealthTracker::Slot& HealthTracker::slot_for(const ServerAddress& server) {
  auto [it, inserted] = slots_.try_emplace(server.key());
  if (inserted) it->second.server = server;
  return it->second;
}

void HealthTracker::heartbeat(const ServerAddress& server, std::uint64_t load,
                              double now) {
  std::lock_guard lk(mu_);
  Slot& slot = slot_for(server);
  slot.state = HealthState::kUp;  // rejoin path: any beat restores service
  slot.failures = 0;
  slot.load = load;
  slot.last_heartbeat = now;
  slot.ever_heartbeat = true;
  ++heartbeats_;
}

void HealthTracker::report_failure(const ServerAddress& server) {
  std::lock_guard lk(mu_);
  Slot& slot = slot_for(server);
  ++slot.failures;
  ++failures_;
  if (slot.failures >= config_.failures_to_down) {
    slot.state = HealthState::kDown;
  } else if (slot.failures >= config_.failures_to_suspect &&
             slot.state == HealthState::kUp) {
    slot.state = HealthState::kSuspect;
  }
}

void HealthTracker::mark_down(const ServerAddress& server) {
  std::lock_guard lk(mu_);
  Slot& slot = slot_for(server);
  slot.state = HealthState::kDown;
  slot.failures = config_.failures_to_down;
}

void HealthTracker::tick(double now) {
  std::lock_guard lk(mu_);
  for (auto& [key, slot] : slots_) {
    if (!slot.ever_heartbeat || slot.state == HealthState::kDown) continue;
    const double stale = now - slot.last_heartbeat;
    if (stale >= config_.down_after_seconds) {
      slot.state = HealthState::kDown;
    } else if (stale >= config_.suspect_after_seconds &&
               slot.state == HealthState::kUp) {
      slot.state = HealthState::kSuspect;
    }
  }
}

HealthState HealthTracker::state(const ServerAddress& server) const {
  std::lock_guard lk(mu_);
  auto it = slots_.find(server.key());
  return it == slots_.end() ? HealthState::kUp : it->second.state;
}

std::uint64_t HealthTracker::load(const ServerAddress& server) const {
  std::lock_guard lk(mu_);
  auto it = slots_.find(server.key());
  return it == slots_.end() ? 0 : it->second.load;
}

std::vector<HealthTracker::Entry> HealthTracker::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) {
    Entry e;
    e.server = slot.server;
    e.state = slot.state;
    e.load = slot.load;
    e.failures = slot.failures;
    e.last_heartbeat = slot.last_heartbeat;
    out.push_back(std::move(e));
  }
  return out;
}

std::uint64_t HealthTracker::heartbeats_received() const {
  std::lock_guard lk(mu_);
  return heartbeats_;
}

std::uint64_t HealthTracker::failures_reported() const {
  std::lock_guard lk(mu_);
  return failures_;
}

}  // namespace visapult::placement
