// Replica-aware block placement for one dataset.
//
// A PlacementMap materialises the master's logical-to-physical lookup
// (paper Fig. 7) under replication: blocks are grouped into placement
// groups of `stripe_blocks` consecutive blocks (the unit the classic
// stripe map also used), and each group hashes onto the ring, taking the
// first `replication_factor` distinct servers clockwise as its ReplicaSet.
//
// Both ends of the wire build the same map independently -- the master
// when a dataset registers, the client library from the OpenReply's server
// list + ring parameters -- which keeps the reply O(servers) instead of
// O(blocks).  Determinism is guaranteed by the explicit FNV/splitmix
// hashes in server_address.h.
//
// rank_replicas() is the load-balancing half: given the master's health
// and load snapshot it orders a ReplicaSet least-loaded-live-first, which
// is the order the client tries servers in (and fails over through).
//
// Erasure-coded placement (PR 4) reuses the same group machinery with
// different slot semantics: an enabled codec::EcProfile (k data + m parity
// slices) groups k consecutive blocks, the ring lookup widens to k + m
// distinct servers, and entry s of a group's ReplicaSet owns *slice* s --
// data slice s is logical block group*k + s stored verbatim (the fast
// path reads it in place), slices k..k+m-1 are parity.  EcProfile is a
// header-only struct, so placement still links only against core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/ec_profile.h"
#include "placement/hash_ring.h"
#include "placement/health.h"

namespace visapult::placement {

// Servers holding one placement group, as indices into the originating
// ring's servers(), in ring (clockwise) preference order.
struct ReplicaSet {
  std::vector<std::uint32_t> servers;

  std::uint32_t primary() const { return servers.empty() ? 0 : servers[0]; }
  bool contains(std::uint32_t server) const {
    for (std::uint32_t s : servers) {
      if (s == server) return true;
    }
    return false;
  }
};

class PlacementMap {
 public:
  PlacementMap() = default;
  // With an enabled `ec`, stripe_blocks is forced to ec.data_slices and
  // each group's ReplicaSet holds ec.total_slices() distinct servers in
  // slice order; replication_factor is ignored (EC and replication are
  // mutually exclusive redundancy modes).
  PlacementMap(std::string dataset, HashRing ring, std::uint64_t block_count,
               std::uint32_t stripe_blocks, std::uint32_t replication_factor,
               codec::EcProfile ec = {});

  const std::string& dataset() const { return dataset_; }
  const HashRing& ring() const { return ring_; }
  std::uint64_t block_count() const { return block_count_; }
  std::uint32_t stripe_blocks() const { return stripe_blocks_; }
  std::uint32_t replication_factor() const { return replication_factor_; }
  const codec::EcProfile& ec_profile() const { return ec_; }
  bool erasure_coded() const { return ec_.enabled(); }
  std::uint64_t group_count() const { return groups_.size(); }
  bool empty() const { return groups_.empty(); }

  std::uint64_t group_of(std::uint64_t block) const {
    return stripe_blocks_ == 0 ? 0 : block / stripe_blocks_;
  }
  // Blocks [first, last) of group `g`, clipped to the dataset.
  std::uint64_t group_first_block(std::uint64_t g) const {
    return g * stripe_blocks_;
  }
  std::uint64_t group_last_block(std::uint64_t g) const {
    return std::min<std::uint64_t>(block_count_, (g + 1) * stripe_blocks_);
  }

  const ReplicaSet& replicas_for_group(std::uint64_t group) const;
  const ReplicaSet& replicas_for_block(std::uint64_t block) const {
    return replicas_for_group(group_of(block));
  }
  // Replicated: any replica holds the whole block.  Erasure-coded: only
  // the data-slice owner stores the block verbatim (parity owners hold
  // parity, not this block).
  bool server_holds_block(std::uint32_t server, std::uint64_t block) const;
  // EC only: server index owning slice `slice` of `group`, or -1 when the
  // ring was too small to assign all k + m slices.
  int slice_server(std::uint64_t group, std::uint32_t slice) const;

  // Replica block count per server index (a block counts once per replica
  // it contributes).
  std::vector<std::uint64_t> server_block_counts() const;
  // max/mean of server_block_counts(): 1.0 is perfectly balanced.
  double imbalance_ratio() const;

 private:
  std::string dataset_;
  HashRing ring_;
  std::uint64_t block_count_ = 0;
  std::uint32_t stripe_blocks_ = 1;
  std::uint32_t replication_factor_ = 1;
  codec::EcProfile ec_;
  std::vector<ReplicaSet> groups_;
  ReplicaSet empty_set_;
};

// Order `replicas` for a client: up servers before suspect before down,
// least-loaded first within a class, ring order as the tie-break.  Both
// vectors are indexed by server index and may be shorter than needed
// (missing entries read as kUp / load 0 -- the no-telemetry default).
std::vector<std::uint32_t> rank_replicas(
    const ReplicaSet& replicas, const std::vector<HealthState>& health,
    const std::vector<std::uint64_t>& load);

// Write-chain primary selection: the first replica in *ring order* that is
// not marked down.  Deliberately ignores load, unlike rank_replicas -- the
// primary allocates the block's next generation, so every writer must pick
// the same server regardless of its load snapshot.  Returns -1 when all
// replicas are down.
int primary_replica(const ReplicaSet& replicas,
                    const std::vector<HealthState>& health);

}  // namespace visapult::placement
