// Rebalancing planner: the delta between two placements of one dataset.
//
// When the server set changes (join, leave, death), the master builds a new
// PlacementMap over the new ring and asks the Rebalancer for the plan that
// morphs the stored blocks from the old assignment to the new one:
//
//   * copies -- placement groups that gained a replica on a server, with a
//     source chosen among the group's old replicas (preferring one that
//     survives into the new set, so copies read from servers that are
//     certainly staying up);
//   * drops  -- placement groups whose replica on a server is no longer
//     assigned there.
//
// Because both maps hash groups onto consistent rings, a single-server
// membership change only reassigns the ring-adjacent share of groups
// (~1/n of them, ~rf/n of replica slots), which tests assert as the
// "minimal movement" property.
//
// The plan speaks ServerAddress, not ring indices: the two maps index
// their servers differently, and the executor (deployment) resolves
// addresses to live BlockServers anyway.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "placement/placement_map.h"

namespace visapult::placement {

struct GroupCopy {
  std::uint64_t group = 0;
  ServerAddress source;
  ServerAddress target;
};

struct GroupDrop {
  std::uint64_t group = 0;
  ServerAddress server;
};

struct RebalancePlan {
  std::string dataset;
  std::uint64_t group_count = 0;
  std::uint32_t stripe_blocks = 1;
  std::uint64_t block_count = 0;
  std::uint32_t replication_factor = 1;
  std::vector<GroupCopy> copies;
  std::vector<GroupDrop> drops;

  // Blocks [first, last) of plan group `g`.
  std::uint64_t group_first_block(std::uint64_t g) const {
    return g * stripe_blocks;
  }
  std::uint64_t group_last_block(std::uint64_t g) const {
    return std::min<std::uint64_t>(block_count,
                                   (g + 1) * static_cast<std::uint64_t>(stripe_blocks));
  }
  // Replica slots that move, as a fraction of all replica slots.
  double moved_fraction() const;
  bool empty() const { return copies.empty() && drops.empty(); }
};

class Rebalancer {
 public:
  // Plan the transition `from` -> `to`.  Both maps must describe the same
  // dataset geometry (group count, stripe size); mismatches yield an empty
  // plan rather than a partial one.
  static RebalancePlan plan(const PlacementMap& from, const PlacementMap& to);
};

}  // namespace visapult::placement
