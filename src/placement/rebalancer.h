// Rebalancing planner: the delta between two placements of one dataset.
//
// When the server set changes (join, leave, death), the master builds a new
// PlacementMap over the new ring and asks the Rebalancer for the plan that
// morphs the stored blocks from the old assignment to the new one:
//
//   * copies -- placement groups that gained a replica on a server, with a
//     source chosen among the group's old replicas (preferring one that
//     survives into the new set, so copies read from servers that are
//     certainly staying up);
//   * drops  -- placement groups whose replica on a server is no longer
//     assigned there.
//
// Because both maps hash groups onto consistent rings, a single-server
// membership change only reassigns the ring-adjacent share of groups
// (~1/n of them, ~rf/n of replica slots), which tests assert as the
// "minimal movement" property.
//
// The plan speaks ServerAddress, not ring indices: the two maps index
// their servers differently, and the executor (deployment) resolves
// addresses to live BlockServers anyway.
//
// Erasure-coded datasets rebalance at *slice* granularity: a membership
// change moves the individual data/parity slices whose owner changed, not
// whole block groups.  Slice copies carry enough context (the old owner of
// every slice in a touched group) for the executor to fall back to
// reconstruction when a copy's source is gone -- that is how a rebalance
// after a disk loss restores full redundancy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "codec/ec_profile.h"
#include "placement/placement_map.h"

namespace visapult::placement {

struct GroupCopy {
  std::uint64_t group = 0;
  ServerAddress source;
  ServerAddress target;
};

struct GroupDrop {
  std::uint64_t group = 0;
  ServerAddress server;
};

// One slice of one EC group changing owner.  `slice` < k names a data
// slice (logical block group*k + slice); k <= slice < k+m names parity
// slice slice-k (block group*m + (slice-k) of the parity dataset).
struct SliceCopy {
  std::uint64_t group = 0;
  std::uint32_t slice = 0;
  ServerAddress source;
  ServerAddress target;
};

struct SliceDrop {
  std::uint64_t group = 0;
  std::uint32_t slice = 0;
  ServerAddress server;
};

struct RebalancePlan {
  std::string dataset;
  std::uint64_t group_count = 0;
  std::uint32_t stripe_blocks = 1;
  std::uint64_t block_count = 0;
  std::uint32_t replication_factor = 1;
  std::vector<GroupCopy> copies;
  std::vector<GroupDrop> drops;

  // ---- erasure-coded plans ----
  codec::EcProfile ec;
  bool is_ec() const { return ec.enabled(); }
  std::vector<SliceCopy> slice_copies;
  std::vector<SliceDrop> slice_drops;
  // Old slice -> owner assignment for every group with a slice copy, in
  // slice order; the executor reconstructs from these when a copy source
  // is unreachable.
  std::map<std::uint64_t, std::vector<ServerAddress>> old_slice_owners;
  // Dataset byte geometry, filled in by the master (the maps do not know
  // block sizes); reconstruction pads and trims slices with these.
  std::uint32_t block_bytes = 0;
  std::uint64_t total_bytes = 0;

  // Blocks [first, last) of plan group `g`.
  std::uint64_t group_first_block(std::uint64_t g) const {
    return g * stripe_blocks;
  }
  std::uint64_t group_last_block(std::uint64_t g) const {
    return std::min<std::uint64_t>(block_count,
                                   (g + 1) * static_cast<std::uint64_t>(stripe_blocks));
  }
  // Replica (or slice) slots that move, as a fraction of all slots.
  double moved_fraction() const;
  bool empty() const {
    return copies.empty() && drops.empty() && slice_copies.empty() &&
           slice_drops.empty();
  }
};

// What ingest generation `server` holds for placement group `group` of the
// dataset being planned: -1 when the server stores nothing for the group,
// >= 0 for the stored stamp (the minimum across the group's blocks, so a
// partially-applied write does not masquerade as fresh).
using GenerationView =
    std::function<std::int64_t(const ServerAddress& server,
                               std::uint64_t group)>;

class Rebalancer {
 public:
  // Plan the transition `from` -> `to`.  Both maps must describe the same
  // dataset geometry (group count, stripe size); mismatches yield an empty
  // plan rather than a partial one.
  //
  // With a GenerationView the replicated-path planning is generation
  // aware: the copy source is the old replica holding the *freshest*
  // generation (surviving replicas win ties, as before), and a copy to a
  // target already holding the source's stamp is skipped entirely -- a
  // rejoin after a short death moves only what actually went stale.
  static RebalancePlan plan(const PlacementMap& from, const PlacementMap& to,
                            const GenerationView& generations = nullptr);
};

}  // namespace visapult::placement
