#include "placement/placement_map.h"

#include <algorithm>

namespace visapult::placement {

PlacementMap::PlacementMap(std::string dataset, HashRing ring,
                           std::uint64_t block_count,
                           std::uint32_t stripe_blocks,
                           std::uint32_t replication_factor,
                           codec::EcProfile ec)
    : dataset_(std::move(dataset)),
      ring_(std::move(ring)),
      block_count_(block_count),
      stripe_blocks_(std::max<std::uint32_t>(1, stripe_blocks)),
      replication_factor_(std::max<std::uint32_t>(1, replication_factor)),
      ec_(ec) {
  if (ec_.enabled()) {
    // EC geometry: a group is k consecutive blocks, its ReplicaSet the
    // k + m slice owners.  Replication is the other mode; force rf = 1 so
    // capacity accounting stays honest.
    stripe_blocks_ = ec_.data_slices;
    replication_factor_ = 1;
  }
  if (ring_.empty() || block_count_ == 0) return;
  const int lookup_count = ec_.enabled()
                               ? static_cast<int>(ec_.total_slices())
                               : static_cast<int>(replication_factor_);
  const std::uint64_t groups =
      (block_count_ + stripe_blocks_ - 1) / stripe_blocks_;
  groups_.reserve(groups);
  for (std::uint64_t g = 0; g < groups; ++g) {
    ReplicaSet set;
    set.servers = ring_.lookup(placement_hash(dataset_, g), lookup_count);
    groups_.push_back(std::move(set));
  }
}

const ReplicaSet& PlacementMap::replicas_for_group(std::uint64_t group) const {
  if (group >= groups_.size()) return empty_set_;
  return groups_[group];
}

bool PlacementMap::server_holds_block(std::uint32_t server,
                                      std::uint64_t block) const {
  if (!ec_.enabled()) return replicas_for_block(block).contains(server);
  const int owner = slice_server(
      group_of(block),
      static_cast<std::uint32_t>(block % std::max<std::uint32_t>(
                                             1, ec_.data_slices)));
  return owner >= 0 && static_cast<std::uint32_t>(owner) == server;
}

int PlacementMap::slice_server(std::uint64_t group, std::uint32_t slice) const {
  const ReplicaSet& set = replicas_for_group(group);
  if (slice >= set.servers.size()) return -1;
  return static_cast<int>(set.servers[slice]);
}

std::vector<std::uint64_t> PlacementMap::server_block_counts() const {
  std::vector<std::uint64_t> counts(ring_.size(), 0);
  for (std::uint64_t g = 0; g < groups_.size(); ++g) {
    if (ec_.enabled()) {
      // One block-sized slice per ReplicaSet slot: data slices only where
      // the dataset actually has the block, parity slices always.
      const std::uint64_t data_blocks = group_last_block(g) - group_first_block(g);
      for (std::uint32_t s = 0; s < groups_[g].servers.size(); ++s) {
        const std::uint32_t server = groups_[g].servers[s];
        if (server >= counts.size()) continue;
        if (s < ec_.data_slices) {
          if (s < data_blocks) counts[server] += 1;
        } else {
          counts[server] += 1;
        }
      }
      continue;
    }
    const std::uint64_t blocks = group_last_block(g) - group_first_block(g);
    for (std::uint32_t s : groups_[g].servers) {
      if (s < counts.size()) counts[s] += blocks;
    }
  }
  return counts;
}

double PlacementMap::imbalance_ratio() const {
  const auto counts = server_block_counts();
  if (counts.empty()) return 0.0;
  std::uint64_t max = 0, total = 0;
  for (std::uint64_t c : counts) {
    max = std::max(max, c);
    total += c;
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / counts.size();
  return static_cast<double>(max) / mean;
}

std::vector<std::uint32_t> rank_replicas(
    const ReplicaSet& replicas, const std::vector<HealthState>& health,
    const std::vector<std::uint64_t>& load) {
  auto state_of = [&health](std::uint32_t s) {
    return s < health.size() ? health[s] : HealthState::kUp;
  };
  auto load_of = [&load](std::uint32_t s) -> std::uint64_t {
    return s < load.size() ? load[s] : 0;
  };
  // Pair each replica with its ring position for the stable tie-break.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // (ring pos, server)
  order.reserve(replicas.servers.size());
  for (std::uint32_t i = 0; i < replicas.servers.size(); ++i) {
    order.emplace_back(i, replicas.servers[i]);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](const auto& a, const auto& b) {
                     const auto sa = state_of(a.second), sb = state_of(b.second);
                     if (sa != sb) {
                       return static_cast<int>(sa) < static_cast<int>(sb);
                     }
                     const auto la = load_of(a.second), lb = load_of(b.second);
                     if (la != lb) return la < lb;
                     return a.first < b.first;
                   });
  std::vector<std::uint32_t> out;
  out.reserve(order.size());
  for (const auto& [pos, server] : order) out.push_back(server);
  return out;
}

int primary_replica(const ReplicaSet& replicas,
                    const std::vector<HealthState>& health) {
  for (std::uint32_t s : replicas.servers) {
    if (s < health.size() && health[s] == HealthState::kDown) continue;
    return static_cast<int>(s);
  }
  return -1;
}

}  // namespace visapult::placement
