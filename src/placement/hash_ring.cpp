#include "placement/hash_ring.h"

#include <algorithm>

namespace visapult::placement {

HashRing::HashRing(int vnodes_per_server)
    : vnodes_(std::max(1, vnodes_per_server)) {}

HashRing::HashRing(std::vector<ServerAddress> servers, int vnodes_per_server)
    : vnodes_(std::max(1, vnodes_per_server)), servers_(std::move(servers)) {
  rebuild();
}

int HashRing::index_of(const ServerAddress& addr) const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i] == addr) return static_cast<int>(i);
  }
  return -1;
}

std::uint32_t HashRing::add_server(const ServerAddress& addr) {
  const int existing = index_of(addr);
  if (existing >= 0) return static_cast<std::uint32_t>(existing);
  servers_.push_back(addr);
  rebuild();
  return static_cast<std::uint32_t>(servers_.size() - 1);
}

bool HashRing::remove_server(const ServerAddress& addr) {
  const int idx = index_of(addr);
  if (idx < 0) return false;
  servers_.erase(servers_.begin() + idx);
  rebuild();
  return true;
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(servers_.size() * static_cast<std::size_t>(vnodes_));
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const std::string base = servers_[s].key();
    for (int v = 0; v < vnodes_; ++v) {
      const std::uint64_t point =
          mix64(fnv1a64(base + "#" + std::to_string(v)));
      points_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<std::uint32_t> HashRing::lookup(std::uint64_t key_hash,
                                            int count) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || count <= 0) return out;
  const int want =
      std::min<int>(count, static_cast<int>(servers_.size()));
  out.reserve(static_cast<std::size_t>(want));

  // First point at or after the key, wrapping.
  auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(key_hash, std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t at = static_cast<std::size_t>(it - points_.begin()) % points_.size();
  for (std::size_t walked = 0;
       walked < points_.size() && out.size() < static_cast<std::size_t>(want);
       ++walked, at = (at + 1) % points_.size()) {
    const std::uint32_t s = points_[at].second;
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<double> HashRing::ownership() const {
  std::vector<double> share(servers_.size(), 0.0);
  if (points_.empty()) return share;
  // Each point owns the arc from its predecessor up to itself.
  const double space = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t prev = (i + points_.size() - 1) % points_.size();
    const std::uint64_t arc = points_[i].first - points_[prev].first;  // wraps
    share[points_[i].second] += static_cast<double>(arc) / space;
  }
  return share;
}

}  // namespace visapult::placement
