// Server identity shared by the placement subsystem and the DPSS tier.
//
// Placement (hash ring, replica maps, health tracking) must not depend on
// the DPSS wire protocol, yet both layers need to name the same block
// servers.  The address therefore lives here and dpss/protocol.h aliases
// it, so `dpss::ServerAddress` and `placement::ServerAddress` are one type.
//
// Hashing is explicit FNV-1a rather than std::hash so ring positions are
// identical on every host of a deployment regardless of standard-library
// implementation -- the master and the client library must agree on the
// ring bit for bit.
#pragma once

#include <cstdint>
#include <string>

namespace visapult::placement {

struct ServerAddress {
  std::string host;  // "127.0.0.1" for socket deployments, a label for pipes
  std::uint16_t port = 0;

  // Canonical "host:port" form, the key used by health tracking and the
  // ring's virtual-node hashes.
  std::string key() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const ServerAddress& a, const ServerAddress& b) {
    return a.port == b.port && a.host == b.host;
  }
  friend bool operator!=(const ServerAddress& a, const ServerAddress& b) {
    return !(a == b);
  }
  friend bool operator<(const ServerAddress& a, const ServerAddress& b) {
    if (a.host != b.host) return a.host < b.host;
    return a.port < b.port;
  }
};

// FNV-1a 64-bit over a byte string: stable across processes and builds.
inline std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finisher: spreads consecutive inputs across the hash space.
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Ring position of one placement group of a dataset.
inline std::uint64_t placement_hash(const std::string& dataset,
                                    std::uint64_t group) {
  return mix64(fnv1a64(dataset) ^ mix64(group));
}

}  // namespace visapult::placement
