#include "app/session.h"

#include <thread>

#include "core/clock.h"
#include "net/stream.h"
#include "net/striped_adapter.h"

namespace visapult::app {

double SessionResult::total_load_seconds() const {
  double s = 0.0;
  for (const auto& pe : pes) s += pe.load_seconds_total;
  return s;
}

double SessionResult::total_render_seconds() const {
  double s = 0.0;
  for (const auto& pe : pes) s += pe.render_seconds_total;
  return s;
}

core::Result<SessionResult> run_session(const SessionOptions& options) {
  if (options.backend_pes <= 0) {
    return core::invalid_argument("backend_pes must be > 0");
  }

  auto sink = std::make_shared<netlog::MemorySink>();
  core::RealClock& clock = core::global_real_clock();

  // ---- data cache ------------------------------------------------------
  std::unique_ptr<dpss::PipeDeployment> cache;
  if (options.use_dpss) {
    cache = std::make_unique<dpss::PipeDeployment>(options.dpss_servers);
    if (auto st = cache->ingest(options.dataset); !st.is_ok()) return st;
  }

  // ---- viewer ----------------------------------------------------------
  viewer::ViewerOptions vopts;
  vopts.initial_angle = options.viewer_angle;
  vopts.use_depth_mesh = options.depth_mesh;
  vopts.on_frame = options.on_frame;
  vopts.resolution_scale = options.render.resolution_scale;
  viewer::ViewerSession session(
      netlog::NetLogger(clock, "viewer-host", "viewer", sink), vopts);

  // One connection per back-end PE: a plain pipe, or striped lanes when
  // requested (section 3.4's striped-socket transport).
  std::vector<net::StreamPtr> viewer_ends;
  std::vector<net::StreamPtr> backend_ends;
  for (int r = 0; r < options.backend_pes; ++r) {
    if (options.stripe_lanes > 1) {
      auto [a, b] = net::make_striped_pipe_pair(options.stripe_lanes);
      backend_ends.push_back(a);
      viewer_ends.push_back(b);
    } else {
      auto [a, b] = net::make_pipe(4u << 20);
      backend_ends.push_back(a);
      viewer_ends.push_back(b);
    }
  }

  // ---- back end --------------------------------------------------------
  const render::TransferFunction tf =
      options.dataset.generator == vol::Generator::kCosmology
          ? render::TransferFunction::density()
          : render::TransferFunction::fire();

  backend::BackendOptions bopts;
  bopts.overlapped = options.overlapped;
  bopts.render = options.render;
  bopts.transfer = &tf;
  bopts.mesh_resolution = options.depth_mesh ? 8 : 0;
  bopts.send_amr_grid = options.send_amr_grid;
  bopts.max_timesteps = options.max_timesteps;

  SessionResult result;
  result.pes.resize(static_cast<std::size_t>(options.backend_pes));
  std::vector<core::Status> pe_status(
      static_cast<std::size_t>(options.backend_pes));

  std::unique_ptr<backend::AxisProvider> axis_provider;
  if (options.axis_feedback) {
    axis_provider =
        std::make_unique<backend::AtomicAxisProvider>(session.axis_feedback());
  } else {
    axis_provider = std::make_unique<backend::FixedAxisProvider>(vol::Axis::kZ);
  }

  backend::GeneratorSource generator_source(options.dataset);

  mpp::Runtime runtime(options.backend_pes);
  std::thread backend_thread([&] {
    runtime.run([&](mpp::Comm& comm) {
      const int r = comm.rank();
      netlog::NetLogger logger(clock, "backend-host", "backend", sink);

      std::unique_ptr<backend::DataSource> own_source;
      backend::DataSource* source = nullptr;
      if (options.use_dpss) {
        auto client = cache->make_client();
        auto file = client.open(options.dataset.name);
        if (!file.is_ok()) {
          pe_status[static_cast<std::size_t>(r)] = file.status();
          return;
        }
        own_source = std::make_unique<backend::DpssSource>(
            std::move(file).take(), options.dataset.dims,
            options.dataset.timesteps);
        source = own_source.get();
      } else {
        source = &generator_source;
      }

      auto report = backend::run_backend_pe(
          comm, *source, backend_ends[static_cast<std::size_t>(r)],
          *axis_provider, logger, bopts);
      if (report.is_ok()) {
        result.pes[static_cast<std::size_t>(r)] = report.value();
      } else {
        pe_status[static_cast<std::size_t>(r)] = report.status();
        // Unblock the viewer's I/O thread for this PE.
        backend_ends[static_cast<std::size_t>(r)]->close();
      }
    });
  });

  auto viewer_report = session.run(std::move(viewer_ends));
  backend_thread.join();

  for (const auto& st : pe_status) {
    if (!st.is_ok()) return st;
  }
  if (!viewer_report.is_ok()) return viewer_report.status();
  result.viewer = viewer_report.value();
  result.events = sink->events();
  return result;
}

}  // namespace visapult::app
