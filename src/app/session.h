// Whole-application sessions: DPSS cache + back end + viewer in one process.
//
// The paper's deployments place these components at different sites; here
// they are wired over in-memory pipes (deterministic, used by tests and the
// quickstart) while preserving the real concurrency structure: mpp ranks
// for the back-end PEs, a reader pthread per PE in overlapped mode, one
// viewer I/O thread per PE, a decoupled viewer render thread, and parallel
// DPSS block fetches underneath every load.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "core/status.h"
#include "dpss/deployment.h"
#include "netlog/logger.h"
#include "render/transfer.h"
#include "viewer/viewer.h"
#include "vol/dataset.h"

namespace visapult::app {

struct SessionOptions {
  vol::DatasetDesc dataset = vol::small_combustion_dataset();
  int backend_pes = 4;
  int dpss_servers = 4;
  bool overlapped = true;       // overlapped loading + rendering
  bool use_dpss = true;         // false: back end generates data directly
  bool axis_feedback = true;    // viewer-driven axis switching
  bool depth_mesh = false;      // IBRAVR quad-mesh extension
  bool send_amr_grid = true;
  int max_timesteps = -1;
  float viewer_angle = 0.0f;    // initial interactive rotation (radians)
  // Lanes per back-end->viewer connection.  > 1 uses the striped-socket
  // protocol of section 3.4 ("multiple simultaneous network connections
  // ... implemented with a custom TCP-based protocol over striped
  // sockets"); 1 uses a single stream.
  int stripe_lanes = 1;
  render::RenderOptions render;
  // Called on the viewer render thread per rendered frame.
  std::function<void(std::int64_t, const core::ImageRGBA&)> on_frame;
};

struct SessionResult {
  viewer::ViewerReport viewer;
  std::vector<backend::PeReport> pes;
  std::vector<netlog::Event> events;  // the NetLogger event log of the run

  double total_load_seconds() const;
  double total_render_seconds() const;
};

// Run a complete session to end-of-data.  Blocks.
core::Result<SessionResult> run_session(const SessionOptions& options);

}  // namespace visapult::app
