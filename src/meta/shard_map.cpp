#include "meta/shard_map.h"

namespace visapult::meta {

ShardMap::ShardMap(std::uint32_t shard_count, int vnodes)
    : shard_count_(shard_count == 0 ? 1 : shard_count), vnodes_(vnodes) {
  std::vector<placement::ServerAddress> shards;
  shards.reserve(shard_count_);
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    shards.push_back(shard_identity(i));
  }
  ring_ = placement::HashRing(std::move(shards), vnodes_);
}

std::uint32_t ShardMap::shard_for(const std::string& dataset) const {
  if (shard_count_ <= 1 || ring_.empty()) return 0;
  // Same finisher the data plane's placement_hash uses: raw FNV of short,
  // similar dataset names clusters badly on the ring.
  const auto owners =
      ring_.lookup(placement::mix64(placement::fnv1a64(dataset)), 1);
  // Shard identities were added in index order, so ring index == shard id.
  return owners.empty() ? 0 : owners[0];
}

placement::ServerAddress ShardMap::shard_identity(std::uint32_t shard) {
  return {"meta-shard-" + std::to_string(shard),
          static_cast<std::uint16_t>(shard)};
}

}  // namespace visapult::meta
