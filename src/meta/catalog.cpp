#include "meta/catalog.h"

#include <algorithm>
#include <sstream>

#include "placement/hash_ring.h"

namespace visapult::meta {

namespace {

// The replication factor the map is actually built with: configured,
// clamped to the membership.  Clamping here (not in the stored options)
// is what lets a shrink-then-regrow restore full replication.
PlacementOptions active_options(const PlacementOptions& configured,
                                std::size_t server_count) {
  PlacementOptions active = configured;
  if (active.replication_factor > server_count) {
    active.replication_factor = static_cast<std::uint32_t>(server_count);
  }
  return active;
}

}  // namespace

std::shared_ptr<const placement::PlacementMap> Catalog::build_map(
    const std::string& name, const DatasetLayout& layout,
    const std::vector<placement::ServerAddress>& servers,
    const PlacementOptions& options) {
  const int vnodes = options.ring_vnodes > 0
                         ? static_cast<int>(options.ring_vnodes)
                         : placement::kDefaultVnodes;
  placement::HashRing ring(servers, vnodes);
  return std::make_shared<const placement::PlacementMap>(
      name, std::move(ring), layout.block_count(), layout.stripe_blocks,
      options.replication_factor, options.ec);
}

core::Status Catalog::validate(const LogEntry& entry) const {
  if (entry.dataset.empty()) {
    return core::invalid_argument("dataset name must be non-empty");
  }
  if (entry.layout.server_count != entry.servers.size()) {
    return core::invalid_argument(
        "layout.server_count does not match server list");
  }
  if (entry.layout.block_bytes == 0 || entry.layout.stripe_blocks == 0) {
    return core::invalid_argument("zero block or stripe size");
  }
  if (entry.placement.replication_factor == 0) {
    return core::invalid_argument("replication factor must be >= 1");
  }
  if (entry.kind == EntryKind::kRegister) {
    if (entry.placement.replication_factor > entry.servers.size()) {
      return core::invalid_argument(
          "replication factor exceeds server count");
    }
  } else {
    // Updates may shrink below the configured factor (the map clamps),
    // but an existing dataset and a non-empty membership are required.
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.find(entry.dataset) == entries_.end()) {
      return core::not_found("dataset not registered: " + entry.dataset);
    }
    if (entry.servers.empty()) {
      return core::invalid_argument("update needs at least one server");
    }
  }
  if (entry.placement.ec.enabled()) {
    if (entry.placement.replication_factor > 1) {
      return core::invalid_argument(
          "erasure coding and replication are mutually exclusive");
    }
    if (entry.placement.ec.total_slices() > entry.servers.size()) {
      return core::invalid_argument("EC profile needs k+m distinct servers");
    }
    if (entry.placement.ec.total_slices() > 255) {
      return core::invalid_argument("EC profile exceeds GF(2^8) limits");
    }
  }
  return core::Status::ok();
}

core::Status Catalog::apply(const LogEntry& entry) {
  CatalogEntry ce;
  ce.layout = entry.layout;
  ce.placement = entry.placement;
  // Normalize half-set profiles (e.g. {0, m}): enabled() is what every
  // consumer branches on, so anything else must serialize as the default
  // profile or the decoder's wire validation would brick opens of a
  // dataset that ingested fine as a classic stripe.
  if (!ce.placement.ec.enabled()) ce.placement.ec = codec::EcProfile{};
  if (ce.placement.uses_ring()) {
    ce.map = build_map(
        entry.dataset, entry.layout, entry.servers,
        active_options(ce.placement, entry.servers.size()));
  }
  ce.servers = entry.servers;
  ce.epoch = entry.epoch;
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.kind == EntryKind::kUpdate &&
      entries_.find(entry.dataset) == entries_.end()) {
    return core::not_found("dataset not registered: " + entry.dataset);
  }
  entries_[entry.dataset] = std::move(ce);
  applied_epoch_ = std::max(applied_epoch_, entry.epoch);
  return core::Status::ok();
}

std::optional<CatalogEntry> Catalog::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Catalog::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t Catalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t Catalog::applied_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_epoch_;
}

std::string Catalog::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, e] : entries_) {
    out << name << " epoch=" << e.epoch << " bytes=" << e.layout.total_bytes
        << "/" << e.layout.block_bytes << " stripe=" << e.layout.stripe_blocks
        << " rf=" << e.placement.replication_factor
        << " vnodes=" << e.placement.ring_vnodes << " ec="
        << e.placement.ec.data_slices << "+" << e.placement.ec.parity_slices
        << " servers=[";
    for (std::size_t i = 0; i < e.servers.size(); ++i) {
      if (i) out << ",";
      out << e.servers[i].key();
    }
    out << "]";
    if (e.map) {
      out << " groups=[";
      for (std::uint64_t g = 0; g < e.map->group_count(); ++g) {
        if (g) out << ";";
        const auto& rs = e.map->replicas_for_group(g);
        for (std::size_t i = 0; i < rs.servers.size(); ++i) {
          if (i) out << ",";
          out << rs.servers[i];
        }
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

std::vector<LogEntry> Catalog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    LogEntry le;
    le.epoch = e.epoch;
    le.kind = EntryKind::kRegister;
    le.dataset = name;
    le.layout = e.layout;
    le.placement = e.placement;
    le.servers = e.servers;
    out.push_back(std::move(le));
  }
  return out;
}

}  // namespace visapult::meta
