// Replicated metadata log.
//
// Every mutation of a shard's catalog -- dataset registration, map swap,
// rf/EC-profile change, rebalance commit -- is one LogEntry carrying a
// monotonic epoch.  The leader appends and replicates to followers; a
// follower only accepts the next expected epoch, so a gap means it missed
// entries and must catch up via entries_since() (or a full snapshot when
// the window has been pruned past its epoch).
//
// The log keeps a bounded in-memory window: clients and followers that
// fell further behind than the window re-sync from a snapshot instead of
// replaying history, which is exactly the OpenReply delta/snapshot split.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "meta/types.h"
#include "placement/server_address.h"

namespace visapult::meta {

enum class EntryKind : std::uint8_t {
  // First appearance of a dataset: full layout + placement + membership.
  kRegister = 0,
  // Placement change for an existing dataset (rebalance commit, rf/EC
  // change, membership edit).  Carries the complete new state -- entries
  // are self-contained so replay from any snapshot converges.
  kUpdate = 1,
};

struct LogEntry {
  std::uint64_t epoch = 0;  // assigned by the leader's append()
  EntryKind kind = EntryKind::kRegister;
  std::string dataset;
  DatasetLayout layout;
  PlacementOptions placement;
  std::vector<placement::ServerAddress> servers;
};

class ReplicatedLog {
 public:
  // How many entries the in-memory window retains.  Anyone asking for
  // history older than the window gets std::nullopt and must snapshot.
  static constexpr std::size_t kDefaultWindow = 64;

  explicit ReplicatedLog(std::size_t window = kDefaultWindow)
      : window_(window == 0 ? 1 : window) {}

  // Leader path: stamp the entry with last_epoch() + 1 and retain it.
  // Returns the assigned epoch.
  std::uint64_t append(LogEntry entry);

  // Follower path: accept a leader-stamped entry.  Rejects anything but
  // the next expected epoch (last + 1): duplicates and reordered entries
  // return false without mutating the log, and a future epoch returns
  // false to signal "I have a gap -- send me entries_since(last_epoch())".
  bool accept(const LogEntry& entry);

  std::uint64_t last_epoch() const;

  // Entries with epoch > from, oldest first.  std::nullopt when the
  // window no longer reaches back to from + 1 (caller needs a snapshot);
  // an empty vector when the caller is already current.
  std::optional<std::vector<LogEntry>> entries_since(std::uint64_t from) const;

  // Snapshot install: drop the window and jump to `epoch`.  Used by a
  // follower (or client) that fell behind the retention window and
  // rebuilt its catalog from a full snapshot instead of replaying.
  void reset(std::uint64_t epoch);

  std::size_t window_size() const;

 private:
  mutable std::mutex mu_;
  std::size_t window_;
  std::uint64_t last_epoch_ = 0;
  std::deque<LogEntry> entries_;
};

}  // namespace visapult::meta
