#include "meta/gossip.h"

#include <algorithm>

namespace visapult::meta {

void GenerationGossip::merge(const std::vector<GenerationFloor>& floors) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& f : floors) {
    auto& g = floors_[f.dataset];
    g = std::max(g, f.generation);
  }
}

void GenerationGossip::merge_one(const std::string& dataset,
                                 std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& g = floors_[dataset];
  g = std::max(g, generation);
}

std::uint64_t GenerationGossip::floor(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = floors_.find(dataset);
  return it == floors_.end() ? 0 : it->second;
}

void GenerationGossip::note_open(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  ++opens_[dataset];
}

CacheHint GenerationGossip::hint(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = opens_.find(dataset);
  if (it == opens_.end() || it->second == 0) return CacheHint::kCold;
  return it->second >= kHotOpens ? CacheHint::kHot : CacheHint::kNone;
}

void GenerationGossip::decay() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = opens_.begin(); it != opens_.end();) {
    it->second /= 2;
    if (it->second == 0) {
      it = opens_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<GenerationFloor> GenerationGossip::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GenerationFloor> out;
  out.reserve(floors_.size());
  for (const auto& [dataset, generation] : floors_) {
    out.push_back({dataset, generation});
  }
  return out;
}

}  // namespace visapult::meta
