#include "meta/log.h"

namespace visapult::meta {

std::uint64_t ReplicatedLog::append(LogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.epoch = ++last_epoch_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > window_) entries_.pop_front();
  return last_epoch_;
}

bool ReplicatedLog::accept(const LogEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.epoch != last_epoch_ + 1) return false;
  last_epoch_ = entry.epoch;
  entries_.push_back(entry);
  while (entries_.size() > window_) entries_.pop_front();
  return true;
}

std::uint64_t ReplicatedLog::last_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_epoch_;
}

std::optional<std::vector<LogEntry>> ReplicatedLog::entries_since(
    std::uint64_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= last_epoch_) return std::vector<LogEntry>{};
  // The window covers (last_epoch_ - entries_.size(), last_epoch_]; a
  // caller at `from` needs from + 1 onward.
  const std::uint64_t oldest = last_epoch_ - entries_.size() + 1;
  if (from + 1 < oldest) return std::nullopt;
  std::vector<LogEntry> out;
  out.reserve(static_cast<std::size_t>(last_epoch_ - from));
  for (const auto& e : entries_) {
    if (e.epoch > from) out.push_back(e);
  }
  return out;
}

void ReplicatedLog::reset(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  last_epoch_ = epoch;
}

std::size_t ReplicatedLog::window_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace visapult::meta
