// Catalog state machine.
//
// The Catalog is the deterministic half of a metadata shard: given the
// same sequence of LogEntries, every replica -- leader, follower, or a
// client replaying deltas -- materialises byte-identical state.  All the
// dataset validation and ring/map construction the Master used to do
// inline lives here now; the Master is just a wire frontend that appends
// to its shard's ReplicatedLog and applies the entries to its Catalog.
//
// The class locks internally so lookups never contend on the frontend's
// request mutex -- the whole point of sharding the metadata plane is that
// opens scale with shard count, which requires the per-shard read path to
// be cheap and self-contained.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "meta/log.h"
#include "meta/types.h"
#include "placement/placement_map.h"
#include "placement/server_address.h"

namespace visapult::meta {

struct CatalogEntry {
  DatasetLayout layout;
  std::vector<placement::ServerAddress> servers;
  // The *configured* placement; the map is built over the current
  // membership with the replication factor clamped, so a shrink followed
  // by a regrow restores full replication.
  PlacementOptions placement;
  // Null for classic striped datasets.
  std::shared_ptr<const placement::PlacementMap> map;
  // Epoch of the log entry that last touched this dataset.  Clients cache
  // their reply per dataset keyed by this and re-open with known_epoch;
  // a match short-circuits to a not_modified reply.
  std::uint64_t epoch = 0;
};

class Catalog {
 public:
  // Deterministic map construction shared by every catalog replica and by
  // the client library (which rebuilds the same ring from the OpenReply).
  static std::shared_ptr<const placement::PlacementMap> build_map(
      const std::string& name, const DatasetLayout& layout,
      const std::vector<placement::ServerAddress>& servers,
      const PlacementOptions& options);

  // Would `apply(entry)` produce a legal state transition?  Carries the
  // exact diagnostics register_dataset has always produced; checked by the
  // leader *before* appending, so the log never holds a rejected entry.
  core::Status validate(const LogEntry& entry) const;

  // Apply one log entry.  Deterministic: the only inputs are the entry
  // and the current state.  kUpdate clamps the replication factor to the
  // new membership when building the map but stores the configured
  // placement unchanged.
  core::Status apply(const LogEntry& entry);

  std::optional<CatalogEntry> lookup(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const;
  // Max epoch applied so far (0 for a fresh catalog).
  std::uint64_t applied_epoch() const;

  // Deterministic text dump of the full state -- dataset geometry,
  // configured placement, membership, per-group replica assignment.  Two
  // catalogs that applied equivalent histories render identical text;
  // the delta-stream equivalence fuzz test compares these byte-for-byte.
  std::string fingerprint() const;

  // Full state as kRegister entries (name order), each stamped with the
  // dataset's epoch: the snapshot a gapped client or follower bootstraps
  // a fresh Catalog from before resuming delta replay.
  std::vector<LogEntry> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CatalogEntry> entries_;
  std::uint64_t applied_epoch_ = 0;
};

}  // namespace visapult::meta
