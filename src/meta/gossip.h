// Generation gossip.
//
// Block servers already stamp every ingest write with a monotonically
// increasing generation; clients detect stale replicas by comparing served
// generations against what they have seen.  A client that never wrote,
// though, knows nothing -- so the metadata plane spreads generation
// knowledge for free on the RPCs that already flow: heartbeats carry each
// server's per-dataset max generation up to the master, the master merges
// them into per-dataset floors, and OpenReplys carry the floor (plus a
// hotness hint) back down.  No extra round-trips, no client write traffic.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace visapult::meta {

// One dataset's highest generation known to some component.
struct GenerationFloor {
  std::string dataset;
  std::uint64_t generation = 0;
};

// Cache guidance piggybacked on an OpenReply: kHot datasets are seeing
// enough opens that the client should keep blocks pinned; kCold ones are
// safe to evict first.
enum class CacheHint : std::uint8_t {
  kNone = 0,
  kHot = 1,
  kCold = 2,
};

class GenerationGossip {
 public:
  // Merge a batch of floors (a heartbeat's payload): each floor ratchets
  // the stored maximum, never lowers it.
  void merge(const std::vector<GenerationFloor>& floors);
  void merge_one(const std::string& dataset, std::uint64_t generation);

  // Highest generation ever merged for `dataset` (0 when unknown).
  std::uint64_t floor(const std::string& dataset) const;

  // Record an open and classify the dataset's recent open traffic.  The
  // hint is a simple threshold on opens since the last decay() -- enough
  // signal for cache priority without a real frequency sketch.
  void note_open(const std::string& dataset);
  CacheHint hint(const std::string& dataset) const;
  // Halve all open counts: called from the master's tick so hotness decays
  // with time instead of accumulating forever.
  void decay();

  // All known floors, dataset order (deterministic for tests/heartbeats).
  std::vector<GenerationFloor> snapshot() const;

  static constexpr std::uint64_t kHotOpens = 8;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> floors_;
  std::map<std::string, std::uint64_t> opens_;
};

}  // namespace visapult::meta
