// Metadata-plane value types.
//
// The dataset geometry (DatasetLayout) and redundancy configuration
// (PlacementOptions) used to live in dpss/protocol.h and dpss/master.h.
// The sharded metadata plane moves them here so meta::Catalog -- the
// replicated state machine every master shard applies its log against --
// can own the catalog entry type without depending on the DPSS wire layer;
// dpss aliases both names, so `dpss::DatasetLayout` and
// `meta::DatasetLayout` are one type (the same move PR 3 made for
// ServerAddress).
#pragma once

#include <algorithm>
#include <cstdint>

#include "codec/ec_profile.h"

namespace visapult::meta {

// Logical block size.  64 KB matches the DPSS's period configuration.
inline constexpr std::uint32_t kDefaultBlockBytes = 64 * 1024;

// How logical blocks map onto servers: block b lives on server
// (b / stripe_blocks) % server_count -- striped round-robin in runs of
// stripe_blocks.  The client re-derives per-server block lists from this.
struct DatasetLayout {
  std::uint64_t total_bytes = 0;
  std::uint32_t block_bytes = kDefaultBlockBytes;
  std::uint32_t stripe_blocks = 1;
  std::uint32_t server_count = 0;

  std::uint64_t block_count() const {
    return block_bytes == 0
               ? 0
               : (total_bytes + block_bytes - 1) / block_bytes;
  }
  std::uint32_t server_for_block(std::uint64_t block) const {
    if (server_count == 0) return 0;
    return static_cast<std::uint32_t>((block / stripe_blocks) % server_count);
  }
  std::uint64_t block_length(std::uint64_t block) const {
    const std::uint64_t start = block * block_bytes;
    if (start >= total_bytes) return 0;
    return std::min<std::uint64_t>(block_bytes, total_bytes - start);
  }
};

// How a dataset's blocks map onto servers.  The default (replication
// factor 1, no ring) is the classic round-robin stripe of the seed
// reproduction; any other setting builds a consistent-hash PlacementMap.
// An enabled EC profile is the third mode: (k, m) Reed-Solomon slice
// groups (mutually exclusive with replication_factor > 1).
struct PlacementOptions {
  std::uint32_t replication_factor = 1;
  // 0 defaults to placement::kDefaultVnodes when a ring is needed.
  std::uint32_t ring_vnodes = 0;
  codec::EcProfile ec;

  bool uses_ring() const {
    return replication_factor > 1 || ring_vnodes > 0 || ec.enabled();
  }
};

}  // namespace visapult::meta
