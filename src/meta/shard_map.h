// Shard assignment for the metadata plane.
//
// The dataset catalog is partitioned by dataset-name hash across N master
// shards on the same consistent-hash machinery the data plane uses for
// blocks (placement::HashRing); each shard is a synthetic ServerAddress
// ("meta-shard-<i>") so the ring hashes something stable.  Every shard and
// every client builds the same ShardMap, so "which shard owns dataset X"
// never needs a directory service: hash, look up, done.
//
// A default-constructed (empty) map is the single-shard legacy deployment:
// everything routes to shard 0 and the sharding machinery disappears.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "placement/hash_ring.h"
#include "placement/server_address.h"

namespace visapult::meta {

class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(std::uint32_t shard_count,
                    int vnodes = placement::kDefaultVnodes);

  std::uint32_t shard_count() const { return shard_count_; }
  bool single_shard() const { return shard_count_ <= 1; }
  int vnodes() const { return vnodes_; }

  // Owning shard for a dataset name.  0 for single-shard maps.
  std::uint32_t shard_for(const std::string& dataset) const;

  // The synthetic ring identity of shard i ({"meta-shard-<i>", i}).
  static placement::ServerAddress shard_identity(std::uint32_t shard);

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.shard_count_ == b.shard_count_ && a.vnodes_ == b.vnodes_;
  }
  friend bool operator!=(const ShardMap& a, const ShardMap& b) {
    return !(a == b);
  }

 private:
  std::uint32_t shard_count_ = 1;
  int vnodes_ = placement::kDefaultVnodes;
  placement::HashRing ring_;
};

}  // namespace visapult::meta
