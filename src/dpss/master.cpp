#include "dpss/master.h"

#include <algorithm>

namespace visapult::dpss {

namespace {

std::shared_ptr<const placement::PlacementMap> build_map(
    const std::string& name, const DatasetLayout& layout,
    const std::vector<ServerAddress>& servers,
    const PlacementOptions& options) {
  const int vnodes = options.ring_vnodes > 0
                         ? static_cast<int>(options.ring_vnodes)
                         : placement::kDefaultVnodes;
  placement::HashRing ring(servers, vnodes);
  return std::make_shared<const placement::PlacementMap>(
      name, std::move(ring), layout.block_count(), layout.stripe_blocks,
      options.replication_factor, options.ec);
}

}  // namespace

Master::Master()
    : opens_(registry_.counter("dpss_master_opens_total")),
      read_timeouts_(registry_.counter("dpss_master_read_timeouts_total")),
      heartbeats_(registry_.counter("dpss_master_heartbeats_total")),
      failure_reports_(
          registry_.counter("dpss_master_failure_reports_total")),
      fixups_applied_(registry_.counter("dpss_master_fixups_applied_total")),
      fixups_dropped_(registry_.counter("dpss_master_fixups_dropped_total")),
      request_seconds_(registry_.histogram("dpss_master_request_seconds")) {
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    out.push_back({"dpss_master_fixup_depth", "",
                   static_cast<double>(fixup_depth())});
    out.push_back({"dpss_master_fixups_enqueued_total", "",
                   static_cast<double>(fixups_enqueued())});
  });
  // The analysis plane rides the master's exposition: trace stage
  // histograms + slowest-trace exemplars, and per-rule alert status.
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    collector_.collect_samples(out);
    alerts_.collect_samples(out);
  });
}

Master::~Master() { shutdown(); }

core::Status Master::register_dataset(const std::string& name,
                                      const DatasetLayout& layout,
                                      std::vector<ServerAddress> servers,
                                      const PlacementOptions& placement) {
  if (layout.server_count != servers.size()) {
    return core::invalid_argument(
        "layout.server_count does not match server list");
  }
  if (layout.block_bytes == 0 || layout.stripe_blocks == 0) {
    return core::invalid_argument("zero block or stripe size");
  }
  if (placement.replication_factor == 0) {
    return core::invalid_argument("replication factor must be >= 1");
  }
  if (placement.replication_factor > servers.size()) {
    return core::invalid_argument(
        "replication factor exceeds server count");
  }
  if (placement.ec.enabled()) {
    if (placement.replication_factor > 1) {
      return core::invalid_argument(
          "erasure coding and replication are mutually exclusive");
    }
    if (placement.ec.total_slices() > servers.size()) {
      return core::invalid_argument(
          "EC profile needs k+m distinct servers");
    }
    if (placement.ec.total_slices() > 255) {
      return core::invalid_argument("EC profile exceeds GF(2^8) limits");
    }
  }
  Entry entry;
  entry.layout = layout;
  entry.placement = placement;
  // Normalize half-set profiles (e.g. {0, m}): enabled() is what every
  // consumer branches on, so anything else must serialize as the default
  // profile or the decoder's wire validation would brick opens of a
  // dataset that ingested fine as a classic stripe.
  if (!entry.placement.ec.enabled()) entry.placement.ec = codec::EcProfile{};
  if (placement.uses_ring()) {
    entry.map = build_map(name, layout, servers, placement);
  }
  entry.servers = std::move(servers);
  std::lock_guard lk(mu_);
  catalog_[name] = std::move(entry);
  return core::Status::ok();
}

core::Result<OpenReply> Master::lookup(const std::string& name) const {
  OpenReply reply;
  reply.handle = 0;  // assigned by the service loop
  {
    std::lock_guard lk(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return core::not_found("dataset not registered: " + name);
    }
    const Entry& entry = it->second;
    reply.layout = entry.layout;
    reply.servers = entry.servers;
    // Effective factor: the configured one, clamped to the current
    // membership (matches the active map after a shrinking rebalance).
    reply.replication_factor = static_cast<std::uint32_t>(
        std::min<std::size_t>(entry.placement.replication_factor,
                              entry.servers.size()));
    reply.ring_vnodes =
        entry.placement.uses_ring()
            ? (entry.placement.ring_vnodes > 0
                   ? entry.placement.ring_vnodes
                   : static_cast<std::uint32_t>(placement::kDefaultVnodes))
            : 0;
    reply.ec = entry.placement.ec;
    reply.ingest_capable = ingest_capable_;
  }
  // Health/load snapshot taken outside mu_: the tracker has its own lock.
  reply.server_health.reserve(reply.servers.size());
  reply.server_load.reserve(reply.servers.size());
  for (const auto& addr : reply.servers) {
    reply.server_health.push_back(health_.state(addr));
    reply.server_load.push_back(health_.load(addr));
  }
  return reply;
}

std::shared_ptr<const placement::PlacementMap> Master::placement_map(
    const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second.map;
}

core::Result<placement::RebalancePlan> Master::rebalance_dataset(
    const std::string& name, std::vector<ServerAddress> new_servers,
    const std::function<core::Status(const placement::RebalancePlan&)>&
        executor) {
  if (new_servers.empty()) {
    return core::invalid_argument("rebalance needs at least one server");
  }
  std::lock_guard lk(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return core::not_found("dataset not registered: " + name);
  }
  Entry& entry = it->second;
  if (!entry.map) {
    return core::failed_precondition(
        "dataset uses classic striping; re-ingest with a replication "
        "factor to enable rebalancing");
  }
  // The *configured* replication factor is kept in entry.placement; only
  // the map built over the current membership is clamped, so a shrink to
  // one server followed by a regrow restores full replication.
  PlacementOptions active = entry.placement;
  if (active.ec.enabled() &&
      active.ec.total_slices() > new_servers.size()) {
    // An EC group cannot shed slices the way replication sheds copies:
    // fewer than k+m distinct servers cannot hold a stripe at all.
    return core::failed_precondition(
        "EC dataset needs " + std::to_string(active.ec.total_slices()) +
        " servers; only " + std::to_string(new_servers.size()) + " offered");
  }
  if (active.replication_factor > new_servers.size()) {
    active.replication_factor =
        static_cast<std::uint32_t>(new_servers.size());
  }
  auto new_map = build_map(name, entry.layout, new_servers, active);
  placement::RebalancePlan plan =
      placement::Rebalancer::plan(*entry.map, *new_map);
  // The executor's slice reconstruction pads and trims with the dataset's
  // byte geometry, which only the catalog knows.
  plan.block_bytes = entry.layout.block_bytes;
  plan.total_bytes = entry.layout.total_bytes;
  if (executor) {
    // Move the blocks while the catalog still serves the old map: an
    // open() concurrent with the rebalance never routes reads to a
    // replica that does not hold its blocks yet.
    if (auto st = executor(plan); !st.is_ok()) return st;
  }
  entry.map = std::move(new_map);
  entry.servers = std::move(new_servers);
  entry.layout.server_count =
      static_cast<std::uint32_t>(entry.servers.size());
  return plan;
}

void Master::heartbeat(const ServerAddress& server,
                       std::uint64_t requests_served, double now) {
  health_.heartbeat(server, requests_served, now);
}

void Master::report_failure(const ServerAddress& server) {
  health_.report_failure(server);
}

void Master::enable_auto_rebalance(
    AutoRebalanceConfig config,
    std::function<core::Status(const placement::RebalancePlan&)> executor) {
  std::lock_guard lk(mu_);
  auto_rebalance_enabled_ = true;
  auto_config_ = config;
  auto_executor_ = std::move(executor);
}

void Master::set_fixup_executor(
    std::function<core::Status(const ingest::FixupTask&)> executor) {
  std::lock_guard lk(mu_);
  fixup_executor_ = std::move(executor);
}

void Master::report_fixup(const ingest::FixupTask& task) {
  fixups_.push(task);
}

void Master::set_ingest_capable(bool capable) {
  std::lock_guard lk(mu_);
  ingest_capable_ = capable;
}

core::Status Master::enable_alerts(const std::vector<std::string>& rules) {
  for (const std::string& text : rules) {
    auto st = alerts_.add_rule(text);
    if (!st.is_ok()) return st;
  }
  alerts_enabled_.store(true);
  return core::Status::ok();
}

std::string Master::trace_report() {
  return collector_.render_report(5) + alerts_.render_text();
}

std::vector<std::string> Master::tick(double now) {
  health_.tick(now);

  // Analysis plane: finalize traces that have gone idle (idleness measured
  // on the real clock their ingest stamps used), then scrape the registry
  // into the alert rules with the caller's `now` as the window clock.
  collector_.finalize_idle(core::global_real_clock().now(),
                           trace_linger_.load());
  if (alerts_enabled_.load()) alerts_.scrape(registry_.samples(), now);

  // Drain the ingest fixup queue: every task re-syncs one replica (or
  // parity owner) that missed a generation.  Failures requeue with a
  // bumped attempt count -- the lagging server may simply still be down --
  // until the retry budget runs out.
  std::function<core::Status(const ingest::FixupTask&)> fixup_executor;
  {
    std::lock_guard lk(mu_);
    fixup_executor = fixup_executor_;
  }
  if (fixup_executor && fixups_.depth() > 0) {
    for (ingest::FixupTask& task : fixups_.drain()) {
      if (fixup_executor(task).is_ok()) {
        fixups_applied_.inc();
        continue;
      }
      if (++task.attempts >= kMaxFixupAttempts) {
        fixups_dropped_.inc();
      } else {
        fixups_.push(task);
      }
    }
  }

  // Track when each down server was first observed; a server that comes
  // back (heartbeat rejoin) clears its entry.
  std::vector<ServerAddress> down, overdue;
  for (const auto& entry : health_.snapshot()) {
    if (entry.state == placement::HealthState::kDown) {
      down.push_back(entry.server);
    }
  }
  std::function<core::Status(const placement::RebalancePlan&)> executor;
  std::vector<std::pair<std::string, std::vector<ServerAddress>>> work;
  {
    std::lock_guard lk(mu_);
    std::map<std::string, double> still_down;
    for (const auto& addr : down) {
      const auto it = down_since_.find(addr.key());
      const double since = it == down_since_.end() ? now : it->second;
      still_down[addr.key()] = since;
      if (auto_rebalance_enabled_ &&
          now - since >= auto_config_.down_deadline_seconds) {
        overdue.push_back(addr);
      }
    }
    down_since_ = std::move(still_down);
    if (overdue.empty()) return {};
    executor = auto_executor_;

    auto is_down = [&down](const ServerAddress& a) {
      for (const auto& d : down) {
        if (d == a) return true;
      }
      return false;
    };
    auto is_overdue = [&overdue](const ServerAddress& a) {
      for (const auto& o : overdue) {
        if (o == a) return true;
      }
      return false;
    };
    for (const auto& [name, entry] : catalog_) {
      if (!entry.map) continue;  // classic stripes cannot rebalance
      bool triggered = false;
      std::vector<ServerAddress> live;
      for (const auto& addr : entry.servers) {
        if (is_overdue(addr)) triggered = true;
        if (!is_down(addr)) live.push_back(addr);
      }
      if (!triggered || live.empty() || live.size() == entry.servers.size()) {
        continue;
      }
      work.emplace_back(name, std::move(live));
    }
  }

  // Execute outside mu_: rebalance_dataset takes the lock itself, and the
  // executor moves real data.
  std::vector<std::string> rebalanced;
  for (auto& [name, live] : work) {
    if (rebalance_dataset(name, std::move(live), executor).is_ok()) {
      rebalanced.push_back(name);
    }
  }
  return rebalanced;
}

std::vector<std::string> Master::dataset_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

void Master::set_acl(std::set<std::string> allowed_tokens) {
  std::lock_guard lk(mu_);
  acl_ = std::move(allowed_tokens);
  acl_enabled_ = true;
}

void Master::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] { service_loop(stream); });
}

void Master::shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Master::service_loop(net::StreamPtr stream) {
  for (;;) {
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) {
      if (msg.status().code() == core::StatusCode::kDeadlineExceeded) {
        note_read_timeout();
      }
      return;
    }
    net::Message reply = handle_request(std::move(msg).take());
    if (auto st = net::send_message(*stream, reply); !st.is_ok()) return;
  }
}

net::Message Master::handle_request(net::Message&& msg) {
  const obs::TraceContext trace{msg.trace_id, msg.span_id};
  const double t0 = core::global_real_clock().now();
  if (trace.sampled() && logger_) {
    logger_->log(netlog::tags::kDpssMasterIn, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"TYPE", std::to_string(msg.type)}});
  }
  net::Message reply;
  if (msg.type == kOpenRequest) {
    auto req = decode_open_request(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      bool allowed;
      {
        std::lock_guard lk(mu_);
        allowed = !acl_enabled_ || acl_.count(req.value().auth_token) > 0;
      }
      if (!allowed) {
        reply = encode_error_reply(core::permission_denied(
            "token rejected for dataset " + req.value().dataset));
      } else {
        auto found = lookup(req.value().dataset);
        if (!found.is_ok()) {
          reply = encode_error_reply(found.status());
        } else {
          OpenReply r = std::move(found).take();
          r.handle = next_handle_.fetch_add(1);
          opens_.inc();
          reply = encode_open_reply(r);
        }
      }
    }
  } else if (msg.type == kHeartbeat) {
    auto req = decode_heartbeat(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      heartbeats_.inc();
      heartbeat(req.value().server, req.value().requests_served);
      reply.type = kHeartbeatReply;
    }
  } else if (msg.type == kFailureReport) {
    auto req = decode_failure_report(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      failure_reports_.inc();
      report_failure(req.value().server);
      reply.type = kFailureReportReply;
    }
  } else if (msg.type == kFixupReport) {
    auto req = decode_fixup_report(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      ingest::FixupTask task;
      task.dataset = req.value().dataset;
      task.block = req.value().block;
      task.generation = req.value().generation;
      task.target = req.value().target;
      report_fixup(task);
      reply.type = kFixupReportReply;
    }
  } else if (msg.type == kCloseRequest) {
    reply.type = kCloseReply;
  } else if (msg.type == kStatsRequest) {
    reply = encode_stats_reply(registry_.render_text());
  } else if (msg.type == kSpanExportRequest) {
    auto req = decode_span_export_request(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      const SpanExportBatch& batch = req.value();
      const std::uint64_t accepted =
          collector_.ingest(batch.host, batch.sent_at,
                            core::global_real_clock().now(), batch.spans);
      reply = encode_span_export_reply(accepted);
    }
  } else if (msg.type == kTraceReportRequest) {
    reply = encode_trace_report_reply(trace_report());
  } else {
    reply = encode_error_reply(
        core::invalid_argument("unknown request type at master"));
  }
  request_seconds_.observe(
      std::max(0.0, core::global_real_clock().now() - t0));
  if (trace.sampled()) {
    reply.trace_id = trace.trace_id;
    reply.span_id = trace.span_id;
    if (logger_) {
      logger_->log(netlog::tags::kDpssMasterOut, -1, -1,
                   {{"TRACE", obs::trace_hex(trace.trace_id)},
                    {"SPAN", obs::trace_hex(trace.span_id)}});
    }
  }
  return reply;
}

}  // namespace visapult::dpss
