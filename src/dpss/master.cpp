#include "dpss/master.h"

namespace visapult::dpss {

Master::~Master() { shutdown(); }

core::Status Master::register_dataset(const std::string& name,
                                      const DatasetLayout& layout,
                                      std::vector<ServerAddress> servers) {
  if (layout.server_count != servers.size()) {
    return core::invalid_argument(
        "layout.server_count does not match server list");
  }
  if (layout.block_bytes == 0 || layout.stripe_blocks == 0) {
    return core::invalid_argument("zero block or stripe size");
  }
  std::lock_guard lk(mu_);
  catalog_[name] = Entry{layout, std::move(servers)};
  return core::Status::ok();
}

core::Result<OpenReply> Master::lookup(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return core::not_found("dataset not registered: " + name);
  }
  OpenReply reply;
  reply.handle = 0;  // assigned by the service loop
  reply.layout = it->second.layout;
  reply.servers = it->second.servers;
  return reply;
}

std::vector<std::string> Master::dataset_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

void Master::set_acl(std::set<std::string> allowed_tokens) {
  std::lock_guard lk(mu_);
  acl_ = std::move(allowed_tokens);
  acl_enabled_ = true;
}

void Master::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] { service_loop(stream); });
}

void Master::shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Master::service_loop(net::StreamPtr stream) {
  for (;;) {
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) return;

    net::Message reply;
    if (msg.value().type == kOpenRequest) {
      auto req = decode_open_request(msg.value());
      if (!req.is_ok()) {
        reply = encode_error_reply(req.status());
      } else {
        bool allowed;
        {
          std::lock_guard lk(mu_);
          allowed = !acl_enabled_ || acl_.count(req.value().auth_token) > 0;
        }
        if (!allowed) {
          reply = encode_error_reply(core::permission_denied(
              "token rejected for dataset " + req.value().dataset));
        } else {
          auto found = lookup(req.value().dataset);
          if (!found.is_ok()) {
            reply = encode_error_reply(found.status());
          } else {
            OpenReply r = std::move(found).take();
            r.handle = next_handle_.fetch_add(1);
            opens_.fetch_add(1);
            reply = encode_open_reply(r);
          }
        }
      }
    } else if (msg.value().type == kCloseRequest) {
      reply.type = kCloseReply;
    } else {
      reply = encode_error_reply(
          core::invalid_argument("unknown request type at master"));
    }
    if (auto st = net::send_message(*stream, reply); !st.is_ok()) return;
  }
}

}  // namespace visapult::dpss
