#include "dpss/master.h"

#include <algorithm>

#include "obs/profiler.h"

namespace visapult::dpss {

Master::Master()
    : opens_(registry_.counter("dpss_master_opens_total")),
      read_timeouts_(registry_.counter("dpss_master_read_timeouts_total")),
      heartbeats_(registry_.counter("dpss_master_heartbeats_total")),
      failure_reports_(
          registry_.counter("dpss_master_failure_reports_total")),
      fixups_applied_(registry_.counter("dpss_master_fixups_applied_total")),
      fixups_dropped_(registry_.counter("dpss_master_fixups_dropped_total")),
      meta_log_appends_(registry_.counter("dpss_meta_log_appends_total")),
      meta_delta_opens_(registry_.counter("dpss_meta_delta_opens_total")),
      meta_snapshot_opens_(
          registry_.counter("dpss_meta_snapshot_opens_total")),
      meta_forwarded_opens_(
          registry_.counter("dpss_meta_forwarded_opens_total")),
      meta_leader_elections_(
          registry_.counter("dpss_meta_leader_elections_total")),
      meta_replication_failures_(
          registry_.counter("dpss_meta_replication_failures_total")),
      request_seconds_(registry_.histogram("dpss_master_request_seconds")) {
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    out.push_back({"dpss_master_fixup_depth", "",
                   static_cast<double>(fixup_depth())});
    out.push_back({"dpss_master_fixups_enqueued_total", "",
                   static_cast<double>(fixups_enqueued())});
  });
  // Metadata plane gauges: the shard's log epoch, its role, and how far
  // its slowest follower trails the log (0 with no followers).
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    const std::uint64_t epoch = meta_log_.last_epoch();
    out.push_back({"dpss_meta_epoch", "", static_cast<double>(epoch)});
    out.push_back(
        {"dpss_meta_is_leader", "", is_leader_.load() ? 1.0 : 0.0});
    std::lock_guard lk(mu_);
    out.push_back(
        {"dpss_meta_shard_id", "", static_cast<double>(shard_id_)});
    std::uint64_t lag = 0;
    for (const auto& f : followers_) {
      const auto it = follower_epochs_.find(f.key());
      const std::uint64_t acked =
          it == follower_epochs_.end() ? 0 : it->second;
      lag = std::max(lag, epoch - std::min(epoch, acked));
    }
    out.push_back(
        {"dpss_meta_follower_lag", "", static_cast<double>(lag)});
  });
  // The analysis plane rides the master's exposition: trace stage
  // histograms + slowest-trace exemplars, and per-rule alert status.
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    collector_.collect_samples(out);
    alerts_.collect_samples(out);
  });
}

Master::~Master() { shutdown(); }

core::Status Master::register_dataset(const std::string& name,
                                      const DatasetLayout& layout,
                                      std::vector<ServerAddress> servers,
                                      const PlacementOptions& placement) {
  meta::LogEntry entry;
  entry.kind = meta::EntryKind::kRegister;
  entry.dataset = name;
  entry.layout = layout;
  entry.placement = placement;
  entry.servers = std::move(servers);
  std::lock_guard lk(mu_);
  if (!is_leader_.load()) {
    return core::failed_precondition(
        "not the shard leader for dataset " + name);
  }
  if (auto st = catalog_.validate(entry); !st.is_ok()) return st;
  entry.epoch = meta_log_.append(entry);
  meta_log_appends_.inc();
  if (auto st = catalog_.apply(entry); !st.is_ok()) return st;
  replicate_to_followers(entry);
  return core::Status::ok();
}

core::Result<OpenReply> Master::lookup(const std::string& name,
                                       std::uint64_t known_epoch) const {
  auto found = catalog_.lookup(name);
  if (!found) {
    return core::not_found("dataset not registered: " + name);
  }
  const meta::CatalogEntry& entry = *found;
  OpenReply reply;
  reply.handle = 0;  // assigned by the service loop
  reply.catalog_epoch = entry.epoch;
  reply.max_generation = gossip_.floor(name);
  reply.cache_hint = gossip_.hint(name);
  if (known_epoch != 0 && known_epoch == entry.epoch) {
    // The client's cached placement is current: skip the snapshot (and
    // the health/load scan) entirely -- this is the delta-open fast path.
    reply.not_modified = true;
    return reply;
  }
  reply.layout = entry.layout;
  reply.servers = entry.servers;
  // Effective factor: the configured one, clamped to the current
  // membership (matches the active map after a shrinking rebalance).
  reply.replication_factor = static_cast<std::uint32_t>(
      std::min<std::size_t>(entry.placement.replication_factor,
                            entry.servers.size()));
  reply.ring_vnodes =
      entry.placement.uses_ring()
          ? (entry.placement.ring_vnodes > 0
                 ? entry.placement.ring_vnodes
                 : static_cast<std::uint32_t>(placement::kDefaultVnodes))
          : 0;
  reply.ec = entry.placement.ec;
  {
    std::lock_guard lk(mu_);
    reply.ingest_capable = ingest_capable_;
  }
  // Health/load snapshot taken outside mu_: the tracker has its own lock.
  reply.server_health.reserve(reply.servers.size());
  reply.server_load.reserve(reply.servers.size());
  for (const auto& addr : reply.servers) {
    reply.server_health.push_back(health_.state(addr));
    reply.server_load.push_back(health_.load(addr));
  }
  return reply;
}

std::shared_ptr<const placement::PlacementMap> Master::placement_map(
    const std::string& name) const {
  auto found = catalog_.lookup(name);
  return found ? found->map : nullptr;
}

core::Result<placement::RebalancePlan> Master::rebalance_dataset(
    const std::string& name, std::vector<ServerAddress> new_servers,
    const std::function<core::Status(const placement::RebalancePlan&)>&
        executor) {
  if (new_servers.empty()) {
    return core::invalid_argument("rebalance needs at least one server");
  }
  std::lock_guard lk(mu_);
  if (!is_leader_.load()) {
    return core::failed_precondition(
        "not the shard leader for dataset " + name);
  }
  auto found = catalog_.lookup(name);
  if (!found) {
    return core::not_found("dataset not registered: " + name);
  }
  const meta::CatalogEntry entry = *found;
  if (!entry.map) {
    return core::failed_precondition(
        "dataset uses classic striping; re-ingest with a replication "
        "factor to enable rebalancing");
  }
  // The *configured* replication factor is kept in the catalog entry; only
  // the map built over the current membership is clamped, so a shrink to
  // one server followed by a regrow restores full replication.
  PlacementOptions active = entry.placement;
  if (active.ec.enabled() &&
      active.ec.total_slices() > new_servers.size()) {
    // An EC group cannot shed slices the way replication sheds copies:
    // fewer than k+m distinct servers cannot hold a stripe at all.
    return core::failed_precondition(
        "EC dataset needs " + std::to_string(active.ec.total_slices()) +
        " servers; only " + std::to_string(new_servers.size()) + " offered");
  }
  if (active.replication_factor > new_servers.size()) {
    active.replication_factor =
        static_cast<std::uint32_t>(new_servers.size());
  }
  auto new_map =
      meta::Catalog::build_map(name, entry.layout, new_servers, active);
  placement::GenerationView gen_view;
  if (generation_view_) {
    gen_view = [view = generation_view_, name](const ServerAddress& server,
                                               std::uint64_t group) {
      return view(name, server, group);
    };
  }
  placement::RebalancePlan plan =
      placement::Rebalancer::plan(*entry.map, *new_map, gen_view);
  // The executor's slice reconstruction pads and trims with the dataset's
  // byte geometry, which only the catalog knows.
  plan.block_bytes = entry.layout.block_bytes;
  plan.total_bytes = entry.layout.total_bytes;
  if (executor) {
    // Move the blocks while the catalog still serves the old map: an
    // open() concurrent with the rebalance never routes reads to a
    // replica that does not hold its blocks yet.
    if (auto st = executor(plan); !st.is_ok()) return st;
  }
  // Commit: the map swap is a log entry, replicated to the shard's
  // followers like every other catalog mutation.
  meta::LogEntry le;
  le.kind = meta::EntryKind::kUpdate;
  le.dataset = name;
  le.layout = entry.layout;
  le.layout.server_count = static_cast<std::uint32_t>(new_servers.size());
  le.placement = entry.placement;
  le.servers = std::move(new_servers);
  le.epoch = meta_log_.append(le);
  meta_log_appends_.inc();
  if (auto st = catalog_.apply(le); !st.is_ok()) return st;
  replicate_to_followers(le);
  return plan;
}

// ---- sharded metadata plane -------------------------------------------------

void Master::configure_meta(MetaConfig config, Connector peers) {
  std::lock_guard lk(mu_);
  shard_map_ = std::move(config.shard_map);
  shard_id_ = config.shard_id;
  is_leader_.store(config.is_leader);
  address_ = std::move(config.address);
  peers_ = std::move(peers);
}

void Master::set_followers(std::vector<ServerAddress> followers) {
  std::lock_guard lk(mu_);
  followers_ = std::move(followers);
}

void Master::set_shard_leader(std::uint32_t shard,
                              const ServerAddress& leader) {
  std::lock_guard lk(mu_);
  shard_leaders_[shard] = leader;
}

void Master::promote_to_leader() {
  if (!is_leader_.exchange(true)) meta_leader_elections_.inc();
}

bool Master::is_leader() const { return is_leader_.load(); }

std::uint32_t Master::shard_id() const {
  std::lock_guard lk(mu_);
  return shard_id_;
}

std::uint64_t Master::leader_elections() const {
  return meta_leader_elections_.value();
}

void Master::set_generation_view(DatasetGenerationView view) {
  std::lock_guard lk(mu_);
  generation_view_ = std::move(view);
}

MetaStatus Master::meta_status() const {
  MetaStatus s;
  std::lock_guard lk(mu_);
  s.shard_id = shard_id_;
  s.shard_count = shard_map_.shard_count();
  s.is_leader = is_leader_.load();
  s.epoch = meta_log_.last_epoch();
  s.address = address_;
  s.datasets = catalog_.size();
  s.delta_opens = meta_delta_opens_.value();
  s.snapshot_opens = meta_snapshot_opens_.value();
  s.forwarded_opens = meta_forwarded_opens_.value();
  s.leader_elections = meta_leader_elections_.value();
  return s;
}

void Master::replicate_to_followers(const meta::LogEntry& entry) {
  // Called under mu_, which serialises the mutation path -- entries reach
  // each follower in epoch order.
  if (!peers_ || followers_.empty()) return;
  auto push = [this](const ServerAddress& to, const meta::LogEntry& e)
      -> core::Result<MetaAppendReply> {
    auto stream = peers_(to);
    if (!stream.is_ok()) return stream.status();
    MetaAppendRequest req;
    req.entry = e;
    if (auto st = net::send_message(*stream.value(),
                                    encode_meta_append_request(req));
        !st.is_ok()) {
      return st;
    }
    auto raw = net::recv_message(*stream.value());
    if (!raw.is_ok()) return raw.status();
    return decode_meta_append_reply(raw.value());
  };
  for (const auto& f : followers_) {
    auto r = push(f, entry);
    bool ok = false;
    if (r.is_ok() && r.value().accepted) {
      follower_epochs_[f.key()] = r.value().follower_epoch;
      ok = true;
    } else if (r.is_ok()) {
      // The follower is not at entry.epoch - 1: resend the gap from its
      // acked epoch.  A follower behind the retention window pulls a
      // snapshot itself (catch_up) instead.
      if (auto gap = meta_log_.entries_since(r.value().follower_epoch)) {
        ok = true;
        for (const auto& e : *gap) {
          auto rr = push(f, e);
          if (!rr.is_ok() || !rr.value().accepted) {
            ok = false;
            break;
          }
          follower_epochs_[f.key()] = rr.value().follower_epoch;
        }
      }
    }
    // Best effort: a dead follower is tolerated (it re-syncs on rejoin),
    // but the miss is visible in metrics.
    if (!ok) meta_replication_failures_.inc();
  }
}

core::Result<net::Message> Master::forward_open(std::uint32_t owner,
                                                const net::Message& msg) {
  ServerAddress leader;
  Connector peers;
  {
    std::lock_guard lk(mu_);
    peers = peers_;
    auto it = shard_leaders_.find(owner);
    if (it == shard_leaders_.end()) {
      return core::unavailable("no known leader for meta shard " +
                               std::to_string(owner));
    }
    leader = it->second;
  }
  if (!peers) return core::unavailable("no peer connector configured");
  auto stream = peers(leader);
  if (!stream.is_ok()) return stream.status();
  if (auto st = net::send_message(*stream.value(), msg); !st.is_ok()) {
    return st;
  }
  return net::recv_message(*stream.value());
}

core::Status Master::catch_up(const ServerAddress& leader) {
  Connector peers;
  {
    std::lock_guard lk(mu_);
    peers = peers_;
  }
  if (!peers) return core::unavailable("no peer connector configured");
  auto stream = peers(leader);
  if (!stream.is_ok()) return stream.status();
  PlacementDeltaRequest req;
  req.since_epoch = meta_log_.last_epoch();
  if (auto st = net::send_message(*stream.value(),
                                  encode_placement_delta_request(req));
      !st.is_ok()) {
    return st;
  }
  auto raw = net::recv_message(*stream.value());
  if (!raw.is_ok()) return raw.status();
  auto reply = decode_placement_delta_reply(raw.value());
  if (!reply.is_ok()) return reply.status();
  std::lock_guard lk(mu_);
  if (reply.value().snapshot) {
    // Too far behind the leader's window: rebuild from the snapshot and
    // jump the log to the leader's epoch.
    for (const auto& e : reply.value().entries) {
      if (auto st = catalog_.apply(e); !st.is_ok()) return st;
    }
    meta_log_.reset(reply.value().epoch);
  } else {
    for (const auto& e : reply.value().entries) {
      if (meta_log_.accept(e)) {
        if (auto st = catalog_.apply(e); !st.is_ok()) return st;
      }
    }
  }
  return core::Status::ok();
}

net::Message Master::handle_meta_append(const net::Message& msg) {
  auto req = decode_meta_append_request(msg);
  if (!req.is_ok()) return encode_error_reply(req.status());
  MetaAppendReply reply;
  std::lock_guard lk(mu_);
  if (meta_log_.accept(req.value().entry)) {
    // accept() admits exactly the next epoch, so apply cannot regress.
    if (catalog_.apply(req.value().entry).is_ok()) reply.accepted = true;
  }
  reply.follower_epoch = meta_log_.last_epoch();
  return encode_meta_append_reply(reply);
}

net::Message Master::handle_placement_delta(const net::Message& msg) {
  auto req = decode_placement_delta_request(msg);
  if (!req.is_ok()) return encode_error_reply(req.status());
  const PlacementDeltaRequest& q = req.value();
  PlacementDeltaReply reply;
  if (q.dataset.empty()) {
    // Whole-shard sync (follower catch-up, tooling).
    reply.epoch = meta_log_.last_epoch();
    if (auto entries = meta_log_.entries_since(q.since_epoch)) {
      reply.entries = std::move(*entries);
    } else {
      reply.snapshot = true;
      reply.entries = catalog_.snapshot();
    }
    return encode_placement_delta_reply(reply);
  }
  auto found = catalog_.lookup(q.dataset);
  if (!found) {
    return encode_error_reply(
        core::not_found("dataset not registered: " + q.dataset));
  }
  reply.epoch = found->epoch;
  if (q.since_epoch >= found->epoch) {
    // Already current: empty delta.
    return encode_placement_delta_reply(reply);
  }
  if (auto entries = meta_log_.entries_since(q.since_epoch)) {
    for (auto& e : *entries) {
      if (e.dataset == q.dataset) reply.entries.push_back(std::move(e));
    }
  } else {
    // Window pruned: one self-contained register entry *is* the dataset's
    // snapshot (entries carry full state, not diffs).
    reply.snapshot = true;
    meta::LogEntry le;
    le.epoch = found->epoch;
    le.kind = meta::EntryKind::kRegister;
    le.dataset = q.dataset;
    le.layout = found->layout;
    le.placement = found->placement;
    le.servers = found->servers;
    reply.entries.push_back(std::move(le));
  }
  return encode_placement_delta_reply(reply);
}

void Master::heartbeat(const ServerAddress& server,
                       std::uint64_t requests_served, double now) {
  health_.heartbeat(server, requests_served, now);
}

void Master::report_failure(const ServerAddress& server) {
  health_.report_failure(server);
}

void Master::enable_auto_rebalance(
    AutoRebalanceConfig config,
    std::function<core::Status(const placement::RebalancePlan&)> executor) {
  std::lock_guard lk(mu_);
  auto_rebalance_enabled_ = true;
  auto_config_ = config;
  auto_executor_ = std::move(executor);
}

void Master::set_fixup_executor(
    std::function<core::Status(const ingest::FixupTask&)> executor) {
  std::lock_guard lk(mu_);
  fixup_executor_ = std::move(executor);
}

void Master::report_fixup(const ingest::FixupTask& task) {
  fixups_.push(task);
}

void Master::set_ingest_capable(bool capable) {
  std::lock_guard lk(mu_);
  ingest_capable_ = capable;
}

core::Status Master::enable_alerts(const std::vector<std::string>& rules) {
  for (const std::string& text : rules) {
    auto st = alerts_.add_rule(text);
    if (!st.is_ok()) return st;
  }
  alerts_enabled_.store(true);
  return core::Status::ok();
}

std::string Master::trace_report() {
  return collector_.render_report(5) + alerts_.render_text();
}

std::vector<std::string> Master::tick(double now) {
  OBS_STAGE("master.tick");
  health_.tick(now);

  // Hotness decays with the tick clock, not with traffic.
  gossip_.decay();

  // Analysis plane: finalize traces that have gone idle (idleness measured
  // on the real clock their ingest stamps used), then scrape the registry
  // into the alert rules with the caller's `now` as the window clock.
  collector_.finalize_idle(core::global_real_clock().now(),
                           trace_linger_.load());
  if (alerts_enabled_.load()) alerts_.scrape(registry_.samples(), now);

  // Drain the ingest fixup queue: every task re-syncs one replica (or
  // parity owner) that missed a generation.  Failures requeue with a
  // bumped attempt count -- the lagging server may simply still be down --
  // until the retry budget runs out.
  std::function<core::Status(const ingest::FixupTask&)> fixup_executor;
  {
    std::lock_guard lk(mu_);
    fixup_executor = fixup_executor_;
  }
  if (fixup_executor && fixups_.depth() > 0) {
    for (ingest::FixupTask& task : fixups_.drain()) {
      if (fixup_executor(task).is_ok()) {
        fixups_applied_.inc();
        continue;
      }
      if (++task.attempts >= kMaxFixupAttempts) {
        fixups_dropped_.inc();
      } else {
        fixups_.push(task);
      }
    }
  }

  // Track when each down server was first observed; a server that comes
  // back (heartbeat rejoin) clears its entry.
  std::vector<ServerAddress> down, overdue;
  for (const auto& entry : health_.snapshot()) {
    if (entry.state == placement::HealthState::kDown) {
      down.push_back(entry.server);
    }
  }
  std::function<core::Status(const placement::RebalancePlan&)> executor;
  std::vector<std::pair<std::string, std::vector<ServerAddress>>> work;
  {
    std::lock_guard lk(mu_);
    std::map<std::string, double> still_down;
    for (const auto& addr : down) {
      const auto it = down_since_.find(addr.key());
      const double since = it == down_since_.end() ? now : it->second;
      still_down[addr.key()] = since;
      if (auto_rebalance_enabled_ &&
          now - since >= auto_config_.down_deadline_seconds) {
        overdue.push_back(addr);
      }
    }
    down_since_ = std::move(still_down);
    // Only a leader may mutate placement; a follower just tracks health.
    if (overdue.empty() || !is_leader_.load()) return {};
    executor = auto_executor_;

    auto is_down = [&down](const ServerAddress& a) {
      for (const auto& d : down) {
        if (d == a) return true;
      }
      return false;
    };
    auto is_overdue = [&overdue](const ServerAddress& a) {
      for (const auto& o : overdue) {
        if (o == a) return true;
      }
      return false;
    };
    for (const auto& name : catalog_.names()) {
      auto entry = catalog_.lookup(name);
      if (!entry || !entry->map) continue;  // classic stripes cannot rebalance
      bool triggered = false;
      std::vector<ServerAddress> live;
      for (const auto& addr : entry->servers) {
        if (is_overdue(addr)) triggered = true;
        if (!is_down(addr)) live.push_back(addr);
      }
      if (!triggered || live.empty() ||
          live.size() == entry->servers.size()) {
        continue;
      }
      work.emplace_back(name, std::move(live));
    }
  }

  // Execute outside mu_: rebalance_dataset takes the lock itself, and the
  // executor moves real data.
  std::vector<std::string> rebalanced;
  for (auto& [name, live] : work) {
    if (rebalance_dataset(name, std::move(live), executor).is_ok()) {
      rebalanced.push_back(name);
    }
  }
  return rebalanced;
}

std::vector<std::string> Master::dataset_names() const {
  return catalog_.names();
}

void Master::set_acl(std::set<std::string> allowed_tokens) {
  std::lock_guard lk(mu_);
  acl_ = std::move(allowed_tokens);
  acl_enabled_ = true;
}

void Master::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] { service_loop(stream); });
}

void Master::shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Master::service_loop(net::StreamPtr stream) {
  for (;;) {
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) {
      if (msg.status().code() == core::StatusCode::kDeadlineExceeded) {
        note_read_timeout();
      }
      return;
    }
    net::Message reply = handle_request(std::move(msg).take());
    if (auto st = net::send_message(*stream, reply); !st.is_ok()) return;
  }
}

net::Message Master::handle_request(net::Message&& msg) {
  OBS_STAGE("master.request");
  const obs::TraceContext trace{msg.trace_id, msg.span_id};
  const double t0 = core::global_real_clock().now();
  if (trace.sampled() && logger_) {
    logger_->log(netlog::tags::kDpssMasterIn, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"TYPE", std::to_string(msg.type)}});
  }
  net::Message reply;
  if (msg.type == kOpenRequest) {
    OBS_STAGE("master.open");
    auto req = decode_open_request(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      bool allowed;
      bool forward = false;
      std::uint32_t owner = 0;
      {
        std::lock_guard lk(mu_);
        allowed = !acl_enabled_ || acl_.count(req.value().auth_token) > 0;
        owner = shard_map_.shard_for(req.value().dataset);
        forward = owner != shard_id_ && peers_ != nullptr;
      }
      if (!allowed) {
        reply = encode_error_reply(core::permission_denied(
            "token rejected for dataset " + req.value().dataset));
      } else if (forward) {
        // Any shard answers any open: relay to the owner's leader.
        auto relayed = forward_open(owner, msg);
        if (!relayed.is_ok()) {
          reply = encode_error_reply(relayed.status());
        } else {
          meta_forwarded_opens_.inc();
          reply = std::move(relayed).take();
        }
      } else {
        auto found =
            lookup(req.value().dataset, req.value().known_epoch);
        if (!found.is_ok()) {
          reply = encode_error_reply(found.status());
        } else {
          OpenReply r = std::move(found).take();
          r.handle = next_handle_.fetch_add(1);
          opens_.inc();
          gossip_.note_open(req.value().dataset);
          if (r.not_modified) {
            meta_delta_opens_.inc();
          } else {
            meta_snapshot_opens_.inc();
          }
          reply = encode_open_reply(r);
        }
      }
    }
  } else if (msg.type == kHeartbeat) {
    auto req = decode_heartbeat(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      heartbeats_.inc();
      heartbeat(req.value().server, req.value().requests_served);
      // Gossip: merge the server's per-dataset generations upward, hand
      // the merged floors back down on the same beat.
      gossip_.merge(req.value().floors);
      reply = encode_heartbeat_reply(gossip_.snapshot());
    }
  } else if (msg.type == kFailureReport) {
    auto req = decode_failure_report(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      failure_reports_.inc();
      report_failure(req.value().server);
      reply.type = kFailureReportReply;
    }
  } else if (msg.type == kFixupReport) {
    auto req = decode_fixup_report(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      ingest::FixupTask task;
      task.dataset = req.value().dataset;
      task.block = req.value().block;
      task.generation = req.value().generation;
      task.target = req.value().target;
      report_fixup(task);
      reply.type = kFixupReportReply;
    }
  } else if (msg.type == kPlacementDeltaRequest) {
    reply = handle_placement_delta(msg);
  } else if (msg.type == kMetaAppendRequest) {
    reply = handle_meta_append(msg);
  } else if (msg.type == kMetaStatusRequest) {
    reply = encode_meta_status_reply(meta_status());
  } else if (msg.type == kCloseRequest) {
    reply.type = kCloseReply;
  } else if (msg.type == kStatsRequest) {
    reply = encode_stats_reply(registry_.render_text());
  } else if (msg.type == kSpanExportRequest) {
    auto req = decode_span_export_request(msg);
    if (!req.is_ok()) {
      reply = encode_error_reply(req.status());
    } else {
      const SpanExportBatch& batch = req.value();
      const std::uint64_t accepted =
          collector_.ingest(batch.host, batch.sent_at,
                            core::global_real_clock().now(), batch.spans);
      reply = encode_span_export_reply(accepted);
    }
  } else if (msg.type == kTraceReportRequest) {
    reply = encode_trace_report_reply(trace_report());
  } else if (msg.type == kProfileRequest) {
    reply = encode_profile_reply(obs::Profiler::global().render_collapsed());
  } else {
    reply = encode_error_reply(
        core::invalid_argument("unknown request type at master"));
  }
  request_seconds_.observe(
      std::max(0.0, core::global_real_clock().now() - t0));
  if (trace.sampled()) {
    reply.trace_id = trace.trace_id;
    reply.span_id = trace.span_id;
    if (logger_) {
      logger_->log(netlog::tags::kDpssMasterOut, -1, -1,
                   {{"TRACE", obs::trace_hex(trace.trace_id)},
                    {"SPAN", obs::trace_hex(trace.span_id)}});
    }
  }
  return reply;
}

}  // namespace visapult::dpss
