// HPSS stand-in: the archival tier behind the DPSS cache.
//
// Section 3.5: datasets "are often stored on archival systems such as HPSS
// [15], a high performance tertiary storage system.  Clearly, it is
// impractical to transfer data sets of this magnitude to a local disk for
// processing.  Also, archival systems such as the HPSS are not typically
// tuned for wide-area network access, and only provide full file, not
// block level, access to data. ... Therefore, we can migrate the files
// from HPSS to a nearby DPSS cache."
//
// HpssArchive models exactly those properties: whole-file access only
// (no seeks, no block reads), with a service-time model of tape mount +
// streaming.  migrate_to_dpss() is the staging step every campaign in the
// paper performed before Visapult ran.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "dpss/deployment.h"
#include "vol/dataset.h"

namespace visapult::dpss {

struct HpssModel {
  double mount_seconds = 20.0;            // tape mount + position
  double stream_bytes_per_sec = 15e6;     // single-mover streaming rate
};

class HpssArchive {
 public:
  explicit HpssArchive(HpssModel model = {}) : model_(model) {}

  // Archive a dataset as one file per time series (how the simulations
  // wrote them).  Generation happens lazily at read time so 41 GB series
  // are representable without materialising them.
  void store(const vol::DatasetDesc& desc);

  bool contains(const std::string& name) const;
  std::vector<std::string> file_names() const;

  // Whole-file read -- the ONLY read HPSS offers.  Returns the bytes and,
  // via `service_seconds`, the modeled retrieval time (mount + stream).
  core::Result<std::vector<std::uint8_t>> read_file(const std::string& name,
                                                    double* service_seconds = nullptr);

  // Modeled retrieval time without materialising the bytes (for the
  // paper-scale arithmetic: staging 41.4 GB from tape).
  core::Result<double> retrieval_seconds(const std::string& name) const;

  const HpssModel& model() const { return model_; }

 private:
  HpssModel model_;
  mutable std::mutex mu_;
  std::map<std::string, vol::DatasetDesc> files_;
};

struct MigrationReport {
  std::uint64_t bytes = 0;
  double hpss_service_seconds = 0.0;  // modeled archive retrieval time
};

// The staging step: pull the whole file from the archive and stripe it
// into the DPSS cache (block-level, WAN-tuned), registering it with the
// master.  After this, Visapult back ends do block reads against the
// cache -- never against HPSS.
core::Result<MigrationReport> migrate_to_dpss(HpssArchive& archive,
                                              const std::string& name,
                                              PipeDeployment& cache,
                                              std::uint32_t block_bytes = kDefaultBlockBytes);

}  // namespace visapult::dpss
