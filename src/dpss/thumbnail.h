// DPSS offline visualization service: automatic thumbnails.
//
// Paper section 5 (future work): "Additional possibilities include
// off-line visualization services, such as the offline and automatic
// creation of thumbnail representations of datasets or metadata."
//
// ThumbnailService walks a registered dataset, downsamples each timestep,
// volume renders a small preview along each principal axis, and stores the
// results as an auxiliary "<dataset>.thumbs" DPSS file next to the data --
// so a remote user can browse a 41 GB time series through kilobyte-sized
// previews before committing to a full Visapult session.  Thumbnails are
// served through the ordinary block protocol; fetch_thumbnail() is the
// client-side convenience.
#pragma once

#include <string>

#include "core/image.h"
#include "core/status.h"
#include "dpss/client.h"
#include "dpss/master.h"
#include "dpss/server.h"
#include "render/transfer.h"
#include "vol/dataset.h"

namespace visapult::dpss {

struct ThumbnailOptions {
  int size = 32;          // max thumbnail edge, pixels
  int downsample = 4;     // volume decimation factor before rendering
  vol::Axis axis = vol::Axis::kZ;
};

// Fixed-size on-wire record: one thumbnail per (timestep).
struct ThumbnailRecord {
  std::int32_t timestep = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;
  float value_min = 0.0f;   // dataset metadata travels with the preview
  float value_max = 0.0f;
  core::ImageRGBA image;
};

// The auxiliary dataset name for a source dataset.
std::string thumbnail_dataset_name(const std::string& dataset);

// Offline pass: generate thumbnails for every timestep of `desc` and
// ingest them into the given servers + master as "<name>.thumbs".
// Runs on the service side (has generator access, like the DPSS host that
// staged the data from HPSS).
core::Status generate_thumbnails(Master& master,
                                 std::vector<BlockServer*> servers,
                                 std::vector<ServerAddress> addresses,
                                 const vol::DatasetDesc& desc,
                                 const render::TransferFunction& tf,
                                 const ThumbnailOptions& options = {});

// Client side: fetch the thumbnail of one timestep through the block API.
core::Result<ThumbnailRecord> fetch_thumbnail(DpssClient& client,
                                              const std::string& dataset,
                                              int timestep,
                                              const std::string& auth_token = "");

// Serialized size of one record (fixed for a given thumbnail size), which
// is also the block size of the .thumbs dataset: one record per block.
std::size_t thumbnail_record_bytes(int width, int height);

}  // namespace visapult::dpss
