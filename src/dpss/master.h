// DPSS master.
//
// Paper Fig. 7: the master performs "logical to physical block lookup,
// access control, load balancing" and hands clients back the set of block
// servers to stream from.  Data never flows through the master -- clients
// talk to block servers directly, which is what lets DPSS throughput scale
// with the number of servers.
//
// PR 3 makes the lookup replica-aware: a dataset registered with a
// PlacementOptions gets a consistent-hash PlacementMap (replication_factor
// copies of every block), OpenReplys carry the ring parameters plus a
// health/load snapshot so clients rank replicas least-loaded-live-first,
// and two new RPCs feed the health tracker: server heartbeats and
// client-reported I/O failures.  rebalance_dataset() recomputes the map
// for a changed server set and returns the Rebalancer's copy/drop plan for
// the deployment to execute.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "dpss/protocol.h"
#include "ingest/fixup.h"
#include "net/stream.h"
#include "netlog/logger.h"
#include "obs/alert.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "placement/health.h"
#include "placement/placement_map.h"
#include "placement/rebalancer.h"

namespace visapult::dpss {

// How a dataset's blocks map onto servers.  The default (replication
// factor 1, no ring) is the classic round-robin stripe of the seed
// reproduction; any other setting builds a consistent-hash PlacementMap.
// An enabled EC profile is the third mode: (k, m) Reed-Solomon slice
// groups (mutually exclusive with replication_factor > 1).
struct PlacementOptions {
  std::uint32_t replication_factor = 1;
  // 0 defaults to placement::kDefaultVnodes when a ring is needed.
  std::uint32_t ring_vnodes = 0;
  codec::EcProfile ec;

  bool uses_ring() const {
    return replication_factor > 1 || ring_vnodes > 0 || ec.enabled();
  }
};

// Background re-replication (PR 4 satellite): with auto-rebalance enabled
// the master watches its own HealthTracker from tick(now) and re-plans any
// ring-placed dataset that still references a server that has been down
// for at least `down_deadline_seconds`.
struct AutoRebalanceConfig {
  double down_deadline_seconds = 30.0;
};

class Master {
 public:
  Master();
  ~Master();

  // ---- catalog ----
  // Register a dataset: its layout plus the addresses of the servers
  // holding its stripes (order defines the striping).
  core::Status register_dataset(const std::string& name,
                                const DatasetLayout& layout,
                                std::vector<ServerAddress> servers,
                                const PlacementOptions& placement = {});
  core::Result<OpenReply> lookup(const std::string& name) const;
  std::vector<std::string> dataset_names() const;

  // Placement map snapshot for a ring-placed dataset (null for classic
  // striped datasets and unknown names).
  std::shared_ptr<const placement::PlacementMap> placement_map(
      const std::string& name) const;

  // Recompute placement over `new_servers` (a join, leave, or death) and
  // swap it in; returns the executed copy/drop plan.  `executor` runs the
  // plan against the block stores *while the catalog entry is locked and
  // still pointing at the old map*, so no open() can observe the new
  // assignment before its copies exist; the swap happens only if the
  // executor succeeds (a null executor swaps unconditionally -- callers
  // that move no data, e.g. tests of the planning itself).  The dataset's
  // configured replication factor is preserved: shrinking below it only
  // clamps the active map, and a later rebalance over enough servers
  // restores full replication.
  core::Result<placement::RebalancePlan> rebalance_dataset(
      const std::string& name, std::vector<ServerAddress> new_servers,
      const std::function<core::Status(const placement::RebalancePlan&)>&
          executor = nullptr);

  // ---- health / load ----
  placement::HealthTracker& health() { return health_; }
  const placement::HealthTracker& health() const { return health_; }
  void heartbeat(const ServerAddress& server, std::uint64_t requests_served,
                 double now = 0.0);
  void report_failure(const ServerAddress& server);

  // ---- background re-replication ----
  // Arm the watcher: `executor` moves the planned blocks/slices (the
  // deployment's apply_rebalance_plan closure), exactly as for an
  // operator-driven rebalance_dataset.
  void enable_auto_rebalance(
      AutoRebalanceConfig config,
      std::function<core::Status(const placement::RebalancePlan&)> executor);
  // Drive staleness demotion, the down-deadline watcher, and the ingest
  // fixup queue on the caller's clock (seconds; deployments and tests pass
  // explicit times so transitions stay deterministic).  Returns the
  // datasets rebalanced at this tick.
  std::vector<std::string> tick(double now);

  // ---- ingest fixups ----
  // Replicas/parity owners that missed a write's generation, reported by
  // clients (kFixupReport) and drained from tick() through the fixup
  // executor (the deployment's apply_fixup closure).  A task that keeps
  // failing is retried up to kMaxFixupAttempts ticks, then dropped.
  static constexpr int kMaxFixupAttempts = 3;
  void set_fixup_executor(
      std::function<core::Status(const ingest::FixupTask&)> executor);
  void report_fixup(const ingest::FixupTask& task);
  std::size_t fixup_depth() const { return fixups_.depth(); }
  std::uint64_t fixups_applied() const { return fixups_applied_.value(); }
  std::uint64_t fixups_dropped() const { return fixups_dropped_.value(); }
  std::uint64_t fixups_enqueued() const { return fixups_.enqueued(); }

  // Whether OpenReplys advertise the server-driven ingest pipeline.  Off
  // models an old-mode deployment: clients fall back to client-fanout
  // writes and refuse EC writes with a typed status.
  void set_ingest_capable(bool capable);

  // ---- access control ----
  // With an empty ACL every token is accepted; otherwise the OPEN token
  // must be present in the set.
  void set_acl(std::set<std::string> allowed_tokens);

  // ---- service ----
  void serve(net::StreamPtr stream);
  void shutdown();

  // One request in, one reply out -- shared by the blocking service loop
  // and the reactor-backed transport.  Thread-safe.
  net::Message handle_request(net::Message&& msg);

  // Per-request read timeouts the transport observed on master connections.
  void note_read_timeout() { read_timeouts_.inc(); }
  std::uint64_t read_timeouts() const { return read_timeouts_.value(); }

  std::uint64_t opens_served() const { return opens_.value(); }

  // The master's metrics plane (control-path counters, fixup queue depth,
  // request latency), rendered by the kStatsRequest handler.
  obs::MetricsRegistry& metrics_registry() { return registry_; }

  // ---- trace aggregation + alerting (PR 8) ----
  // The master doubles as the deployment's span collector: components ship
  // their finished spans via kSpanExportRequest, tick() finalizes traces
  // that have gone idle, and the collector's stage histograms + exemplars
  // ride the master's kStats exposition.
  obs::SpanCollector& span_collector() { return collector_; }
  const obs::SpanCollector& span_collector() const { return collector_; }

  // Alert rules evaluated against a registry scrape on every tick(now)
  // (tick's `now` is the scrape clock, so campaigns and tests control the
  // burn-rate windows).  Rules use AlertRule::parse syntax; an unparsable
  // rule is returned as the error.
  core::Status enable_alerts(const std::vector<std::string>& rules);
  obs::AlertEngine& alert_engine() { return alerts_; }

  // Seconds a trace must sit idle (no new spans) before tick() finalizes
  // it -- measured on the real clock the RPC arrival stamps use.  0
  // finalizes everything assembled at each tick.
  void set_trace_linger(double seconds) { trace_linger_.store(seconds); }

  // The kTraceReportRequest body: slowest-trace critical-path breakdowns
  // plus alert status lines.
  std::string trace_report();

  // Optional NetLogger: traced requests emit DPSS_MASTER_IN/OUT lifeline
  // events through it.
  void set_logger(std::shared_ptr<netlog::NetLogger> logger) {
    logger_ = std::move(logger);
  }

 private:
  void service_loop(net::StreamPtr stream);

  mutable std::mutex mu_;
  struct Entry {
    DatasetLayout layout;
    std::vector<ServerAddress> servers;
    PlacementOptions placement;
    // Null for classic striped datasets.
    std::shared_ptr<const placement::PlacementMap> map;
  };
  std::map<std::string, Entry> catalog_;
  std::set<std::string> acl_;
  bool acl_enabled_ = false;
  placement::HealthTracker health_;
  // Auto-rebalance state (guarded by mu_): when each server was first
  // *observed* down by tick(), keyed by address key().
  bool auto_rebalance_enabled_ = false;
  AutoRebalanceConfig auto_config_;
  std::function<core::Status(const placement::RebalancePlan&)> auto_executor_;
  std::map<std::string, double> down_since_;
  // Ingest pipeline state.  The queue has its own lock; the executor and
  // capability flag are guarded by mu_.
  ingest::FixupQueue fixups_;
  std::function<core::Status(const ingest::FixupTask&)> fixup_executor_;
  bool ingest_capable_ = true;
  std::vector<std::thread> threads_;
  std::vector<net::StreamPtr> streams_;
  // Metrics plane: registry_ precedes the instrument references it backs.
  obs::MetricsRegistry registry_;
  obs::Counter& opens_;
  obs::Counter& read_timeouts_;
  obs::Counter& heartbeats_;
  obs::Counter& failure_reports_;
  obs::Counter& fixups_applied_;
  obs::Counter& fixups_dropped_;
  obs::Histogram& request_seconds_;
  // Analysis plane: span collector + alert engine.  Both are internally
  // locked; alerts_enabled_ gates the per-tick registry scrape.
  obs::SpanCollector collector_;
  obs::AlertEngine alerts_;
  std::atomic<bool> alerts_enabled_{false};
  std::atomic<double> trace_linger_{0.5};
  std::shared_ptr<netlog::NetLogger> logger_;
  std::atomic<std::uint64_t> next_handle_{1};
};

}  // namespace visapult::dpss
