// DPSS master.
//
// Paper Fig. 7: the master performs "logical to physical block lookup,
// access control, load balancing" and hands clients back the set of block
// servers to stream from.  Data never flows through the master -- clients
// talk to block servers directly, which is what lets DPSS throughput scale
// with the number of servers.
//
// PR 3 makes the lookup replica-aware: a dataset registered with a
// PlacementOptions gets a consistent-hash PlacementMap (replication_factor
// copies of every block), OpenReplys carry the ring parameters plus a
// health/load snapshot so clients rank replicas least-loaded-live-first,
// and two new RPCs feed the health tracker: server heartbeats and
// client-reported I/O failures.  rebalance_dataset() recomputes the map
// for a changed server set and returns the Rebalancer's copy/drop plan for
// the deployment to execute.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "dpss/protocol.h"
#include "ingest/fixup.h"
#include "meta/catalog.h"
#include "meta/gossip.h"
#include "meta/log.h"
#include "meta/shard_map.h"
#include "net/stream.h"
#include "netlog/logger.h"
#include "obs/alert.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "placement/health.h"
#include "placement/placement_map.h"
#include "placement/rebalancer.h"

namespace visapult::dpss {

// How a dataset's blocks map onto servers -- moved to meta/types.h with
// the sharded metadata plane; aliased so every existing caller compiles.
using PlacementOptions = meta::PlacementOptions;

// Background re-replication (PR 4 satellite): with auto-rebalance enabled
// the master watches its own HealthTracker from tick(now) and re-plans any
// ring-placed dataset that still references a server that has been down
// for at least `down_deadline_seconds`.
struct AutoRebalanceConfig {
  double down_deadline_seconds = 30.0;
};

// One master's position in the sharded metadata plane.  The default is
// the legacy deployment: single shard, this master its (sole) leader.
struct MetaConfig {
  meta::ShardMap shard_map;
  std::uint32_t shard_id = 0;
  bool is_leader = true;
  // First-class identity of this master endpoint, so client failure
  // reports against a *master* are addressable by the same HealthTracker
  // machinery that covers block servers.
  ServerAddress address{"master", 0};
};

class Master {
 public:
  Master();
  ~Master();

  // ---- catalog ----
  // Register a dataset: its layout plus the addresses of the servers
  // holding its stripes (order defines the striping).  On a sharded
  // deployment this must run on the owning shard's leader: the mutation
  // is validated, appended to the replicated log, applied to the catalog
  // state machine, and pushed to the shard's followers.
  core::Status register_dataset(const std::string& name,
                                const DatasetLayout& layout,
                                std::vector<ServerAddress> servers,
                                const PlacementOptions& placement = {});
  core::Result<OpenReply> lookup(const std::string& name,
                                 std::uint64_t known_epoch = 0) const;
  std::vector<std::string> dataset_names() const;

  // Placement map snapshot for a ring-placed dataset (null for classic
  // striped datasets and unknown names).
  std::shared_ptr<const placement::PlacementMap> placement_map(
      const std::string& name) const;

  // Recompute placement over `new_servers` (a join, leave, or death) and
  // swap it in; returns the executed copy/drop plan.  `executor` runs the
  // plan against the block stores *while the catalog entry is locked and
  // still pointing at the old map*, so no open() can observe the new
  // assignment before its copies exist; the swap happens only if the
  // executor succeeds (a null executor swaps unconditionally -- callers
  // that move no data, e.g. tests of the planning itself).  The dataset's
  // configured replication factor is preserved: shrinking below it only
  // clamps the active map, and a later rebalance over enough servers
  // restores full replication.
  core::Result<placement::RebalancePlan> rebalance_dataset(
      const std::string& name, std::vector<ServerAddress> new_servers,
      const std::function<core::Status(const placement::RebalancePlan&)>&
          executor = nullptr);

  // ---- sharded metadata plane ----
  // Place this master in a shard: its shard id within `shard_map`, its
  // leader/follower role, and its own wire identity.  `peers` opens
  // transports to other masters (followers for replication, other shards'
  // leaders for open forwarding); null disables both, which is the
  // legacy single-master mode.
  void configure_meta(MetaConfig config, Connector peers = nullptr);
  // The followers this leader replicates appends to.
  void set_followers(std::vector<ServerAddress> followers);
  // Where the leader of `shard` currently lives, for open forwarding and
  // client redirects.  Updated by the cluster harness on elections.
  void set_shard_leader(std::uint32_t shard, const ServerAddress& leader);
  // Follower -> leader promotion (HealthTracker declared the old leader
  // dead).  Counts toward dpss_meta_leader_elections_total.
  void promote_to_leader();
  bool is_leader() const;
  std::uint32_t shard_id() const;
  const ServerAddress& address() const { return address_; }
  // The shard log's current epoch (== the catalog's max applied epoch).
  std::uint64_t meta_epoch() const { return meta_log_.last_epoch(); }
  meta::Catalog& catalog() { return catalog_; }
  const meta::Catalog& catalog() const { return catalog_; }
  meta::ReplicatedLog& meta_log() { return meta_log_; }
  meta::GenerationGossip& gossip() { return gossip_; }
  MetaStatus meta_status() const;
  // Pull-based follower catch-up: fetch the leader's log since our epoch
  // (snapshot on gap) over the peer connector and apply it.
  core::Status catch_up(const ServerAddress& leader);
  std::uint64_t leader_elections() const;

  // Generation source for rebalance planning (satellite: ROADMAP 2d).
  // Wired by deployments to query the block stores: returns the min
  // generation stamp server `server` holds across `group`'s blocks of
  // `dataset`, or -1 when it does not hold the whole group.  The master
  // binds the dataset when planning; null plans generation-blind, exactly
  // as before.
  using DatasetGenerationView = std::function<std::int64_t(
      const std::string& dataset, const ServerAddress& server,
      std::uint64_t group)>;
  void set_generation_view(DatasetGenerationView view);

  // ---- health / load ----
  placement::HealthTracker& health() { return health_; }
  const placement::HealthTracker& health() const { return health_; }
  void heartbeat(const ServerAddress& server, std::uint64_t requests_served,
                 double now = 0.0);
  void report_failure(const ServerAddress& server);

  // ---- background re-replication ----
  // Arm the watcher: `executor` moves the planned blocks/slices (the
  // deployment's apply_rebalance_plan closure), exactly as for an
  // operator-driven rebalance_dataset.
  void enable_auto_rebalance(
      AutoRebalanceConfig config,
      std::function<core::Status(const placement::RebalancePlan&)> executor);
  // Drive staleness demotion, the down-deadline watcher, and the ingest
  // fixup queue on the caller's clock (seconds; deployments and tests pass
  // explicit times so transitions stay deterministic).  Returns the
  // datasets rebalanced at this tick.
  std::vector<std::string> tick(double now);

  // ---- ingest fixups ----
  // Replicas/parity owners that missed a write's generation, reported by
  // clients (kFixupReport) and drained from tick() through the fixup
  // executor (the deployment's apply_fixup closure).  A task that keeps
  // failing is retried up to kMaxFixupAttempts ticks, then dropped.
  static constexpr int kMaxFixupAttempts = 3;
  void set_fixup_executor(
      std::function<core::Status(const ingest::FixupTask&)> executor);
  void report_fixup(const ingest::FixupTask& task);
  std::size_t fixup_depth() const { return fixups_.depth(); }
  std::uint64_t fixups_applied() const { return fixups_applied_.value(); }
  std::uint64_t fixups_dropped() const { return fixups_dropped_.value(); }
  std::uint64_t fixups_enqueued() const { return fixups_.enqueued(); }

  // Whether OpenReplys advertise the server-driven ingest pipeline.  Off
  // models an old-mode deployment: clients fall back to client-fanout
  // writes and refuse EC writes with a typed status.
  void set_ingest_capable(bool capable);

  // ---- access control ----
  // With an empty ACL every token is accepted; otherwise the OPEN token
  // must be present in the set.
  void set_acl(std::set<std::string> allowed_tokens);

  // ---- service ----
  void serve(net::StreamPtr stream);
  void shutdown();

  // One request in, one reply out -- shared by the blocking service loop
  // and the reactor-backed transport.  Thread-safe.
  net::Message handle_request(net::Message&& msg);

  // Per-request read timeouts the transport observed on master connections.
  void note_read_timeout() { read_timeouts_.inc(); }
  std::uint64_t read_timeouts() const { return read_timeouts_.value(); }

  std::uint64_t opens_served() const { return opens_.value(); }

  // The master's metrics plane (control-path counters, fixup queue depth,
  // request latency), rendered by the kStatsRequest handler.
  obs::MetricsRegistry& metrics_registry() { return registry_; }

  // ---- trace aggregation + alerting (PR 8) ----
  // The master doubles as the deployment's span collector: components ship
  // their finished spans via kSpanExportRequest, tick() finalizes traces
  // that have gone idle, and the collector's stage histograms + exemplars
  // ride the master's kStats exposition.
  obs::SpanCollector& span_collector() { return collector_; }
  const obs::SpanCollector& span_collector() const { return collector_; }

  // Alert rules evaluated against a registry scrape on every tick(now)
  // (tick's `now` is the scrape clock, so campaigns and tests control the
  // burn-rate windows).  Rules use AlertRule::parse syntax; an unparsable
  // rule is returned as the error.
  core::Status enable_alerts(const std::vector<std::string>& rules);
  obs::AlertEngine& alert_engine() { return alerts_; }

  // Seconds a trace must sit idle (no new spans) before tick() finalizes
  // it -- measured on the real clock the RPC arrival stamps use.  0
  // finalizes everything assembled at each tick.
  void set_trace_linger(double seconds) { trace_linger_.store(seconds); }

  // The kTraceReportRequest body: slowest-trace critical-path breakdowns
  // plus alert status lines.
  std::string trace_report();

  // Optional NetLogger: traced requests emit DPSS_MASTER_IN/OUT lifeline
  // events through it.
  void set_logger(std::shared_ptr<netlog::NetLogger> logger) {
    logger_ = std::move(logger);
  }

 private:
  void service_loop(net::StreamPtr stream);
  // Push `entry` to every follower, resending the gap (or a snapshot)
  // when one lags.  Best effort: a dead follower is tolerated -- it
  // catches up on rejoin -- but failures count toward
  // dpss_meta_replication_failures_total.
  void replicate_to_followers(const meta::LogEntry& entry);
  // Forward an open this shard does not own to the owner's leader and
  // relay the reply verbatim.
  core::Result<net::Message> forward_open(std::uint32_t owner,
                                          const net::Message& msg);
  net::Message handle_meta_append(const net::Message& msg);
  net::Message handle_placement_delta(const net::Message& msg);

  mutable std::mutex mu_;
  // The catalog state machine + replicated log this master fronts.  Both
  // lock internally; mu_ additionally serialises the *mutation* path
  // (validate -> append -> apply -> replicate must not interleave).
  meta::Catalog catalog_;
  meta::ReplicatedLog meta_log_;
  meta::GenerationGossip gossip_;
  meta::ShardMap shard_map_;
  std::uint32_t shard_id_ = 0;
  std::atomic<bool> is_leader_{true};
  ServerAddress address_{"master", 0};
  Connector peers_;
  std::vector<ServerAddress> followers_;
  std::map<std::uint32_t, ServerAddress> shard_leaders_;
  // Last epoch each follower acked, keyed by address key().
  std::map<std::string, std::uint64_t> follower_epochs_;
  DatasetGenerationView generation_view_;
  std::set<std::string> acl_;
  bool acl_enabled_ = false;
  placement::HealthTracker health_;
  // Auto-rebalance state (guarded by mu_): when each server was first
  // *observed* down by tick(), keyed by address key().
  bool auto_rebalance_enabled_ = false;
  AutoRebalanceConfig auto_config_;
  std::function<core::Status(const placement::RebalancePlan&)> auto_executor_;
  std::map<std::string, double> down_since_;
  // Ingest pipeline state.  The queue has its own lock; the executor and
  // capability flag are guarded by mu_.
  ingest::FixupQueue fixups_;
  std::function<core::Status(const ingest::FixupTask&)> fixup_executor_;
  bool ingest_capable_ = true;
  std::vector<std::thread> threads_;
  std::vector<net::StreamPtr> streams_;
  // Metrics plane: registry_ precedes the instrument references it backs.
  obs::MetricsRegistry registry_;
  obs::Counter& opens_;
  obs::Counter& read_timeouts_;
  obs::Counter& heartbeats_;
  obs::Counter& failure_reports_;
  obs::Counter& fixups_applied_;
  obs::Counter& fixups_dropped_;
  // Metadata plane counters (PR 9).
  obs::Counter& meta_log_appends_;
  obs::Counter& meta_delta_opens_;
  obs::Counter& meta_snapshot_opens_;
  obs::Counter& meta_forwarded_opens_;
  obs::Counter& meta_leader_elections_;
  obs::Counter& meta_replication_failures_;
  obs::Histogram& request_seconds_;
  // Analysis plane: span collector + alert engine.  Both are internally
  // locked; alerts_enabled_ gates the per-tick registry scrape.
  obs::SpanCollector collector_;
  obs::AlertEngine alerts_;
  std::atomic<bool> alerts_enabled_{false};
  std::atomic<double> trace_linger_{0.5};
  std::shared_ptr<netlog::NetLogger> logger_;
  std::atomic<std::uint64_t> next_handle_{1};
};

}  // namespace visapult::dpss
