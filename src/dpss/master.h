// DPSS master.
//
// Paper Fig. 7: the master performs "logical to physical block lookup,
// access control, load balancing" and hands clients back the set of block
// servers to stream from.  Data never flows through the master -- clients
// talk to block servers directly, which is what lets DPSS throughput scale
// with the number of servers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "dpss/protocol.h"
#include "net/stream.h"

namespace visapult::dpss {

class Master {
 public:
  Master() = default;
  ~Master();

  // ---- catalog ----
  // Register a dataset: its layout plus the addresses of the servers
  // holding its stripes (order defines the striping).
  core::Status register_dataset(const std::string& name,
                                const DatasetLayout& layout,
                                std::vector<ServerAddress> servers);
  core::Result<OpenReply> lookup(const std::string& name) const;
  std::vector<std::string> dataset_names() const;

  // ---- access control ----
  // With an empty ACL every token is accepted; otherwise the OPEN token
  // must be present in the set.
  void set_acl(std::set<std::string> allowed_tokens);

  // ---- service ----
  void serve(net::StreamPtr stream);
  void shutdown();

  std::uint64_t opens_served() const { return opens_.load(); }

 private:
  void service_loop(net::StreamPtr stream);

  mutable std::mutex mu_;
  struct Entry {
    DatasetLayout layout;
    std::vector<ServerAddress> servers;
  };
  std::map<std::string, Entry> catalog_;
  std::set<std::string> acl_;
  bool acl_enabled_ = false;
  std::vector<std::thread> threads_;
  std::vector<net::StreamPtr> streams_;
  std::atomic<std::uint64_t> opens_{0};
  std::atomic<std::uint64_t> next_handle_{1};
};

}  // namespace visapult::dpss
