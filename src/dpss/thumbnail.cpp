#include "dpss/thumbnail.h"

#include <algorithm>
#include <cstring>

#include "render/raycast.h"
#include "vol/decompose.h"

namespace visapult::dpss {

namespace {

constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 4 + 4 + 4;

// Decimate a volume by integer stride (point sampling: previews do not
// need a proper low-pass).
vol::Volume downsample(const vol::Volume& v, int factor) {
  const vol::Dims d = v.dims();
  vol::Dims out_dims{std::max(1, d.nx / factor), std::max(1, d.ny / factor),
                     std::max(1, d.nz / factor)};
  vol::Volume out(out_dims);
  for (int z = 0; z < out_dims.nz; ++z) {
    for (int y = 0; y < out_dims.ny; ++y) {
      for (int x = 0; x < out_dims.nx; ++x) {
        out.at(x, y, z) = v.at(std::min(d.nx - 1, x * factor),
                               std::min(d.ny - 1, y * factor),
                               std::min(d.nz - 1, z * factor));
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_record(const ThumbnailRecord& r) {
  std::vector<std::uint8_t> out(thumbnail_record_bytes(r.width, r.height));
  std::memcpy(out.data() + 0, &r.timestep, 4);
  std::memcpy(out.data() + 4, &r.width, 4);
  std::memcpy(out.data() + 8, &r.height, 4);
  std::memcpy(out.data() + 12, &r.value_min, 4);
  std::memcpy(out.data() + 16, &r.value_max, 4);
  const auto pixels = r.image.to_bytes();
  std::memcpy(out.data() + kRecordHeaderBytes, pixels.data(), pixels.size());
  return out;
}

core::Result<ThumbnailRecord> decode_record(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kRecordHeaderBytes) {
    return core::data_loss("thumbnail record too short");
  }
  ThumbnailRecord r;
  std::memcpy(&r.timestep, bytes.data() + 0, 4);
  std::memcpy(&r.width, bytes.data() + 4, 4);
  std::memcpy(&r.height, bytes.data() + 8, 4);
  std::memcpy(&r.value_min, bytes.data() + 12, 4);
  std::memcpy(&r.value_max, bytes.data() + 16, 4);
  if (r.width <= 0 || r.height <= 0 ||
      bytes.size() < thumbnail_record_bytes(r.width, r.height)) {
    return core::data_loss("thumbnail record header corrupt");
  }
  std::vector<std::uint8_t> pixels(
      bytes.begin() + static_cast<std::ptrdiff_t>(kRecordHeaderBytes),
      bytes.begin() + static_cast<std::ptrdiff_t>(
                          thumbnail_record_bytes(r.width, r.height)));
  auto img = core::ImageRGBA::from_bytes(r.width, r.height, pixels);
  if (!img.is_ok()) return img.status();
  r.image = std::move(img).take();
  return r;
}

}  // namespace

std::string thumbnail_dataset_name(const std::string& dataset) {
  return dataset + ".thumbs";
}

std::size_t thumbnail_record_bytes(int width, int height) {
  return kRecordHeaderBytes +
         static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 16;
}

core::Status generate_thumbnails(Master& master,
                                 std::vector<BlockServer*> servers,
                                 std::vector<ServerAddress> addresses,
                                 const vol::DatasetDesc& desc,
                                 const render::TransferFunction& tf,
                                 const ThumbnailOptions& options) {
  if (servers.empty()) return core::invalid_argument("no servers");

  // Probe one timestep to fix the thumbnail geometry.
  const vol::Volume probe = downsample(desc.generate(0), options.downsample);
  vol::Axis ua, va;
  render::image_axes_for(options.axis, ua, va);
  const float scale = std::min(
      1.0f, static_cast<float>(options.size) /
                static_cast<float>(std::max(probe.dims().extent(ua),
                                            probe.dims().extent(va))));
  render::RenderOptions ropts;
  ropts.resolution_scale = scale;

  vol::Brick full;
  full.dims = probe.dims();
  auto probe_img = render::render_brick_along_axis(probe, full, options.axis,
                                                   tf, ropts);
  if (!probe_img.is_ok()) return probe_img.status();
  const std::size_t record_bytes = thumbnail_record_bytes(
      probe_img.value().width(), probe_img.value().height());

  DatasetLayout layout;
  layout.total_bytes = record_bytes * static_cast<std::uint64_t>(desc.timesteps);
  layout.block_bytes = static_cast<std::uint32_t>(record_bytes);
  layout.stripe_blocks = 1;
  layout.server_count = static_cast<std::uint32_t>(servers.size());
  const std::string name = thumbnail_dataset_name(desc.name);

  for (int t = 0; t < desc.timesteps; ++t) {
    const vol::Volume small = downsample(desc.generate(t), options.downsample);
    vol::Brick brick;
    brick.dims = small.dims();
    auto img = render::render_brick_along_axis(small, brick, options.axis, tf,
                                               ropts);
    if (!img.is_ok()) return img.status();

    ThumbnailRecord record;
    record.timestep = t;
    record.width = img.value().width();
    record.height = img.value().height();
    small.min_max(record.value_min, record.value_max);
    record.image = std::move(img).take();

    const std::uint64_t block = static_cast<std::uint64_t>(t);
    servers[layout.server_for_block(block)]->put_block(name, block,
                                                       encode_record(record));
  }
  return master.register_dataset(name, layout, std::move(addresses));
}

core::Result<ThumbnailRecord> fetch_thumbnail(DpssClient& client,
                                              const std::string& dataset,
                                              int timestep,
                                              const std::string& auth_token) {
  auto file = client.open(thumbnail_dataset_name(dataset), auth_token);
  if (!file.is_ok()) return file.status();
  const std::size_t record_bytes = file.value()->layout().block_bytes;
  std::vector<std::uint8_t> buf(record_bytes);
  auto n = file.value()->pread(buf.data(), buf.size(),
                               static_cast<std::uint64_t>(timestep) * record_bytes);
  if (!n.is_ok()) return n.status();
  if (n.value() != record_bytes) {
    return core::out_of_range("timestep beyond thumbnail index");
  }
  return decode_record(buf);
}

}  // namespace visapult::dpss
