// DPSS wire protocol.
//
// The Distributed Parallel Storage System [1] is "a data block server ...
// providing parallelism at the disk, server, and network level".  Its
// architecture (paper Fig. 7): a *master* performs logical-to-physical
// block lookup, access control and load balancing; *block servers* hold the
// data blocks on their parallel disks; the *client library* talks to the
// master once per open, then streams block requests directly to the servers
// with one thread per server.
//
// All messages are framed with net::Message; payload layouts are defined by
// the encode_*/decode_* helpers here so client, master and server cannot
// drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/ec_profile.h"
#include "core/status.h"
#include "dpss/compression.h"
#include "net/message.h"
#include "placement/health.h"
#include "placement/server_address.h"

namespace visapult::dpss {

// Logical block size.  64 KB matches the DPSS's period configuration.
inline constexpr std::uint32_t kDefaultBlockBytes = 64 * 1024;

enum MessageType : std::uint32_t {
  kOpenRequest = 0x4450531,
  kOpenReply,
  kBlockReadRequest,
  kBlockReadReply,
  kBlockWriteRequest,
  kBlockWriteReply,
  kCloseRequest,
  kCloseReply,
  kErrorReply,
  // Placement subsystem (PR 3): server -> master liveness/load beats and
  // client -> master I/O failure reports.
  kHeartbeat,
  kHeartbeatReply,
  kFailureReport,
  kFailureReportReply,
};

// ---- master <-> client ------------------------------------------------------

struct OpenRequest {
  std::string dataset;
  std::string auth_token;
};

// How logical blocks map onto servers: block b lives on server
// (b / stripe_blocks) % server_count -- striped round-robin in runs of
// stripe_blocks.  The client re-derives per-server block lists from this.
struct DatasetLayout {
  std::uint64_t total_bytes = 0;
  std::uint32_t block_bytes = kDefaultBlockBytes;
  std::uint32_t stripe_blocks = 1;
  std::uint32_t server_count = 0;

  std::uint64_t block_count() const {
    return block_bytes == 0
               ? 0
               : (total_bytes + block_bytes - 1) / block_bytes;
  }
  std::uint32_t server_for_block(std::uint64_t block) const {
    if (server_count == 0) return 0;
    return static_cast<std::uint32_t>((block / stripe_blocks) % server_count);
  }
  std::uint64_t block_length(std::uint64_t block) const {
    const std::uint64_t start = block * block_bytes;
    if (start >= total_bytes) return 0;
    return std::min<std::uint64_t>(block_bytes, total_bytes - start);
  }
};

// One type with the placement subsystem's server identity, so the master's
// health/ring bookkeeping and the wire protocol never translate addresses.
using ServerAddress = placement::ServerAddress;

struct OpenReply {
  std::uint64_t handle = 0;
  DatasetLayout layout;
  std::vector<ServerAddress> servers;

  // ---- replica-aware placement (PR 3) ----
  // With ring_vnodes == 0 the dataset uses the classic striped layout
  // (layout.server_for_block, exactly one copy).  With ring_vnodes > 0 the
  // client rebuilds the consistent-hash ring over `servers` and derives
  // each block's ReplicaSet locally; health/load are the master's
  // open-time snapshot (indexed like `servers`) used to rank replicas
  // least-loaded-live-first.
  std::uint32_t replication_factor = 1;
  std::uint32_t ring_vnodes = 0;
  std::vector<placement::HealthState> server_health;
  std::vector<std::uint64_t> server_load;

  // ---- erasure coding (PR 4) ----
  // An enabled profile means the dataset is stored as (k, m) Reed-Solomon
  // slice groups instead of whole-block replicas: the client rebuilds the
  // same ring, maps each block to its data-slice owner for the fast path,
  // and reconstructs lost blocks from any k surviving slices of the
  // block's group.  Requires ring_vnodes > 0.
  codec::EcProfile ec;
};

// Liveness + load beat, sent to the master on behalf of a block server.
struct HeartbeatRequest {
  ServerAddress server;
  std::uint64_t requests_served = 0;
};

// A client-side I/O error against one block server, reported to the master
// so its health tracking demotes the server for subsequent opens.
struct FailureReport {
  ServerAddress server;
  std::string dataset;
  std::uint64_t block = 0;
  std::string reason;
};

// ---- server <-> client -------------------------------------------------------

struct BlockReadRequest {
  std::string dataset;
  std::uint64_t block = 0;
  // Wire-level compression requested by the client (section 5 future
  // work); kNone preserves the classic protocol.
  CompressionConfig compression;
};

struct BlockReadReply {
  std::uint64_t block = 0;
  // Raw block bytes when `compressed` is false; a compress_block() frame
  // otherwise.
  bool compressed = false;
  std::vector<std::uint8_t> data;
};

struct BlockWriteRequest {
  std::string dataset;
  std::uint64_t block = 0;
  std::vector<std::uint8_t> data;
};

// ---- encode / decode ---------------------------------------------------------

net::Message encode_open_request(const OpenRequest& r);
core::Result<OpenRequest> decode_open_request(const net::Message& m);

net::Message encode_open_reply(const OpenReply& r);
core::Result<OpenReply> decode_open_reply(const net::Message& m);

net::Message encode_block_read_request(const BlockReadRequest& r);
core::Result<BlockReadRequest> decode_block_read_request(const net::Message& m);

net::Message encode_block_read_reply(const BlockReadReply& r);
core::Result<BlockReadReply> decode_block_read_reply(const net::Message& m);

net::Message encode_block_write_request(const BlockWriteRequest& r);
core::Result<BlockWriteRequest> decode_block_write_request(const net::Message& m);

net::Message encode_block_write_reply(std::uint64_t block);
core::Result<std::uint64_t> decode_block_write_reply(const net::Message& m);

net::Message encode_error_reply(const core::Status& status);
core::Status decode_error_reply(const net::Message& m);

net::Message encode_heartbeat(const HeartbeatRequest& r);
core::Result<HeartbeatRequest> decode_heartbeat(const net::Message& m);

net::Message encode_failure_report(const FailureReport& r);
core::Result<FailureReport> decode_failure_report(const net::Message& m);

}  // namespace visapult::dpss
