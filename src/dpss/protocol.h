// DPSS wire protocol.
//
// The Distributed Parallel Storage System [1] is "a data block server ...
// providing parallelism at the disk, server, and network level".  Its
// architecture (paper Fig. 7): a *master* performs logical-to-physical
// block lookup, access control and load balancing; *block servers* hold the
// data blocks on their parallel disks; the *client library* talks to the
// master once per open, then streams block requests directly to the servers
// with one thread per server.
//
// All messages are framed with net::Message; payload layouts are defined by
// the encode_*/decode_* helpers here so client, master and server cannot
// drift apart.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codec/ec_profile.h"
#include "core/status.h"
#include "dpss/compression.h"
#include "ingest/ack_policy.h"
#include "meta/gossip.h"
#include "meta/log.h"
#include "meta/types.h"
#include "net/message.h"
#include "obs/span.h"
#include "placement/health.h"
#include "placement/server_address.h"

namespace visapult::dpss {

// Logical block size.  64 KB matches the DPSS's period configuration.
// (The constant and DatasetLayout moved to meta/types.h with the sharded
// metadata plane; the aliases keep every existing caller compiling.)
inline constexpr std::uint32_t kDefaultBlockBytes = meta::kDefaultBlockBytes;

enum MessageType : std::uint32_t {
  kOpenRequest = 0x4450531,
  kOpenReply,
  kBlockReadRequest,
  kBlockReadReply,
  kBlockWriteRequest,
  kBlockWriteReply,
  kCloseRequest,
  kCloseReply,
  kErrorReply,
  // Placement subsystem (PR 3): server -> master liveness/load beats and
  // client -> master I/O failure reports.
  kHeartbeat,
  kHeartbeatReply,
  kFailureReport,
  kFailureReportReply,
  // Ingest pipeline (PR 5): server-driven mutations.  An ingest write goes
  // to the block's *primary*, which pipelines it down the replica chain
  // (server-to-server) and ships GF parity deltas to EC parity owners; the
  // fixup report tells the master which targets missed the generation.
  kIngestWriteRequest,
  kIngestWriteReply,
  kParityDeltaRequest,
  kParityDeltaReply,
  kFixupReport,
  kFixupReportReply,
  // Observability (PR 7): any component (master or block server) answers a
  // stats request with its metrics registry rendered as Prometheus-style
  // exposition text.
  kStatsRequest,
  kStatsReply,
  // Trace aggregation (PR 8): components batch-ship finished span records
  // from their NetLogger sinks to the master's SpanCollector, and anyone
  // can pull the collector's critical-path report + alert status.
  kSpanExportRequest,
  kSpanExportReply,
  kTraceReportRequest,
  kTraceReportReply,
  // Sharded metadata plane (PR 9): epoch-numbered placement deltas
  // (client catch-up after a cached open), leader -> follower log
  // replication, and per-member shard status for tooling.
  kPlacementDeltaRequest,
  kPlacementDeltaReply,
  kMetaAppendRequest,
  kMetaAppendReply,
  kMetaStatusRequest,
  kMetaStatusReply,
  // Utilization plane (PR 10): any component answers a profile request
  // with its process's flamegraph-collapsed stage-profile text.
  kProfileRequest,
  kProfileReply,
};

// ---- master <-> client ------------------------------------------------------

struct OpenRequest {
  std::string dataset;
  std::string auth_token;
  // Epoch of the client's cached catalog entry for this dataset (0 = no
  // cache).  A master whose entry still carries this epoch answers with a
  // tiny not_modified reply instead of the full placement snapshot.
  std::uint64_t known_epoch = 0;
};

using DatasetLayout = meta::DatasetLayout;

// One type with the placement subsystem's server identity, so the master's
// health/ring bookkeeping and the wire protocol never translate addresses.
using ServerAddress = placement::ServerAddress;

struct OpenReply {
  std::uint64_t handle = 0;
  DatasetLayout layout;
  std::vector<ServerAddress> servers;

  // ---- replica-aware placement (PR 3) ----
  // With ring_vnodes == 0 the dataset uses the classic striped layout
  // (layout.server_for_block, exactly one copy).  With ring_vnodes > 0 the
  // client rebuilds the consistent-hash ring over `servers` and derives
  // each block's ReplicaSet locally; health/load are the master's
  // open-time snapshot (indexed like `servers`) used to rank replicas
  // least-loaded-live-first.
  std::uint32_t replication_factor = 1;
  std::uint32_t ring_vnodes = 0;
  std::vector<placement::HealthState> server_health;
  std::vector<std::uint64_t> server_load;

  // ---- erasure coding (PR 4) ----
  // An enabled profile means the dataset is stored as (k, m) Reed-Solomon
  // slice groups instead of whole-block replicas: the client rebuilds the
  // same ring, maps each block to its data-slice owner for the fast path,
  // and reconstructs lost blocks from any k surviving slices of the
  // block's group.  Requires ring_vnodes > 0.
  codec::EcProfile ec;

  // ---- ingest pipeline (PR 5) ----
  // True when the deployment's servers speak kIngestWriteRequest (chain
  // replication and parity-delta writes).  A client talking to an old-mode
  // master falls back to the classic client-fanout write for replicated
  // datasets and refuses EC writes with a typed kFailedPrecondition.
  bool ingest_capable = true;

  // ---- sharded metadata plane (PR 9) ----
  // Epoch of the catalog entry this reply describes.  Clients cache the
  // reply per dataset keyed by this and send it back as
  // OpenRequest::known_epoch on the next open.
  std::uint64_t catalog_epoch = 0;
  // True when the client's known_epoch still matches: the placement
  // fields above are left empty and the client reuses its cached entry.
  bool not_modified = false;
  // Gossiped per-dataset max-generation floor (0 = nothing gossiped yet)
  // and cache-priority hint, piggybacked so generation knowledge spreads
  // without extra round-trips.
  std::uint64_t max_generation = 0;
  meta::CacheHint cache_hint = meta::CacheHint::kNone;
};

// Liveness + load beat, sent to the master on behalf of a block server.
struct HeartbeatRequest {
  ServerAddress server;
  std::uint64_t requests_served = 0;
  // Per-dataset max generations the server has stored: the upward half of
  // the generation gossip, merged into the master's floors.
  std::vector<meta::GenerationFloor> floors;
};

// A client-side I/O error against one block server, reported to the master
// so its health tracking demotes the server for subsequent opens.
struct FailureReport {
  ServerAddress server;
  std::string dataset;
  std::uint64_t block = 0;
  std::string reason;
};

// ---- server <-> client -------------------------------------------------------

struct BlockReadRequest {
  std::string dataset;
  std::uint64_t block = 0;
  // Wire-level compression requested by the client (section 5 future
  // work); kNone preserves the classic protocol.
  CompressionConfig compression;
};

struct BlockReadReply {
  std::uint64_t block = 0;
  // Raw block bytes when `compressed` is false; a compress_block() frame
  // otherwise.
  bool compressed = false;
  std::vector<std::uint8_t> data;
  // Ingest generation of the served bytes (0 for never-overwritten
  // blocks).  Clients use it to key their read-ahead tier and to detect a
  // replica serving data older than an acknowledged write.
  std::uint64_t generation = 0;
};

struct BlockWriteRequest {
  std::string dataset;
  std::uint64_t block = 0;
  std::vector<std::uint8_t> data;
  // 0 preserves the block's current generation (ingest/migration fills);
  // non-zero stamps the write, which the server rejects as stale when the
  // block already carries a newer generation.
  std::uint64_t generation = 0;
};

// ---- ingest pipeline (server-driven mutations) -------------------------------

// A chain-replicated (or parity-delta) write, sent by the client to the
// block's primary and forwarded by each chain member to the next.
struct IngestWriteRequest {
  std::string dataset;
  std::uint64_t block = 0;
  // 0 on the client->primary hop: the primary allocates current + 1 and
  // every forwarded hop carries the allocated stamp, so all replicas agree.
  std::uint64_t generation = 0;
  ingest::AckPolicy ack_policy = ingest::AckPolicy::kAll;
  std::vector<std::uint8_t> data;
  // Remaining replica chain after the receiving server (addresses, in ring
  // order).  The receiver applies locally, then forwards to chain[0] with
  // the tail.
  std::vector<ServerAddress> chain;
  // EC overwrites: parity owners to ship the GF delta to.  The receiving
  // server computes delta = new ^ old and sends each target a
  // ParityDeltaRequest; servers themselves stay EC-agnostic.
  struct DeltaTarget {
    ServerAddress server;
    std::string dataset;   // "<name>#parity"
    std::uint64_t block = 0;
    std::uint8_t coefficient = 0;
  };
  std::vector<DeltaTarget> deltas;
};

struct IngestWriteReply {
  std::uint64_t block = 0;
  std::uint64_t generation = 0;  // the stamp the write landed under
  std::uint32_t acks = 0;        // servers that durably applied it
  // Chain members / parity owners that did NOT apply (policy-truncated or
  // failed mid-pipeline); the client reports each to the master's fixup
  // queue.
  std::vector<ServerAddress> missed;
};

// Delta shipped from a data-slice primary to one parity owner:
// stored[block] ^= coefficient * delta, applied with the bulk GF kernel.
struct ParityDeltaRequest {
  std::string dataset;  // "<name>#parity"
  std::uint64_t block = 0;
  std::uint8_t coefficient = 0;
  std::vector<std::uint8_t> delta;
};

struct ParityDeltaReply {
  std::uint64_t block = 0;
  std::uint64_t generation = 0;  // parity block's generation after apply
};

// Client -> master: `target` missed `generation` of (dataset, block); the
// master's fixup queue re-syncs it in the background (Master::tick).
struct FixupReport {
  std::string dataset;
  std::uint64_t block = 0;
  std::uint64_t generation = 0;
  ServerAddress target;
};

// ---- sharded metadata plane -------------------------------------------------

// Client -> any shard member: placement history since `since_epoch`.
// An empty dataset asks for the whole shard catalog (tooling); otherwise
// only entries touching `dataset` are returned.
struct PlacementDeltaRequest {
  std::string dataset;
  std::uint64_t since_epoch = 0;
};

struct PlacementDeltaReply {
  // True when the log window no longer reaches back to since_epoch: the
  // entries are a full catalog snapshot (kRegister per dataset) and the
  // client must rebuild instead of replaying.
  bool snapshot = false;
  // The shard's log epoch after applying `entries`.
  std::uint64_t epoch = 0;
  std::vector<meta::LogEntry> entries;
};

// Leader -> follower: replicate one log entry.  A follower that is not at
// entry.epoch - 1 rejects and reports its epoch so the leader can resend
// the gap from its window.
struct MetaAppendRequest {
  meta::LogEntry entry;
};

struct MetaAppendReply {
  bool accepted = false;
  std::uint64_t follower_epoch = 0;
};

// Per-member shard status for dpss_tool and tests.
struct MetaStatus {
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  bool is_leader = true;
  std::uint64_t epoch = 0;
  ServerAddress address;
  std::uint64_t datasets = 0;
  std::uint64_t delta_opens = 0;
  std::uint64_t snapshot_opens = 0;
  std::uint64_t forwarded_opens = 0;
  std::uint64_t leader_elections = 0;
};

// ---- encode / decode ---------------------------------------------------------

net::Message encode_open_request(const OpenRequest& r);
core::Result<OpenRequest> decode_open_request(const net::Message& m);

net::Message encode_open_reply(const OpenReply& r);
core::Result<OpenReply> decode_open_reply(const net::Message& m);

net::Message encode_block_read_request(const BlockReadRequest& r);
core::Result<BlockReadRequest> decode_block_read_request(const net::Message& m);

net::Message encode_block_read_reply(const BlockReadReply& r);
core::Result<BlockReadReply> decode_block_read_reply(const net::Message& m);

net::Message encode_block_write_request(const BlockWriteRequest& r);
core::Result<BlockWriteRequest> decode_block_write_request(const net::Message& m);

net::Message encode_block_write_reply(std::uint64_t block);
core::Result<std::uint64_t> decode_block_write_reply(const net::Message& m);

net::Message encode_error_reply(const core::Status& status);
core::Status decode_error_reply(const net::Message& m);

net::Message encode_heartbeat(const HeartbeatRequest& r);
core::Result<HeartbeatRequest> decode_heartbeat(const net::Message& m);

// Heartbeat reply: the master's merged floor snapshot rides back down, so
// generation knowledge gossips both ways on the beat that already flows.
net::Message encode_heartbeat_reply(
    const std::vector<meta::GenerationFloor>& floors);
core::Result<std::vector<meta::GenerationFloor>> decode_heartbeat_reply(
    const net::Message& m);

net::Message encode_placement_delta_request(const PlacementDeltaRequest& r);
core::Result<PlacementDeltaRequest> decode_placement_delta_request(
    const net::Message& m);

net::Message encode_placement_delta_reply(const PlacementDeltaReply& r);
core::Result<PlacementDeltaReply> decode_placement_delta_reply(
    const net::Message& m);

net::Message encode_meta_append_request(const MetaAppendRequest& r);
core::Result<MetaAppendRequest> decode_meta_append_request(
    const net::Message& m);

net::Message encode_meta_append_reply(const MetaAppendReply& r);
core::Result<MetaAppendReply> decode_meta_append_reply(const net::Message& m);

// Meta status: empty request, per-member status reply.
net::Message encode_meta_status_request();
net::Message encode_meta_status_reply(const MetaStatus& s);
core::Result<MetaStatus> decode_meta_status_reply(const net::Message& m);

net::Message encode_failure_report(const FailureReport& r);
core::Result<FailureReport> decode_failure_report(const net::Message& m);

net::Message encode_ingest_write_request(const IngestWriteRequest& r);
core::Result<IngestWriteRequest> decode_ingest_write_request(
    const net::Message& m);

net::Message encode_ingest_write_reply(const IngestWriteReply& r);
core::Result<IngestWriteReply> decode_ingest_write_reply(const net::Message& m);

net::Message encode_parity_delta_request(const ParityDeltaRequest& r);
core::Result<ParityDeltaRequest> decode_parity_delta_request(
    const net::Message& m);

net::Message encode_parity_delta_reply(const ParityDeltaReply& r);
core::Result<ParityDeltaReply> decode_parity_delta_reply(const net::Message& m);

net::Message encode_fixup_report(const FixupReport& r);
core::Result<FixupReport> decode_fixup_report(const net::Message& m);

// Stats: empty request, exposition text reply.
net::Message encode_stats_request();
net::Message encode_stats_reply(const std::string& text);
core::Result<std::string> decode_stats_reply(const net::Message& m);

// Span export: one batch of finished spans from `host`, stamped with the
// producer's clock at send time so the collector can bound the host's
// clock offset against its own arrival stamp.
struct SpanExportBatch {
  std::string host;
  double sent_at = 0.0;
  std::vector<obs::SpanRecord> spans;
};

net::Message encode_span_export_request(const SpanExportBatch& b);
core::Result<SpanExportBatch> decode_span_export_request(const net::Message& m);

// Reply: how many spans the collector accepted.
net::Message encode_span_export_reply(std::uint64_t accepted);
core::Result<std::uint64_t> decode_span_export_reply(const net::Message& m);

// Trace report: empty request; reply is the collector's slowest-trace
// critical-path breakdown plus the alert engine's status text.
net::Message encode_trace_report_request();
net::Message encode_trace_report_reply(const std::string& text);
core::Result<std::string> decode_trace_report_reply(const net::Message& m);

// Profile: empty request; reply is the answering process's
// flamegraph-collapsed stage profile ("stage;stage count" lines).
net::Message encode_profile_request();
net::Message encode_profile_reply(const std::string& text);
core::Result<std::string> decode_profile_reply(const net::Message& m);

// Opens a transport to a server address.  Pipe deployments and TCP
// deployments provide different connectors; the client library and the
// block servers' chain-forwarding hops are both agnostic.
using Connector =
    std::function<core::Result<net::StreamPtr>(const ServerAddress&)>;

}  // namespace visapult::dpss
