#include "dpss/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace visapult::dpss {

namespace {

// Byte-plane split: all byte 0s, then all byte 1s, ... of `width`-byte
// little-endian values.  Smooth float fields turn the high-order planes
// into long runs.
std::vector<std::uint8_t> to_planes(const std::uint8_t* data, std::size_t count,
                                    int width) {
  std::vector<std::uint8_t> out(count * static_cast<std::size_t>(width));
  std::size_t at = 0;
  for (int plane = width - 1; plane >= 0; --plane) {
    for (std::size_t i = 0; i < count; ++i) {
      out[at++] = data[i * static_cast<std::size_t>(width) +
                       static_cast<std::size_t>(plane)];
    }
  }
  return out;
}

void from_planes(const std::vector<std::uint8_t>& planes, std::size_t count,
                 int width, std::uint8_t* out) {
  std::size_t at = 0;
  for (int plane = width - 1; plane >= 0; --plane) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i * static_cast<std::size_t>(width) + static_cast<std::size_t>(plane)] =
          planes[at++];
    }
  }
}

// RLE: a stream of [u8 count][u8 value] pairs (count 1..255).
std::vector<std::uint8_t> rle_encode(const std::uint8_t* in, std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len / 2);
  std::size_t i = 0;
  while (i < len) {
    const std::uint8_t value = in[i];
    std::size_t run = 1;
    while (i + run < len && in[i + run] == value && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(value);
    i += run;
  }
  return out;
}

core::Result<std::vector<std::uint8_t>> rle_decode(
    const std::uint8_t* in, std::size_t len, std::size_t expected) {
  std::vector<std::uint8_t> out;
  out.reserve(expected);
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    const std::size_t run = in[i];
    if (run == 0) return core::data_loss("RLE run of zero");
    out.insert(out.end(), run, in[i + 1]);
  }
  if (out.size() != expected) {
    return core::data_loss("RLE decode size mismatch: got " +
                           std::to_string(out.size()) + ", expected " +
                           std::to_string(expected));
  }
  return out;
}

// Plane-wise best-of encoding: each byte plane is stored either RLE'd or
// as a raw literal, whichever is smaller -- exponent/sign planes of smooth
// fields compress hugely, mantissa-noise planes pass through at +9 bytes.
// Format per plane: [u8 mode(0=raw,1=rle)][u64 stored_len][bytes].
std::vector<std::uint8_t> encode_planes(const std::vector<std::uint8_t>& planes,
                                        std::size_t plane_len, int plane_count) {
  std::vector<std::uint8_t> out;
  for (int p = 0; p < plane_count; ++p) {
    const std::uint8_t* plane = planes.data() + static_cast<std::size_t>(p) * plane_len;
    auto rle = rle_encode(plane, plane_len);
    const bool use_rle = rle.size() < plane_len;
    out.push_back(use_rle ? 1 : 0);
    const std::uint64_t stored = use_rle ? rle.size() : plane_len;
    const std::size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &stored, 8);
    if (use_rle) {
      out.insert(out.end(), rle.begin(), rle.end());
    } else {
      out.insert(out.end(), plane, plane + plane_len);
    }
  }
  return out;
}

core::Result<std::vector<std::uint8_t>> decode_planes(
    const std::uint8_t* in, std::size_t len, std::size_t plane_len,
    int plane_count) {
  std::vector<std::uint8_t> planes;
  planes.reserve(plane_len * static_cast<std::size_t>(plane_count));
  std::size_t at = 0;
  for (int p = 0; p < plane_count; ++p) {
    if (at + 9 > len) return core::data_loss("truncated plane header");
    const std::uint8_t mode = in[at];
    std::uint64_t stored;
    std::memcpy(&stored, in + at + 1, 8);
    at += 9;
    if (at + stored > len) return core::data_loss("truncated plane payload");
    if (mode == 0) {
      if (stored != plane_len) return core::data_loss("raw plane length mismatch");
      planes.insert(planes.end(), in + at, in + at + stored);
    } else if (mode == 1) {
      auto decoded = rle_decode(in + at, stored, plane_len);
      if (!decoded.is_ok()) return decoded.status();
      planes.insert(planes.end(), decoded.value().begin(), decoded.value().end());
    } else {
      return core::data_loss("unknown plane mode");
    }
    at += stored;
  }
  if (at != len) return core::data_loss("trailing bytes after planes");
  return planes;
}

struct Header {
  std::uint8_t codec;
  std::uint8_t quant_bits;
  std::uint64_t raw_len;
  float lo;
  float hi;
  std::uint64_t comp_len;
};
constexpr std::size_t kHeaderBytes = 1 + 1 + 8 + 4 + 4 + 8;

void put_header(std::vector<std::uint8_t>& out, const Header& h) {
  out.resize(kHeaderBytes);
  out[0] = h.codec;
  out[1] = h.quant_bits;
  std::memcpy(out.data() + 2, &h.raw_len, 8);
  std::memcpy(out.data() + 10, &h.lo, 4);
  std::memcpy(out.data() + 14, &h.hi, 4);
  std::memcpy(out.data() + 18, &h.comp_len, 8);
}

core::Result<Header> get_header(const std::vector<std::uint8_t>& wire) {
  if (wire.size() < kHeaderBytes) return core::data_loss("compressed block too short");
  Header h;
  h.codec = wire[0];
  h.quant_bits = wire[1];
  std::memcpy(&h.raw_len, wire.data() + 2, 8);
  std::memcpy(&h.lo, wire.data() + 10, 4);
  std::memcpy(&h.hi, wire.data() + 14, 4);
  std::memcpy(&h.comp_len, wire.data() + 18, 8);
  if (wire.size() != kHeaderBytes + h.comp_len) {
    return core::data_loss("compressed block length mismatch");
  }
  return h;
}

}  // namespace

core::Result<std::vector<std::uint8_t>> compress_block(
    const std::vector<std::uint8_t>& raw, const CompressionConfig& config) {
  Header h{};
  h.codec = static_cast<std::uint8_t>(config.codec);
  h.quant_bits = static_cast<std::uint8_t>(config.quant_bits);
  h.raw_len = raw.size();

  std::vector<std::uint8_t> out;
  switch (config.codec) {
    case Codec::kNone: {
      Header h2 = h;
      h2.comp_len = raw.size();
      put_header(out, h2);
      out.insert(out.end(), raw.begin(), raw.end());
      return out;
    }
    case Codec::kLossless: {
      if (raw.size() % 4 != 0) {
        return core::invalid_argument("lossless codec needs float32 data");
      }
      const auto planes = to_planes(raw.data(), raw.size() / 4, 4);
      auto encoded = encode_planes(planes, raw.size() / 4, 4);
      Header h2 = h;
      h2.comp_len = encoded.size();
      put_header(out, h2);
      out.insert(out.end(), encoded.begin(), encoded.end());
      return out;
    }
    case Codec::kLossyQuant: {
      if (raw.size() % 4 != 0) {
        return core::invalid_argument("lossy codec needs float32 data");
      }
      if (config.quant_bits != 8 && config.quant_bits != 16) {
        return core::invalid_argument("quant_bits must be 8 or 16");
      }
      const std::size_t count = raw.size() / 4;
      const auto* values = reinterpret_cast<const float*>(raw.data());
      float lo = std::numeric_limits<float>::infinity();
      float hi = -std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < count; ++i) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
      }
      if (count == 0) lo = hi = 0.0f;
      const double span = hi > lo ? hi - lo : 1.0;
      const int width = config.quant_bits / 8;
      const double levels = (1u << config.quant_bits) - 1;

      std::vector<std::uint8_t> quantized(count * static_cast<std::size_t>(width));
      for (std::size_t i = 0; i < count; ++i) {
        const double norm = (values[i] - lo) / span;
        const std::uint32_t q =
            static_cast<std::uint32_t>(norm * levels + 0.5);
        if (width == 1) {
          quantized[i] = static_cast<std::uint8_t>(q);
        } else {
          const std::uint16_t q16 = static_cast<std::uint16_t>(q);
          std::memcpy(quantized.data() + i * 2, &q16, 2);
        }
      }
      const auto planes = to_planes(quantized.data(), count, width);
      auto encoded = encode_planes(planes, count, width);
      Header h2 = h;
      h2.lo = lo;
      h2.hi = hi;
      h2.comp_len = encoded.size();
      put_header(out, h2);
      out.insert(out.end(), encoded.begin(), encoded.end());
      return out;
    }
  }
  return core::invalid_argument("unknown codec");
}

core::Result<std::vector<std::uint8_t>> decompress_block(
    const std::vector<std::uint8_t>& wire) {
  auto header = get_header(wire);
  if (!header.is_ok()) return header.status();
  const Header h = header.value();
  const std::uint8_t* payload = wire.data() + kHeaderBytes;

  switch (static_cast<Codec>(h.codec)) {
    case Codec::kNone: {
      return std::vector<std::uint8_t>(payload, payload + h.comp_len);
    }
    case Codec::kLossless: {
      auto planes = decode_planes(payload, h.comp_len, h.raw_len / 4, 4);
      if (!planes.is_ok()) return planes.status();
      std::vector<std::uint8_t> raw(h.raw_len);
      from_planes(planes.value(), h.raw_len / 4, 4, raw.data());
      return raw;
    }
    case Codec::kLossyQuant: {
      const int width = h.quant_bits / 8;
      if (width != 1 && width != 2) return core::data_loss("bad quant width");
      const std::size_t count = h.raw_len / 4;
      auto planes = decode_planes(payload, h.comp_len, count, width);
      if (!planes.is_ok()) return planes.status();
      std::vector<std::uint8_t> quantized(count * static_cast<std::size_t>(width));
      from_planes(planes.value(), count, width, quantized.data());

      std::vector<std::uint8_t> raw(h.raw_len);
      auto* values = reinterpret_cast<float*>(raw.data());
      const double span = h.hi > h.lo ? h.hi - h.lo : 1.0;
      const double levels = (1u << h.quant_bits) - 1;
      for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t q;
        if (width == 1) {
          q = quantized[i];
        } else {
          std::uint16_t q16;
          std::memcpy(&q16, quantized.data() + i * 2, 2);
          q = q16;
        }
        values[i] = static_cast<float>(h.lo + span * (q / levels));
      }
      return raw;
    }
  }
  return core::data_loss("unknown codec in compressed block");
}

double compression_ratio(std::size_t raw_bytes, std::size_t wire_bytes) {
  return wire_bytes > 0
             ? static_cast<double>(raw_bytes) / static_cast<double>(wire_bytes)
             : 0.0;
}

double quantization_error_bound(float lo, float hi, int bits) {
  const double span = hi > lo ? hi - lo : 0.0;
  return span / ((1u << bits) - 1);
}

}  // namespace visapult::dpss
