#include "dpss/server.h"

#include <algorithm>
#include <cstdio>

#include "codec/gf256.h"
#include "ingest/parity_delta.h"
#include "netlog/event.h"
#include "obs/profiler.h"

namespace visapult::dpss {

double DiskModel::block_service_seconds(std::size_t block_bytes,
                                        int concurrent) const {
  const double base =
      seek_seconds + static_cast<double>(block_bytes) / disk_bytes_per_sec;
  // Queueing factor: with more outstanding requests than spindles, each
  // request waits its turn.
  const double q = std::max(1.0, static_cast<double>(concurrent) / disks);
  return base * q;
}

double DiskModel::streaming_bytes_per_sec(std::size_t block_bytes) const {
  const double per_disk =
      static_cast<double>(block_bytes) /
      (seek_seconds + static_cast<double>(block_bytes) / disk_bytes_per_sec);
  return per_disk * disks;
}

BlockServer::BlockServer(std::string name, DiskModel disk, bool throttle,
                         ServerCacheConfig cache_config)
    : name_(std::move(name)), disk_(disk), throttle_(throttle),
      requests_(registry_.counter("dpss_server_requests_total")),
      read_timeouts_(registry_.counter("dpss_server_read_timeouts_total")),
      chain_forwards_(registry_.counter("dpss_server_chain_forwards_total")),
      parity_deltas_(registry_.counter("dpss_server_parity_deltas_total")),
      in_flight_(registry_.gauge("dpss_server_in_flight")),
      read_seconds_(registry_.histogram("dpss_server_read_seconds")),
      write_seconds_(registry_.histogram("dpss_server_write_seconds")),
      cache_config_(cache_config) {
  // The memory tier's counters surface in the same exposition.
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    const auto s = cache_metrics();
    out.push_back({"dpss_cache_hits_total", "", static_cast<double>(s.hits)});
    out.push_back(
        {"dpss_cache_misses_total", "", static_cast<double>(s.misses)});
    out.push_back({"dpss_cache_evictions_total", "",
                   static_cast<double>(s.evictions)});
    out.push_back({"dpss_cache_prefetch_issued_total", "",
                   static_cast<double>(s.prefetch_issued)});
    out.push_back({"dpss_cache_prefetch_hits_total", "",
                   static_cast<double>(s.prefetch_hits)});
    out.push_back(
        {"dpss_cache_bytes", "", static_cast<double>(s.bytes)});
    out.push_back({"dpss_cache_entries", "", static_cast<double>(s.entries)});
    // USE view of the memory tier: occupancy (utilization) and the
    // fraction of accesses that displaced something (pressure).
    out.push_back({"dpss_util_cache_occupancy_fraction", "",
                   s.capacity_bytes == 0
                       ? 0.0
                       : static_cast<double>(s.bytes) /
                             static_cast<double>(s.capacity_bytes)});
    const double accesses = static_cast<double>(s.hits + s.misses);
    out.push_back({"dpss_util_cache_pressure", "",
                   accesses == 0.0
                       ? 0.0
                       : static_cast<double>(s.evictions + s.admit_rejects) /
                             accesses});
  });
  // Peer-link utilization: one labeled sample pair per pooled chain/parity
  // link, read under the link locks at exposition time only.
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    std::lock_guard lk(peer_mu_);
    for (const auto& [key, link] : peers_) {
      std::lock_guard plk(link->mu);
      const std::string label = obs::label_pair("peer", key);
      out.push_back({"dpss_util_peer_exchanges_total", label,
                     static_cast<double>(link->exchanges)});
      out.push_back({"dpss_util_peer_bytes_total", label,
                     static_cast<double>(link->bytes)});
      out.push_back({"dpss_util_peer_failures_total", label,
                     static_cast<double>(link->failures)});
    }
  });
  if (cache_config_.enabled) {
    cache::BlockCacheConfig cc;
    cc.capacity_bytes = cache_config_.capacity_bytes;
    cc.shards = cache_config_.shards;
    cc.policy = cache_config_.policy;
    cc.tinylfu_admission = cache_config_.tinylfu_admission;
    cache_ = std::make_unique<cache::BlockCache>(cc);
    if (cache_config_.prefetch) {
      if (cache_config_.prefetch_threads > 0) {
        prefetch_pool_ =
            std::make_unique<core::ThreadPool>(cache_config_.prefetch_threads);
      }
      prefetcher_ = std::make_unique<cache::Prefetcher>(
          cache_config_.prefetch_config,
          [this](const std::string& dataset, std::uint64_t block) {
            prefetch_fill(dataset, block);
          },
          prefetch_pool_.get(), &cache_->counters());
      // Only predict blocks this server actually stores (its stripe of the
      // dataset) and that are not already resident at their current
      // generation.
      prefetcher_->set_filter(
          [this](const std::string& dataset, std::uint64_t block) {
            return cache_->contains(cache::BlockKey{
                       dataset, block, block_generation(dataset, block)}) ||
                   !has_block(dataset, block);
          });
    }
  }
}

BlockServer::~BlockServer() { shutdown(); }

void BlockServer::set_logger(std::shared_ptr<netlog::NetLogger> logger) {
  logger_ = logger;
  if (cache_) cache_->set_logger(std::move(logger));
}

void BlockServer::set_peer_connector(Connector connector) {
  peer_connector_ = std::move(connector);
}

core::Result<std::uint64_t> BlockServer::apply_write(
    const std::string& dataset, std::uint64_t block,
    std::vector<std::uint8_t> data, std::uint64_t generation, bool bump,
    std::vector<std::uint8_t>* replaced) {
  std::lock_guard lk(mu_);
  std::uint64_t current = 0;
  auto ds = store_.find(dataset);
  std::map<std::uint64_t, Stored>::iterator it;
  if (ds != store_.end() && (it = ds->second.find(block)) != ds->second.end()) {
    current = it->second.generation;
  }
  std::uint64_t next = current;
  if (generation == 0) {
    if (bump) next = current + 1;
  } else {
    if (generation < current) {
      return core::failed_precondition(
          "stale generation " + std::to_string(generation) + " for block " +
          std::to_string(block) + " of " + dataset + " (at " +
          std::to_string(current) + ") on server " + name_);
    }
    next = generation;
  }
  Stored& slot = store_[dataset][block];
  // The bytes being replaced, handed out under the SAME lock as the
  // replacement: a parity delta computed from them is exactly the delta
  // of this generation transition even when writers race on the block.
  if (replaced) *replaced = std::move(slot.data);
  slot.data = std::move(data);
  slot.generation = next;
  if (cache_) {
    // Write-through admission under the new stamp; the old generation's
    // key is erased so a stale entry can never satisfy a fresh lookup.
    if (next != current) {
      cache_->erase(cache::BlockKey{dataset, block, current});
    }
    cache_->insert(cache::BlockKey{dataset, block, next}, slot.data);
  }
  return next;
}

core::Status BlockServer::put_block(const std::string& dataset,
                                    std::uint64_t block,
                                    std::vector<std::uint8_t> data) {
  return apply_write(dataset, block, std::move(data), 0, /*bump=*/false)
      .status();
}

core::Status BlockServer::put_block_at(const std::string& dataset,
                                       std::uint64_t block,
                                       std::vector<std::uint8_t> data,
                                       std::uint64_t generation) {
  return apply_write(dataset, block, std::move(data), generation,
                     /*bump=*/false)
      .status();
}

core::Result<std::vector<std::uint8_t>> BlockServer::get_block(
    const std::string& dataset, std::uint64_t block) const {
  auto stamped = stamped_block(dataset, block);
  if (!stamped.is_ok()) return stamped.status();
  return std::move(stamped).take().data;
}

core::Result<BlockServer::StampedBlock> BlockServer::stamped_block(
    const std::string& dataset, std::uint64_t block) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) {
    return core::not_found("dataset not on server " + name_ + ": " + dataset);
  }
  auto b = ds->second.find(block);
  if (b == ds->second.end()) {
    return core::not_found("block " + std::to_string(block) +
                           " not on server " + name_);
  }
  return StampedBlock{b->second.data, b->second.generation};
}

std::uint64_t BlockServer::block_generation(const std::string& dataset,
                                            std::uint64_t block) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) return 0;
  auto b = ds->second.find(block);
  return b == ds->second.end() ? 0 : b->second.generation;
}

std::uint64_t BlockServer::max_generation(const std::string& dataset) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) return 0;
  std::uint64_t best = 0;
  for (const auto& [id, stored] : ds->second) {
    best = std::max(best, stored.generation);
  }
  return best;
}

std::vector<std::string> BlockServer::dataset_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(store_.size());
  for (const auto& [name, blocks] : store_) names.push_back(name);
  return names;
}

bool BlockServer::drop_block(const std::string& dataset, std::uint64_t block) {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) return false;
  auto it = ds->second.find(block);
  if (it == ds->second.end()) return false;
  if (cache_) {
    cache_->erase(cache::BlockKey{dataset, block, it->second.generation});
  }
  ds->second.erase(it);
  if (ds->second.empty()) store_.erase(ds);
  return true;
}

void BlockServer::wipe() {
  drop_cache();
  std::lock_guard lk(mu_);
  store_.clear();
}

bool BlockServer::has_block(const std::string& dataset,
                            std::uint64_t block) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  return ds != store_.end() && ds->second.count(block) > 0;
}

std::size_t BlockServer::block_count(const std::string& dataset) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  return ds == store_.end() ? 0 : ds->second.size();
}

std::size_t BlockServer::total_bytes() const {
  std::lock_guard lk(mu_);
  std::size_t total = 0;
  for (const auto& [name, blocks] : store_) {
    for (const auto& [id, stored] : blocks) total += stored.data.size();
  }
  return total;
}

cache::MetricsSnapshot BlockServer::cache_metrics() const {
  if (!cache_) return cache::MetricsSnapshot();
  return cache_->metrics();
}

void BlockServer::drop_cache() {
  if (prefetcher_) {
    prefetcher_->drain();
    prefetcher_->reset_patterns();
  }
  if (cache_) cache_->clear();
}

double BlockServer::modeled_disk_seconds() const {
  return static_cast<double>(modeled_disk_micros_.load()) * 1e-6;
}

double BlockServer::charge_disk(std::size_t block_bytes, int concurrent) {
  OBS_STAGE("serv.disk");
  const double service = disk_.block_service_seconds(block_bytes, concurrent);
  modeled_disk_micros_.fetch_add(static_cast<std::uint64_t>(service * 1e6));
  if (throttle_) clock_->sleep_for(service);
  return service;
}

core::Result<std::vector<std::uint8_t>> BlockServer::read_block_serviced(
    const std::string& dataset, std::uint64_t block, int concurrent,
    std::uint64_t conn_id, bool* cache_hit, std::uint64_t* generation) {
  if (cache_) {
    const cache::BlockKey key{dataset, block,
                              block_generation(dataset, block)};
    // The pin keeps the block resident (not just alive) for the duration
    // of the reply construction.
    cache::BlockCache::Pin pin = cache_->lookup_pinned(key);
    if (pin) {
      *cache_hit = true;
      *generation = key.generation;
      if (prefetcher_) {
        prefetcher_->on_access(dataset, block, UINT64_MAX, conn_id);
      }
      return *pin;  // copy out under the pin
    }
  }
  *cache_hit = false;
  auto stamped = stamped_block(dataset, block);
  if (!stamped.is_ok()) return stamped.status();
  *generation = stamped.value().generation;
  charge_disk(stamped.value().data.size(), concurrent);
  if (cache_) {
    cache_->insert(
        cache::BlockKey{dataset, block, stamped.value().generation},
        stamped.value().data);
  }
  if (prefetcher_) {
    prefetcher_->on_access(dataset, block, UINT64_MAX, conn_id);
  }
  return std::move(stamped).take().data;
}

void BlockServer::prefetch_fill(const std::string& dataset,
                                std::uint64_t block) {
  OBS_STAGE("serv.prefetch");
  if (!cache_) return;
  auto stamped = stamped_block(dataset, block);
  if (!stamped.is_ok()) return;
  const cache::BlockKey key{dataset, block, stamped.value().generation};
  if (cache_->contains(key)) return;
  // A prefetch is a real disk read -- it pays the model's service time
  // (concurrency 1: read-ahead streams sequentially off its spindle) --
  // but it pays *off* the client's critical path.
  charge_disk(stamped.value().data.size(), 1);
  if (logger_) {
    logger_->log(netlog::tags::kCachePrefetch,
                 static_cast<std::int64_t>(block), -1,
                 {{"DATASET", dataset},
                  {"BYTES", std::to_string(stamped.value().data.size())}});
  }
  cache_->insert(key, std::move(stamped).take().data, /*prefetched=*/true);
}

std::shared_ptr<BlockServer::PeerLink> BlockServer::peer_link(
    const ServerAddress& addr, std::size_t lane) {
  std::lock_guard lk(peer_mu_);
  auto& slot = peers_[addr.key() + "#" + std::to_string(lane)];
  if (!slot) slot = std::make_shared<PeerLink>();
  return slot;
}

core::Result<net::Message> BlockServer::peer_exchange(
    const ServerAddress& addr, const net::Message& request,
    std::size_t lane) {
  if (!peer_connector_) {
    return core::failed_precondition("server " + name_ +
                                     " has no peer connector");
  }
  auto link = peer_link(addr, lane);
  std::lock_guard lk(link->mu);
  if (!link->stream) {
    auto stream = peer_connector_(addr);
    if (!stream.is_ok()) {
      ++link->failures;
      return stream.status();
    }
    link->stream = std::move(stream).take();
  }
  if (auto st = net::send_message(*link->stream, request); !st.is_ok()) {
    link->stream->close();
    link->stream = nullptr;
    ++link->failures;
    return st;
  }
  auto reply = net::recv_message(*link->stream);
  if (!reply.is_ok()) {
    link->stream->close();
    link->stream = nullptr;
    ++link->failures;
    return reply.status();
  }
  ++link->exchanges;
  link->bytes += request.payload.size() + reply.value().payload.size();
  return reply;
}

net::Message BlockServer::handle_ingest_write(IngestWriteRequest&& req,
                                              const obs::TraceContext& trace) {
  // Local apply: the client->primary hop carries generation 0, which
  // allocates current + 1 here; forwarded hops carry the allocated stamp.
  // For EC overwrites the replaced bytes come back from the same critical
  // section, so the parity delta below is exactly this generation
  // transition's delta even when writers race on the block (deltas XOR,
  // so parity converges regardless of the order they land in).
  std::vector<std::uint8_t> replaced;
  auto gen = apply_write(req.dataset, req.block, req.data, req.generation,
                         /*bump=*/true,
                         req.deltas.empty() ? nullptr : &replaced);
  if (!gen.is_ok()) return encode_error_reply(gen.status());
  std::vector<std::uint8_t> delta;
  if (!req.deltas.empty()) {
    delta = ingest::make_delta(replaced, req.data);
  }

  IngestWriteReply reply;
  reply.block = req.block;
  reply.generation = gen.value();
  reply.acks = 1;

  // Pipeline down the remaining replica chain.  A broken hop takes the
  // whole tail with it (the pipeline cannot skip a link); the tail is
  // reported back as missed so the client can hand it to the fixup queue.
  if (!req.chain.empty()) {
    OBS_STAGE("serv.chain_fwd");
    IngestWriteRequest fwd;
    fwd.dataset = req.dataset;
    fwd.block = req.block;
    fwd.generation = gen.value();
    fwd.ack_policy = req.ack_policy;
    fwd.data = std::move(req.data);
    fwd.chain.assign(req.chain.begin() + 1, req.chain.end());
    net::Message fwd_msg = encode_ingest_write_request(fwd);
    if (trace.sampled()) {
      // The forward is a new hop of the same request: same trace, fresh
      // span, with a lifeline event marking the relay.
      fwd_msg.trace_id = trace.trace_id;
      fwd_msg.span_id = obs::new_span_id();
      if (logger_) {
        logger_->log(netlog::tags::kDpssChainForward,
                     static_cast<std::int64_t>(req.block), -1,
                     {{"TRACE", obs::trace_hex(trace.trace_id)},
                      {"SPAN", obs::trace_hex(fwd_msg.span_id)},
                      {"PARENT", obs::trace_hex(trace.span_id)},
                      {"NEXT", req.chain.front().key()}});
      }
    }
    // Lane = the tail the next hop still has to forward; see peer_exchange.
    auto exchanged = peer_exchange(req.chain.front(), fwd_msg,
                                   fwd.chain.size());
    bool forwarded = false;
    if (exchanged.is_ok()) {
      auto sub = decode_ingest_write_reply(exchanged.value());
      if (sub.is_ok()) {
        forwarded = true;
        chain_forwards_.inc();
        reply.acks += sub.value().acks;
        for (auto& a : sub.value().missed) {
          reply.missed.push_back(std::move(a));
        }
      }
    }
    if (!forwarded) {
      for (const auto& a : req.chain) reply.missed.push_back(a);
    }
  }

  // Ship the GF delta to each parity owner (EC overwrites).  Targets are
  // independent: one failed owner does not block the others.
  for (const auto& d : req.deltas) {
    OBS_STAGE("serv.parity_send");
    ParityDeltaRequest pd;
    pd.dataset = d.dataset;
    pd.block = d.block;
    pd.coefficient = d.coefficient;
    pd.delta = delta;
    net::Message pd_msg = encode_parity_delta_request(pd);
    if (trace.sampled()) {
      pd_msg.trace_id = trace.trace_id;
      pd_msg.span_id = obs::new_span_id();
      if (logger_) {
        logger_->log(netlog::tags::kDpssParityDelta,
                     static_cast<std::int64_t>(d.block), -1,
                     {{"TRACE", obs::trace_hex(trace.trace_id)},
                      {"SPAN", obs::trace_hex(pd_msg.span_id)},
                      {"PARENT", obs::trace_hex(trace.span_id)},
                      {"TARGET", d.server.key()}});
      }
    }
    auto exchanged = peer_exchange(d.server, pd_msg, /*lane=*/0);
    bool applied = false;
    if (exchanged.is_ok()) {
      applied = decode_parity_delta_reply(exchanged.value()).is_ok();
    }
    if (applied) {
      reply.acks += 1;
    } else {
      reply.missed.push_back(d.server);
    }
  }
  return encode_ingest_write_reply(reply);
}

net::Message BlockServer::handle_parity_delta(ParityDeltaRequest&& req) {
  OBS_STAGE("serv.parity_delta");
  std::uint64_t next_gen;
  {
    // The whole read-modify-write holds mu_: two deltas racing for one
    // parity block (overwrites of sibling data slices) must serialise or
    // one update is lost.
    std::lock_guard lk(mu_);
    Stored& slot = store_[req.dataset][req.block];
    if (slot.data.size() < req.delta.size()) {
      slot.data.resize(req.delta.size(), 0);
    }
    // Out-of-place kernel: the old generation's bytes stay intact until
    // the swap, so a concurrent reader copying them out under mu_-free
    // cache pins never observes a half-applied delta.
    std::vector<std::uint8_t> next(slot.data.size());
    codec::gf256::delta_apply(next.data(), slot.data.data(), req.delta.data(),
                              req.delta.size(), req.coefficient);
    std::copy(slot.data.begin() +
                  static_cast<std::ptrdiff_t>(req.delta.size()),
              slot.data.end(),
              next.begin() + static_cast<std::ptrdiff_t>(req.delta.size()));
    const std::uint64_t old_gen = slot.generation;
    next_gen = old_gen + 1;
    slot.data = std::move(next);
    slot.generation = next_gen;
    if (cache_) {
      cache_->erase(cache::BlockKey{req.dataset, req.block, old_gen});
      cache_->insert(cache::BlockKey{req.dataset, req.block, next_gen},
                     slot.data);
    }
  }
  parity_deltas_.inc();
  ParityDeltaReply reply;
  reply.block = req.block;
  reply.generation = next_gen;
  return encode_parity_delta_reply(reply);
}

void BlockServer::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  if (stopping_.load()) return;
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] { service_loop(stream); });
}

void BlockServer::shutdown() {
  stopping_.store(true);
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  {
    // Drop pooled peer links: a revived server re-establishes them lazily.
    std::lock_guard lk(peer_mu_);
    for (auto& [key, link] : peers_) {
      std::lock_guard plk(link->mu);
      if (link->stream) link->stream->close();
      link->stream = nullptr;
    }
    peers_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (prefetcher_) prefetcher_->drain();
  stopping_.store(false);
}

void BlockServer::service_loop(net::StreamPtr stream) {
  const std::uint64_t conn_id = allocate_conn_id();
  for (;;) {
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) {
      // A recv deadline (set by the deployment on TCP streams) counts as a
      // shed stalled client, mirroring the reactor's read-timeout metric.
      if (msg.status().code() == core::StatusCode::kDeadlineExceeded) {
        note_read_timeout();
      }
      return;  // peer closed (or shed)
    }
    net::Message reply = handle_request(std::move(msg).take(), conn_id);
    if (auto st = net::send_message(*stream, reply); !st.is_ok()) return;
  }
}

net::Message BlockServer::handle_request(net::Message&& msg,
                                         std::uint64_t conn_id) {
  const int concurrent = static_cast<int>(in_flight_.add(1));
  requests_.inc();

  const obs::TraceContext trace{msg.trace_id, msg.span_id};
  const double t0 = clock_->now();
  if (trace.sampled() && logger_) {
    logger_->log(netlog::tags::kDpssServIn, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"TYPE", std::to_string(msg.type)}});
  }
  obs::Histogram* latency = nullptr;
  // Attribution fields for the SERV_OUT lifeline event: how much of this
  // span was modeled disk-queue wait, and how many payload bytes moved.
  double queue_seconds = 0.0;
  std::uint64_t served_bytes = 0;

  net::Message reply;
  switch (msg.type) {
      case kBlockReadRequest: {
        OBS_STAGE("serv.read");
        latency = &read_seconds_;
        auto req = decode_block_read_request(msg);
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        bool cache_hit = false;
        std::uint64_t generation = 0;
        auto data = read_block_serviced(req.value().dataset, req.value().block,
                                        concurrent, conn_id, &cache_hit,
                                        &generation);
        if (!data.is_ok()) {
          reply = encode_error_reply(data.status());
          break;
        }
        served_bytes = data.value().size();
        if (!cache_hit) {
          // The modeled service time in excess of an idle disk is queue
          // wait; a cache hit never touched the disk model.
          queue_seconds =
              std::max(0.0, disk_.block_service_seconds(served_bytes,
                                                        concurrent) -
                                disk_.block_service_seconds(served_bytes, 1));
        }
        if (logger_) {
          logger_->log("DPSS_BLOCK_READ", -1, -1,
                       {{"BYTES", std::to_string(data.value().size())},
                        {"BLOCK", std::to_string(req.value().block)},
                        {"CACHE", cache_hit ? "HIT" : "MISS"}});
        }
        BlockReadReply r;
        r.block = req.value().block;
        r.generation = generation;
        if (req.value().compression.codec != Codec::kNone) {
          // Wire-level compression on the block service (section 5).
          auto wire = compress_block(data.value(), req.value().compression);
          if (!wire.is_ok()) {
            reply = encode_error_reply(wire.status());
            break;
          }
          r.compressed = true;
          r.data = std::move(wire).take();
        } else {
          r.data = std::move(data).take();
        }
        reply = encode_block_read_reply(r);
        break;
      }
      case kBlockWriteRequest: {
        OBS_STAGE("serv.write");
        latency = &write_seconds_;
        auto req = decode_block_write_request(msg);
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        const std::uint64_t block = req.value().block;
        core::Status st =
            req.value().generation == 0
                ? put_block(req.value().dataset, block,
                            std::move(req.value().data))
                : put_block_at(req.value().dataset, block,
                               std::move(req.value().data),
                               req.value().generation);
        reply = st.is_ok() ? encode_block_write_reply(block)
                           : encode_error_reply(st);
        break;
      }
      case kIngestWriteRequest: {
        OBS_STAGE("serv.ingest");
        latency = &write_seconds_;
        auto req = decode_ingest_write_request(msg);
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        served_bytes = req.value().data.size();
        reply = handle_ingest_write(std::move(req).take(), trace);
        break;
      }
      case kParityDeltaRequest: {
        latency = &write_seconds_;
        auto req = decode_parity_delta_request(msg);
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        reply = handle_parity_delta(std::move(req).take());
        break;
      }
      case kStatsRequest:
        reply = encode_stats_reply(registry_.render_text());
        break;
      case kProfileRequest:
        reply =
            encode_profile_reply(obs::Profiler::global().render_collapsed());
        break;
      default:
        reply = encode_error_reply(
            core::invalid_argument("unknown request type at block server"));
        break;
    }
  if (latency) latency->observe(std::max(0.0, clock_->now() - t0));
  if (trace.sampled()) {
    // Replies travel under the request's trace so the client can match
    // them; the blocking pipe transport has no reactor to echo for us.
    reply.trace_id = trace.trace_id;
    reply.span_id = trace.span_id;
    if (logger_) {
      char queue[32];
      std::snprintf(queue, sizeof queue, "%.9g", queue_seconds);
      logger_->log(netlog::tags::kDpssServOut, -1, -1,
                   {{"TRACE", obs::trace_hex(trace.trace_id)},
                    {"SPAN", obs::trace_hex(trace.span_id)},
                    {"QUEUE", queue},
                    {"BYTES", std::to_string(served_bytes)}});
    }
  }
  in_flight_.add(-1);
  return reply;
}

}  // namespace visapult::dpss
