#include "dpss/server.h"

#include <algorithm>

#include "dpss/protocol.h"

namespace visapult::dpss {

double DiskModel::block_service_seconds(std::size_t block_bytes,
                                        int concurrent) const {
  const double base =
      seek_seconds + static_cast<double>(block_bytes) / disk_bytes_per_sec;
  // Queueing factor: with more outstanding requests than spindles, each
  // request waits its turn.
  const double q = std::max(1.0, static_cast<double>(concurrent) / disks);
  return base * q;
}

double DiskModel::streaming_bytes_per_sec(std::size_t block_bytes) const {
  const double per_disk =
      static_cast<double>(block_bytes) /
      (seek_seconds + static_cast<double>(block_bytes) / disk_bytes_per_sec);
  return per_disk * disks;
}

BlockServer::BlockServer(std::string name, DiskModel disk, bool throttle)
    : name_(std::move(name)), disk_(disk), throttle_(throttle) {}

BlockServer::~BlockServer() { shutdown(); }

core::Status BlockServer::put_block(const std::string& dataset,
                                    std::uint64_t block,
                                    std::vector<std::uint8_t> data) {
  std::lock_guard lk(mu_);
  store_[dataset][block] = std::move(data);
  return core::Status::ok();
}

core::Result<std::vector<std::uint8_t>> BlockServer::get_block(
    const std::string& dataset, std::uint64_t block) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) {
    return core::not_found("dataset not on server " + name_ + ": " + dataset);
  }
  auto b = ds->second.find(block);
  if (b == ds->second.end()) {
    return core::not_found("block " + std::to_string(block) +
                           " not on server " + name_);
  }
  return b->second;
}

std::size_t BlockServer::block_count(const std::string& dataset) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  return ds == store_.end() ? 0 : ds->second.size();
}

std::size_t BlockServer::total_bytes() const {
  std::lock_guard lk(mu_);
  std::size_t total = 0;
  for (const auto& [name, blocks] : store_) {
    for (const auto& [id, data] : blocks) total += data.size();
  }
  return total;
}

void BlockServer::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  if (stopping_.load()) return;
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] { service_loop(stream); });
}

void BlockServer::shutdown() {
  stopping_.store(true);
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  stopping_.store(false);
}

void BlockServer::service_loop(net::StreamPtr stream) {
  for (;;) {
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) return;  // peer closed

    const int concurrent = in_flight_.fetch_add(1) + 1;
    requests_.fetch_add(1);

    net::Message reply;
    switch (msg.value().type) {
      case kBlockReadRequest: {
        auto req = decode_block_read_request(msg.value());
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        auto data = get_block(req.value().dataset, req.value().block);
        if (!data.is_ok()) {
          reply = encode_error_reply(data.status());
          break;
        }
        if (throttle_) {
          core::global_real_clock().sleep_for(
              disk_.block_service_seconds(data.value().size(), concurrent));
        }
        if (logger_) {
          logger_->log("DPSS_BLOCK_READ", -1, -1,
                       {{"BYTES", std::to_string(data.value().size())},
                        {"BLOCK", std::to_string(req.value().block)}});
        }
        BlockReadReply r;
        r.block = req.value().block;
        if (req.value().compression.codec != Codec::kNone) {
          // Wire-level compression on the block service (section 5).
          auto wire = compress_block(data.value(), req.value().compression);
          if (!wire.is_ok()) {
            reply = encode_error_reply(wire.status());
            break;
          }
          r.compressed = true;
          r.data = std::move(wire).take();
        } else {
          r.data = std::move(data).take();
        }
        reply = encode_block_read_reply(r);
        break;
      }
      case kBlockWriteRequest: {
        auto req = decode_block_write_request(msg.value());
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        const std::uint64_t block = req.value().block;
        (void)put_block(req.value().dataset, block,
                        std::move(req.value().data));
        reply = encode_block_write_reply(block);
        break;
      }
      default:
        reply = encode_error_reply(
            core::invalid_argument("unknown request type at block server"));
        break;
    }
    in_flight_.fetch_sub(1);
    if (auto st = net::send_message(*stream, reply); !st.is_ok()) return;
  }
}

}  // namespace visapult::dpss
