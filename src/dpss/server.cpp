#include "dpss/server.h"

#include <algorithm>

#include "dpss/protocol.h"
#include "netlog/event.h"

namespace visapult::dpss {

double DiskModel::block_service_seconds(std::size_t block_bytes,
                                        int concurrent) const {
  const double base =
      seek_seconds + static_cast<double>(block_bytes) / disk_bytes_per_sec;
  // Queueing factor: with more outstanding requests than spindles, each
  // request waits its turn.
  const double q = std::max(1.0, static_cast<double>(concurrent) / disks);
  return base * q;
}

double DiskModel::streaming_bytes_per_sec(std::size_t block_bytes) const {
  const double per_disk =
      static_cast<double>(block_bytes) /
      (seek_seconds + static_cast<double>(block_bytes) / disk_bytes_per_sec);
  return per_disk * disks;
}

BlockServer::BlockServer(std::string name, DiskModel disk, bool throttle,
                         ServerCacheConfig cache_config)
    : name_(std::move(name)), disk_(disk), throttle_(throttle),
      cache_config_(cache_config) {
  if (cache_config_.enabled) {
    cache::BlockCacheConfig cc;
    cc.capacity_bytes = cache_config_.capacity_bytes;
    cc.shards = cache_config_.shards;
    cc.policy = cache_config_.policy;
    cc.tinylfu_admission = cache_config_.tinylfu_admission;
    cache_ = std::make_unique<cache::BlockCache>(cc);
    if (cache_config_.prefetch) {
      if (cache_config_.prefetch_threads > 0) {
        prefetch_pool_ =
            std::make_unique<core::ThreadPool>(cache_config_.prefetch_threads);
      }
      prefetcher_ = std::make_unique<cache::Prefetcher>(
          cache_config_.prefetch_config,
          [this](const std::string& dataset, std::uint64_t block) {
            prefetch_fill(dataset, block);
          },
          prefetch_pool_.get(), &cache_->counters());
      // Only predict blocks this server actually stores (its stripe of the
      // dataset) and that are not already resident.
      prefetcher_->set_filter(
          [this](const std::string& dataset, std::uint64_t block) {
            return cache_->contains(cache::BlockKey{dataset, block}) ||
                   !has_block(dataset, block);
          });
    }
  }
}

BlockServer::~BlockServer() { shutdown(); }

void BlockServer::set_logger(std::shared_ptr<netlog::NetLogger> logger) {
  logger_ = logger;
  if (cache_) cache_->set_logger(std::move(logger));
}

core::Status BlockServer::put_block(const std::string& dataset,
                                    std::uint64_t block,
                                    std::vector<std::uint8_t> data) {
  if (cache_) {
    // Write-through admission: ingest and migration leave the memory tier
    // warm, exactly like a real cache sitting on the write path.
    cache_->insert(cache::BlockKey{dataset, block}, data);
  }
  std::lock_guard lk(mu_);
  store_[dataset][block] = std::move(data);
  return core::Status::ok();
}

core::Result<std::vector<std::uint8_t>> BlockServer::get_block(
    const std::string& dataset, std::uint64_t block) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) {
    return core::not_found("dataset not on server " + name_ + ": " + dataset);
  }
  auto b = ds->second.find(block);
  if (b == ds->second.end()) {
    return core::not_found("block " + std::to_string(block) +
                           " not on server " + name_);
  }
  return b->second;
}

bool BlockServer::drop_block(const std::string& dataset, std::uint64_t block) {
  if (cache_) cache_->erase(cache::BlockKey{dataset, block});
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  if (ds == store_.end()) return false;
  const bool erased = ds->second.erase(block) > 0;
  if (ds->second.empty()) store_.erase(ds);
  return erased;
}

void BlockServer::wipe() {
  drop_cache();
  std::lock_guard lk(mu_);
  store_.clear();
}

bool BlockServer::has_block(const std::string& dataset,
                            std::uint64_t block) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  return ds != store_.end() && ds->second.count(block) > 0;
}

std::size_t BlockServer::block_count(const std::string& dataset) const {
  std::lock_guard lk(mu_);
  auto ds = store_.find(dataset);
  return ds == store_.end() ? 0 : ds->second.size();
}

std::size_t BlockServer::total_bytes() const {
  std::lock_guard lk(mu_);
  std::size_t total = 0;
  for (const auto& [name, blocks] : store_) {
    for (const auto& [id, data] : blocks) total += data.size();
  }
  return total;
}

cache::MetricsSnapshot BlockServer::cache_metrics() const {
  if (!cache_) return cache::MetricsSnapshot();
  return cache_->metrics();
}

void BlockServer::drop_cache() {
  if (prefetcher_) {
    prefetcher_->drain();
    prefetcher_->reset_patterns();
  }
  if (cache_) cache_->clear();
}

double BlockServer::modeled_disk_seconds() const {
  return static_cast<double>(modeled_disk_micros_.load()) * 1e-6;
}

double BlockServer::charge_disk(std::size_t block_bytes, int concurrent) {
  const double service = disk_.block_service_seconds(block_bytes, concurrent);
  modeled_disk_micros_.fetch_add(static_cast<std::uint64_t>(service * 1e6));
  if (throttle_) clock_->sleep_for(service);
  return service;
}

core::Result<std::vector<std::uint8_t>> BlockServer::read_block_serviced(
    const std::string& dataset, std::uint64_t block, int concurrent,
    std::uint64_t conn_id, bool* cache_hit) {
  const cache::BlockKey key{dataset, block};
  if (cache_) {
    // The pin keeps the block resident (not just alive) for the duration
    // of the reply construction.
    cache::BlockCache::Pin pin = cache_->lookup_pinned(key);
    if (pin) {
      *cache_hit = true;
      if (prefetcher_) {
        prefetcher_->on_access(dataset, block, UINT64_MAX, conn_id);
      }
      return *pin;  // copy out under the pin
    }
  }
  *cache_hit = false;
  auto data = get_block(dataset, block);
  if (!data.is_ok()) return data;
  charge_disk(data.value().size(), concurrent);
  if (cache_) {
    cache_->insert(key, data.value());
  }
  if (prefetcher_) {
    prefetcher_->on_access(dataset, block, UINT64_MAX, conn_id);
  }
  return data;
}

void BlockServer::prefetch_fill(const std::string& dataset,
                                std::uint64_t block) {
  const cache::BlockKey key{dataset, block};
  if (!cache_ || cache_->contains(key)) return;
  auto data = get_block(dataset, block);
  if (!data.is_ok()) return;
  // A prefetch is a real disk read -- it pays the model's service time
  // (concurrency 1: read-ahead streams sequentially off its spindle) --
  // but it pays *off* the client's critical path.
  charge_disk(data.value().size(), 1);
  if (logger_) {
    logger_->log(netlog::tags::kCachePrefetch,
                 static_cast<std::int64_t>(block), -1,
                 {{"DATASET", dataset},
                  {"BYTES", std::to_string(data.value().size())}});
  }
  cache_->insert(key, std::move(data).take(), /*prefetched=*/true);
}

void BlockServer::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  if (stopping_.load()) return;
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] { service_loop(stream); });
}

void BlockServer::shutdown() {
  stopping_.store(true);
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (prefetcher_) prefetcher_->drain();
  stopping_.store(false);
}

void BlockServer::service_loop(net::StreamPtr stream) {
  const std::uint64_t conn_id = next_conn_id_.fetch_add(1) + 1;
  for (;;) {
    auto msg = net::recv_message(*stream);
    if (!msg.is_ok()) return;  // peer closed

    const int concurrent = in_flight_.fetch_add(1) + 1;
    requests_.fetch_add(1);

    net::Message reply;
    switch (msg.value().type) {
      case kBlockReadRequest: {
        auto req = decode_block_read_request(msg.value());
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        bool cache_hit = false;
        auto data = read_block_serviced(req.value().dataset, req.value().block,
                                        concurrent, conn_id, &cache_hit);
        if (!data.is_ok()) {
          reply = encode_error_reply(data.status());
          break;
        }
        if (logger_) {
          logger_->log("DPSS_BLOCK_READ", -1, -1,
                       {{"BYTES", std::to_string(data.value().size())},
                        {"BLOCK", std::to_string(req.value().block)},
                        {"CACHE", cache_hit ? "HIT" : "MISS"}});
        }
        BlockReadReply r;
        r.block = req.value().block;
        if (req.value().compression.codec != Codec::kNone) {
          // Wire-level compression on the block service (section 5).
          auto wire = compress_block(data.value(), req.value().compression);
          if (!wire.is_ok()) {
            reply = encode_error_reply(wire.status());
            break;
          }
          r.compressed = true;
          r.data = std::move(wire).take();
        } else {
          r.data = std::move(data).take();
        }
        reply = encode_block_read_reply(r);
        break;
      }
      case kBlockWriteRequest: {
        auto req = decode_block_write_request(msg.value());
        if (!req.is_ok()) {
          reply = encode_error_reply(req.status());
          break;
        }
        const std::uint64_t block = req.value().block;
        (void)put_block(req.value().dataset, block,
                        std::move(req.value().data));
        reply = encode_block_write_reply(block);
        break;
      }
      default:
        reply = encode_error_reply(
            core::invalid_argument("unknown request type at block server"));
        break;
    }
    in_flight_.fetch_sub(1);
    if (auto st = net::send_message(*stream, reply); !st.is_ok()) return;
  }
}

}  // namespace visapult::dpss
