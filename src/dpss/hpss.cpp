#include "dpss/hpss.h"

#include <cstring>

namespace visapult::dpss {

void HpssArchive::store(const vol::DatasetDesc& desc) {
  std::lock_guard lk(mu_);
  files_[desc.name] = desc;
}

bool HpssArchive::contains(const std::string& name) const {
  std::lock_guard lk(mu_);
  return files_.count(name) > 0;
}

std::vector<std::string> HpssArchive::file_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, desc] : files_) names.push_back(name);
  return names;
}

core::Result<std::vector<std::uint8_t>> HpssArchive::read_file(
    const std::string& name, double* service_seconds) {
  vol::DatasetDesc desc;
  {
    std::lock_guard lk(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) {
      return core::not_found("not archived on HPSS: " + name);
    }
    desc = it->second;
  }
  std::vector<std::uint8_t> bytes(desc.total_bytes());
  std::size_t at = 0;
  for (int t = 0; t < desc.timesteps; ++t) {
    const vol::Volume v = desc.generate(t);
    std::memcpy(bytes.data() + at, v.data().data(), v.byte_size());
    at += v.byte_size();
  }
  if (service_seconds) {
    *service_seconds = model_.mount_seconds +
                       static_cast<double>(bytes.size()) /
                           model_.stream_bytes_per_sec;
  }
  return bytes;
}

core::Result<double> HpssArchive::retrieval_seconds(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return core::not_found("not archived on HPSS: " + name);
  }
  return model_.mount_seconds +
         static_cast<double>(it->second.total_bytes()) /
             model_.stream_bytes_per_sec;
}

core::Result<MigrationReport> migrate_to_dpss(HpssArchive& archive,
                                              const std::string& name,
                                              PipeDeployment& cache,
                                              std::uint32_t block_bytes) {
  // Whole-file retrieval from the archive (its only access mode)...
  double service = 0.0;
  auto bytes = archive.read_file(name, &service);
  if (!bytes.is_ok()) return bytes.status();

  // ...then block-striped ingest into the cache, straight from the
  // retrieved bytes: the cache never needs to know the data came from
  // tape, and Visapult back ends only ever do block reads against it.
  MigrationReport report;
  report.bytes = bytes.value().size();
  report.hpss_service_seconds = service;

  DatasetLayout layout;
  layout.total_bytes = bytes.value().size();
  layout.block_bytes = block_bytes;
  layout.stripe_blocks = 1;
  layout.server_count = static_cast<std::uint32_t>(cache.server_count());

  std::vector<ServerAddress> addrs;
  for (int i = 0; i < cache.server_count(); ++i) {
    addrs.push_back(ServerAddress{"pipe-server-" + std::to_string(i),
                                  static_cast<std::uint16_t>(i)});
  }
  const auto& data = bytes.value();
  for (std::uint64_t block = 0; block < layout.block_count(); ++block) {
    const std::uint64_t off = block * block_bytes;
    const std::uint64_t len = layout.block_length(block);
    cache.server(static_cast<int>(layout.server_for_block(block)))
        .put_block(name, block,
                   std::vector<std::uint8_t>(
                       data.begin() + static_cast<std::ptrdiff_t>(off),
                       data.begin() + static_cast<std::ptrdiff_t>(off + len)));
  }
  if (auto st = cache.master().register_dataset(name, layout, std::move(addrs));
      !st.is_ok()) {
    return st;
  }
  return report;
}

}  // namespace visapult::dpss
