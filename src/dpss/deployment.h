// DPSS deployments: wiring master + servers + clients over a transport.
//
// Two deployments of the same components:
//   * PipeDeployment -- everything in-process over in-memory pipes; used by
//     unit/integration tests and the quickstart example.
//   * TcpDeployment -- master and servers listening on real loopback TCP
//     ports with accept threads; used by the dpss_tool example and the
//     socket integration tests.
//
// Both provide ingest helpers that stripe a generated dataset across the
// block servers and register it with the master -- the reproduction of
// "migrate the files from HPSS to a nearby DPSS cache".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dpss/client.h"
#include "dpss/master.h"
#include "dpss/server.h"
#include "dpss/thumbnail.h"
#include "net/tcp.h"
#include "vol/dataset.h"

namespace visapult::dpss {

class PipeDeployment {
 public:
  // `server_count` block servers, all with the same disk model and memory
  // tier configuration.
  explicit PipeDeployment(int server_count, DiskModel disk = {},
                          ServerCacheConfig cache = ServerCacheConfig());
  ~PipeDeployment();

  Master& master() { return master_; }
  BlockServer& server(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  int server_count() const { return static_cast<int>(servers_.size()); }

  // Stripe `desc`'s timesteps into the store and register "<name>" with the
  // master.  The whole time series is one logical DPSS file; timestep t
  // occupies bytes [t*step_bytes, (t+1)*step_bytes).
  core::Status ingest(const vol::DatasetDesc& desc,
                      std::uint32_t block_bytes = kDefaultBlockBytes,
                      std::uint32_t stripe_blocks = 1);

  // Run the offline thumbnail service for an ingested dataset (section 5
  // future work); registers "<name>.thumbs".
  core::Status generate_thumbnails(const vol::DatasetDesc& desc,
                                   const render::TransferFunction& tf,
                                   const ThumbnailOptions& options = {});

  // New client with pipes to master and servers.
  DpssClient make_client();

 private:
  Master master_;
  std::vector<std::unique_ptr<BlockServer>> servers_;
};

class TcpDeployment {
 public:
  // Starts listeners and accept threads.  `throttle` enables the disk
  // service-time model on the live servers.
  TcpDeployment(int server_count, DiskModel disk = {}, bool throttle = false,
                ServerCacheConfig cache = ServerCacheConfig());
  ~TcpDeployment();

  core::Status start();
  void stop();

  Master& master() { return master_; }
  BlockServer& server(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  int server_count() const { return static_cast<int>(servers_.size()); }
  std::uint16_t master_port() const { return master_listener_.port(); }

  core::Status ingest(const vol::DatasetDesc& desc,
                      std::uint32_t block_bytes = kDefaultBlockBytes,
                      std::uint32_t stripe_blocks = 1);

  // New client connected over loopback TCP.
  core::Result<DpssClient> make_client();

 private:
  core::Status ingest_common(Master& master,
                             std::vector<std::unique_ptr<BlockServer>>& servers,
                             std::vector<ServerAddress> addresses,
                             const vol::DatasetDesc& desc,
                             std::uint32_t block_bytes,
                             std::uint32_t stripe_blocks);

  Master master_;
  std::vector<std::unique_ptr<BlockServer>> servers_;
  net::TcpListener master_listener_;
  std::vector<std::unique_ptr<net::TcpListener>> server_listeners_;
  std::vector<std::thread> accept_threads_;
  bool started_ = false;
};

// Shared ingest logic: stripe the dataset blocks into the given servers and
// register the layout with the master.
core::Status ingest_dataset(Master& master,
                            std::vector<BlockServer*> servers,
                            std::vector<ServerAddress> addresses,
                            const vol::DatasetDesc& desc,
                            std::uint32_t block_bytes,
                            std::uint32_t stripe_blocks);

}  // namespace visapult::dpss
