// DPSS deployments: wiring master + servers + clients over a transport.
//
// Two deployments of the same components:
//   * PipeDeployment -- everything in-process over in-memory pipes; used by
//     unit/integration tests and the quickstart example.
//   * TcpDeployment -- master and servers listening on real loopback TCP
//     ports with accept threads; used by the dpss_tool example and the
//     socket integration tests.
//
// Both provide ingest helpers that stripe a generated dataset across the
// block servers and register it with the master -- the reproduction of
// "migrate the files from HPSS to a nearby DPSS cache".  Ingesting with
// `replication_factor > 1` places each block on that many servers via the
// placement ring and writes every replica, enabling client failover.
// Ingesting with an enabled codec::EcProfile instead erasure-codes: each
// group of k blocks lands on k+m distinct servers (data slices written in
// place, parity slices encoded server-side at ingest), enabling client
// reconstruction at ~(k+m)/k of raw capacity.
//
// Failure-scenario levers (the SimGrid-style kill / slow / rejoin
// campaigns, live): kill_server() makes a server refuse service
// mid-flight, revive_server() (pipes) brings it back, add_server() (pipes)
// joins an empty server, heartbeat_all() pumps liveness+load beats into
// the master, and rebalance_dataset() recomputes placement over the
// currently live servers and executes the Rebalancer's copy/drop plan
// against the block stores.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codec/ec_profile.h"
#include "core/thread_pool.h"
#include "dpss/client.h"
#include "dpss/master.h"
#include "dpss/server.h"
#include "dpss/thumbnail.h"
#include "ingest/fixup.h"
#include "net/reactor.h"
#include "net/reactor_server.h"
#include "net/tcp.h"
#include "netlog/span_extract.h"
#include "placement/rebalancer.h"
#include "vol/dataset.h"

namespace visapult::dpss {

// One component's trace-export pipeline: the bounded sink its NetLogger
// writes lifeline events into, and the stateful extractor that turns sink
// drains into finished span records (holding unpaired opens across drains).
struct TraceExport {
  std::string host;
  std::shared_ptr<netlog::MemorySink> sink;
  netlog::SpanExtractor extractor;
};

// Drain `e`'s sink, extract finished spans, and ship them into `master`'s
// SpanCollector through the kSpanExport encode/decode path (exactly what a
// remote exporter's batch goes through).  Returns spans accepted.
std::uint64_t export_spans_to_master(Master& master, TraceExport& e);

class PipeDeployment {
 public:
  // `server_count` block servers, all with the same disk model and memory
  // tier configuration.
  explicit PipeDeployment(int server_count, DiskModel disk = {},
                          ServerCacheConfig cache = ServerCacheConfig());
  ~PipeDeployment();

  Master& master() { return master_; }
  BlockServer& server(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  int server_count() const { return static_cast<int>(servers_.size()); }
  ServerAddress server_address(int i) const;

  // Stripe `desc`'s timesteps into the store and register "<name>" with the
  // master.  The whole time series is one logical DPSS file; timestep t
  // occupies bytes [t*step_bytes, (t+1)*step_bytes).  With
  // `replication_factor > 1` each block lands on that many ring-placed
  // servers.
  core::Status ingest(const vol::DatasetDesc& desc,
                      std::uint32_t block_bytes = kDefaultBlockBytes,
                      std::uint32_t stripe_blocks = 1,
                      std::uint32_t replication_factor = 1,
                      const codec::EcProfile& ec = {});

  // Run the offline thumbnail service for an ingested dataset (section 5
  // future work); registers "<name>.thumbs".
  core::Status generate_thumbnails(const vol::DatasetDesc& desc,
                                   const render::TransferFunction& tf,
                                   const ThumbnailOptions& options = {});

  // New client with pipes to master and servers.
  DpssClient make_client();

  // ---- failure scenarios ----
  // Stop serving from server `i`: existing connections drop, new connects
  // are refused.  The block store survives (a dead machine's disks are not
  // wiped), so a later revive_server() or rebalance copy can read it.
  void kill_server(int i);
  // Rejoin: accept connections again and heartbeat the master back to up.
  void revive_server(int i);
  bool server_killed(int i) const;
  // Join an empty server to the farm; returns its index.  Call
  // rebalance_dataset() to give it blocks.
  int add_server();
  // Kill server `i` AND wipe its block store: a disk loss, not just a
  // process death.  Rebalance copies sourced here must reconstruct.
  void wipe_server(int i);
  // Heartbeat every live server's liveness + served-request load into the
  // master's health tracker at time `now` (seconds on the caller's clock).
  void heartbeat_all(double now = 0.0);
  // Recompute `name`'s placement over the live (non-killed) servers and
  // execute the copy/drop plan.  Ring-placed datasets only.
  core::Status rebalance_dataset(const std::string& name);
  // Arm the master's background re-replication with this deployment's
  // plan executor; drive it via master().tick(now).
  void enable_auto_rebalance(double down_deadline_seconds);
  // Arm the master's ingest fixup queue with this deployment's executor
  // (apply_fixup against the live block stores); drain via
  // master().tick(now).
  void enable_fixups();

  // ---- trace aggregation (PR 8) ----
  // Attach a real-clock NetLogger (bounded MemorySink) to the master and
  // every block server so traced requests leave lifeline events to export.
  // Call before driving traced load.
  void enable_trace_collection(std::size_t sink_capacity = 4096);
  // Drain every component's sink and ship the finished spans into the
  // master's SpanCollector; returns spans accepted.  Client-side sinks are
  // the caller's (see export_spans_to_master).
  std::uint64_t export_spans();

 private:
  BlockServer* server_for(const ServerAddress& addr);
  // Transport the servers use to reach each other (chain forwarding and
  // parity deltas); goes through the same liveness gate as client
  // connects, so a hop into a killed server fails like a client would.
  Connector make_peer_connector();

  Master master_;
  DiskModel disk_;
  ServerCacheConfig cache_config_;
  // Guards servers_/killed_ membership against concurrent client connects
  // and kill/revive/add (the failure-scenario tests exercise exactly that).
  mutable std::mutex state_mu_;
  std::vector<std::unique_ptr<BlockServer>> servers_;
  std::vector<char> killed_;
  std::vector<std::unique_ptr<TraceExport>> trace_exports_;
};

// How a TcpDeployment services connections.
enum class ServeMode {
  // Epoll event loops (net/reactor_server.h): a connection costs a buffer,
  // not a thread, so one deployment absorbs thousands of clients -- the
  // paper's massive fan-in.  The default.
  kReactor,
  // The historical one-thread-per-connection accept loops; kept as the
  // baseline the connections-vs-throughput sweeps compare against.
  kThreadPerConnection,
};

struct TcpDeploymentOptions {
  ServeMode serve_mode = ServeMode::kReactor;
  // 0 -> one event loop per core (capped in ReactorPool).
  int reactor_loops = 0;
  // Handler offload threads per block server (reactor mode).  Block-server
  // handlers may block (modelled disk sleeps, chain forwarding to peers),
  // so they never run on the event loops; per-server pools keep an A->B
  // forward from competing with B's own inbound work.
  int worker_threads = 4;
  // Outbound connects (clients and server-to-server peer links) fail with
  // kDeadlineExceeded after this long instead of hanging on a dead or
  // overloaded address; failover then tries the next replica.
  double connect_timeout_seconds = 5.0;
  // Per-request read deadline on server connections (reactor mode): once a
  // request's first byte arrives the rest must follow within this window
  // or the connection is shed and counted.  0 disables.
  double request_read_timeout_seconds = 10.0;
  // Back-pressure cap per connection (reactor mode): un-drained reply
  // bytes beyond this close the connection.
  std::size_t write_queue_cap_bytes = 4u << 20;
};

class TcpDeployment {
 public:
  // Starts listeners (reactor-backed or accept threads per `options`).
  // `throttle` enables the disk service-time model on the live servers.
  TcpDeployment(int server_count, DiskModel disk = {}, bool throttle = false,
                ServerCacheConfig cache = ServerCacheConfig(),
                TcpDeploymentOptions options = {});
  ~TcpDeployment();

  core::Status start();
  void stop();

  Master& master() { return master_; }
  BlockServer& server(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  int server_count() const { return static_cast<int>(servers_.size()); }
  std::uint16_t master_port() const;
  ServerAddress server_address(int i) const;
  ServeMode serve_mode() const { return options_.serve_mode; }

  // ---- reactor introspection (empty / zero in thread mode) ----
  // Per-loop event counts for the shared ReactorPool.
  std::vector<net::ReactorStats> reactor_stats() const;
  // Connection/request/timeout counters for server `i`'s front door.
  net::ReactorServerStats server_net_stats(int i) const;
  net::ReactorServerStats master_net_stats() const;

  core::Status ingest(const vol::DatasetDesc& desc,
                      std::uint32_t block_bytes = kDefaultBlockBytes,
                      std::uint32_t stripe_blocks = 1,
                      std::uint32_t replication_factor = 1,
                      const codec::EcProfile& ec = {});

  // New client connected over loopback TCP.
  core::Result<DpssClient> make_client();

  // ---- failure scenarios ----
  // Close server `i`'s listener and drop its connections mid-flight; the
  // port stays reserved in the catalog so replica ranking can skip it.
  void kill_server(int i);
  // kill_server plus a block-store wipe (disk loss).
  void wipe_server(int i);
  bool server_killed(int i) const;
  void heartbeat_all(double now = 0.0);
  core::Status rebalance_dataset(const std::string& name);
  void enable_auto_rebalance(double down_deadline_seconds);
  void enable_fixups();

  // ---- trace aggregation (PR 8) ----
  // Same contract as PipeDeployment: real-clock NetLoggers on master and
  // servers, then export_spans() drains them into the master's collector.
  void enable_trace_collection(std::size_t sink_capacity = 4096);
  std::uint64_t export_spans();

 private:
  BlockServer* server_for(const ServerAddress& addr);
  net::ConnectOptions connect_options() const {
    return net::ConnectOptions{options_.connect_timeout_seconds};
  }

  Master master_;
  TcpDeploymentOptions options_;
  mutable std::mutex state_mu_;  // guards killed_
  std::vector<std::unique_ptr<BlockServer>> servers_;
  // Thread-per-connection mode.
  net::TcpListener master_listener_;
  std::vector<std::unique_ptr<net::TcpListener>> server_listeners_;
  std::vector<std::thread> accept_threads_;
  // Reactor mode.  Declaration order is teardown order in reverse: the
  // pool and worker pools must outlive the servers built on them.
  std::unique_ptr<net::ReactorPool> reactors_;
  std::vector<std::unique_ptr<core::ThreadPool>> worker_pools_;
  std::unique_ptr<net::ReactorServer> master_front_;
  std::vector<std::unique_ptr<net::ReactorServer>> server_fronts_;
  // Dedicated peer doors (reactor mode): chain forwards and parity deltas
  // from other servers land here on their own pools.  With a single shared
  // pool per server, concurrent client writes can park every worker on a
  // blocking peer exchange -- A's workers wait on B's replies while B's
  // workers wait on A's, and the forwards that would unblock them sit
  // queued behind the blocked workers forever.  Splitting the doors makes
  // the wait graph acyclic: a forwarded hop always carries a strictly
  // shorter chain tail, so peer-pool workers bottom out at a hop that
  // completes locally.
  std::vector<std::unique_ptr<core::ThreadPool>> peer_pools_;
  std::vector<std::unique_ptr<net::ReactorServer>> peer_fronts_;
  std::vector<ServerAddress> addresses_;
  std::vector<char> killed_;
  bool started_ = false;
  // Collector handles registered into the master's / servers' metrics
  // registries at start() (reactor-pool and front-door stats); removed in
  // stop() before the fronts they read from are torn down.
  std::uint64_t master_collector_ = 0;
  std::vector<std::uint64_t> server_collectors_;
  std::vector<std::unique_ptr<TraceExport>> trace_exports_;
};

// Shared ingest logic: place the dataset blocks onto the given servers
// (striped when replication_factor == 1, ring-replicated otherwise, and
// (k, m) erasure-coded when `ec` is enabled -- parity encoded server-side
// after the data slices land) and register the layout with the master.
core::Status ingest_dataset(Master& master,
                            std::vector<BlockServer*> servers,
                            std::vector<ServerAddress> addresses,
                            const vol::DatasetDesc& desc,
                            std::uint32_t block_bytes,
                            std::uint32_t stripe_blocks,
                            std::uint32_t replication_factor = 1,
                            const codec::EcProfile& ec = {});

// Execute a Rebalancer plan against live block stores: replica copies
// first (put_block write-through admits them to the target's memory tier
// -- the "replica fill"), then drops.  `resolve` maps an address to its
// BlockServer, returning null for unknown/unreachable servers (their
// copies fail, their drops are skipped).  EC plans move slices instead of
// groups; a slice copy whose source is unreachable or missing is
// reconstructed from any k surviving slices of its group (the plan's
// old_slice_owners), which is how a rebalance after a disk loss restores
// full redundancy.
core::Status apply_rebalance_plan(
    const placement::RebalancePlan& plan,
    const std::function<BlockServer*(const ServerAddress&)>& resolve);

// Execute one ingest fixup against live block stores: re-sync the task's
// target with the generation it missed.  Replicated blocks copy (with
// their stamp) from a replica that has reached the generation; parity
// blocks ("<name>#parity") re-encode from the group's data slices at their
// current state, which folds in every missed delta at once.  The master
// supplies placement maps and dataset geometry; `resolve` maps addresses
// to reachable BlockServers.
core::Status apply_fixup(
    const ingest::FixupTask& task, Master& master,
    const std::function<BlockServer*(const ServerAddress&)>& resolve);

}  // namespace visapult::dpss
