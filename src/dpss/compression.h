// DPSS wire-level compression (paper section 5, future work).
//
// "We expect that by augmenting the block data services with additional
// processing capabilities, the DPSS will become even more useful.  For
// example, 'wire level' compression would benefit a wide array of
// applications.  In the case of lossy compression techniques, the degree
// of lossiness could be a function of network line parameters and under
// application control."
//
// Two codecs over float32 scientific data:
//   * kLossless -- byte-plane RLE: the block is reinterpreted as four
//     byte planes (all MSBs, then next byte, ...); smooth fields make the
//     exponent/sign planes long runs.  Exact round trip.
//   * kLossyQuant -- linear quantization to `quant_bits` (8 or 16) against
//     the block's [min, max], then byte-plane RLE.  The bits knob is the
//     "degree of lossiness under application control".
//
// Wire format: [u8 codec][u8 quant_bits][u64 raw_len][f32 lo][f32 hi]
//              [u64 comp_len][payload].
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace visapult::dpss {

enum class Codec : std::uint8_t {
  kNone = 0,
  kLossless = 1,
  kLossyQuant = 2,
};

struct CompressionConfig {
  Codec codec = Codec::kNone;
  int quant_bits = 8;  // 8 or 16; only for kLossyQuant
};

// Compress a block of raw float32 bytes (size must be a multiple of 4 for
// the float-aware codecs; kNone accepts anything).
core::Result<std::vector<std::uint8_t>> compress_block(
    const std::vector<std::uint8_t>& raw, const CompressionConfig& config);

// Invert compress_block.  For kLossyQuant the result differs from the
// input by at most (max-min) / (2^bits - 1) per value.
core::Result<std::vector<std::uint8_t>> decompress_block(
    const std::vector<std::uint8_t>& wire);

// Compression ratio raw/wire for reporting (1.0 = no gain).
double compression_ratio(std::size_t raw_bytes, std::size_t wire_bytes);

// Worst-case absolute quantization error for a value range and bit depth.
double quantization_error_bound(float lo, float hi, int bits);

}  // namespace visapult::dpss
