#include "dpss/meta_cluster.h"

#include <algorithm>

#include "net/stream.h"

namespace visapult::dpss {

MetaCluster::MetaCluster(std::uint32_t shards, std::uint32_t replicas)
    : shards_(shards == 0 ? 1 : shards),
      replicas_(replicas == 0 ? 1 : replicas),
      shard_map_(shards_ == 0 ? 1 : shards_) {
  members_.resize(shards_);
  for (std::uint32_t j = 0; j < shards_; ++j) {
    for (std::uint32_t k = 0; k < replicas_; ++k) {
      Member m;
      m.master = std::make_unique<Master>();
      m.address = address(j, k);
      m.is_leader = (k == 0);
      members_[j].push_back(std::move(m));
    }
  }
  // Configure after every member exists: the peer connector resolves
  // across the whole cluster (follower replication, open forwarding).
  for (std::uint32_t j = 0; j < shards_; ++j) {
    std::vector<ServerAddress> followers;
    for (std::uint32_t k = 1; k < replicas_; ++k) {
      followers.push_back(address(j, k));
    }
    for (std::uint32_t k = 0; k < replicas_; ++k) {
      MetaConfig config;
      config.shard_map = shard_map_;
      config.shard_id = j;
      config.is_leader = (k == 0);
      config.address = address(j, k);
      Master& master = *members_[j][k].master;
      master.configure_meta(config, connector());
      if (k == 0) master.set_followers(followers);
      for (std::uint32_t other = 0; other < shards_; ++other) {
        master.set_shard_leader(other, address(other, 0));
      }
    }
  }
}

MetaCluster::~MetaCluster() {
  for (auto& shard : members_) {
    for (auto& member : shard) member.master->shutdown();
  }
}

MetaCluster::Member& MetaCluster::at(std::uint32_t shard,
                                     std::uint32_t replica) {
  return members_[shard][replica];
}

const MetaCluster::Member& MetaCluster::at(std::uint32_t shard,
                                           std::uint32_t replica) const {
  return members_[shard][replica];
}

Master& MetaCluster::member(std::uint32_t shard, std::uint32_t replica) {
  return *at(shard, replica).master;
}

ServerAddress MetaCluster::address(std::uint32_t shard,
                                   std::uint32_t replica) const {
  return ServerAddress{
      "meta-s" + std::to_string(shard) + "-r" + std::to_string(replica),
      static_cast<std::uint16_t>(shard * replicas_ + replica)};
}

std::vector<std::vector<ServerAddress>> MetaCluster::member_addresses() const {
  std::lock_guard lk(mu_);
  std::vector<std::vector<ServerAddress>> out(shards_);
  for (std::uint32_t j = 0; j < shards_; ++j) {
    // Current leader first: clients try members in order.
    for (std::uint32_t k = 0; k < replicas_; ++k) {
      if (at(j, k).is_leader) out[j].push_back(at(j, k).address);
    }
    for (std::uint32_t k = 0; k < replicas_; ++k) {
      if (!at(j, k).is_leader) out[j].push_back(at(j, k).address);
    }
  }
  return out;
}

Master* MetaCluster::leader(std::uint32_t shard) {
  std::lock_guard lk(mu_);
  for (auto& member : members_[shard]) {
    if (member.is_leader && !member.killed) return member.master.get();
  }
  return nullptr;
}

int MetaCluster::leader_replica(std::uint32_t shard) const {
  std::lock_guard lk(mu_);
  for (std::uint32_t k = 0; k < replicas_; ++k) {
    if (at(shard, k).is_leader && !at(shard, k).killed) {
      return static_cast<int>(k);
    }
  }
  return -1;
}

Master* MetaCluster::owner_leader(const std::string& dataset) {
  return leader(shard_map_.shard_for(dataset));
}

core::Status MetaCluster::register_dataset(const std::string& name,
                                           const DatasetLayout& layout,
                                           std::vector<ServerAddress> servers,
                                           const PlacementOptions& placement) {
  Master* master = owner_leader(name);
  if (!master) {
    return core::unavailable("no live leader for dataset " + name);
  }
  return master->register_dataset(name, layout, std::move(servers), placement);
}

Connector MetaCluster::connector() {
  return [this](const ServerAddress& addr) -> core::Result<net::StreamPtr> {
    Master* master = nullptr;
    {
      std::lock_guard lk(mu_);
      for (auto& shard : members_) {
        for (auto& member : shard) {
          if (member.address == addr) {
            if (member.killed) {
              return core::unavailable("master killed: " + addr.host);
            }
            master = member.master.get();
          }
        }
      }
    }
    if (!master) {
      return core::not_found("unknown master endpoint: " + addr.host);
    }
    auto [near_end, far_end] = net::make_pipe();
    master->serve(far_end);
    return near_end;
  };
}

void MetaCluster::kill(std::uint32_t shard, std::uint32_t replica) {
  Master* master = nullptr;
  {
    std::lock_guard lk(mu_);
    Member& member = at(shard, replica);
    if (member.killed) return;
    member.killed = true;
    master = member.master.get();
  }
  // Outside the lock: shutdown joins service threads, and a thread mid
  // request may be inside the connector (which takes mu_).
  master->shutdown();
}

bool MetaCluster::killed(std::uint32_t shard, std::uint32_t replica) const {
  std::lock_guard lk(mu_);
  return at(shard, replica).killed;
}

void MetaCluster::point_leader(std::uint32_t shard,
                               const ServerAddress& leader) {
  std::vector<Master*> live;
  {
    std::lock_guard lk(mu_);
    for (auto& other_shard : members_) {
      for (auto& member : other_shard) {
        if (!member.killed) live.push_back(member.master.get());
      }
    }
  }
  for (Master* master : live) master->set_shard_leader(shard, leader);
}

int MetaCluster::tick() {
  // Snapshot the membership under mu_, then talk to the members unlocked:
  // every Master call takes the master's own mutex, and a master mid
  // mutation calls back into the connector (which takes mu_) to replicate,
  // so holding mu_ across member calls is a lock-order inversion.  The
  // Master objects themselves are stable for the cluster's lifetime.
  struct Seat {
    Master* master;
    ServerAddress address;
    bool killed;
    bool is_leader;
  };
  std::vector<std::vector<Seat>> seats(shards_);
  {
    std::lock_guard lk(mu_);
    for (std::uint32_t j = 0; j < shards_; ++j) {
      for (auto& member : members_[j]) {
        seats[j].push_back(Seat{member.master.get(), member.address,
                                member.killed, member.is_leader});
      }
    }
  }
  int elections = 0;
  for (std::uint32_t j = 0; j < shards_; ++j) {
    // Current leader still standing?  The harness's own kill flag is the
    // ground truth; client-reported HealthTracker evidence on any live
    // member (shard_roundtrip reports dead endpoints it failed past) also
    // triggers the election, which is the deployed-world signal path.
    Seat* leader = nullptr;
    for (auto& seat : seats[j]) {
      if (seat.is_leader) leader = &seat;
    }
    bool dead = leader == nullptr || leader->killed;
    if (!dead && leader != nullptr) {
      for (auto& seat : seats[j]) {
        if (seat.killed || seat.is_leader) continue;
        if (seat.master->health().state(leader->address) !=
            placement::HealthState::kUp) {
          dead = true;
          break;
        }
      }
    }
    if (!dead) continue;
    // Promote the live member with the highest replicated-log epoch: it
    // has every entry any other survivor has (single-writer log, in-order
    // replication), so no acknowledged mutation is lost.
    Seat* best = nullptr;
    for (auto& seat : seats[j]) {
      if (seat.killed) continue;
      if (!best || seat.master->meta_epoch() > best->master->meta_epoch()) {
        best = &seat;
      }
    }
    if (!best || (leader != nullptr && best == leader && !leader->killed)) {
      continue;  // nobody left to promote, or the evidence was stale
    }
    {
      std::lock_guard lk(mu_);
      for (auto& member : members_[j]) {
        member.is_leader = (member.address == best->address);
      }
    }
    best->master->promote_to_leader();
    std::vector<ServerAddress> followers;
    for (auto& seat : seats[j]) {
      if (!seat.killed && &seat != best) {
        followers.push_back(seat.address);
      }
    }
    best->master->set_followers(followers);
    point_leader(j, best->address);
    ++elections;
  }
  return elections;
}

std::uint64_t MetaCluster::leader_elections() const {
  std::vector<Master*> masters;
  {
    std::lock_guard lk(mu_);
    for (const auto& shard : members_) {
      for (const auto& member : shard) {
        masters.push_back(member.master.get());
      }
    }
  }
  std::uint64_t total = 0;
  for (Master* master : masters) total += master->leader_elections();
  return total;
}

}  // namespace visapult::dpss
