// In-process sharded metadata cluster.
//
// Wires `shards x replicas` Masters into the full PR 9 topology over
// in-memory pipes: each shard has one leader replicating its catalog log
// to the shard's followers, every member knows every shard's current
// leader (for open forwarding), and clients dial any member through
// connector().  kill() makes a member refuse connections -- clients fail
// over to the shard's survivors and report the death, and tick() runs the
// leader election off that HealthTracker evidence: the live member with
// the highest log epoch promotes, the others re-point their forwarding
// tables.  This is the harness the meta integration tests, the campaign
// fault scenario, and bench_meta all drive.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "dpss/master.h"
#include "dpss/protocol.h"
#include "meta/shard_map.h"

namespace visapult::dpss {

class MetaCluster {
 public:
  // `replicas` members per shard; member 0 of each shard starts as its
  // leader.
  MetaCluster(std::uint32_t shards, std::uint32_t replicas);
  ~MetaCluster();

  std::uint32_t shard_count() const { return shards_; }
  std::uint32_t replica_count() const { return replicas_; }
  const meta::ShardMap& shard_map() const { return shard_map_; }

  Master& member(std::uint32_t shard, std::uint32_t replica);
  ServerAddress address(std::uint32_t shard, std::uint32_t replica) const;
  // Member lists per shard, current-leader first -- the shape
  // DpssClient::enable_sharded_meta() takes.
  std::vector<std::vector<ServerAddress>> member_addresses() const;

  // The shard's current leader, or null when every member is dead.
  Master* leader(std::uint32_t shard);
  // Replica index of the shard's current (live) leader, or -1 when none
  // -- what a fault scenario needs to aim a kill() at the leader.
  int leader_replica(std::uint32_t shard) const;
  // The leader of the shard owning `dataset` (routing helper for
  // registration and rebalance, which must run on the owner's leader).
  Master* owner_leader(const std::string& dataset);

  // Register through the owning shard's leader (validates, appends to the
  // shard log, replicates to its followers).
  core::Status register_dataset(const std::string& name,
                                const DatasetLayout& layout,
                                std::vector<ServerAddress> servers,
                                const PlacementOptions& placement = {});

  // Transport into the cluster: resolves any member's address, refusing
  // killed members exactly like a dead machine would.  Used by clients,
  // follower replication, and cross-shard open forwarding alike.
  Connector connector();

  // Kill a member: existing service threads drop, new connects refuse.
  void kill(std::uint32_t shard, std::uint32_t replica);
  bool killed(std::uint32_t shard, std::uint32_t replica) const;

  // Election pass: a shard whose leader is dead -- the harness knows, or
  // any live member's HealthTracker holds client-reported evidence
  // against the leader's address -- promotes its live member with the
  // highest log epoch and re-points every member's shard-leader table.
  // Returns the number of elections run.
  int tick();

  // Total leader elections across all members (the metric the fault
  // scenarios assert on).
  std::uint64_t leader_elections() const;

 private:
  struct Member {
    std::unique_ptr<Master> master;
    ServerAddress address;
    bool killed = false;
    bool is_leader = false;
  };
  Member& at(std::uint32_t shard, std::uint32_t replica);
  const Member& at(std::uint32_t shard, std::uint32_t replica) const;
  void point_leader(std::uint32_t shard, const ServerAddress& leader);

  std::uint32_t shards_;
  std::uint32_t replicas_;
  meta::ShardMap shard_map_;
  mutable std::mutex mu_;  // guards killed/is_leader flags and topology
  std::vector<std::vector<Member>> members_;  // [shard][replica]
};

}  // namespace visapult::dpss
