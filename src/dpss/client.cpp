#include "dpss/client.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <thread>

namespace visapult::dpss {

core::Result<std::unique_ptr<DpssFile>> DpssClient::open(
    const std::string& dataset, const std::string& auth_token) {
  OpenRequest req;
  req.dataset = dataset;
  req.auth_token = auth_token;
  if (auto st = net::send_message(*master_, encode_open_request(req));
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*master_);
  if (!msg.is_ok()) return msg.status();
  auto reply = decode_open_reply(msg.value());
  if (!reply.is_ok()) return reply.status();

  std::vector<net::StreamPtr> streams;
  streams.reserve(reply.value().servers.size());
  for (const auto& addr : reply.value().servers) {
    auto stream = connector_(addr);
    if (!stream.is_ok()) return stream.status();
    streams.push_back(std::move(stream).take());
  }
  return std::make_unique<DpssFile>(dataset, reply.value().layout,
                                    std::move(streams));
}

DpssFile::DpssFile(std::string dataset, DatasetLayout layout,
                   std::vector<net::StreamPtr> server_streams)
    : dataset_(std::move(dataset)),
      layout_(layout),
      servers_(std::move(server_streams)),
      per_server_blocks_(servers_.size(), 0) {}

DpssFile::~DpssFile() { close(); }

std::int64_t DpssFile::lseek(std::int64_t offset, Whence whence) {
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = static_cast<std::int64_t>(offset_); break;
    case Whence::kEnd: base = static_cast<std::int64_t>(layout_.total_bytes); break;
  }
  const std::int64_t target = base + offset;
  if (target < 0 || target > static_cast<std::int64_t>(layout_.total_bytes)) {
    return -1;
  }
  offset_ = static_cast<std::uint64_t>(target);
  return target;
}

core::Result<std::size_t> DpssFile::read(std::uint8_t* buf, std::size_t len) {
  auto r = pread(buf, len, offset_);
  if (r.is_ok()) offset_ += r.value();
  return r;
}

core::Result<std::size_t> DpssFile::pread(std::uint8_t* buf, std::size_t len,
                                          std::uint64_t offset) {
  if (offset >= layout_.total_bytes) return std::size_t{0};
  const std::size_t effective = static_cast<std::size_t>(
      std::min<std::uint64_t>(len, layout_.total_bytes - offset));

  std::vector<BlockRef> refs;
  std::uint64_t at = offset;
  std::size_t remaining = effective;
  std::uint8_t* dest = buf;
  while (remaining > 0) {
    const std::uint64_t block = at / layout_.block_bytes;
    const std::uint64_t in_block = at % layout_.block_bytes;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, layout_.block_bytes - in_block));
    refs.push_back(BlockRef{block, in_block, n, dest});
    at += n;
    dest += n;
    remaining -= n;
  }
  if (auto st = fetch_blocks(std::move(refs)); !st.is_ok()) return st;
  return effective;
}

core::Status DpssFile::read_extents(const std::vector<Extent>& extents) {
  std::vector<BlockRef> refs;
  for (const Extent& e : extents) {
    if (e.offset + e.length > layout_.total_bytes) {
      return core::out_of_range("extent exceeds dataset size");
    }
    std::uint64_t at = e.offset;
    std::size_t remaining = e.length;
    std::uint8_t* dest = e.dest;
    while (remaining > 0) {
      const std::uint64_t block = at / layout_.block_bytes;
      const std::uint64_t in_block = at % layout_.block_bytes;
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, layout_.block_bytes - in_block));
      refs.push_back(BlockRef{block, in_block, n, dest});
      at += n;
      dest += n;
      remaining -= n;
    }
  }
  return fetch_blocks(std::move(refs));
}

core::Status DpssFile::fetch_wire_blocks(
    const std::vector<std::uint64_t>& blocks,
    std::map<std::uint64_t, std::vector<std::uint8_t>>* received) {
  if (blocks.empty()) return core::Status::ok();

  // Group blocks by owning server.
  std::vector<std::vector<std::uint64_t>> by_server(servers_.size());
  for (std::uint64_t b : blocks) {
    const std::uint32_t s = layout_.server_for_block(b);
    if (s >= servers_.size()) {
      return core::internal_error("block maps to unknown server");
    }
    by_server[s].push_back(b);
  }
  for (auto& list : by_server) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // One worker thread per server, exactly as in the paper's client library.
  // Pipeline: send all requests for distinct blocks, then receive.
  std::vector<core::Status> statuses(servers_.size());
  std::vector<std::map<std::uint64_t, std::vector<std::uint8_t>>> per_server(
      servers_.size());
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    workers.emplace_back([this, s, &by_server, &statuses, &per_server] {
      net::ByteStream& stream = *servers_[s];
      for (std::uint64_t b : by_server[s]) {
        BlockReadRequest req;
        req.dataset = dataset_;
        req.block = b;
        req.compression = compression_;
        if (auto st = net::send_message(stream, encode_block_read_request(req));
            !st.is_ok()) {
          statuses[s] = st;
          return;
        }
      }
      for (std::size_t i = 0; i < by_server[s].size(); ++i) {
        auto msg = net::recv_message(stream);
        if (!msg.is_ok()) {
          statuses[s] = msg.status();
          return;
        }
        auto reply = decode_block_read_reply(msg.value());
        if (!reply.is_ok()) {
          statuses[s] = reply.status();
          return;
        }
        wire_bytes_.fetch_add(reply.value().data.size());
        std::vector<std::uint8_t> data;
        if (reply.value().compressed) {
          auto raw = decompress_block(reply.value().data);
          if (!raw.is_ok()) {
            statuses[s] = raw.status();
            return;
          }
          data = std::move(raw).take();
        } else {
          data = std::move(reply.value().data);
        }
        raw_bytes_.fetch_add(data.size());
        per_server[s][reply.value().block] = std::move(data);
      }
      per_server_blocks_[s] += by_server[s].size();
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& st : statuses) {
    if (!st.is_ok()) return st;
  }
  for (auto& m : per_server) {
    for (auto& [b, data] : m) (*received)[b] = std::move(data);
  }
  return core::Status::ok();
}

core::Status DpssFile::fetch_blocks(std::vector<BlockRef> refs) {
  if (refs.empty()) return core::Status::ok();

  // Distinct blocks in first-reference order (the order the prefetcher
  // should observe).
  std::vector<std::uint64_t> distinct;
  std::set<std::uint64_t> seen;
  for (const BlockRef& r : refs) {
    if (seen.insert(r.block).second) distinct.push_back(r.block);
  }

  // Serve what the read-ahead cache already holds; fetch the rest.
  std::map<std::uint64_t, cache::BlockData> have;
  std::vector<std::uint64_t> missing;
  if (ra_cache_) {
    for (std::uint64_t b : distinct) {
      if (auto data = ra_cache_->lookup(cache::BlockKey{dataset_, b})) {
        have[b] = std::move(data);
      } else {
        missing.push_back(b);
      }
    }
  } else {
    missing = distinct;
  }

  if (!missing.empty()) {
    std::map<std::uint64_t, std::vector<std::uint8_t>> received;
    {
      std::lock_guard lk(wire_mu_);
      if (auto st = fetch_wire_blocks(missing, &received); !st.is_ok()) {
        return st;
      }
    }
    for (auto& [b, bytes] : received) {
      auto data = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(bytes));
      if (ra_cache_) {
        ra_cache_->insert(cache::BlockKey{dataset_, b}, data);
      }
      have[b] = std::move(data);
    }
  }

  for (const BlockRef& r : refs) {
    auto it = have.find(r.block);
    if (it == have.end()) {
      return core::data_loss("server returned wrong block set");
    }
    if (r.offset_in_block + r.length > it->second->size()) {
      return core::data_loss("block shorter than expected");
    }
    std::memcpy(r.dest, it->second->data() + r.offset_in_block, r.length);
  }

  if (prefetcher_) {
    for (std::uint64_t b : distinct) {
      prefetcher_->on_access(dataset_, b, layout_.block_count());
    }
  }
  return core::Status::ok();
}

void DpssFile::prefetch_fill(std::uint64_t block) {
  std::map<std::uint64_t, std::vector<std::uint8_t>> received;
  {
    std::lock_guard lk(wire_mu_);
    if (ra_cache_->contains(cache::BlockKey{dataset_, block})) return;
    // Best-effort: a failed speculative fetch is simply not cached.
    if (!fetch_wire_blocks({block}, &received).is_ok()) return;
  }
  auto it = received.find(block);
  if (it == received.end()) return;
  ra_cache_->insert(cache::BlockKey{dataset_, block}, std::move(it->second),
                    /*prefetched=*/true);
}

void DpssFile::enable_readahead(const ReadaheadOptions& options) {
  if (ra_cache_) return;
  cache::BlockCacheConfig cc;
  cc.capacity_bytes = options.cache_bytes;
  cc.shards = options.cache_shards;
  cc.policy = options.policy;
  ra_cache_ = std::make_unique<cache::BlockCache>(cc);
  if (options.threads > 0) {
    ra_pool_ = std::make_unique<core::ThreadPool>(options.threads);
  }
  prefetcher_ = std::make_unique<cache::Prefetcher>(
      options.prefetch,
      [this](const std::string&, std::uint64_t block) { prefetch_fill(block); },
      ra_pool_.get(), &ra_cache_->counters());
  prefetcher_->set_filter([this](const std::string&, std::uint64_t block) {
    return ra_cache_->contains(cache::BlockKey{dataset_, block});
  });
}

cache::MetricsSnapshot DpssFile::readahead_metrics() const {
  if (!ra_cache_) return cache::MetricsSnapshot();
  return ra_cache_->metrics();
}

void DpssFile::drain_readahead() {
  if (prefetcher_) prefetcher_->drain();
}

core::Status DpssFile::write(const std::uint8_t* buf, std::size_t len) {
  if (offset_ % layout_.block_bytes != 0) {
    return core::invalid_argument("dpssWrite must start block-aligned");
  }
  std::uint64_t at = offset_;
  std::size_t remaining = len;
  const std::uint8_t* src = buf;
  // Per-server pipelining for writes too.
  std::vector<std::vector<BlockWriteRequest>> by_server(servers_.size());
  while (remaining > 0) {
    const std::uint64_t block = at / layout_.block_bytes;
    const std::size_t n = std::min<std::size_t>(remaining, layout_.block_bytes);
    BlockWriteRequest req;
    req.dataset = dataset_;
    req.block = block;
    req.data.assign(src, src + n);
    by_server[layout_.server_for_block(block)].push_back(std::move(req));
    at += n;
    src += n;
    remaining -= n;
  }
  std::vector<core::Status> statuses(servers_.size());
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    workers.emplace_back([this, s, &by_server, &statuses] {
      net::ByteStream& stream = *servers_[s];
      for (const auto& req : by_server[s]) {
        if (auto st =
                net::send_message(stream, encode_block_write_request(req));
            !st.is_ok()) {
          statuses[s] = st;
          return;
        }
      }
      for (std::size_t i = 0; i < by_server[s].size(); ++i) {
        auto msg = net::recv_message(stream);
        if (!msg.is_ok()) {
          statuses[s] = msg.status();
          return;
        }
        auto reply = decode_block_write_reply(msg.value());
        if (!reply.is_ok()) {
          statuses[s] = reply.status();
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& st : statuses) {
    if (!st.is_ok()) return st;
  }
  offset_ = at;
  return core::Status::ok();
}

void DpssFile::close() {
  // Drain read-ahead before tearing down the streams it fetches over.
  prefetcher_.reset();
  ra_pool_.reset();
  for (auto& s : servers_) {
    if (s) s->close();
  }
}

std::vector<std::uint64_t> DpssFile::per_server_blocks() const {
  return per_server_blocks_;
}

}  // namespace visapult::dpss
