#include "dpss/client.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>

namespace visapult::dpss {

core::Result<std::unique_ptr<DpssFile>> DpssClient::open(
    const std::string& dataset, const std::string& auth_token) {
  OpenRequest req;
  req.dataset = dataset;
  req.auth_token = auth_token;
  if (auto st = net::send_message(*master_, encode_open_request(req));
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*master_);
  if (!msg.is_ok()) return msg.status();
  auto reply = decode_open_reply(msg.value());
  if (!reply.is_ok()) return reply.status();

  std::vector<net::StreamPtr> streams;
  streams.reserve(reply.value().servers.size());
  for (const auto& addr : reply.value().servers) {
    auto stream = connector_(addr);
    if (!stream.is_ok()) return stream.status();
    streams.push_back(std::move(stream).take());
  }
  return std::make_unique<DpssFile>(dataset, reply.value().layout,
                                    std::move(streams));
}

DpssFile::DpssFile(std::string dataset, DatasetLayout layout,
                   std::vector<net::StreamPtr> server_streams)
    : dataset_(std::move(dataset)),
      layout_(layout),
      servers_(std::move(server_streams)),
      per_server_blocks_(servers_.size(), 0) {}

DpssFile::~DpssFile() { close(); }

std::int64_t DpssFile::lseek(std::int64_t offset, Whence whence) {
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = static_cast<std::int64_t>(offset_); break;
    case Whence::kEnd: base = static_cast<std::int64_t>(layout_.total_bytes); break;
  }
  const std::int64_t target = base + offset;
  if (target < 0 || target > static_cast<std::int64_t>(layout_.total_bytes)) {
    return -1;
  }
  offset_ = static_cast<std::uint64_t>(target);
  return target;
}

core::Result<std::size_t> DpssFile::read(std::uint8_t* buf, std::size_t len) {
  auto r = pread(buf, len, offset_);
  if (r.is_ok()) offset_ += r.value();
  return r;
}

core::Result<std::size_t> DpssFile::pread(std::uint8_t* buf, std::size_t len,
                                          std::uint64_t offset) {
  if (offset >= layout_.total_bytes) return std::size_t{0};
  const std::size_t effective = static_cast<std::size_t>(
      std::min<std::uint64_t>(len, layout_.total_bytes - offset));

  std::vector<BlockRef> refs;
  std::uint64_t at = offset;
  std::size_t remaining = effective;
  std::uint8_t* dest = buf;
  while (remaining > 0) {
    const std::uint64_t block = at / layout_.block_bytes;
    const std::uint64_t in_block = at % layout_.block_bytes;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, layout_.block_bytes - in_block));
    refs.push_back(BlockRef{block, in_block, n, dest});
    at += n;
    dest += n;
    remaining -= n;
  }
  if (auto st = fetch_blocks(std::move(refs)); !st.is_ok()) return st;
  return effective;
}

core::Status DpssFile::read_extents(const std::vector<Extent>& extents) {
  std::vector<BlockRef> refs;
  for (const Extent& e : extents) {
    if (e.offset + e.length > layout_.total_bytes) {
      return core::out_of_range("extent exceeds dataset size");
    }
    std::uint64_t at = e.offset;
    std::size_t remaining = e.length;
    std::uint8_t* dest = e.dest;
    while (remaining > 0) {
      const std::uint64_t block = at / layout_.block_bytes;
      const std::uint64_t in_block = at % layout_.block_bytes;
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, layout_.block_bytes - in_block));
      refs.push_back(BlockRef{block, in_block, n, dest});
      at += n;
      dest += n;
      remaining -= n;
    }
  }
  return fetch_blocks(std::move(refs));
}

core::Status DpssFile::fetch_blocks(std::vector<BlockRef> refs) {
  if (refs.empty()) return core::Status::ok();

  // Group refs by owning server.  A block may appear in several refs
  // (adjacent extents); fetch it once per request batch.
  std::vector<std::vector<BlockRef>> by_server(servers_.size());
  for (const BlockRef& r : refs) {
    const std::uint32_t s = layout_.server_for_block(r.block);
    if (s >= servers_.size()) {
      return core::internal_error("block maps to unknown server");
    }
    by_server[s].push_back(r);
  }

  // One worker thread per server, exactly as in the paper's client library.
  std::vector<core::Status> statuses(servers_.size());
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    workers.emplace_back([this, s, &by_server, &statuses] {
      net::ByteStream& stream = *servers_[s];
      // Pipeline: send all requests for distinct blocks, then receive.
      std::vector<std::uint64_t> blocks;
      for (const BlockRef& r : by_server[s]) {
        if (blocks.empty() || blocks.back() != r.block) {
          blocks.push_back(r.block);
        }
      }
      std::sort(blocks.begin(), blocks.end());
      blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

      for (std::uint64_t b : blocks) {
        BlockReadRequest req;
        req.dataset = dataset_;
        req.block = b;
        req.compression = compression_;
        if (auto st = net::send_message(stream, encode_block_read_request(req));
            !st.is_ok()) {
          statuses[s] = st;
          return;
        }
      }
      std::map<std::uint64_t, std::vector<std::uint8_t>> received;
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        auto msg = net::recv_message(stream);
        if (!msg.is_ok()) {
          statuses[s] = msg.status();
          return;
        }
        auto reply = decode_block_read_reply(msg.value());
        if (!reply.is_ok()) {
          statuses[s] = reply.status();
          return;
        }
        wire_bytes_.fetch_add(reply.value().data.size());
        std::vector<std::uint8_t> data;
        if (reply.value().compressed) {
          auto raw = decompress_block(reply.value().data);
          if (!raw.is_ok()) {
            statuses[s] = raw.status();
            return;
          }
          data = std::move(raw).take();
        } else {
          data = std::move(reply.value().data);
        }
        raw_bytes_.fetch_add(data.size());
        received[reply.value().block] = std::move(data);
      }
      per_server_blocks_[s] += blocks.size();

      for (const BlockRef& r : by_server[s]) {
        auto it = received.find(r.block);
        if (it == received.end()) {
          statuses[s] = core::data_loss("server returned wrong block set");
          return;
        }
        if (r.offset_in_block + r.length > it->second.size()) {
          statuses[s] = core::data_loss("block shorter than expected");
          return;
        }
        std::memcpy(r.dest, it->second.data() + r.offset_in_block, r.length);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& st : statuses) {
    if (!st.is_ok()) return st;
  }
  return core::Status::ok();
}

core::Status DpssFile::write(const std::uint8_t* buf, std::size_t len) {
  if (offset_ % layout_.block_bytes != 0) {
    return core::invalid_argument("dpssWrite must start block-aligned");
  }
  std::uint64_t at = offset_;
  std::size_t remaining = len;
  const std::uint8_t* src = buf;
  // Per-server pipelining for writes too.
  std::vector<std::vector<BlockWriteRequest>> by_server(servers_.size());
  while (remaining > 0) {
    const std::uint64_t block = at / layout_.block_bytes;
    const std::size_t n = std::min<std::size_t>(remaining, layout_.block_bytes);
    BlockWriteRequest req;
    req.dataset = dataset_;
    req.block = block;
    req.data.assign(src, src + n);
    by_server[layout_.server_for_block(block)].push_back(std::move(req));
    at += n;
    src += n;
    remaining -= n;
  }
  std::vector<core::Status> statuses(servers_.size());
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    workers.emplace_back([this, s, &by_server, &statuses] {
      net::ByteStream& stream = *servers_[s];
      for (const auto& req : by_server[s]) {
        if (auto st =
                net::send_message(stream, encode_block_write_request(req));
            !st.is_ok()) {
          statuses[s] = st;
          return;
        }
      }
      for (std::size_t i = 0; i < by_server[s].size(); ++i) {
        auto msg = net::recv_message(stream);
        if (!msg.is_ok()) {
          statuses[s] = msg.status();
          return;
        }
        auto reply = decode_block_write_reply(msg.value());
        if (!reply.is_ok()) {
          statuses[s] = reply.status();
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& st : statuses) {
    if (!st.is_ok()) return st;
  }
  offset_ = at;
  return core::Status::ok();
}

void DpssFile::close() {
  for (auto& s : servers_) {
    if (s) s->close();
  }
}

std::vector<std::uint64_t> DpssFile::per_server_blocks() const {
  return per_server_blocks_;
}

}  // namespace visapult::dpss
