#include "dpss/client.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "core/clock.h"
#include "ingest/chain.h"
#include "ingest/parity_delta.h"
#include "netlog/event.h"
#include "obs/profiler.h"

namespace visapult::dpss {

DpssClient::DpssClient(net::StreamPtr master, Connector connector)
    : master_(std::make_shared<MasterLink>()),
      connector_(std::move(connector)),
      meta_(std::make_shared<MetaState>()) {
  master_->stream = std::move(master);
}

core::Result<std::unique_ptr<DpssFile>> DpssClient::open(
    const std::string& dataset, const std::string& auth_token) {
  OBS_STAGE("client.open");
  OpenRequest req;
  req.dataset = dataset;
  req.auth_token = auth_token;
  {
    // Delta open: carry the epoch we already hold so an unchanged catalog
    // entry comes back as a tiny not_modified reply.
    std::lock_guard lk(meta_->mu);
    auto it = meta_->open_cache.find(dataset);
    if (it != meta_->open_cache.end()) req.known_epoch = it->second.epoch;
  }
  // Traced opens carry the trace on the wire OpenRequest so the master's
  // MASTER_IN/OUT events join this lifeline as a child hop.
  obs::TraceContext trace;
  if (open_logger_) {
    trace.trace_id = obs::new_trace_id();
    trace.span_id = obs::new_span_id();
    open_logger_->log(netlog::tags::kDpssOpenStart, -1, -1,
                      {{"TRACE", obs::trace_hex(trace.trace_id)},
                       {"SPAN", obs::trace_hex(trace.span_id)},
                       {"DATASET", dataset}});
  }
  net::Message open_msg = encode_open_request(req);
  open_msg.trace_id = trace.trace_id;
  open_msg.span_id = trace.sampled() ? obs::new_span_id() : 0;
  OpenReply open_reply;
  // The link the open went through also carries this file's failure and
  // fixup reports (sharded: the member that answered).
  std::shared_ptr<MasterLink> served = master_;
  if (meta_->sharded) {
    auto reply_msg = shard_roundtrip(meta_->shard_map.shard_for(dataset),
                                     open_msg, dataset, &served);
    if (!reply_msg.is_ok()) return reply_msg.status();
    auto reply = decode_open_reply(reply_msg.value());
    if (!reply.is_ok()) return reply.status();
    open_reply = std::move(reply).take();
  } else {
    std::lock_guard lk(master_->mu);
    if (auto st = net::send_message(*master_->stream, open_msg);
        !st.is_ok()) {
      return st;
    }
    auto msg = net::recv_message(*master_->stream);
    if (!msg.is_ok()) return msg.status();
    auto reply = decode_open_reply(msg.value());
    if (!reply.is_ok()) return reply.status();
    open_reply = std::move(reply).take();
  }
  if (trace.sampled()) {
    open_logger_->log(netlog::tags::kDpssOpenEnd, -1, -1,
                      {{"TRACE", obs::trace_hex(trace.trace_id)},
                       {"SPAN", obs::trace_hex(trace.span_id)},
                       {"DATASET", dataset}});
  }

  std::shared_ptr<const placement::PlacementMap> map;
  if (open_reply.not_modified) {
    // Epoch matched: the wire reply carried only epoch + gossip fields.
    // Splice the cached placement body back in -- no ring rebuild.
    std::lock_guard lk(meta_->mu);
    auto it = meta_->open_cache.find(dataset);
    if (it == meta_->open_cache.end()) {
      return core::internal_error(
          "not_modified open without a cached entry for " + dataset);
    }
    const std::uint64_t epoch = open_reply.catalog_epoch;
    const std::uint64_t floor = open_reply.max_generation;
    const meta::CacheHint hint = open_reply.cache_hint;
    open_reply = it->second.reply;
    open_reply.catalog_epoch = epoch;
    open_reply.max_generation = floor;
    open_reply.cache_hint = hint;
    map = it->second.map;
    ++meta_->delta_opens;
  } else {
    // Replicated and erasure-coded datasets: rebuild the master's ring
    // locally so block -> replica/slice lookup needs no further master
    // round trips.
    if (open_reply.ring_vnodes > 0) {
      placement::HashRing ring(open_reply.servers,
                               static_cast<int>(open_reply.ring_vnodes));
      map = std::make_shared<const placement::PlacementMap>(
          dataset, std::move(ring), open_reply.layout.block_count(),
          open_reply.layout.stripe_blocks, open_reply.replication_factor,
          open_reply.ec);
    }
    std::lock_guard lk(meta_->mu);
    CachedOpen cached;
    cached.epoch = open_reply.catalog_epoch;
    cached.reply = open_reply;
    cached.map = map;
    meta_->open_cache[dataset] = std::move(cached);
    ++meta_->snapshot_opens;
  }

  // Failure and fixup reports ride the master connection; the shared link
  // keeps it alive for files that outlive this client.
  FailureReporter reporter = [link = served](const FailureReport& report) {
    std::lock_guard lk(link->mu);
    if (!link->stream) return;
    if (!net::send_message(*link->stream, encode_failure_report(report))
             .is_ok()) {
      return;
    }
    (void)net::recv_message(*link->stream);  // best-effort ack
  };
  FixupReporter fixup_reporter = [link = served](const FixupReport& report) {
    std::lock_guard lk(link->mu);
    if (!link->stream) return;
    if (!net::send_message(*link->stream, encode_fixup_report(report))
             .is_ok()) {
      return;
    }
    (void)net::recv_message(*link->stream);  // best-effort ack
  };

  // A dead server is survivable whenever the dataset has redundancy --
  // replica copies or parity slices.
  const bool replicated =
      map && (open_reply.replication_factor > 1 || open_reply.ec.enabled());
  std::vector<net::StreamPtr> streams;
  streams.reserve(open_reply.servers.size());
  int live = 0;
  for (const auto& addr : open_reply.servers) {
    auto stream = connector_(addr);
    if (!stream.is_ok()) {
      if (!replicated) return stream.status();
      // A dead server is survivable with replicas: mark it, tell the
      // master, and open degraded.
      reporter(FailureReport{addr, dataset, 0,
                             "connect failed: " + stream.status().to_string()});
      streams.push_back(nullptr);
      continue;
    }
    streams.push_back(std::move(stream).take());
    ++live;
  }
  if (live == 0) {
    return core::unavailable("no block server reachable for " + dataset);
  }
  auto file = std::make_unique<DpssFile>(
      dataset, open_reply.layout, std::move(streams),
      std::move(open_reply.servers), std::move(map),
      std::move(open_reply.server_health), std::move(open_reply.server_load),
      std::move(reporter), std::move(fixup_reporter),
      open_reply.ingest_capable);
  file->set_generation_floor(open_reply.max_generation);
  file->set_cache_hint(open_reply.cache_hint);
  return file;
}

void DpssClient::enable_sharded_meta(
    meta::ShardMap shard_map, std::vector<std::vector<ServerAddress>> members,
    Connector master_connector) {
  std::lock_guard lk(meta_->mu);
  meta_->shard_map = std::move(shard_map);
  meta_->shard_members = std::move(members);
  meta_->master_connector =
      master_connector ? std::move(master_connector) : connector_;
  meta_->sharded = true;
}

std::uint64_t DpssClient::cached_epoch(const std::string& dataset) const {
  std::lock_guard lk(meta_->mu);
  auto it = meta_->open_cache.find(dataset);
  return it == meta_->open_cache.end() ? 0 : it->second.epoch;
}

std::uint64_t DpssClient::delta_opens() const {
  std::lock_guard lk(meta_->mu);
  return meta_->delta_opens;
}

std::uint64_t DpssClient::snapshot_opens() const {
  std::lock_guard lk(meta_->mu);
  return meta_->snapshot_opens;
}

std::uint64_t DpssClient::master_failovers() const {
  std::lock_guard lk(meta_->mu);
  return meta_->master_failovers;
}

std::uint64_t DpssClient::master_failure_reports() const {
  std::lock_guard lk(meta_->mu);
  return meta_->master_failure_reports;
}

std::shared_ptr<DpssClient::MasterLink> DpssClient::link_for(
    const ServerAddress& addr) {
  std::shared_ptr<MasterLink> link;
  Connector dial;
  {
    std::lock_guard lk(meta_->mu);
    auto& slot = meta_->links[addr.key()];
    if (!slot) slot = std::make_shared<MasterLink>();
    link = slot;
    dial = meta_->master_connector ? meta_->master_connector : connector_;
  }
  std::lock_guard lk(link->mu);
  if (!link->stream) {
    auto stream = dial(addr);
    if (!stream.is_ok()) return nullptr;
    link->stream = std::move(stream).take();
  }
  return link;
}

core::Result<net::Message> DpssClient::shard_roundtrip(
    std::uint32_t shard, const net::Message& msg, const std::string& dataset,
    std::shared_ptr<MasterLink>* served_by) {
  // Owner shard's members first (leader-first order), then every other
  // shard's members as a last resort -- a non-owner shard forwards the
  // open to the owner's leader.
  std::vector<ServerAddress> order;
  {
    std::lock_guard lk(meta_->mu);
    if (shard < meta_->shard_members.size()) {
      order = meta_->shard_members[shard];
    }
    for (std::size_t s = 0; s < meta_->shard_members.size(); ++s) {
      if (s == shard) continue;
      for (const auto& a : meta_->shard_members[s]) order.push_back(a);
    }
  }
  if (order.empty()) {
    return core::unavailable("no master shard members configured");
  }
  std::vector<ServerAddress> dead;
  core::Status last = core::unavailable("no master shard member reachable");
  for (const auto& addr : order) {
    auto link = link_for(addr);
    if (!link) {
      dead.push_back(addr);
      std::lock_guard lk(meta_->mu);
      ++meta_->master_failovers;
      continue;
    }
    core::Result<net::Message> got = [&]() -> core::Result<net::Message> {
      std::lock_guard lk(link->mu);
      if (!link->stream) return core::unavailable("master link closed");
      if (auto st = net::send_message(*link->stream, msg); !st.is_ok()) {
        return st;
      }
      return net::recv_message(*link->stream);
    }();
    if (!got.is_ok()) {
      // Transport death mid-request: drop the stream so the next attempt
      // re-dials, and move on to the next member.
      {
        std::lock_guard lk(link->mu);
        link->stream = nullptr;
      }
      {
        std::lock_guard lk(meta_->mu);
        ++meta_->master_failovers;
      }
      dead.push_back(addr);
      last = got.status();
      continue;
    }
    // Tell the member that answered which endpoints died on the way here:
    // master endpoints are first-class ServerAddress identities, so the
    // shard's health tracker can act on client evidence (satellite S2).
    for (const auto& d : dead) report_master_failure(link, d, dataset);
    if (served_by) *served_by = link;
    return got;
  }
  return last;
}

void DpssClient::report_master_failure(const std::shared_ptr<MasterLink>& via,
                                       const ServerAddress& dead,
                                       const std::string& dataset) {
  FailureReport report{dead, dataset, 0, "master unreachable from client"};
  {
    std::lock_guard lk(via->mu);
    if (!via->stream) return;
    if (!net::send_message(*via->stream, encode_failure_report(report))
             .is_ok()) {
      return;
    }
    (void)net::recv_message(*via->stream);  // best-effort ack
  }
  std::lock_guard lk(meta_->mu);
  ++meta_->master_failure_reports;
}

core::Result<std::uint64_t> DpssClient::pull_deltas(std::uint32_t shard,
                                                    const std::string& dataset,
                                                    std::uint64_t since) {
  PlacementDeltaRequest req;
  req.dataset = dataset;
  req.since_epoch = since;
  const net::Message msg = encode_placement_delta_request(req);
  net::Message reply_msg;
  if (meta_->sharded) {
    auto got = shard_roundtrip(shard, msg, dataset, nullptr);
    if (!got.is_ok()) return got.status();
    reply_msg = std::move(got).take();
  } else {
    std::lock_guard lk(master_->mu);
    if (!master_->stream) return core::unavailable("master connection closed");
    if (auto st = net::send_message(*master_->stream, msg); !st.is_ok()) {
      return st;
    }
    auto got = net::recv_message(*master_->stream);
    if (!got.is_ok()) return got.status();
    reply_msg = std::move(got).take();
  }
  auto reply = decode_placement_delta_reply(reply_msg);
  if (!reply.is_ok()) return reply.status();
  // Entries are self-contained full-state records, so replaying a delta
  // run and installing a snapshot go through the same apply loop and
  // converge on identical state.
  for (const auto& entry : reply.value().entries) {
    if (auto st = meta_->mirror.apply(entry); !st.is_ok()) return st;
  }
  return reply.value().epoch;
}

core::Result<std::uint64_t> DpssClient::sync_placement(
    const std::string& dataset) {
  std::uint64_t since = 0;
  if (auto entry = meta_->mirror.lookup(dataset)) since = entry->epoch;
  auto epoch =
      pull_deltas(meta_->shard_map.shard_for(dataset), dataset, since);
  if (!epoch.is_ok()) return epoch;
  // Refresh the open cache from the mirror so the next open's known_epoch
  // matches the synced state and a not_modified reply splices current
  // placement, not the pre-sync body.
  if (auto entry = meta_->mirror.lookup(dataset)) {
    std::lock_guard lk(meta_->mu);
    auto it = meta_->open_cache.find(dataset);
    if (it != meta_->open_cache.end() && it->second.epoch != entry->epoch) {
      CachedOpen& cached = it->second;
      cached.epoch = entry->epoch;
      cached.map = entry->map;
      OpenReply& rep = cached.reply;
      rep.catalog_epoch = entry->epoch;
      rep.layout = entry->layout;
      rep.servers = entry->servers;
      rep.replication_factor = std::min<std::uint32_t>(
          entry->placement.replication_factor,
          entry->servers.empty()
              ? 1u
              : static_cast<std::uint32_t>(entry->servers.size()));
      rep.ring_vnodes =
          entry->placement.uses_ring()
              ? (entry->placement.ring_vnodes > 0
                     ? entry->placement.ring_vnodes
                     : static_cast<std::uint32_t>(placement::kDefaultVnodes))
              : 0;
      rep.ec = entry->placement.ec;
      // Health/load are open-time hints; the sync has no fresher snapshot
      // than "everyone up, unloaded".
      rep.server_health.assign(entry->servers.size(),
                               placement::HealthState::kUp);
      rep.server_load.assign(entry->servers.size(), 0);
    }
  }
  return epoch;
}

core::Result<std::uint64_t> DpssClient::sync_shard(std::uint32_t shard) {
  std::uint64_t since = 0;
  {
    std::lock_guard lk(meta_->mu);
    auto it = meta_->shard_epochs.find(shard);
    if (it != meta_->shard_epochs.end()) since = it->second;
  }
  auto epoch = pull_deltas(shard, "", since);
  if (!epoch.is_ok()) return epoch;
  std::lock_guard lk(meta_->mu);
  meta_->shard_epochs[shard] = epoch.value();
  return epoch;
}

core::Result<std::string> DpssClient::master_stats() {
  std::lock_guard lk(master_->mu);
  if (!master_->stream) return core::unavailable("master connection closed");
  if (auto st = net::send_message(*master_->stream, encode_stats_request());
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*master_->stream);
  if (!msg.is_ok()) return msg.status();
  return decode_stats_reply(msg.value());
}

core::Result<std::string> DpssClient::master_profile() {
  std::lock_guard lk(master_->mu);
  if (!master_->stream) return core::unavailable("master connection closed");
  if (auto st = net::send_message(*master_->stream, encode_profile_request());
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*master_->stream);
  if (!msg.is_ok()) return msg.status();
  return decode_profile_reply(msg.value());
}

core::Result<std::string> DpssClient::server_profile(
    const ServerAddress& addr) {
  // Throwaway connection, like server_stats(): profile pulls must not
  // interleave with pipelined DpssFile streams.
  auto stream = connector_(addr);
  if (!stream.is_ok()) return stream.status();
  auto conn = std::move(stream).take();
  if (auto st = net::send_message(*conn, encode_profile_request());
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*conn);
  if (!msg.is_ok()) return msg.status();
  return decode_profile_reply(msg.value());
}

void DpssClient::enable_open_tracing(
    std::shared_ptr<netlog::NetLogger> logger) {
  open_logger_ = std::move(logger);
}

core::Result<std::uint64_t> DpssClient::export_spans(
    const std::string& host, double sent_at,
    const std::vector<obs::SpanRecord>& spans) {
  SpanExportBatch batch;
  batch.host = host;
  batch.sent_at = sent_at;
  batch.spans = spans;
  std::lock_guard lk(master_->mu);
  if (!master_->stream) return core::unavailable("master connection closed");
  if (auto st = net::send_message(*master_->stream,
                                  encode_span_export_request(batch));
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*master_->stream);
  if (!msg.is_ok()) return msg.status();
  return decode_span_export_reply(msg.value());
}

core::Result<std::string> DpssClient::trace_report() {
  std::lock_guard lk(master_->mu);
  if (!master_->stream) return core::unavailable("master connection closed");
  if (auto st = net::send_message(*master_->stream,
                                  encode_trace_report_request());
      !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*master_->stream);
  if (!msg.is_ok()) return msg.status();
  return decode_trace_report_reply(msg.value());
}

core::Result<std::string> DpssClient::server_stats(const ServerAddress& addr) {
  // A throwaway connection: stats pulls must not interleave with any
  // DpssFile's pipelined request/reply streams.
  auto stream = connector_(addr);
  if (!stream.is_ok()) return stream.status();
  auto conn = std::move(stream).take();
  if (auto st = net::send_message(*conn, encode_stats_request()); !st.is_ok()) {
    return st;
  }
  auto msg = net::recv_message(*conn);
  if (!msg.is_ok()) return msg.status();
  return decode_stats_reply(msg.value());
}

DpssFile::DpssFile(std::string dataset, DatasetLayout layout,
                   std::vector<net::StreamPtr> server_streams,
                   std::vector<ServerAddress> addresses,
                   std::shared_ptr<const placement::PlacementMap> placement,
                   std::vector<placement::HealthState> server_health,
                   std::vector<std::uint64_t> server_load,
                   FailureReporter reporter, FixupReporter fixup_reporter,
                   bool ingest_capable)
    : dataset_(std::move(dataset)),
      layout_(layout),
      servers_(std::move(server_streams)),
      addresses_(std::move(addresses)),
      placement_(std::move(placement)),
      server_health_(std::move(server_health)),
      server_load_(std::move(server_load)),
      reporter_(std::move(reporter)),
      fixup_reporter_(std::move(fixup_reporter)),
      ingest_capable_(ingest_capable),
      per_server_blocks_(servers_.size(), 0),
      wire_bytes_(registry_.counter("dpss_client_wire_bytes_total")),
      raw_bytes_(registry_.counter("dpss_client_raw_bytes_total")),
      failover_reads_(registry_.counter("dpss_client_failover_reads_total")),
      reconstructed_reads_(
          registry_.counter("dpss_client_reconstructed_reads_total")),
      degraded_writes_(registry_.counter("dpss_client_degraded_writes_total")),
      stale_retries_(
          registry_.counter("dpss_client_stale_read_retries_total")),
      read_seconds_(registry_.histogram("dpss_client_read_seconds")),
      write_seconds_(registry_.histogram("dpss_client_write_seconds")) {
  server_alive_.reserve(servers_.size());
  for (const auto& s : servers_) server_alive_.push_back(s ? 1 : 0);
  if (placement_ && placement_->erasure_coded()) {
    ec_ = codec::StripeLayout(placement_);
    rs_ = std::make_unique<codec::ReedSolomon>(ec_.profile());
  }
}

DpssFile::~DpssFile() { close(); }

std::int64_t DpssFile::lseek(std::int64_t offset, Whence whence) {
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = static_cast<std::int64_t>(offset_); break;
    case Whence::kEnd: base = static_cast<std::int64_t>(layout_.total_bytes); break;
  }
  const std::int64_t target = base + offset;
  if (target < 0 || target > static_cast<std::int64_t>(layout_.total_bytes)) {
    return -1;
  }
  offset_ = static_cast<std::uint64_t>(target);
  return target;
}

core::Result<std::size_t> DpssFile::read(std::uint8_t* buf, std::size_t len) {
  auto r = pread(buf, len, offset_);
  if (r.is_ok()) offset_ += r.value();
  return r;
}

core::Result<std::size_t> DpssFile::pread(std::uint8_t* buf, std::size_t len,
                                          std::uint64_t offset) {
  OBS_STAGE("client.read");
  if (offset >= layout_.total_bytes) return std::size_t{0};
  const std::size_t effective = static_cast<std::size_t>(
      std::min<std::uint64_t>(len, layout_.total_bytes - offset));

  std::vector<BlockRef> refs;
  std::uint64_t at = offset;
  std::size_t remaining = effective;
  std::uint8_t* dest = buf;
  while (remaining > 0) {
    const std::uint64_t block = at / layout_.block_bytes;
    const std::uint64_t in_block = at % layout_.block_bytes;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, layout_.block_bytes - in_block));
    refs.push_back(BlockRef{block, in_block, n, dest});
    at += n;
    dest += n;
    remaining -= n;
  }
  if (auto st = fetch_blocks(std::move(refs)); !st.is_ok()) return st;
  return effective;
}

core::Status DpssFile::read_extents(const std::vector<Extent>& extents) {
  std::vector<BlockRef> refs;
  for (const Extent& e : extents) {
    if (e.offset + e.length > layout_.total_bytes) {
      return core::out_of_range("extent exceeds dataset size");
    }
    std::uint64_t at = e.offset;
    std::size_t remaining = e.length;
    std::uint8_t* dest = e.dest;
    while (remaining > 0) {
      const std::uint64_t block = at / layout_.block_bytes;
      const std::uint64_t in_block = at % layout_.block_bytes;
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, layout_.block_bytes - in_block));
      refs.push_back(BlockRef{block, in_block, n, dest});
      at += n;
      dest += n;
      remaining -= n;
    }
  }
  return fetch_blocks(std::move(refs));
}

const std::vector<std::uint32_t>& DpssFile::candidates_for_block(
    std::uint64_t block) {
  // Placement only: one memoised ranking per placement group (bounded by
  // the dataset's group count).  The classic stripe path never lands
  // here -- its owner is a single divide, not worth a map node per block.
  const std::uint64_t group = placement_->group_of(block);
  auto it = group_candidates_.find(group);
  if (it != group_candidates_.end()) return it->second;
  auto ranked = placement::rank_replicas(placement_->replicas_for_group(group),
                                         server_health_, server_load_);
  return group_candidates_.emplace(group, std::move(ranked)).first->second;
}

int DpssFile::pick_server(std::uint64_t block,
                          const std::set<std::size_t>* exclude) {
  auto usable = [&](std::uint32_t s) {
    return s < servers_.size() && server_alive_[s] && servers_[s] &&
           (!exclude || exclude->count(s) == 0);
  };
  if (!placement_) {
    const std::uint32_t s = layout_.server_for_block(block);
    return usable(s) ? static_cast<int>(s) : -1;
  }
  if (ec_.valid()) {
    // Systematic fast path: the block IS its data slice, stored verbatim
    // on exactly one server.  A dead owner means reconstruction, not
    // failover -- signalled by -1.
    const int s = ec_.server_for_slice(ec_.group_of_block(block),
                                       ec_.slice_of_block(block));
    return (s >= 0 && usable(static_cast<std::uint32_t>(s))) ? s : -1;
  }
  for (std::uint32_t s : candidates_for_block(block)) {
    if (usable(s)) return static_cast<int>(s);
  }
  return -1;
}

void DpssFile::mark_server_failed(std::size_t s, std::uint64_t block,
                                  const core::Status& status) {
  if (s >= server_alive_.size() || !server_alive_[s]) return;
  server_alive_[s] = 0;
  if (servers_[s]) servers_[s]->close();
  if (reporter_ && s < addresses_.size()) {
    reporter_(FailureReport{addresses_[s], dataset_, block,
                            status.to_string()});
  }
}

core::Status DpssFile::fetch_wire_blocks(
    const std::vector<std::uint64_t>& blocks,
    std::map<std::uint64_t, Fetched>* received) {
  if (blocks.empty()) return core::Status::ok();

  std::vector<std::uint64_t> pending = blocks;
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());

  // EC blocks whose single systematic owner is dead: collected here and
  // rebuilt from surviving slices once the normal fetch rounds settle.
  std::vector<std::uint64_t> orphans;
  std::set<std::uint64_t> orphan_set;
  // Live-but-lagging replicas, per block: a server whose reply carried a
  // generation older than one this file saw acknowledged is skipped for
  // that block (the block retries on the next replica), without declaring
  // the whole server dead.
  std::map<std::uint64_t, std::set<std::size_t>> stale_excluded;

  while (!pending.empty()) {
    // Assign every pending block to its best live replica.
    std::vector<std::vector<std::uint64_t>> by_server(servers_.size());
    bool any_assigned = false;
    for (std::uint64_t b : pending) {
      const auto ex = stale_excluded.find(b);
      const int s =
          pick_server(b, ex == stale_excluded.end() ? nullptr : &ex->second);
      if (s < 0) {
        if (ec_.valid()) {
          if (orphan_set.insert(b).second) orphans.push_back(b);
          continue;
        }
        if (ex != stale_excluded.end() && !ex->second.empty()) {
          return core::unavailable(
              "every live replica of block " + std::to_string(b) + " of " +
              dataset_ + " is behind acknowledged generation " +
              std::to_string(known_gens_.latest(dataset_, b)));
        }
        return core::unavailable("no live replica for block " +
                                 std::to_string(b) + " of " + dataset_);
      }
      by_server[static_cast<std::size_t>(s)].push_back(b);
      any_assigned = true;
    }
    if (!any_assigned) break;

    // One worker thread per server, exactly as in the paper's client
    // library.  Pipeline: send all requests, then receive.  A worker that
    // fails keeps the replies it already collected (salvaged below) and
    // leaves its remaining blocks for the next failover round.
    std::vector<core::Status> statuses(servers_.size());
    std::vector<std::map<std::uint64_t, Fetched>> per_server(servers_.size());
    std::vector<std::thread> workers;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (by_server[s].empty()) continue;
      workers.emplace_back([this, s, &by_server, &statuses, &per_server] {
        net::ByteStream& stream = *servers_[s];
        for (std::uint64_t b : by_server[s]) {
          BlockReadRequest req;
          req.dataset = dataset_;
          req.block = b;
          req.compression = compression_;
          net::Message m = encode_block_read_request(req);
          if (active_trace_.sampled()) {
            // Each block request is its own hop on the client's trace.
            m.trace_id = active_trace_.trace_id;
            m.span_id = obs::new_span_id();
          }
          if (auto st = net::send_message(stream, m); !st.is_ok()) {
            statuses[s] = st;
            return;
          }
        }
        for (std::size_t i = 0; i < by_server[s].size(); ++i) {
          auto msg = net::recv_message(stream);
          if (!msg.is_ok()) {
            statuses[s] = msg.status();
            return;
          }
          auto reply = decode_block_read_reply(msg.value());
          if (!reply.is_ok()) {
            statuses[s] = reply.status();
            return;
          }
          wire_bytes_.add(reply.value().data.size());
          std::vector<std::uint8_t> data;
          if (reply.value().compressed) {
            auto raw = decompress_block(reply.value().data);
            if (!raw.is_ok()) {
              statuses[s] = raw.status();
              return;
            }
            data = std::move(raw).take();
          } else {
            data = std::move(reply.value().data);
          }
          raw_bytes_.add(data.size());
          per_server[s][reply.value().block] =
              Fetched{std::move(data), reply.value().generation};
        }
      });
    }
    for (auto& w : workers) w.join();

    bool any_failed = false;
    bool any_stale = false;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (by_server[s].empty()) continue;
      per_server_blocks_[s] += per_server[s].size();
      for (auto& [b, fetched] : per_server[s]) {
        // Stale-read detection: an acknowledged write established a floor
        // for this block's generation; a reply below it is a lagging
        // follower, not valid data.
        if (fetched.generation < known_gens_.latest(dataset_, b)) {
          stale_excluded[b].insert(s);
          stale_retries_.inc();
          any_stale = true;
          continue;
        }
        known_gens_.observe(dataset_, b, fetched.generation);
        (*received)[b] = std::move(fetched);
      }
      if (!statuses[s].is_ok()) {
        any_failed = true;
        mark_server_failed(s, by_server[s].front(), statuses[s]);
      }
    }

    std::vector<std::uint64_t> still;
    for (std::uint64_t b : pending) {
      if (received->find(b) == received->end() && orphan_set.count(b) == 0) {
        still.push_back(b);
      }
    }
    if (!any_failed && !any_stale) {
      if (!still.empty()) {
        return core::data_loss("server returned wrong block set");
      }
      break;
    }
    if (!still.empty() && any_failed && !ec_.valid()) {
      failover_reads_.add(still.size());
    }
    pending = std::move(still);
    // Each failed round kills at least one server and each stale round
    // excludes at least one (block, replica) pair, so the loop terminates:
    // the blocks land on a live fresh replica, or pick_server runs dry
    // (EC: the block joins `orphans`; replicas: an error above).
  }
  if (!orphans.empty()) {
    return reconstruct_blocks(orphans, received);
  }
  return core::Status::ok();
}

bool DpssFile::fetch_slices(
    const std::vector<SliceFetch>& fetches,
    std::map<std::uint32_t, std::vector<std::uint8_t>>* out) {
  // Group by server, pipeline per connection (one worker per server, like
  // fetch_wire_blocks).  Replies are matched positionally: the service
  // loop answers a connection's requests strictly in order.
  std::vector<std::vector<const SliceFetch*>> by_server(servers_.size());
  for (const SliceFetch& f : fetches) {
    by_server[f.server].push_back(&f);
  }
  std::vector<core::Status> statuses(servers_.size());
  std::vector<std::map<std::uint32_t, std::vector<std::uint8_t>>> per_server(
      servers_.size());
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    workers.emplace_back([this, s, &by_server, &statuses, &per_server] {
      net::ByteStream& stream = *servers_[s];
      for (const SliceFetch* f : by_server[s]) {
        BlockReadRequest req;
        req.dataset = f->dataset;
        req.block = f->block;
        req.compression = compression_;
        net::Message m = encode_block_read_request(req);
        if (active_trace_.sampled()) {
          m.trace_id = active_trace_.trace_id;
          m.span_id = obs::new_span_id();
        }
        if (auto st = net::send_message(stream, m); !st.is_ok()) {
          statuses[s] = st;
          return;
        }
      }
      for (const SliceFetch* f : by_server[s]) {
        auto msg = net::recv_message(stream);
        if (!msg.is_ok()) {
          statuses[s] = msg.status();
          return;
        }
        auto reply = decode_block_read_reply(msg.value());
        if (!reply.is_ok()) {
          statuses[s] = reply.status();
          return;
        }
        if (reply.value().block != f->block) {
          statuses[s] = core::data_loss("slice reply out of order");
          return;
        }
        wire_bytes_.add(reply.value().data.size());
        std::vector<std::uint8_t> data;
        if (reply.value().compressed) {
          auto raw = decompress_block(reply.value().data);
          if (!raw.is_ok()) {
            statuses[s] = raw.status();
            return;
          }
          data = std::move(raw).take();
        } else {
          data = std::move(reply.value().data);
        }
        raw_bytes_.add(data.size());
        per_server[s][f->slice] = std::move(data);
      }
    });
  }
  for (auto& w : workers) w.join();

  bool all_ok = true;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    per_server_blocks_[s] += per_server[s].size();
    for (auto& [slice, data] : per_server[s]) (*out)[slice] = std::move(data);
    if (!statuses[s].is_ok()) {
      all_ok = false;
      mark_server_failed(s, by_server[s].front()->block, statuses[s]);
    }
  }
  return all_ok;
}

core::Status DpssFile::reconstruct_blocks(
    const std::vector<std::uint64_t>& blocks,
    std::map<std::uint64_t, Fetched>* received) {
  if (!ec_.valid() || !rs_) {
    return core::unavailable("no live replica and no parity for " + dataset_);
  }
  const std::uint32_t k = rs_->k();
  const std::uint32_t total = ec_.profile().total_slices();
  const std::size_t n = layout_.block_bytes;
  const std::string parity_name = codec::StripeLayout::parity_dataset(dataset_);

  std::map<std::uint64_t, std::vector<std::uint64_t>> by_group;
  for (std::uint64_t b : blocks) {
    by_group[ec_.group_of_block(b)].push_back(b);
  }

  for (auto& [group, wanted] : by_group) {
    for (;;) {  // a server dying mid-fetch re-plans against fresh liveness
      const auto& owners = ec_.group_servers(group);
      std::vector<std::vector<std::uint8_t>> shards(total);
      std::vector<char> present(total, 0);
      std::uint32_t have = 0;
      std::vector<SliceFetch> fetches;
      for (std::uint32_t s = 0; s < total && have + fetches.size() < k; ++s) {
        if (s < k && ec_.block_of_slice(group, s) >= layout_.block_count()) {
          // Zero-padded tail of the final group: known content.
          shards[s].assign(n, 0);
          present[s] = 1;
          ++have;
          continue;
        }
        if (s < k) {
          // A sibling data block this very call already fetched (a
          // degraded scan reads whole stripes) is a free shard -- do not
          // pull it over the wire a second time.
          const auto it = received->find(ec_.block_of_slice(group, s));
          if (it != received->end()) {
            shards[s] = it->second.data;
            shards[s].resize(n, 0);
            present[s] = 1;
            ++have;
            continue;
          }
        }
        if (s >= owners.size()) break;
        const std::uint32_t srv = owners[s];
        if (srv >= servers_.size() || !server_alive_[srv] || !servers_[srv]) {
          continue;
        }
        SliceFetch f;
        f.slice = s;
        f.server = srv;
        if (s < k) {
          f.dataset = dataset_;
          f.block = ec_.block_of_slice(group, s);
        } else {
          f.dataset = parity_name;
          f.block = ec_.parity_block(group, s - k);
        }
        fetches.push_back(std::move(f));
      }
      if (have + fetches.size() < k) {
        return core::unavailable(
            "only " + std::to_string(have + fetches.size()) + " of " +
            std::to_string(k) + " slices of group " + std::to_string(group) +
            " survive in " + dataset_);
      }
      std::map<std::uint32_t, std::vector<std::uint8_t>> fetched;
      const bool clean = fetch_slices(fetches, &fetched);
      for (auto& [slice, data] : fetched) {
        shards[slice] = std::move(data);
        shards[slice].resize(n, 0);  // re-pad the short final data block
        present[slice] = 1;
        ++have;
      }
      if (!clean && have < k) continue;  // retry with the survivors
      // Only the data slices are wanted here; skip re-deriving parity.
      if (auto st = rs_->reconstruct(shards, present, n,
                                     /*rebuild_parity=*/false);
          !st.is_ok()) {
        return st;
      }
      for (std::uint64_t b : wanted) {
        auto data = shards[ec_.slice_of_block(b)];
        data.resize(static_cast<std::size_t>(layout_.block_length(b)));
        // Reconstructed bytes carry no single server stamp: they reflect
        // the surviving slices' current state, which under a relaxed ack
        // policy may predate an acknowledged overwrite until the fixup
        // queue drains the missed parity deltas.  Stamp 0 so the
        // read-ahead tier can never pin them under a newer generation's
        // key (they stay correct for never-overwritten blocks, the
        // common case).
        (*received)[b] = Fetched{std::move(data), 0};
      }
      // Sibling data slices pulled over the wire for the decode are real
      // blocks the caller may want next (single-block read-ahead fills,
      // partial scans): hand them back too instead of discarding them.
      for (const auto& [slice, ignored] : fetched) {
        if (slice >= k) continue;
        const std::uint64_t b = ec_.block_of_slice(group, slice);
        if (b >= layout_.block_count() || received->count(b)) continue;
        auto data = shards[slice];
        data.resize(static_cast<std::size_t>(layout_.block_length(b)));
        (*received)[b] = Fetched{std::move(data), 0};
      }
      reconstructed_reads_.add(wanted.size());
      break;
    }
  }
  return core::Status::ok();
}

core::Status DpssFile::fetch_blocks(std::vector<BlockRef> refs) {
  if (refs.empty()) return core::Status::ok();
  const double t0 = core::global_real_clock().now();

  // Distinct blocks in first-reference order (the order the prefetcher
  // should observe).
  std::vector<std::uint64_t> distinct;
  std::set<std::uint64_t> seen;
  for (const BlockRef& r : refs) {
    if (seen.insert(r.block).second) distinct.push_back(r.block);
  }

  // Lifeline start: sampled reads mint the trace the wire headers carry.
  obs::TraceContext trace;
  if (logger_ && sampler_.sample()) {
    trace.trace_id = obs::new_trace_id();
    trace.span_id = obs::new_span_id();
    logger_->log(netlog::tags::kDpssReadStart, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"DATASET", dataset_},
                  {"BLOCKS", std::to_string(distinct.size())}});
  }

  // Serve what the read-ahead cache already holds; fetch the rest.  Keys
  // carry the latest acknowledged generation, so a block this file
  // overwrote can only be served by a post-overwrite fill.
  std::map<std::uint64_t, cache::BlockData> have;
  std::vector<std::uint64_t> missing;
  if (ra_cache_) {
    for (std::uint64_t b : distinct) {
      if (auto data = ra_cache_->lookup(cache::BlockKey{
              dataset_, b, known_gens_.latest(dataset_, b)})) {
        have[b] = std::move(data);
      } else {
        missing.push_back(b);
      }
    }
  } else {
    missing = distinct;
  }

  if (!missing.empty()) {
    std::map<std::uint64_t, Fetched> received;
    {
      std::lock_guard lk(wire_mu_);
      active_trace_ = trace;
      auto st = fetch_wire_blocks(missing, &received);
      active_trace_ = obs::TraceContext{};
      if (!st.is_ok()) return st;
    }
    for (auto& [b, fetched] : received) {
      auto data = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(fetched.data));
      if (ra_cache_) {
        // Keyed by the stamp the bytes actually carry (a reconstructed
        // block's 0 can never shadow a newer acknowledged generation).
        ra_cache_->insert(cache::BlockKey{dataset_, b, fetched.generation},
                          data);
      }
      have[b] = std::move(data);
    }
  }

  for (const BlockRef& r : refs) {
    auto it = have.find(r.block);
    if (it == have.end()) {
      return core::data_loss("server returned wrong block set");
    }
    if (r.offset_in_block + r.length > it->second->size()) {
      return core::data_loss("block shorter than expected");
    }
    std::memcpy(r.dest, it->second->data() + r.offset_in_block, r.length);
  }

  if (prefetcher_) {
    for (std::uint64_t b : distinct) {
      prefetcher_->on_access(dataset_, b, layout_.block_count());
    }
  }

  const double elapsed = std::max(0.0, core::global_real_clock().now() - t0);
  read_seconds_.observe(elapsed);
  if (trace.sampled()) {
    std::size_t read_bytes = 0;
    for (const BlockRef& r : refs) read_bytes += r.length;
    logger_->log(netlog::tags::kDpssReadEnd, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"SECONDS", std::to_string(elapsed)},
                  {"BYTES", std::to_string(read_bytes)}});
  }
  if (logger_ && slow_threshold_ > 0.0 && elapsed > slow_threshold_) {
    logger_->log(netlog::tags::kDpssSlowRequest, -1, -1,
                 {{"OP", "READ"},
                  {"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SECONDS", std::to_string(elapsed)}});
  }
  return core::Status::ok();
}

void DpssFile::prefetch_fill(std::uint64_t block) {
  std::map<std::uint64_t, Fetched> received;
  {
    std::lock_guard lk(wire_mu_);
    if (ra_cache_->contains(cache::BlockKey{
            dataset_, block, known_gens_.latest(dataset_, block)})) {
      return;
    }
    // Best-effort: a failed speculative fetch is simply not cached.
    if (!fetch_wire_blocks({block}, &received).is_ok()) return;
  }
  if (received.find(block) == received.end()) return;
  // Cache everything the fetch produced: a degraded EC fetch reconstructs
  // via k sibling slices, and those siblings ride along in `received` --
  // caching them amortises the k-slice wire cost across the whole group.
  for (auto& [b, fetched] : received) {
    ra_cache_->insert(cache::BlockKey{dataset_, b, fetched.generation},
                      std::move(fetched.data),
                      /*prefetched=*/true);
  }
}

void DpssFile::enable_readahead(const ReadaheadOptions& options) {
  if (ra_cache_) return;
  cache::BlockCacheConfig cc;
  cc.capacity_bytes = options.cache_bytes;
  cc.shards = options.cache_shards;
  cc.policy = options.policy;
  ra_cache_ = std::make_unique<cache::BlockCache>(cc);
  if (options.threads > 0) {
    ra_pool_ = std::make_unique<core::ThreadPool>(options.threads);
  }
  prefetcher_ = std::make_unique<cache::Prefetcher>(
      options.prefetch,
      [this](const std::string&, std::uint64_t block) { prefetch_fill(block); },
      ra_pool_.get(), &ra_cache_->counters());
  prefetcher_->set_filter([this](const std::string&, std::uint64_t block) {
    return ra_cache_->contains(cache::BlockKey{
        dataset_, block, known_gens_.latest(dataset_, block)});
  });
  // Surface the read-ahead tier's counters through this file's registry
  // (ra_cache_ lives until destruction, so the collector never dangles).
  registry_.add_collector([this](std::vector<obs::Sample>& out) {
    ra_cache_->counters().collect("dpss_client_cache", out);
  });
}

cache::MetricsSnapshot DpssFile::readahead_metrics() const {
  if (!ra_cache_) return cache::MetricsSnapshot();
  return ra_cache_->metrics();
}

void DpssFile::drain_readahead() {
  if (prefetcher_) prefetcher_->drain();
}

void DpssFile::account_write_ack(
    std::uint64_t block, const IngestWriteReply& reply, std::uint32_t targets,
    const std::vector<IngestWriteRequest::DeltaTarget>* deltas) {
  const std::uint64_t previous = known_gens_.latest(dataset_, block);
  if (known_gens_.observe(dataset_, block, reply.generation) && ra_cache_) {
    // Re-key the read-ahead tier: the entry under the old stamp can never
    // satisfy a lookup for the new one, so erasing it is pure reclamation.
    ra_cache_->erase(cache::BlockKey{dataset_, block, previous});
  }
  if (reply.acks < targets) degraded_writes_.inc();
  if (!fixup_reporter_) return;
  for (const auto& addr : reply.missed) {
    // An EC write's missed targets are parity owners: their fixup debt is
    // the parity block, not this data block.
    const IngestWriteRequest::DeltaTarget* delta = nullptr;
    if (deltas) {
      for (const auto& d : *deltas) {
        if (d.server == addr) {
          delta = &d;
          break;
        }
      }
    }
    if (delta) {
      fixup_reporter_(FixupReport{delta->dataset, delta->block, 0, addr});
    } else {
      fixup_reporter_(FixupReport{dataset_, block, reply.generation, addr});
    }
  }
}

core::Status DpssFile::write_chain(std::uint64_t first_block,
                                   const std::uint8_t* src, std::size_t len) {
  // Build one ingest request per block.  EC blocks target their data-slice
  // owner and carry parity-delta targets; replicated blocks target the
  // deterministic primary and carry the (policy-truncated) chain; classic
  // stripes are a chain of one.
  struct PendingWrite {
    std::uint64_t block = 0;
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
  };
  std::vector<PendingWrite> pending;
  {
    std::uint64_t at = first_block * layout_.block_bytes;
    std::size_t remaining = len;
    const std::uint8_t* p = src;
    while (remaining > 0) {
      const std::size_t n =
          std::min<std::size_t>(remaining, layout_.block_bytes);
      pending.push_back(PendingWrite{at / layout_.block_bytes, p, n});
      at += n;
      p += n;
      remaining -= n;
    }
  }

  // Failover loop: a primary dying mid-write re-plans the survivors
  // against updated liveness (the next live replica in ring order becomes
  // primary; EC writes have no fallback primary -- the data-slice owner is
  // where the old bytes live).
  while (!pending.empty()) {
    struct Planned {
      PendingWrite w;
      IngestWriteRequest req;
      std::uint32_t targets = 0;  // primary + live followers/parity owners
      std::vector<std::uint32_t> policy_skipped;       // replication
      std::vector<ingest::DeltaTarget> skipped_deltas; // EC
    };
    std::vector<std::vector<Planned>> by_primary(servers_.size());
    for (const PendingWrite& w : pending) {
      Planned plan;
      plan.w = w;
      plan.req.dataset = dataset_;
      plan.req.block = w.block;
      plan.req.ack_policy = ack_policy_;
      plan.req.data.assign(w.data, w.data + w.len);
      int primary = -1;
      if (ec_.valid()) {
        primary = pick_server(w.block);
        if (primary < 0) {
          return core::unavailable(
              "EC write needs the data-slice owner of block " +
              std::to_string(w.block) + " of " + dataset_ + " alive");
        }
        std::vector<ingest::DeltaTarget> unreachable;
        auto deltas = ingest::plan_parity_deltas(ec_, *rs_, dataset_, w.block,
                                                 server_alive_, &unreachable);
        plan.targets = 1 + static_cast<std::uint32_t>(deltas.size());
        // The ack policy truncates the synchronous delta fan-out exactly
        // like a replica chain: keep required - 1 targets, skip the rest.
        const std::uint32_t required =
            ingest::required_acks(ack_policy_, plan.targets);
        while (deltas.size() > required - 1) {
          plan.skipped_deltas.push_back(std::move(deltas.back()));
          deltas.pop_back();
        }
        for (auto& u : unreachable) {
          plan.skipped_deltas.push_back(std::move(u));
        }
        for (const auto& d : deltas) {
          IngestWriteRequest::DeltaTarget t;
          t.server = addresses_[d.server];
          t.dataset = d.dataset;
          t.block = d.block;
          t.coefficient = d.coefficient;
          plan.req.deltas.push_back(std::move(t));
        }
      } else if (placement_) {
        auto chain = ingest::plan_chain(
            placement_->replicas_for_block(w.block), server_health_,
            server_alive_);
        if (!chain.viable()) {
          return core::unavailable("no live replica to write block " +
                                   std::to_string(w.block));
        }
        primary = chain.primary;
        plan.targets = chain.targets();
        auto kept =
            ingest::truncate_chain(chain, ack_policy_, &plan.policy_skipped);
        for (std::uint32_t s : kept) plan.req.chain.push_back(addresses_[s]);
      } else {
        primary = pick_server(w.block);
        if (primary < 0) {
          return core::unavailable("no live server to write block " +
                                   std::to_string(w.block));
        }
        plan.targets = 1;
      }
      by_primary[static_cast<std::size_t>(primary)].push_back(std::move(plan));
    }

    // One worker per primary, pipelined: send every request, then collect
    // every reply (ack or error) positionally.
    std::vector<core::Status> statuses(servers_.size());
    std::vector<std::vector<core::Result<IngestWriteReply>>> replies(
        servers_.size());
    std::vector<std::thread> workers;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (by_primary[s].empty()) continue;
      workers.emplace_back([this, s, &by_primary, &statuses, &replies] {
        net::ByteStream& stream = *servers_[s];
        for (const Planned& plan : by_primary[s]) {
          net::Message m = encode_ingest_write_request(plan.req);
          if (active_trace_.sampled()) {
            m.trace_id = active_trace_.trace_id;
            m.span_id = obs::new_span_id();
          }
          if (auto st = net::send_message(stream, m); !st.is_ok()) {
            statuses[s] = st;
            return;
          }
        }
        for (std::size_t i = 0; i < by_primary[s].size(); ++i) {
          auto msg = net::recv_message(stream);
          if (!msg.is_ok()) {
            statuses[s] = msg.status();
            return;
          }
          replies[s].push_back(decode_ingest_write_reply(msg.value()));
        }
      });
    }
    for (auto& w : workers) w.join();

    std::vector<PendingWrite> still;
    core::Status typed_error;  // first per-block error reply, if any
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (by_primary[s].empty()) continue;
      for (std::size_t i = 0; i < by_primary[s].size(); ++i) {
        const Planned& plan = by_primary[s][i];
        if (i < replies[s].size() && replies[s][i].is_ok()) {
          const IngestWriteReply& reply = replies[s][i].value();
          account_write_ack(plan.w.block, reply, plan.targets,
                            plan.req.deltas.empty() ? nullptr
                                                    : &plan.req.deltas);
          // Targets the policy (or planning) skipped are fixup debt the
          // primary never saw.
          if (fixup_reporter_) {
            for (std::uint32_t skipped : plan.policy_skipped) {
              fixup_reporter_(FixupReport{dataset_, plan.w.block,
                                          reply.generation,
                                          addresses_[skipped]});
            }
            for (const auto& d : plan.skipped_deltas) {
              fixup_reporter_(FixupReport{d.dataset, d.block, 0,
                                          addresses_[d.server]});
            }
          }
          if (reply.acks < plan.targets ||
              !plan.policy_skipped.empty() || !plan.skipped_deltas.empty()) {
            // account_write_ack counted acks < targets; policy skips make
            // the write degraded even when every synchronous target acked.
            if (reply.acks >= plan.targets) degraded_writes_.inc();
          }
        } else if (i < replies[s].size()) {
          // The primary answered with a typed error (e.g. a stale
          // generation race): this block's write failed outright.  Keep
          // accounting the OTHER blocks' acks first -- their generations
          // and fixup debts are real regardless -- and fail afterwards.
          if (typed_error.is_ok()) typed_error = replies[s][i].status();
        } else {
          // Primary died mid-pipeline: surviving replicas take over on the
          // next round.
          still.push_back(plan.w);
        }
      }
      if (!statuses[s].is_ok()) {
        mark_server_failed(s, by_primary[s].front().w.block, statuses[s]);
      }
    }
    if (!typed_error.is_ok()) return typed_error;
    if (still.size() == pending.size()) {
      // No progress: every primary failed and nothing was written.
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        if (!statuses[s].is_ok()) return statuses[s];
      }
      return core::unavailable("ingest write acknowledged by no server");
    }
    pending = std::move(still);
  }
  return core::Status::ok();
}

core::Status DpssFile::write_fanout(std::uint64_t first_block,
                                    const std::uint8_t* src, std::size_t len) {
  std::uint64_t at = first_block * layout_.block_bytes;
  std::size_t remaining = len;
  const std::uint8_t* p = src;
  // Per-server pipelining for writes too; a replicated block is written to
  // every live replica, each stamped with the same next generation so the
  // cache tiers re-key exactly as the chain path does.
  std::vector<std::vector<BlockWriteRequest>> by_server(servers_.size());
  std::map<std::uint64_t, int> targets_per_block;
  std::map<std::uint64_t, std::uint64_t> gen_per_block;
  while (remaining > 0) {
    const std::uint64_t block = at / layout_.block_bytes;
    const std::size_t n = std::min<std::size_t>(remaining, layout_.block_bytes);
    int targets = 0;
    const std::vector<std::uint32_t> classic_owner = {
        layout_.server_for_block(block)};
    const std::uint64_t generation =
        known_gens_.latest(dataset_, block) + 1;
    for (std::uint32_t s :
         placement_ ? candidates_for_block(block) : classic_owner) {
      if (s >= servers_.size() || !server_alive_[s] || !servers_[s]) continue;
      BlockWriteRequest req;
      req.dataset = dataset_;
      req.block = block;
      req.generation = generation;
      req.data.assign(p, p + n);
      by_server[s].push_back(std::move(req));
      ++targets;
    }
    if (targets == 0) {
      return core::unavailable("no live replica to write block " +
                               std::to_string(block));
    }
    targets_per_block[block] = targets;
    gen_per_block[block] = generation;
    at += n;
    p += n;
    remaining -= n;
  }
  std::vector<core::Status> statuses(servers_.size());
  std::vector<std::vector<std::uint64_t>> acked(servers_.size());
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    workers.emplace_back([this, s, &by_server, &statuses, &acked] {
      net::ByteStream& stream = *servers_[s];
      for (const auto& req : by_server[s]) {
        net::Message m = encode_block_write_request(req);
        if (active_trace_.sampled()) {
          m.trace_id = active_trace_.trace_id;
          m.span_id = obs::new_span_id();
        }
        if (auto st = net::send_message(stream, m); !st.is_ok()) {
          statuses[s] = st;
          return;
        }
      }
      for (std::size_t i = 0; i < by_server[s].size(); ++i) {
        auto msg = net::recv_message(stream);
        if (!msg.is_ok()) {
          statuses[s] = msg.status();
          return;
        }
        auto reply = decode_block_write_reply(msg.value());
        if (!reply.is_ok()) {
          statuses[s] = reply.status();
          return;
        }
        acked[s].push_back(reply.value());
      }
    });
  }
  for (auto& w : workers) w.join();

  std::map<std::uint64_t, int> acks;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (by_server[s].empty()) continue;
    for (std::uint64_t b : acked[s]) ++acks[b];
    if (!statuses[s].is_ok()) {
      mark_server_failed(s, by_server[s].front().block, statuses[s]);
    }
  }
  for (const auto& [block, targets] : targets_per_block) {
    if (acks[block] == 0) {
      // Every replica write failed: the block is not durable anywhere.
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        if (!statuses[s].is_ok()) return statuses[s];
      }
      return core::unavailable("block write acknowledged by no replica");
    }
    if (acks[block] < targets) {
      // Durable but under-replicated: count it (the dead replica was
      // reported via mark_server_failed, so a rebalance can repair).
      degraded_writes_.inc();
    }
    // The stamp is learned only once acknowledged somewhere, so a failed
    // write never raises the generation floor past what exists.
    const std::uint64_t generation = gen_per_block[block];
    if (known_gens_.observe(dataset_, block, generation) && ra_cache_) {
      ra_cache_->erase(cache::BlockKey{dataset_, block, generation - 1});
    }
  }
  return core::Status::ok();
}

core::Status DpssFile::write(const std::uint8_t* buf, std::size_t len) {
  OBS_STAGE("client.write");
  if (offset_ % layout_.block_bytes != 0) {
    return core::invalid_argument("dpssWrite must start block-aligned");
  }
  const bool chain =
      ingest_capable_ && write_mode_ == WriteMode::kServerChain;
  if (ec_.valid() && !chain) {
    // Without the server-driven pipeline a data-slice write would silently
    // invalidate its group's parity; old-mode deployments must re-ingest.
    return core::failed_precondition(
        "dpssWrite on erasure-coded dataset " + dataset_ +
        " requires an ingest-capable deployment (parity-delta writes); "
        "re-ingest to update");
  }
  std::lock_guard lk(wire_mu_);
  const double t0 = core::global_real_clock().now();
  obs::TraceContext trace;
  if (logger_ && sampler_.sample()) {
    trace.trace_id = obs::new_trace_id();
    trace.span_id = obs::new_span_id();
    logger_->log(netlog::tags::kDpssWriteStart, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"DATASET", dataset_},
                  {"BYTES", std::to_string(len)}});
  }
  active_trace_ = trace;
  const std::uint64_t first_block = offset_ / layout_.block_bytes;
  auto st = chain ? write_chain(first_block, buf, len)
                  : write_fanout(first_block, buf, len);
  active_trace_ = obs::TraceContext{};
  if (!st.is_ok()) return st;
  offset_ += len;

  const double elapsed = std::max(0.0, core::global_real_clock().now() - t0);
  write_seconds_.observe(elapsed);
  if (trace.sampled()) {
    logger_->log(netlog::tags::kDpssWriteEnd, -1, -1,
                 {{"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SPAN", obs::trace_hex(trace.span_id)},
                  {"SECONDS", std::to_string(elapsed)},
                  {"BYTES", std::to_string(len)}});
  }
  if (logger_ && slow_threshold_ > 0.0 && elapsed > slow_threshold_) {
    logger_->log(netlog::tags::kDpssSlowRequest, -1, -1,
                 {{"OP", "WRITE"},
                  {"TRACE", obs::trace_hex(trace.trace_id)},
                  {"SECONDS", std::to_string(elapsed)}});
  }
  return core::Status::ok();
}

void DpssFile::enable_tracing(std::shared_ptr<netlog::NetLogger> logger,
                              double sample_rate,
                              double slow_threshold_seconds) {
  std::lock_guard lk(wire_mu_);
  logger_ = std::move(logger);
  sampler_.set_rate(logger_ ? sample_rate : 0.0);
  slow_threshold_ = slow_threshold_seconds;
}

void DpssFile::close() {
  // Drain read-ahead before tearing down the streams it fetches over.
  prefetcher_.reset();
  ra_pool_.reset();
  for (auto& s : servers_) {
    if (s) s->close();
  }
}

std::vector<std::uint64_t> DpssFile::per_server_blocks() const {
  return per_server_blocks_;
}

std::vector<int> DpssFile::dead_servers() const {
  std::lock_guard lk(wire_mu_);
  std::vector<int> dead;
  for (std::size_t s = 0; s < server_alive_.size(); ++s) {
    if (!server_alive_[s]) dead.push_back(static_cast<int>(s));
  }
  return dead;
}

}  // namespace visapult::dpss
