#include "dpss/protocol.h"

namespace visapult::dpss {

namespace {
core::Status wrong_type(const char* what) {
  return core::data_loss(std::string("unexpected message type for ") + what);
}
}  // namespace

net::Message encode_open_request(const OpenRequest& r) {
  net::Message m;
  m.type = kOpenRequest;
  net::Writer w;
  w.str(r.dataset);
  w.str(r.auth_token);
  m.payload = w.take();
  return m;
}

core::Result<OpenRequest> decode_open_request(const net::Message& m) {
  if (m.type != kOpenRequest) return wrong_type("OpenRequest");
  net::Reader r(m.payload);
  OpenRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  auto token = r.str();
  if (!token.is_ok()) return token.status();
  out.dataset = dataset.value();
  out.auth_token = token.value();
  return out;
}

net::Message encode_open_reply(const OpenReply& r) {
  net::Message m;
  m.type = kOpenReply;
  net::Writer w;
  w.u64(r.handle);
  w.u64(r.layout.total_bytes);
  w.u32(r.layout.block_bytes);
  w.u32(r.layout.stripe_blocks);
  w.u32(r.layout.server_count);
  w.u32(static_cast<std::uint32_t>(r.servers.size()));
  for (const auto& s : r.servers) {
    w.str(s.host);
    w.u32(s.port);
  }
  w.u32(r.replication_factor);
  w.u32(r.ring_vnodes);
  w.u32(r.ec.data_slices);
  w.u32(r.ec.parity_slices);
  // Health/load snapshots are padded to the server count so the decoder
  // always gets parallel vectors.
  for (std::size_t i = 0; i < r.servers.size(); ++i) {
    w.u8(i < r.server_health.size()
             ? static_cast<std::uint8_t>(r.server_health[i])
             : static_cast<std::uint8_t>(placement::HealthState::kUp));
    w.u64(i < r.server_load.size() ? r.server_load[i] : 0);
  }
  m.payload = w.take();
  return m;
}

core::Result<OpenReply> decode_open_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kOpenReply) return wrong_type("OpenReply");
  net::Reader r(m.payload);
  OpenReply out;
  auto handle = r.u64();
  if (!handle.is_ok()) return handle.status();
  out.handle = handle.value();
  auto total = r.u64();
  if (!total.is_ok()) return total.status();
  out.layout.total_bytes = total.value();
  auto bb = r.u32();
  if (!bb.is_ok()) return bb.status();
  out.layout.block_bytes = bb.value();
  auto sb = r.u32();
  if (!sb.is_ok()) return sb.status();
  out.layout.stripe_blocks = sb.value();
  auto sc = r.u32();
  if (!sc.is_ok()) return sc.status();
  out.layout.server_count = sc.value();
  auto n = r.u32();
  if (!n.is_ok()) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    ServerAddress addr;
    auto host = r.str();
    if (!host.is_ok()) return host.status();
    addr.host = host.value();
    auto port = r.u32();
    if (!port.is_ok()) return port.status();
    addr.port = static_cast<std::uint16_t>(port.value());
    out.servers.push_back(std::move(addr));
  }
  auto rf = r.u32();
  if (!rf.is_ok()) return rf.status();
  out.replication_factor = rf.value();
  auto vnodes = r.u32();
  if (!vnodes.is_ok()) return vnodes.status();
  out.ring_vnodes = vnodes.value();
  auto ec_k = r.u32();
  if (!ec_k.is_ok()) return ec_k.status();
  out.ec.data_slices = ec_k.value();
  auto ec_m = r.u32();
  if (!ec_m.is_ok()) return ec_m.status();
  out.ec.parity_slices = ec_m.value();
  // The client builds a ReedSolomon straight from this profile; reject
  // field-impossible geometries before they reach GF(2^8) math.
  if (out.ec.data_slices == 0 || out.ec.total_slices() > 255) {
    return core::data_loss("EC profile outside GF(2^8) limits");
  }
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto health = r.u8();
    if (!health.is_ok()) return health.status();
    if (health.value() > 2) return core::data_loss("unknown health state");
    out.server_health.push_back(
        static_cast<placement::HealthState>(health.value()));
    auto load = r.u64();
    if (!load.is_ok()) return load.status();
    out.server_load.push_back(load.value());
  }
  return out;
}

net::Message encode_block_read_request(const BlockReadRequest& r) {
  net::Message m;
  m.type = kBlockReadRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.u8(static_cast<std::uint8_t>(r.compression.codec));
  w.u8(static_cast<std::uint8_t>(r.compression.quant_bits));
  m.payload = w.take();
  return m;
}

core::Result<BlockReadRequest> decode_block_read_request(const net::Message& m) {
  if (m.type != kBlockReadRequest) return wrong_type("BlockReadRequest");
  net::Reader r(m.payload);
  BlockReadRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto codec = r.u8();
  if (!codec.is_ok()) return codec.status();
  if (codec.value() > 2) return core::data_loss("unknown compression codec");
  out.compression.codec = static_cast<Codec>(codec.value());
  auto bits = r.u8();
  if (!bits.is_ok()) return bits.status();
  out.compression.quant_bits = bits.value();
  return out;
}

net::Message encode_block_read_reply(const BlockReadReply& r) {
  net::Message m;
  m.type = kBlockReadReply;
  net::Writer w;
  w.u64(r.block);
  w.u8(r.compressed ? 1 : 0);
  w.bytes(r.data);
  m.payload = w.take();
  return m;
}

core::Result<BlockReadReply> decode_block_read_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kBlockReadReply) return wrong_type("BlockReadReply");
  net::Reader r(m.payload);
  BlockReadReply out;
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto compressed = r.u8();
  if (!compressed.is_ok()) return compressed.status();
  out.compressed = compressed.value() != 0;
  auto data = r.bytes();
  if (!data.is_ok()) return data.status();
  out.data = std::move(data).take();
  return out;
}

net::Message encode_block_write_request(const BlockWriteRequest& r) {
  net::Message m;
  m.type = kBlockWriteRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.bytes(r.data);
  m.payload = w.take();
  return m;
}

core::Result<BlockWriteRequest> decode_block_write_request(const net::Message& m) {
  if (m.type != kBlockWriteRequest) return wrong_type("BlockWriteRequest");
  net::Reader r(m.payload);
  BlockWriteRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto data = r.bytes();
  if (!data.is_ok()) return data.status();
  out.data = std::move(data).take();
  return out;
}

net::Message encode_block_write_reply(std::uint64_t block) {
  net::Message m;
  m.type = kBlockWriteReply;
  net::Writer w;
  w.u64(block);
  m.payload = w.take();
  return m;
}

core::Result<std::uint64_t> decode_block_write_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kBlockWriteReply) return wrong_type("BlockWriteReply");
  net::Reader r(m.payload);
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  return block.value();
}

net::Message encode_error_reply(const core::Status& status) {
  net::Message m;
  m.type = kErrorReply;
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(status.code()));
  w.str(status.message());
  m.payload = w.take();
  return m;
}

net::Message encode_heartbeat(const HeartbeatRequest& r) {
  net::Message m;
  m.type = kHeartbeat;
  net::Writer w;
  w.str(r.server.host);
  w.u32(r.server.port);
  w.u64(r.requests_served);
  m.payload = w.take();
  return m;
}

core::Result<HeartbeatRequest> decode_heartbeat(const net::Message& m) {
  if (m.type != kHeartbeat) return wrong_type("Heartbeat");
  net::Reader r(m.payload);
  HeartbeatRequest out;
  auto host = r.str();
  if (!host.is_ok()) return host.status();
  out.server.host = host.value();
  auto port = r.u32();
  if (!port.is_ok()) return port.status();
  out.server.port = static_cast<std::uint16_t>(port.value());
  auto served = r.u64();
  if (!served.is_ok()) return served.status();
  out.requests_served = served.value();
  return out;
}

net::Message encode_failure_report(const FailureReport& r) {
  net::Message m;
  m.type = kFailureReport;
  net::Writer w;
  w.str(r.server.host);
  w.u32(r.server.port);
  w.str(r.dataset);
  w.u64(r.block);
  w.str(r.reason);
  m.payload = w.take();
  return m;
}

core::Result<FailureReport> decode_failure_report(const net::Message& m) {
  if (m.type != kFailureReport) return wrong_type("FailureReport");
  net::Reader r(m.payload);
  FailureReport out;
  auto host = r.str();
  if (!host.is_ok()) return host.status();
  out.server.host = host.value();
  auto port = r.u32();
  if (!port.is_ok()) return port.status();
  out.server.port = static_cast<std::uint16_t>(port.value());
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto reason = r.str();
  if (!reason.is_ok()) return reason.status();
  out.reason = reason.value();
  return out;
}

core::Status decode_error_reply(const net::Message& m) {
  if (m.type != kErrorReply) return core::Status::ok();
  net::Reader r(m.payload);
  auto code = r.u32();
  auto msg = r.str();
  if (!code.is_ok() || !msg.is_ok()) {
    return core::data_loss("malformed error reply");
  }
  return core::Status(static_cast<core::StatusCode>(code.value()), msg.value());
}

}  // namespace visapult::dpss
