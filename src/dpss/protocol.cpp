#include "dpss/protocol.h"

namespace visapult::dpss {

namespace {
core::Status wrong_type(const char* what) {
  return core::data_loss(std::string("unexpected message type for ") + what);
}
}  // namespace

net::Message encode_open_request(const OpenRequest& r) {
  net::Message m;
  m.type = kOpenRequest;
  net::Writer w;
  w.str(r.dataset);
  w.str(r.auth_token);
  w.u64(r.known_epoch);
  m.payload = w.take();
  return m;
}

core::Result<OpenRequest> decode_open_request(const net::Message& m) {
  if (m.type != kOpenRequest) return wrong_type("OpenRequest");
  net::Reader r(m.payload);
  OpenRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  auto token = r.str();
  if (!token.is_ok()) return token.status();
  out.dataset = dataset.value();
  out.auth_token = token.value();
  auto known = r.u64();
  if (!known.is_ok()) return known.status();
  out.known_epoch = known.value();
  return out;
}

net::Message encode_open_reply(const OpenReply& r) {
  net::Message m;
  m.type = kOpenReply;
  net::Writer w;
  w.u64(r.handle);
  w.u64(r.layout.total_bytes);
  w.u32(r.layout.block_bytes);
  w.u32(r.layout.stripe_blocks);
  w.u32(r.layout.server_count);
  w.u32(static_cast<std::uint32_t>(r.servers.size()));
  for (const auto& s : r.servers) {
    w.str(s.host);
    w.u32(s.port);
  }
  w.u32(r.replication_factor);
  w.u32(r.ring_vnodes);
  w.u32(r.ec.data_slices);
  w.u32(r.ec.parity_slices);
  w.u8(r.ingest_capable ? 1 : 0);
  // Health/load snapshots are padded to the server count so the decoder
  // always gets parallel vectors.
  for (std::size_t i = 0; i < r.servers.size(); ++i) {
    w.u8(i < r.server_health.size()
             ? static_cast<std::uint8_t>(r.server_health[i])
             : static_cast<std::uint8_t>(placement::HealthState::kUp));
    w.u64(i < r.server_load.size() ? r.server_load[i] : 0);
  }
  // Sharded-metadata fields (appended, both ends updated together).
  w.u64(r.catalog_epoch);
  w.u8(r.not_modified ? 1 : 0);
  w.u64(r.max_generation);
  w.u8(static_cast<std::uint8_t>(r.cache_hint));
  m.payload = w.take();
  return m;
}

core::Result<OpenReply> decode_open_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kOpenReply) return wrong_type("OpenReply");
  net::Reader r(m.payload);
  OpenReply out;
  auto handle = r.u64();
  if (!handle.is_ok()) return handle.status();
  out.handle = handle.value();
  auto total = r.u64();
  if (!total.is_ok()) return total.status();
  out.layout.total_bytes = total.value();
  auto bb = r.u32();
  if (!bb.is_ok()) return bb.status();
  out.layout.block_bytes = bb.value();
  auto sb = r.u32();
  if (!sb.is_ok()) return sb.status();
  out.layout.stripe_blocks = sb.value();
  auto sc = r.u32();
  if (!sc.is_ok()) return sc.status();
  out.layout.server_count = sc.value();
  auto n = r.u32();
  if (!n.is_ok()) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    ServerAddress addr;
    auto host = r.str();
    if (!host.is_ok()) return host.status();
    addr.host = host.value();
    auto port = r.u32();
    if (!port.is_ok()) return port.status();
    addr.port = static_cast<std::uint16_t>(port.value());
    out.servers.push_back(std::move(addr));
  }
  auto rf = r.u32();
  if (!rf.is_ok()) return rf.status();
  out.replication_factor = rf.value();
  auto vnodes = r.u32();
  if (!vnodes.is_ok()) return vnodes.status();
  out.ring_vnodes = vnodes.value();
  auto ec_k = r.u32();
  if (!ec_k.is_ok()) return ec_k.status();
  out.ec.data_slices = ec_k.value();
  auto ec_m = r.u32();
  if (!ec_m.is_ok()) return ec_m.status();
  out.ec.parity_slices = ec_m.value();
  // The client builds a ReedSolomon straight from this profile; reject
  // field-impossible geometries before they reach GF(2^8) math.
  if (out.ec.data_slices == 0 || out.ec.total_slices() > 255) {
    return core::data_loss("EC profile outside GF(2^8) limits");
  }
  auto capable = r.u8();
  if (!capable.is_ok()) return capable.status();
  out.ingest_capable = capable.value() != 0;
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto health = r.u8();
    if (!health.is_ok()) return health.status();
    if (health.value() > 2) return core::data_loss("unknown health state");
    out.server_health.push_back(
        static_cast<placement::HealthState>(health.value()));
    auto load = r.u64();
    if (!load.is_ok()) return load.status();
    out.server_load.push_back(load.value());
  }
  auto epoch = r.u64();
  if (!epoch.is_ok()) return epoch.status();
  out.catalog_epoch = epoch.value();
  auto not_modified = r.u8();
  if (!not_modified.is_ok()) return not_modified.status();
  out.not_modified = not_modified.value() != 0;
  auto max_gen = r.u64();
  if (!max_gen.is_ok()) return max_gen.status();
  out.max_generation = max_gen.value();
  auto hint = r.u8();
  if (!hint.is_ok()) return hint.status();
  if (hint.value() > 2) return core::data_loss("unknown cache hint");
  out.cache_hint = static_cast<meta::CacheHint>(hint.value());
  return out;
}

net::Message encode_block_read_request(const BlockReadRequest& r) {
  net::Message m;
  m.type = kBlockReadRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.u8(static_cast<std::uint8_t>(r.compression.codec));
  w.u8(static_cast<std::uint8_t>(r.compression.quant_bits));
  m.payload = w.take();
  return m;
}

core::Result<BlockReadRequest> decode_block_read_request(const net::Message& m) {
  if (m.type != kBlockReadRequest) return wrong_type("BlockReadRequest");
  net::Reader r(m.payload);
  BlockReadRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto codec = r.u8();
  if (!codec.is_ok()) return codec.status();
  if (codec.value() > 2) return core::data_loss("unknown compression codec");
  out.compression.codec = static_cast<Codec>(codec.value());
  auto bits = r.u8();
  if (!bits.is_ok()) return bits.status();
  out.compression.quant_bits = bits.value();
  return out;
}

net::Message encode_block_read_reply(const BlockReadReply& r) {
  net::Message m;
  m.type = kBlockReadReply;
  net::Writer w;
  w.u64(r.block);
  w.u8(r.compressed ? 1 : 0);
  w.u64(r.generation);
  w.bytes(r.data);
  m.payload = w.take();
  return m;
}

core::Result<BlockReadReply> decode_block_read_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kBlockReadReply) return wrong_type("BlockReadReply");
  net::Reader r(m.payload);
  BlockReadReply out;
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto compressed = r.u8();
  if (!compressed.is_ok()) return compressed.status();
  out.compressed = compressed.value() != 0;
  auto gen = r.u64();
  if (!gen.is_ok()) return gen.status();
  out.generation = gen.value();
  auto data = r.bytes();
  if (!data.is_ok()) return data.status();
  out.data = std::move(data).take();
  return out;
}

net::Message encode_block_write_request(const BlockWriteRequest& r) {
  net::Message m;
  m.type = kBlockWriteRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.u64(r.generation);
  w.bytes(r.data);
  m.payload = w.take();
  return m;
}

core::Result<BlockWriteRequest> decode_block_write_request(const net::Message& m) {
  if (m.type != kBlockWriteRequest) return wrong_type("BlockWriteRequest");
  net::Reader r(m.payload);
  BlockWriteRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto gen = r.u64();
  if (!gen.is_ok()) return gen.status();
  out.generation = gen.value();
  auto data = r.bytes();
  if (!data.is_ok()) return data.status();
  out.data = std::move(data).take();
  return out;
}

net::Message encode_block_write_reply(std::uint64_t block) {
  net::Message m;
  m.type = kBlockWriteReply;
  net::Writer w;
  w.u64(block);
  m.payload = w.take();
  return m;
}

core::Result<std::uint64_t> decode_block_write_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kBlockWriteReply) return wrong_type("BlockWriteReply");
  net::Reader r(m.payload);
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  return block.value();
}

net::Message encode_error_reply(const core::Status& status) {
  net::Message m;
  m.type = kErrorReply;
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(status.code()));
  w.str(status.message());
  m.payload = w.take();
  return m;
}

namespace {

void write_floors(net::Writer& w,
                  const std::vector<meta::GenerationFloor>& floors) {
  w.u32(static_cast<std::uint32_t>(floors.size()));
  for (const auto& f : floors) {
    w.str(f.dataset);
    w.u64(f.generation);
  }
}

core::Result<std::vector<meta::GenerationFloor>> read_floors(net::Reader& r) {
  auto n = r.u32();
  if (!n.is_ok()) return n.status();
  std::vector<meta::GenerationFloor> out;
  out.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    meta::GenerationFloor f;
    auto dataset = r.str();
    if (!dataset.is_ok()) return dataset.status();
    f.dataset = dataset.value();
    auto gen = r.u64();
    if (!gen.is_ok()) return gen.status();
    f.generation = gen.value();
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace

net::Message encode_heartbeat(const HeartbeatRequest& r) {
  net::Message m;
  m.type = kHeartbeat;
  net::Writer w;
  w.str(r.server.host);
  w.u32(r.server.port);
  w.u64(r.requests_served);
  write_floors(w, r.floors);
  m.payload = w.take();
  return m;
}

core::Result<HeartbeatRequest> decode_heartbeat(const net::Message& m) {
  if (m.type != kHeartbeat) return wrong_type("Heartbeat");
  net::Reader r(m.payload);
  HeartbeatRequest out;
  auto host = r.str();
  if (!host.is_ok()) return host.status();
  out.server.host = host.value();
  auto port = r.u32();
  if (!port.is_ok()) return port.status();
  out.server.port = static_cast<std::uint16_t>(port.value());
  auto served = r.u64();
  if (!served.is_ok()) return served.status();
  out.requests_served = served.value();
  auto floors = read_floors(r);
  if (!floors.is_ok()) return floors.status();
  out.floors = std::move(floors).take();
  return out;
}

net::Message encode_heartbeat_reply(
    const std::vector<meta::GenerationFloor>& floors) {
  net::Message m;
  m.type = kHeartbeatReply;
  net::Writer w;
  write_floors(w, floors);
  m.payload = w.take();
  return m;
}

core::Result<std::vector<meta::GenerationFloor>> decode_heartbeat_reply(
    const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kHeartbeatReply) return wrong_type("HeartbeatReply");
  // A pre-gossip master replies with an empty payload: no floors.
  if (m.payload.empty()) return std::vector<meta::GenerationFloor>{};
  net::Reader r(m.payload);
  return read_floors(r);
}

net::Message encode_failure_report(const FailureReport& r) {
  net::Message m;
  m.type = kFailureReport;
  net::Writer w;
  w.str(r.server.host);
  w.u32(r.server.port);
  w.str(r.dataset);
  w.u64(r.block);
  w.str(r.reason);
  m.payload = w.take();
  return m;
}

core::Result<FailureReport> decode_failure_report(const net::Message& m) {
  if (m.type != kFailureReport) return wrong_type("FailureReport");
  net::Reader r(m.payload);
  FailureReport out;
  auto host = r.str();
  if (!host.is_ok()) return host.status();
  out.server.host = host.value();
  auto port = r.u32();
  if (!port.is_ok()) return port.status();
  out.server.port = static_cast<std::uint16_t>(port.value());
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto reason = r.str();
  if (!reason.is_ok()) return reason.status();
  out.reason = reason.value();
  return out;
}

namespace {

void write_address(net::Writer& w, const ServerAddress& a) {
  w.str(a.host);
  w.u32(a.port);
}

core::Result<ServerAddress> read_address(net::Reader& r) {
  ServerAddress out;
  auto host = r.str();
  if (!host.is_ok()) return host.status();
  out.host = host.value();
  auto port = r.u32();
  if (!port.is_ok()) return port.status();
  out.port = static_cast<std::uint16_t>(port.value());
  return out;
}

}  // namespace

net::Message encode_ingest_write_request(const IngestWriteRequest& r) {
  net::Message m;
  m.type = kIngestWriteRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.u64(r.generation);
  w.u8(static_cast<std::uint8_t>(r.ack_policy));
  w.bytes(r.data);
  w.u32(static_cast<std::uint32_t>(r.chain.size()));
  for (const auto& a : r.chain) write_address(w, a);
  w.u32(static_cast<std::uint32_t>(r.deltas.size()));
  for (const auto& d : r.deltas) {
    write_address(w, d.server);
    w.str(d.dataset);
    w.u64(d.block);
    w.u8(d.coefficient);
  }
  m.payload = w.take();
  return m;
}

core::Result<IngestWriteRequest> decode_ingest_write_request(
    const net::Message& m) {
  if (m.type != kIngestWriteRequest) return wrong_type("IngestWriteRequest");
  net::Reader r(m.payload);
  IngestWriteRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto gen = r.u64();
  if (!gen.is_ok()) return gen.status();
  out.generation = gen.value();
  auto policy = r.u8();
  if (!policy.is_ok()) return policy.status();
  if (policy.value() > 2) return core::data_loss("unknown ack policy");
  out.ack_policy = static_cast<ingest::AckPolicy>(policy.value());
  auto data = r.bytes();
  if (!data.is_ok()) return data.status();
  out.data = std::move(data).take();
  auto chain_n = r.u32();
  if (!chain_n.is_ok()) return chain_n.status();
  for (std::uint32_t i = 0; i < chain_n.value(); ++i) {
    auto addr = read_address(r);
    if (!addr.is_ok()) return addr.status();
    out.chain.push_back(std::move(addr).take());
  }
  auto delta_n = r.u32();
  if (!delta_n.is_ok()) return delta_n.status();
  for (std::uint32_t i = 0; i < delta_n.value(); ++i) {
    IngestWriteRequest::DeltaTarget d;
    auto addr = read_address(r);
    if (!addr.is_ok()) return addr.status();
    d.server = std::move(addr).take();
    auto ds = r.str();
    if (!ds.is_ok()) return ds.status();
    d.dataset = ds.value();
    auto b = r.u64();
    if (!b.is_ok()) return b.status();
    d.block = b.value();
    auto coef = r.u8();
    if (!coef.is_ok()) return coef.status();
    d.coefficient = coef.value();
    out.deltas.push_back(std::move(d));
  }
  return out;
}

net::Message encode_ingest_write_reply(const IngestWriteReply& r) {
  net::Message m;
  m.type = kIngestWriteReply;
  net::Writer w;
  w.u64(r.block);
  w.u64(r.generation);
  w.u32(r.acks);
  w.u32(static_cast<std::uint32_t>(r.missed.size()));
  for (const auto& a : r.missed) write_address(w, a);
  m.payload = w.take();
  return m;
}

core::Result<IngestWriteReply> decode_ingest_write_reply(
    const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kIngestWriteReply) return wrong_type("IngestWriteReply");
  net::Reader r(m.payload);
  IngestWriteReply out;
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto gen = r.u64();
  if (!gen.is_ok()) return gen.status();
  out.generation = gen.value();
  auto acks = r.u32();
  if (!acks.is_ok()) return acks.status();
  out.acks = acks.value();
  auto n = r.u32();
  if (!n.is_ok()) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto addr = read_address(r);
    if (!addr.is_ok()) return addr.status();
    out.missed.push_back(std::move(addr).take());
  }
  return out;
}

net::Message encode_parity_delta_request(const ParityDeltaRequest& r) {
  net::Message m;
  m.type = kParityDeltaRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.u8(r.coefficient);
  w.bytes(r.delta);
  m.payload = w.take();
  return m;
}

core::Result<ParityDeltaRequest> decode_parity_delta_request(
    const net::Message& m) {
  if (m.type != kParityDeltaRequest) return wrong_type("ParityDeltaRequest");
  net::Reader r(m.payload);
  ParityDeltaRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto coef = r.u8();
  if (!coef.is_ok()) return coef.status();
  out.coefficient = coef.value();
  auto delta = r.bytes();
  if (!delta.is_ok()) return delta.status();
  out.delta = std::move(delta).take();
  return out;
}

net::Message encode_parity_delta_reply(const ParityDeltaReply& r) {
  net::Message m;
  m.type = kParityDeltaReply;
  net::Writer w;
  w.u64(r.block);
  w.u64(r.generation);
  m.payload = w.take();
  return m;
}

core::Result<ParityDeltaReply> decode_parity_delta_reply(
    const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kParityDeltaReply) return wrong_type("ParityDeltaReply");
  net::Reader r(m.payload);
  ParityDeltaReply out;
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto gen = r.u64();
  if (!gen.is_ok()) return gen.status();
  out.generation = gen.value();
  return out;
}

net::Message encode_fixup_report(const FixupReport& r) {
  net::Message m;
  m.type = kFixupReport;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.block);
  w.u64(r.generation);
  write_address(w, r.target);
  m.payload = w.take();
  return m;
}

core::Result<FixupReport> decode_fixup_report(const net::Message& m) {
  if (m.type != kFixupReport) return wrong_type("FixupReport");
  net::Reader r(m.payload);
  FixupReport out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto block = r.u64();
  if (!block.is_ok()) return block.status();
  out.block = block.value();
  auto gen = r.u64();
  if (!gen.is_ok()) return gen.status();
  out.generation = gen.value();
  auto addr = read_address(r);
  if (!addr.is_ok()) return addr.status();
  out.target = std::move(addr).take();
  return out;
}

net::Message encode_stats_request() {
  net::Message m;
  m.type = kStatsRequest;
  return m;
}

net::Message encode_stats_reply(const std::string& text) {
  net::Message m;
  m.type = kStatsReply;
  net::Writer w;
  w.str(text);
  m.payload = w.take();
  return m;
}

core::Result<std::string> decode_stats_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kStatsReply) return wrong_type("StatsReply");
  net::Reader r(m.payload);
  auto text = r.str();
  if (!text.is_ok()) return text.status();
  return text.value();
}

net::Message encode_span_export_request(const SpanExportBatch& b) {
  net::Message m;
  m.type = kSpanExportRequest;
  net::Writer w;
  w.str(b.host);
  w.f64(b.sent_at);
  w.u32(static_cast<std::uint32_t>(b.spans.size()));
  for (const obs::SpanRecord& s : b.spans) {
    w.u64(s.trace_id);
    w.u64(s.span_id);
    w.u64(s.parent_span_id);
    w.str(s.host);
    w.str(s.stage);
    w.f64(s.start);
    w.f64(s.duration);
    w.f64(s.queue_seconds);
    w.u64(s.bytes);
  }
  m.payload = w.take();
  return m;
}

core::Result<SpanExportBatch> decode_span_export_request(
    const net::Message& m) {
  if (m.type != kSpanExportRequest) return wrong_type("SpanExportRequest");
  net::Reader r(m.payload);
  SpanExportBatch out;
  auto host = r.str();
  if (!host.is_ok()) return host.status();
  out.host = host.value();
  auto sent_at = r.f64();
  if (!sent_at.is_ok()) return sent_at.status();
  out.sent_at = sent_at.value();
  auto count = r.u32();
  if (!count.is_ok()) return count.status();
  out.spans.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    obs::SpanRecord s;
    auto trace = r.u64();
    if (!trace.is_ok()) return trace.status();
    s.trace_id = trace.value();
    auto span = r.u64();
    if (!span.is_ok()) return span.status();
    s.span_id = span.value();
    auto parent = r.u64();
    if (!parent.is_ok()) return parent.status();
    s.parent_span_id = parent.value();
    auto shost = r.str();
    if (!shost.is_ok()) return shost.status();
    s.host = shost.value();
    auto stage = r.str();
    if (!stage.is_ok()) return stage.status();
    s.stage = stage.value();
    auto start = r.f64();
    if (!start.is_ok()) return start.status();
    s.start = start.value();
    auto duration = r.f64();
    if (!duration.is_ok()) return duration.status();
    s.duration = duration.value();
    auto queue = r.f64();
    if (!queue.is_ok()) return queue.status();
    s.queue_seconds = queue.value();
    auto bytes = r.u64();
    if (!bytes.is_ok()) return bytes.status();
    s.bytes = bytes.value();
    out.spans.push_back(std::move(s));
  }
  return out;
}

net::Message encode_span_export_reply(std::uint64_t accepted) {
  net::Message m;
  m.type = kSpanExportReply;
  net::Writer w;
  w.u64(accepted);
  m.payload = w.take();
  return m;
}

core::Result<std::uint64_t> decode_span_export_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kSpanExportReply) return wrong_type("SpanExportReply");
  net::Reader r(m.payload);
  auto accepted = r.u64();
  if (!accepted.is_ok()) return accepted.status();
  return accepted.value();
}

net::Message encode_profile_request() {
  net::Message m;
  m.type = kProfileRequest;
  return m;
}

net::Message encode_profile_reply(const std::string& text) {
  net::Message m;
  m.type = kProfileReply;
  net::Writer w;
  w.str(text);
  m.payload = w.take();
  return m;
}

core::Result<std::string> decode_profile_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kProfileReply) return wrong_type("ProfileReply");
  net::Reader r(m.payload);
  auto text = r.str();
  if (!text.is_ok()) return text.status();
  return text.value();
}

net::Message encode_trace_report_request() {
  net::Message m;
  m.type = kTraceReportRequest;
  return m;
}

net::Message encode_trace_report_reply(const std::string& text) {
  net::Message m;
  m.type = kTraceReportReply;
  net::Writer w;
  w.str(text);
  m.payload = w.take();
  return m;
}

core::Result<std::string> decode_trace_report_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kTraceReportReply) return wrong_type("TraceReportReply");
  net::Reader r(m.payload);
  auto text = r.str();
  if (!text.is_ok()) return text.status();
  return text.value();
}

core::Status decode_error_reply(const net::Message& m) {
  if (m.type != kErrorReply) return core::Status::ok();
  net::Reader r(m.payload);
  auto code = r.u32();
  auto msg = r.str();
  if (!code.is_ok() || !msg.is_ok()) {
    return core::data_loss("malformed error reply");
  }
  return core::Status(static_cast<core::StatusCode>(code.value()), msg.value());
}

// ---- sharded metadata plane -------------------------------------------------

namespace {

void write_log_entry(net::Writer& w, const meta::LogEntry& e) {
  w.u64(e.epoch);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.str(e.dataset);
  w.u64(e.layout.total_bytes);
  w.u32(e.layout.block_bytes);
  w.u32(e.layout.stripe_blocks);
  w.u32(e.layout.server_count);
  w.u32(e.placement.replication_factor);
  w.u32(e.placement.ring_vnodes);
  w.u32(e.placement.ec.data_slices);
  w.u32(e.placement.ec.parity_slices);
  w.u32(static_cast<std::uint32_t>(e.servers.size()));
  for (const auto& s : e.servers) {
    w.str(s.host);
    w.u32(s.port);
  }
}

core::Result<meta::LogEntry> read_log_entry(net::Reader& r) {
  meta::LogEntry e;
  auto epoch = r.u64();
  if (!epoch.is_ok()) return epoch.status();
  e.epoch = epoch.value();
  auto kind = r.u8();
  if (!kind.is_ok()) return kind.status();
  if (kind.value() > 1) return core::data_loss("unknown log entry kind");
  e.kind = static_cast<meta::EntryKind>(kind.value());
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  e.dataset = dataset.value();
  auto total = r.u64();
  if (!total.is_ok()) return total.status();
  e.layout.total_bytes = total.value();
  auto bb = r.u32();
  if (!bb.is_ok()) return bb.status();
  e.layout.block_bytes = bb.value();
  auto sb = r.u32();
  if (!sb.is_ok()) return sb.status();
  e.layout.stripe_blocks = sb.value();
  auto sc = r.u32();
  if (!sc.is_ok()) return sc.status();
  e.layout.server_count = sc.value();
  auto rf = r.u32();
  if (!rf.is_ok()) return rf.status();
  e.placement.replication_factor = rf.value();
  auto vnodes = r.u32();
  if (!vnodes.is_ok()) return vnodes.status();
  e.placement.ring_vnodes = vnodes.value();
  auto ec_k = r.u32();
  if (!ec_k.is_ok()) return ec_k.status();
  e.placement.ec.data_slices = ec_k.value();
  auto ec_m = r.u32();
  if (!ec_m.is_ok()) return ec_m.status();
  e.placement.ec.parity_slices = ec_m.value();
  auto n = r.u32();
  if (!n.is_ok()) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto addr = read_address(r);
    if (!addr.is_ok()) return addr.status();
    e.servers.push_back(std::move(addr).take());
  }
  return e;
}

}  // namespace

net::Message encode_placement_delta_request(const PlacementDeltaRequest& r) {
  net::Message m;
  m.type = kPlacementDeltaRequest;
  net::Writer w;
  w.str(r.dataset);
  w.u64(r.since_epoch);
  m.payload = w.take();
  return m;
}

core::Result<PlacementDeltaRequest> decode_placement_delta_request(
    const net::Message& m) {
  if (m.type != kPlacementDeltaRequest) {
    return wrong_type("PlacementDeltaRequest");
  }
  net::Reader r(m.payload);
  PlacementDeltaRequest out;
  auto dataset = r.str();
  if (!dataset.is_ok()) return dataset.status();
  out.dataset = dataset.value();
  auto since = r.u64();
  if (!since.is_ok()) return since.status();
  out.since_epoch = since.value();
  return out;
}

net::Message encode_placement_delta_reply(const PlacementDeltaReply& r) {
  net::Message m;
  m.type = kPlacementDeltaReply;
  net::Writer w;
  w.u8(r.snapshot ? 1 : 0);
  w.u64(r.epoch);
  w.u32(static_cast<std::uint32_t>(r.entries.size()));
  for (const auto& e : r.entries) write_log_entry(w, e);
  m.payload = w.take();
  return m;
}

core::Result<PlacementDeltaReply> decode_placement_delta_reply(
    const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kPlacementDeltaReply) return wrong_type("PlacementDeltaReply");
  net::Reader r(m.payload);
  PlacementDeltaReply out;
  auto snapshot = r.u8();
  if (!snapshot.is_ok()) return snapshot.status();
  out.snapshot = snapshot.value() != 0;
  auto epoch = r.u64();
  if (!epoch.is_ok()) return epoch.status();
  out.epoch = epoch.value();
  auto n = r.u32();
  if (!n.is_ok()) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto entry = read_log_entry(r);
    if (!entry.is_ok()) return entry.status();
    out.entries.push_back(std::move(entry).take());
  }
  return out;
}

net::Message encode_meta_append_request(const MetaAppendRequest& r) {
  net::Message m;
  m.type = kMetaAppendRequest;
  net::Writer w;
  write_log_entry(w, r.entry);
  m.payload = w.take();
  return m;
}

core::Result<MetaAppendRequest> decode_meta_append_request(
    const net::Message& m) {
  if (m.type != kMetaAppendRequest) return wrong_type("MetaAppendRequest");
  net::Reader r(m.payload);
  auto entry = read_log_entry(r);
  if (!entry.is_ok()) return entry.status();
  MetaAppendRequest out;
  out.entry = std::move(entry).take();
  return out;
}

net::Message encode_meta_append_reply(const MetaAppendReply& r) {
  net::Message m;
  m.type = kMetaAppendReply;
  net::Writer w;
  w.u8(r.accepted ? 1 : 0);
  w.u64(r.follower_epoch);
  m.payload = w.take();
  return m;
}

core::Result<MetaAppendReply> decode_meta_append_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kMetaAppendReply) return wrong_type("MetaAppendReply");
  net::Reader r(m.payload);
  MetaAppendReply out;
  auto accepted = r.u8();
  if (!accepted.is_ok()) return accepted.status();
  out.accepted = accepted.value() != 0;
  auto epoch = r.u64();
  if (!epoch.is_ok()) return epoch.status();
  out.follower_epoch = epoch.value();
  return out;
}

net::Message encode_meta_status_request() {
  net::Message m;
  m.type = kMetaStatusRequest;
  return m;
}

net::Message encode_meta_status_reply(const MetaStatus& s) {
  net::Message m;
  m.type = kMetaStatusReply;
  net::Writer w;
  w.u32(s.shard_id);
  w.u32(s.shard_count);
  w.u8(s.is_leader ? 1 : 0);
  w.u64(s.epoch);
  write_address(w, s.address);
  w.u64(s.datasets);
  w.u64(s.delta_opens);
  w.u64(s.snapshot_opens);
  w.u64(s.forwarded_opens);
  w.u64(s.leader_elections);
  m.payload = w.take();
  return m;
}

core::Result<MetaStatus> decode_meta_status_reply(const net::Message& m) {
  if (m.type == kErrorReply) return decode_error_reply(m);
  if (m.type != kMetaStatusReply) return wrong_type("MetaStatusReply");
  net::Reader r(m.payload);
  MetaStatus out;
  auto shard = r.u32();
  if (!shard.is_ok()) return shard.status();
  out.shard_id = shard.value();
  auto count = r.u32();
  if (!count.is_ok()) return count.status();
  out.shard_count = count.value();
  auto leader = r.u8();
  if (!leader.is_ok()) return leader.status();
  out.is_leader = leader.value() != 0;
  auto epoch = r.u64();
  if (!epoch.is_ok()) return epoch.status();
  out.epoch = epoch.value();
  auto addr = read_address(r);
  if (!addr.is_ok()) return addr.status();
  out.address = std::move(addr).take();
  auto datasets = r.u64();
  if (!datasets.is_ok()) return datasets.status();
  out.datasets = datasets.value();
  auto delta = r.u64();
  if (!delta.is_ok()) return delta.status();
  out.delta_opens = delta.value();
  auto snapshot = r.u64();
  if (!snapshot.is_ok()) return snapshot.status();
  out.snapshot_opens = snapshot.value();
  auto forwarded = r.u64();
  if (!forwarded.is_ok()) return forwarded.status();
  out.forwarded_opens = forwarded.value();
  auto elections = r.u64();
  if (!elections.is_ok()) return elections.status();
  out.leader_elections = elections.value();
  return out;
}

}  // namespace visapult::dpss
