// DPSS block server.
//
// "Typical DPSS implementations consist of several low-cost workstations as
// DPSS block servers, each with several disk controllers, and several disks
// on each controller" (section 3.5).  A BlockServer stores logical blocks
// for any number of datasets and services read/write requests arriving over
// ByteStream connections, one service thread per connection.
//
// The DiskModel captures the physical substrate we don't have: each server
// owns `disks` independent spindles; a block read costs a seek plus
// transfer, and concurrent requests are spread across spindles.  The model
// is used two ways: (1) the virtual-time simulator asks it for service
// times when replaying paper-scale campaigns; (2) optionally, a live server
// can sleep for the modelled duration ("throttle mode") so real-transport
// deployments show DPSS-like scaling.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "core/rng.h"
#include "core/status.h"
#include "net/stream.h"
#include "netlog/logger.h"

namespace visapult::dpss {

struct DiskModel {
  int disks = 4;                       // spindles on this server
  double seek_seconds = 0.008;         // avg seek+rotation per request
  double disk_bytes_per_sec = 12e6;    // per-spindle media rate (ca. 2000)

  // Expected service time for one block read when `concurrent` requests are
  // in flight at this server: requests beyond the spindle count queue.
  double block_service_seconds(std::size_t block_bytes, int concurrent = 1) const;

  // Aggregate streaming bandwidth of the server (all spindles busy,
  // seek amortised over a block).
  double streaming_bytes_per_sec(std::size_t block_bytes) const;
};

class BlockServer {
 public:
  explicit BlockServer(std::string name, DiskModel disk = {},
                       bool throttle = false);
  ~BlockServer();

  const std::string& name() const { return name_; }
  const DiskModel& disk_model() const { return disk_; }

  // ---- local block store (also used directly by the ingest path) ----
  core::Status put_block(const std::string& dataset, std::uint64_t block,
                         std::vector<std::uint8_t> data);
  core::Result<std::vector<std::uint8_t>> get_block(const std::string& dataset,
                                                    std::uint64_t block) const;
  std::size_t block_count(const std::string& dataset) const;
  std::size_t total_bytes() const;

  // ---- service ----
  // Spawn a thread servicing requests on this connection until peer close.
  void serve(net::StreamPtr stream);
  // Stop all service threads (closes their streams).
  void shutdown();

  // Number of requests served (for load-balance verification).
  std::uint64_t requests_served() const { return requests_.load(); }

  // Attach a NetLogger for per-request events (optional).
  void set_logger(std::shared_ptr<netlog::NetLogger> logger) {
    logger_ = std::move(logger);
  }

 private:
  void service_loop(net::StreamPtr stream);

  std::string name_;
  DiskModel disk_;
  bool throttle_;
  mutable std::mutex mu_;
  // dataset -> block -> bytes
  std::map<std::string, std::map<std::uint64_t, std::vector<std::uint8_t>>> store_;
  std::vector<std::thread> threads_;
  std::vector<net::StreamPtr> streams_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<int> in_flight_{0};
  std::atomic<bool> stopping_{false};
  std::shared_ptr<netlog::NetLogger> logger_;
};

}  // namespace visapult::dpss
