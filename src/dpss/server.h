// DPSS block server.
//
// "Typical DPSS implementations consist of several low-cost workstations as
// DPSS block servers, each with several disk controllers, and several disks
// on each controller" (section 3.5).  A BlockServer stores logical blocks
// for any number of datasets and services read/write requests arriving over
// ByteStream connections, one service thread per connection.
//
// The DiskModel captures the physical substrate we don't have: each server
// owns `disks` independent spindles; a block read costs a seek plus
// transfer, and concurrent requests are spread across spindles.  The model
// is used two ways: (1) the virtual-time simulator asks it for service
// times when replaying paper-scale campaigns; (2) optionally, a live server
// can sleep for the modelled duration ("throttle mode") so real-transport
// deployments show DPSS-like scaling.
//
// In front of the modelled disks sits the memory tier that makes the DPSS a
// *cache* (the paper's own term for it): a cache::BlockCache services warm
// block reads without any disk charge, misses admit-on-fill, writes are
// write-through, and a stripe-aware prefetcher streams predicted blocks
// from the modelled disks into memory ahead of the client.
//
// The ingest pipeline (PR 5) makes the server a *mutation* participant,
// not just a store: every stored block carries a generation stamp (an
// overwrite re-keys the memory tier, so a stale entry can never satisfy a
// lookup for the new stamp), an IngestWriteRequest is applied locally and
// pipelined server-to-server down the remaining replica chain via the
// peer connector, and a ParityDeltaRequest folds a shipped GF delta into a
// stored parity block with the bulk codec::gf256::delta_apply kernel.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_cache.h"
#include "cache/prefetch.h"
#include "core/clock.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "dpss/protocol.h"
#include "net/stream.h"
#include "netlog/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace visapult::dpss {

struct DiskModel {
  int disks = 4;                       // spindles on this server
  double seek_seconds = 0.008;         // avg seek+rotation per request
  double disk_bytes_per_sec = 12e6;    // per-spindle media rate (ca. 2000)

  // Expected service time for one block read when `concurrent` requests are
  // in flight at this server: requests beyond the spindle count queue.
  double block_service_seconds(std::size_t block_bytes, int concurrent = 1) const;

  // Aggregate streaming bandwidth of the server (all spindles busy,
  // seek amortised over a block).
  double streaming_bytes_per_sec(std::size_t block_bytes) const;
};

// Memory-tier configuration for a block server.
struct ServerCacheConfig {
  bool enabled = true;
  std::size_t capacity_bytes = 64ull << 20;
  int shards = 8;
  cache::PolicyKind policy = cache::PolicyKind::kLru;
  // TinyLFU admission gate: scans cannot flush the hot set (admission.h).
  bool tinylfu_admission = false;
  // Stripe-aware read-ahead from the modelled disks into the memory tier.
  bool prefetch = true;
  cache::PrefetchConfig prefetch_config;
  int prefetch_threads = 1;
};

class BlockServer {
 public:
  explicit BlockServer(std::string name, DiskModel disk = {},
                       bool throttle = false,
                       ServerCacheConfig cache_config = ServerCacheConfig());
  ~BlockServer();

  const std::string& name() const { return name_; }
  const DiskModel& disk_model() const { return disk_; }

  // ---- local block store (also used directly by the ingest path) ----
  // Writes are write-through: the block lands on the modelled disks and is
  // admitted to the memory tier.  put_block preserves the block's current
  // generation (initial ingest, migration and rebalance fills);
  // put_block_at stamps the write with an explicit generation and rejects
  // it as stale (kFailedPrecondition) when the stored block already
  // carries a newer one -- the property that lets a late fixup never roll
  // a replica back.
  core::Status put_block(const std::string& dataset, std::uint64_t block,
                         std::vector<std::uint8_t> data);
  core::Status put_block_at(const std::string& dataset, std::uint64_t block,
                            std::vector<std::uint8_t> data,
                            std::uint64_t generation);
  core::Result<std::vector<std::uint8_t>> get_block(const std::string& dataset,
                                                    std::uint64_t block) const;
  // Block bytes together with their generation stamp (fixup sources and
  // generation-preserving rebalance copies).
  struct StampedBlock {
    std::vector<std::uint8_t> data;
    std::uint64_t generation = 0;
  };
  core::Result<StampedBlock> stamped_block(const std::string& dataset,
                                           std::uint64_t block) const;
  // Generation of a stored block; 0 when absent or never overwritten.
  std::uint64_t block_generation(const std::string& dataset,
                                 std::uint64_t block) const;
  // Highest generation stored for `dataset` (tool/stats probe).
  std::uint64_t max_generation(const std::string& dataset) const;
  // Datasets with at least one stored block, in name order (the gossip
  // heartbeat enumerates these to build generation floors).
  std::vector<std::string> dataset_names() const;
  // Remove a block this server no longer owns (a Rebalancer drop plan);
  // evicts the memory-tier copy too.  Returns false when absent.
  bool drop_block(const std::string& dataset, std::uint64_t block);
  // Forget every stored block and empty the memory tier: a disk loss (the
  // failure mode EC reconstruction exists for).  The server object itself
  // survives, so a later rebalance can write to it again.
  void wipe();
  bool has_block(const std::string& dataset, std::uint64_t block) const;
  std::size_t block_count(const std::string& dataset) const;
  std::size_t total_bytes() const;

  // ---- ingest pipeline ----
  // Transport used to reach peer servers when forwarding chain writes and
  // parity deltas; wired by the deployment before traffic starts.
  void set_peer_connector(Connector connector);
  // Chain hops this server forwarded downstream (requests it relayed).
  std::uint64_t chain_forwards() const { return chain_forwards_.value(); }
  // Parity-delta kernels applied to stored parity blocks.
  std::uint64_t parity_deltas_applied() const {
    return parity_deltas_.value();
  }

  // ---- service ----
  // Spawn a thread servicing requests on this connection until peer close.
  void serve(net::StreamPtr stream);
  // Stop all service threads (closes their streams).
  void shutdown();

  // One request in, one reply out -- the dispatch shared by the blocking
  // service loop and the reactor-backed transport, so both behave
  // identically by construction.  `conn_id` identifies the client
  // connection (allocate_conn_id()) for the per-connection stride
  // detector.  Thread-safe.
  net::Message handle_request(net::Message&& msg, std::uint64_t conn_id);
  // Connection ids for callers driving handle_request() directly.
  std::uint64_t allocate_conn_id() { return next_conn_id_.fetch_add(1) + 1; }

  // Per-request read timeouts the transport observed on this server's
  // connections (stalled clients shed by the reactor or the blocking shim).
  void note_read_timeout() { read_timeouts_.inc(); }
  std::uint64_t read_timeouts() const { return read_timeouts_.value(); }

  // Number of requests served (for load-balance verification).
  std::uint64_t requests_served() const { return requests_.value(); }

  // This server's metrics plane: the request counters above plus the
  // read/write latency histograms, rendered by the kStatsRequest handler.
  // The deployment registers transport collectors (reactor loop stats,
  // front-door gauges) here too.
  obs::MetricsRegistry& metrics_registry() { return registry_; }

  // Attach a NetLogger for per-request and cache events (optional).  A
  // traced request (non-zero trace id in the frame header) emits
  // DPSS_SERV_IN/OUT lifeline events through it.
  void set_logger(std::shared_ptr<netlog::NetLogger> logger);

  // ---- memory tier ----
  bool cache_enabled() const { return cache_ != nullptr; }
  // Counters plus occupancy; prefetch issues included.  Zero-value
  // snapshot when the cache is disabled.
  cache::MetricsSnapshot cache_metrics() const;
  // Empty the memory tier and forget learned access patterns (a cold
  // restart; the block store itself is unaffected).
  void drop_cache();
  // DiskModel service time charged so far, in seconds: every miss and
  // prefetch fill accumulates here, warm hits never do.  This is how tests
  // and benches observe "warm reads bypass the disk" without wall-clock
  // timing.
  double modeled_disk_seconds() const;
  // Clock used for throttle-mode sleeps; tests inject a virtual clock.
  void set_clock(core::Clock* clock) { clock_ = clock; }

 private:
  struct Stored {
    std::vector<std::uint8_t> data;
    std::uint64_t generation = 0;
  };
  // One pooled connection per peer; its mutex serialises the pipelined
  // request/reply pairs of concurrent service threads forwarding to the
  // same peer.  Per-link utilization accounting (exchanges + payload
  // bytes both ways) rides under the same mutex and surfaces as labeled
  // dpss_util_peer_* samples at exposition time.
  struct PeerLink {
    std::mutex mu;
    net::StreamPtr stream;
    std::uint64_t exchanges = 0;
    std::uint64_t bytes = 0;
    std::uint64_t failures = 0;
  };

  void service_loop(net::StreamPtr stream);
  // Cache-tier read: warm hits skip the DiskModel entirely; misses charge
  // the model (sleeping in throttle mode), admit-on-fill, and notify the
  // prefetcher.  `conn_id` identifies the client connection so concurrent
  // PEs' interleaved strides are detected independently.  `generation`
  // receives the served bytes' stamp.
  core::Result<std::vector<std::uint8_t>> read_block_serviced(
      const std::string& dataset, std::uint64_t block, int concurrent,
      std::uint64_t conn_id, bool* cache_hit, std::uint64_t* generation);
  // Prefetch path: stream one predicted block from the modelled disks into
  // the memory tier.
  void prefetch_fill(const std::string& dataset, std::uint64_t block);
  double charge_disk(std::size_t block_bytes, int concurrent);
  // Store + re-key the memory tier under mu_.  generation == 0 allocates
  // current + 1 when `bump` (ingest writes), else preserves the current
  // stamp (legacy put_block).  Returns the generation the block now
  // carries, or kFailedPrecondition for a stale explicit stamp.  When
  // `replaced` is set it receives the bytes being overwritten, captured
  // under the same lock (the parity-delta base).
  core::Result<std::uint64_t> apply_write(
      const std::string& dataset, std::uint64_t block,
      std::vector<std::uint8_t> data, std::uint64_t generation, bool bump,
      std::vector<std::uint8_t>* replaced = nullptr);
  // Ingest handlers (service_loop dispatch).  `trace` is the incoming
  // request's context: forwarded chain hops and parity deltas travel under
  // the same trace with fresh span ids.
  net::Message handle_ingest_write(IngestWriteRequest&& req,
                                   const obs::TraceContext& trace);
  net::Message handle_parity_delta(ParityDeltaRequest&& req);
  // Reach (or establish) the pooled link to `addr` in lane `lane`.
  std::shared_ptr<PeerLink> peer_link(const ServerAddress& addr,
                                      std::size_t lane);
  // One request/reply exchange on a peer link; a wire failure drops the
  // pooled stream so the next attempt reconnects.
  //
  // `lane` must be the number of nested peer exchanges the RECEIVING
  // handler will itself perform (a chain forward carrying a tail of N more
  // hops is lane N; a parity delta or terminal hop is lane 0).  Links are
  // pooled per (peer, lane) and serialized by the link mutex while the
  // reply is awaited, so an exchange in lane N only ever waits on lane
  // N-1 completions -- the wait graph is ordered by lane and cannot cycle.
  // Folding every lane into one pooled connection deadlocks under
  // concurrent chain writes: a terminal hop queues behind a mid-chain
  // exchange holding the shared link, which is itself waiting on another
  // terminal hop queued behind another shared link, around the ring.
  core::Result<net::Message> peer_exchange(const ServerAddress& addr,
                                           const net::Message& request,
                                           std::size_t lane);

  std::string name_;
  DiskModel disk_;
  bool throttle_;
  mutable std::mutex mu_;
  // dataset -> block -> stamped bytes
  std::map<std::string, std::map<std::uint64_t, Stored>> store_;
  std::vector<std::thread> threads_;
  std::vector<net::StreamPtr> streams_;
  // The metrics plane.  Instruments are cached references (stable for the
  // registry's lifetime) so the hot path never does a by-name lookup;
  // registry_ must precede them for initialization order.
  obs::MetricsRegistry registry_;
  obs::Counter& requests_;
  obs::Counter& read_timeouts_;
  obs::Counter& chain_forwards_;
  obs::Counter& parity_deltas_;
  obs::Gauge& in_flight_;
  obs::Histogram& read_seconds_;
  obs::Histogram& write_seconds_;
  std::atomic<std::uint64_t> next_conn_id_{0};
  std::atomic<bool> stopping_{false};
  Connector peer_connector_;
  std::mutex peer_mu_;
  std::map<std::string, std::shared_ptr<PeerLink>> peers_;
  std::shared_ptr<netlog::NetLogger> logger_;
  core::Clock* clock_ = &core::global_real_clock();
  std::atomic<std::uint64_t> modeled_disk_micros_{0};
  ServerCacheConfig cache_config_;
  // Teardown order matters: the prefetcher drains its in-flight fills
  // (which touch cache_ and store_) before the cache and pool go away, so
  // it is declared last.
  std::unique_ptr<cache::BlockCache> cache_;
  std::unique_ptr<core::ThreadPool> prefetch_pool_;
  std::unique_ptr<cache::Prefetcher> prefetcher_;
};

}  // namespace visapult::dpss
