// DPSS client library.
//
// "The application interface to the DPSS cache supports a variety of I/O
// semantics, including Unix-like I/O semantics, through an easy-to-use
// client API library (e.g., dpssOpen(), dpssRead(), dpssWrite(),
// dpssLSeek(), dpssClose()).  The DPSS client library is multi-threaded,
// where the number of client threads is equal to the number of DPSS
// servers." (section 3.5)
//
// DpssClient talks to the master to resolve a dataset, then DpssFile opens
// one connection *per block server* and fans block requests out with one
// worker thread per server -- the client-side parallelism Visapult's
// back-end PEs leverage for their parallel loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "dpss/protocol.h"
#include "net/stream.h"

namespace visapult::dpss {

// Opens a transport to a server address.  Pipe deployments and TCP
// deployments provide different connectors; the client is agnostic.
using Connector =
    std::function<core::Result<net::StreamPtr>(const ServerAddress&)>;

class DpssFile;

class DpssClient {
 public:
  // `master` is an established connection to the DPSS master.
  DpssClient(net::StreamPtr master, Connector connector)
      : master_(std::move(master)), connector_(std::move(connector)) {}

  // dpssOpen(): resolve the dataset and connect to all of its servers.
  core::Result<std::unique_ptr<DpssFile>> open(const std::string& dataset,
                                               const std::string& auth_token = "");

 private:
  net::StreamPtr master_;
  Connector connector_;
};

enum class Whence { kSet, kCur, kEnd };

class DpssFile {
 public:
  DpssFile(std::string dataset, DatasetLayout layout,
           std::vector<net::StreamPtr> server_streams);
  ~DpssFile();

  const DatasetLayout& layout() const { return layout_; }
  std::uint64_t size() const { return layout_.total_bytes; }
  int server_count() const { return static_cast<int>(servers_.size()); }

  // dpssLSeek(): returns the new offset, or < 0 on bad seek.
  std::int64_t lseek(std::int64_t offset, Whence whence = Whence::kSet);
  std::uint64_t tell() const { return offset_; }

  // dpssRead(): read up to `len` bytes at the current offset, advancing it.
  // Short reads happen only at end of dataset.  Blocks are fetched from all
  // owning servers in parallel (one thread per server).
  core::Result<std::size_t> read(std::uint8_t* buf, std::size_t len);

  // Positional read; does not move the file offset.
  core::Result<std::size_t> pread(std::uint8_t* buf, std::size_t len,
                                  std::uint64_t offset);

  // Scatter read: fetch several (offset, length) extents in one parallel
  // round -- the access pattern of a non-contiguous slab (vol::ByteRange
  // lists).  Extents must lie within the dataset.
  struct Extent {
    std::uint64_t offset = 0;
    std::size_t length = 0;
    std::uint8_t* dest = nullptr;
  };
  core::Status read_extents(const std::vector<Extent>& extents);

  // dpssWrite(): striped write-through at the current offset (ingest path).
  // Writes must be block-aligned and whole-block except the final block.
  core::Status write(const std::uint8_t* buf, std::size_t len);

  // dpssClose(): close all server connections.
  void close();

  // Total blocks fetched per server (load-balance introspection).
  std::vector<std::uint64_t> per_server_blocks() const;

  // Request wire-level compression on subsequent block reads (section 5
  // future work).  kLossyQuant trades accuracy for bandwidth; the error
  // bound is (block max - min) / (2^bits - 1) per value.
  void set_compression(const CompressionConfig& config) { compression_ = config; }
  const CompressionConfig& compression() const { return compression_; }

  // Bytes that actually crossed the wire vs raw bytes delivered, for
  // effective-bandwidth reporting.
  std::uint64_t wire_bytes_received() const { return wire_bytes_; }
  std::uint64_t raw_bytes_received() const { return raw_bytes_; }

 private:
  struct BlockRef {
    std::uint64_t block;
    std::uint64_t offset_in_block;
    std::size_t length;
    std::uint8_t* dest;
  };
  core::Status fetch_blocks(std::vector<BlockRef> refs);

  std::string dataset_;
  DatasetLayout layout_;
  std::vector<net::StreamPtr> servers_;
  std::vector<std::uint64_t> per_server_blocks_;
  std::uint64_t offset_ = 0;
  CompressionConfig compression_;
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> raw_bytes_{0};
};

}  // namespace visapult::dpss
