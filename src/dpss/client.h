// DPSS client library.
//
// "The application interface to the DPSS cache supports a variety of I/O
// semantics, including Unix-like I/O semantics, through an easy-to-use
// client API library (e.g., dpssOpen(), dpssRead(), dpssWrite(),
// dpssLSeek(), dpssClose()).  The DPSS client library is multi-threaded,
// where the number of client threads is equal to the number of DPSS
// servers." (section 3.5)
//
// DpssClient talks to the master to resolve a dataset, then DpssFile opens
// one connection *per block server* and fans block requests out with one
// worker thread per server -- the client-side parallelism Visapult's
// back-end PEs leverage for their parallel loads.
//
// Replica-aware datasets (OpenReply.ring_vnodes > 0) add failover: the
// client rebuilds the placement ring locally, ranks each block's replicas
// least-loaded-live-first from the master's snapshot, and when a server
// dies mid-read it marks the connection dead, reports the failure to the
// master, and retries the affected blocks against the next replica -- a
// scan over a replicated dataset survives a server kill with zero read
// errors.
//
// Erasure-coded datasets (OpenReply.ec enabled) degrade differently: every
// block has exactly one systematic owner (its data slice), so a dead
// server turns the read into a client-side *reconstruction* -- fetch any k
// surviving slices of the block's group (sibling data blocks plus parity
// from the "#parity" companion dataset) and decode.  The failure is
// reported to the master exactly as replica failover reports it.
//
// Writes go through the server-driven ingest pipeline (PR 5): each block
// is sent ONCE, to its primary, which chain-replicates it down the
// remaining replicas (or, erasure-coded, ships GF parity deltas to the
// parity owners) under the file's ack policy.  The reply's generation
// stamp keys the read-ahead tier and arms stale-read detection: a replica
// that answers with a generation older than one this file saw acknowledged
// is skipped and the block retried elsewhere.  Replicas the policy (or a
// mid-chain death) left behind are reported to the master's fixup queue.
//
// Sharded metadata (PR 9): enable_sharded_meta() routes each open to the
// master shard owning the dataset's hash, failing over across the shard's
// replicas (and, last resort, any other shard -- every shard forwards to
// the owner) when a master endpoint dies.  Opens carry the client's cached
// catalog epoch; a not_modified reply reuses the cached placement map
// without rebuilding the ring -- the delta-open fast path.  Dead master
// endpoints are reported to a surviving member so the cluster health
// tracker learns from client evidence.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "cache/prefetch.h"
#include "codec/reed_solomon.h"
#include "codec/stripe_layout.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "dpss/protocol.h"
#include "ingest/ack_policy.h"
#include "ingest/generation.h"
#include "meta/catalog.h"
#include "meta/shard_map.h"
#include "net/stream.h"
#include "netlog/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/placement_map.h"

namespace visapult::dpss {

// Invoked (off the failing read path, same thread) when a block fetch
// against a server fails and the client fails over; wired to a
// kFailureReport on the master connection by DpssClient.
using FailureReporter = std::function<void(const FailureReport&)>;

// Invoked when a write left a replica / parity owner behind (relaxed ack
// policy or mid-chain death); wired to a kFixupReport on the master
// connection, feeding the master's background fixup queue.
using FixupReporter = std::function<void(const FixupReport&)>;

class DpssFile;

class DpssClient {
 public:
  // `master` is an established connection to the DPSS master.
  DpssClient(net::StreamPtr master, Connector connector);

  // dpssOpen(): resolve the dataset and connect to its servers.  For a
  // replicated dataset a dead server is tolerated at open time (it is
  // marked down locally and reported); with a single copy every server
  // must connect, as before.
  core::Result<std::unique_ptr<DpssFile>> open(const std::string& dataset,
                                               const std::string& auth_token = "");

  // Live stats pulls (kStatsRequest): the master's registry, or one block
  // server's, rendered as Prometheus-style exposition text.
  core::Result<std::string> master_stats();
  core::Result<std::string> server_stats(const ServerAddress& addr);

  // Live profile pulls (kProfileRequest): the answering process's
  // flamegraph-collapsed stage profile.  Empty text when that process's
  // obs::Profiler is not sampling.
  core::Result<std::string> master_profile();
  core::Result<std::string> server_profile(const ServerAddress& addr);

  // Trace dataset opens: mint a trace per open(), stamp it on the wire
  // OpenRequest (so the master's MASTER_IN/OUT join the lifeline), and
  // emit DPSS_OPEN_START/END events through `logger`.
  void enable_open_tracing(std::shared_ptr<netlog::NetLogger> logger);

  // Ship finished span records to the master's SpanCollector
  // (kSpanExportRequest).  `host` names this producer for clock-skew
  // correction; `sent_at` is the producer's clock at call time.  Returns
  // the number of spans the collector accepted.
  core::Result<std::uint64_t> export_spans(
      const std::string& host, double sent_at,
      const std::vector<obs::SpanRecord>& spans);

  // Pull the collector's slowest-trace critical-path report plus alert
  // status (kTraceReportRequest).
  core::Result<std::string> trace_report();

  // ---- sharded metadata plane (PR 9) ----
  // Route opens across `shard_map`'s master shards by dataset hash.
  // `members[shard]` lists that shard's replica endpoints, leader first by
  // convention; opens try them in order and fall back to other shards'
  // members (any shard forwards to the owner).  `master_connector` dials
  // master endpoints (defaults to the block-server connector when null).
  void enable_sharded_meta(meta::ShardMap shard_map,
                           std::vector<std::vector<ServerAddress>> members,
                           Connector master_connector = nullptr);
  bool sharded_meta() const { return meta_->sharded; }

  // Catalog epoch the client's per-dataset cache holds (0 = never opened).
  std::uint64_t cached_epoch(const std::string& dataset) const;
  // Opens answered from the cache via a not_modified reply vs opens that
  // carried (and rebuilt) the full placement snapshot.
  std::uint64_t delta_opens() const;
  std::uint64_t snapshot_opens() const;
  // Master endpoints this client failed over past, and how many of those
  // deaths it reported to a surviving member (satellite S2).
  std::uint64_t master_failovers() const;
  std::uint64_t master_failure_reports() const;

  // Pull epoch-numbered placement deltas since the client's cached state
  // and fold them into the local catalog mirror: per dataset, or a whole
  // shard at once.  A gap past the master's log window falls back to a
  // full snapshot transparently.  Returns the epoch the mirror reached.
  core::Result<std::uint64_t> sync_placement(const std::string& dataset);
  core::Result<std::uint64_t> sync_shard(std::uint32_t shard);

  // The client-side replay of the shards' catalogs (what sync_placement /
  // sync_shard fold deltas into); fingerprint-comparable against a
  // master's catalog -- the delta-stream equivalence property.
  const meta::Catalog& placement_mirror() const { return meta_->mirror; }

 private:
  // The master connection outlives any DpssFile that reports failures
  // through it; requests on it are serialized by `mu`.
  struct MasterLink {
    net::StreamPtr stream;
    std::mutex mu;
  };
  // Cached open state for one dataset: the last full reply's placement
  // body plus the shared map, spliced back in when the master answers
  // not_modified.
  struct CachedOpen {
    std::uint64_t epoch = 0;
    OpenReply reply;
    std::shared_ptr<const placement::PlacementMap> map;
  };
  // Connected (or reconnected) link to one master endpoint; null when the
  // endpoint refuses the dial.
  std::shared_ptr<MasterLink> link_for(const ServerAddress& addr);
  // Round-trip `msg` against shard `shard` with member failover; on
  // success *served_by names the link that answered.  Dead endpoints met
  // along the way are reported to the answering member.
  core::Result<net::Message> shard_roundtrip(
      std::uint32_t shard, const net::Message& msg,
      const std::string& dataset, std::shared_ptr<MasterLink>* served_by);
  void report_master_failure(const std::shared_ptr<MasterLink>& via,
                             const ServerAddress& dead,
                             const std::string& dataset);
  // Shared delta-pull: request `dataset` ("" = whole shard) since `since`
  // against `shard`, apply the entries to the mirror, return the epoch.
  core::Result<std::uint64_t> pull_deltas(std::uint32_t shard,
                                          const std::string& dataset,
                                          std::uint64_t since);

  std::shared_ptr<MasterLink> master_;
  Connector connector_;
  std::shared_ptr<netlog::NetLogger> open_logger_;

  // Sharded metadata state, heap-held so the client stays movable (the
  // mirror and mutex are not).  `mu` guards everything but the mirror,
  // which locks internally.
  struct MetaState {
    mutable std::mutex mu;
    bool sharded = false;
    meta::ShardMap shard_map;
    std::vector<std::vector<ServerAddress>> shard_members;
    Connector master_connector;
    std::map<std::string, std::shared_ptr<MasterLink>> links;  // by addr key
    std::map<std::string, CachedOpen> open_cache;
    std::map<std::uint32_t, std::uint64_t> shard_epochs;
    meta::Catalog mirror;
    std::uint64_t delta_opens = 0;
    std::uint64_t snapshot_opens = 0;
    std::uint64_t master_failovers = 0;
    std::uint64_t master_failure_reports = 0;
  };
  std::shared_ptr<MetaState> meta_;
};

enum class Whence { kSet, kCur, kEnd };

// Client-side read-ahead configuration (DpssFile::enable_readahead).
struct ReadaheadOptions {
  std::size_t cache_bytes = 16ull << 20;
  int cache_shards = 4;
  cache::PolicyKind policy = cache::PolicyKind::kSegmentedLru;
  cache::PrefetchConfig prefetch;
  // Pool threads issuing read-ahead; 0 fetches inline on the demand path
  // (deterministic -- what unit tests use).
  int threads = 1;
};

class DpssFile {
 public:
  DpssFile(std::string dataset, DatasetLayout layout,
           std::vector<net::StreamPtr> server_streams,
           std::vector<ServerAddress> addresses = {},
           std::shared_ptr<const placement::PlacementMap> placement = nullptr,
           std::vector<placement::HealthState> server_health = {},
           std::vector<std::uint64_t> server_load = {},
           FailureReporter reporter = nullptr,
           FixupReporter fixup_reporter = nullptr,
           bool ingest_capable = true);
  ~DpssFile();

  const DatasetLayout& layout() const { return layout_; }
  std::uint64_t size() const { return layout_.total_bytes; }
  int server_count() const { return static_cast<int>(servers_.size()); }

  // dpssLSeek(): returns the new offset, or < 0 on bad seek.
  std::int64_t lseek(std::int64_t offset, Whence whence = Whence::kSet);
  std::uint64_t tell() const { return offset_; }

  // dpssRead(): read up to `len` bytes at the current offset, advancing it.
  // Short reads happen only at end of dataset.  Blocks are fetched from all
  // owning servers in parallel (one thread per server).
  core::Result<std::size_t> read(std::uint8_t* buf, std::size_t len);

  // Positional read; does not move the file offset.
  core::Result<std::size_t> pread(std::uint8_t* buf, std::size_t len,
                                  std::uint64_t offset);

  // Scatter read: fetch several (offset, length) extents in one parallel
  // round -- the access pattern of a non-contiguous slab (vol::ByteRange
  // lists).  Extents must lie within the dataset.
  struct Extent {
    std::uint64_t offset = 0;
    std::size_t length = 0;
    std::uint8_t* dest = nullptr;
  };
  core::Status read_extents(const std::vector<Extent>& extents);

  // dpssWrite(): striped write-through at the current offset (ingest path).
  // Writes must be block-aligned and whole-block except the final block.
  // Against an ingest-capable deployment each block travels ONCE, to its
  // primary, which replicates it server-side (chain for replicas, parity
  // deltas for EC) under the file's ack policy; old-mode deployments fall
  // back to the classic client-fanout write, and EC datasets there refuse
  // with kFailedPrecondition.
  core::Status write(const std::uint8_t* buf, std::size_t len);

  // Durable-copy policy for writes (default: every replica / parity owner
  // acked).  Relaxed policies acknowledge sooner; skipped targets catch up
  // through the master's fixup queue.  The freshness contract follows the
  // policy: under kAll every synchronous copy carries the acknowledged
  // generation, while under kQuorum/kPrimary a degraded read that falls
  // back to a skipped target (e.g. EC reconstruction through a parity
  // owner whose delta is still queued) can observe the pre-overwrite
  // bytes until Master::tick drains the fixups.
  void set_ack_policy(ingest::AckPolicy policy) { ack_policy_ = policy; }
  ingest::AckPolicy ack_policy() const { return ack_policy_; }

  // Write transport: server-driven chain (the default wherever the
  // deployment supports it) or the classic client-fanout, kept for
  // old-mode deployments and A/B benchmarking.  EC datasets require the
  // chain.
  enum class WriteMode { kServerChain, kClientFanout };
  void set_write_mode(WriteMode mode) { write_mode_ = mode; }
  WriteMode write_mode() const { return write_mode_; }
  bool ingest_capable() const { return ingest_capable_; }

  // dpssClose(): close all server connections.
  void close();

  // Total blocks fetched per server (load-balance introspection).
  std::vector<std::uint64_t> per_server_blocks() const;

  // Servers this file has locally marked dead (connect or mid-read
  // failure); indices into the open reply's server list.
  std::vector<int> dead_servers() const;
  // Block fetches that needed a second (or later) replica.
  std::uint64_t failover_reads() const { return failover_reads_.value(); }
  // Blocks recovered by erasure decoding (their data-slice owner was dead
  // and k surviving slices of the group were fetched instead).
  std::uint64_t reconstructed_reads() const {
    return reconstructed_reads_.value();
  }
  // The dataset's erasure-coding profile (disabled for replicated and
  // classic layouts).
  const codec::EcProfile& ec_profile() const { return ec_.profile(); }
  // Blocks whose write was acknowledged by fewer replicas than assigned
  // (the data is durable but under-replicated until a fixup or rebalance;
  // the lagging targets were reported to the master).
  std::uint64_t degraded_writes() const { return degraded_writes_.value(); }
  // Block fetches retried because a replica answered with a generation
  // older than one this file saw acknowledged (a lagging follower).
  std::uint64_t stale_read_retries() const { return stale_retries_.value(); }
  // Latest generation this file has seen acknowledged for `block` (0 when
  // the block was never overwritten as far as this file knows).
  std::uint64_t known_generation(std::uint64_t block) const {
    return known_gens_.latest(dataset_, block);
  }
  // Gossiped dataset-wide max-generation floor the open carried (PR 9):
  // *some* block of the dataset has reached this generation.  A floor is
  // dataset-granular, so it informs staleness heuristics and tooling --
  // per-block stale detection still rides known_generation().
  void set_generation_floor(std::uint64_t gen) { generation_floor_ = gen; }
  std::uint64_t dataset_generation_floor() const { return generation_floor_; }
  // The master's open-frequency hint for this dataset (kHot after repeated
  // opens): a caller deciding whether to enable_readahead() can consult it.
  void set_cache_hint(meta::CacheHint hint) { cache_hint_ = hint; }
  meta::CacheHint cache_hint() const { return cache_hint_; }

  // Request wire-level compression on subsequent block reads (section 5
  // future work).  kLossyQuant trades accuracy for bandwidth; the error
  // bound is (block max - min) / (2^bits - 1) per value.
  void set_compression(const CompressionConfig& config) { compression_ = config; }
  const CompressionConfig& compression() const { return compression_; }

  // Bytes that actually crossed the wire vs raw bytes delivered, for
  // effective-bandwidth reporting.
  std::uint64_t wire_bytes_received() const { return wire_bytes_.value(); }
  std::uint64_t raw_bytes_received() const { return raw_bytes_.value(); }

  // The file's metrics plane: every counter above plus
  // dpss_client_read_seconds / dpss_client_write_seconds latency
  // histograms, rendered the same way server registries are.
  obs::MetricsRegistry& metrics_registry() { return registry_; }

  // ---- request tracing ----
  // Arm NetLogger lifeline emission (the paper's NLV per-request
  // lifelines): each sampled read/write mints a trace id, logs
  // DPSS_READ/WRITE_START + END here, and stamps the id into the wire
  // header of every block request it issues, so the servers' SERV_IN/OUT
  // and CHAIN_FWD events join the same lifeline.  `sample_rate` in [0,1]
  // (0 disables tracing entirely -- the hot path sees one branch);
  // requests slower than `slow_threshold_seconds` additionally emit a
  // DPSS_SLOW_REQUEST event even when unsampled (0 = off).
  void enable_tracing(std::shared_ptr<netlog::NetLogger> logger,
                      double sample_rate = 1.0,
                      double slow_threshold_seconds = 0.0);

  // ---- client-side read-ahead ----
  // Attach a block cache plus a run-detecting prefetcher to this file:
  // sequential (or strided) dpssRead patterns trigger asynchronous fetches
  // of the next blocks over the same striped server connections, so WAN
  // transfer overlaps with whatever the caller does between reads (the
  // back end's render phase).  Cached entries are keyed by generation, so
  // a write through this file re-keys the block and the stale entry can
  // never serve again.  Call before issuing reads; not synchronized
  // against in-flight operations.
  void enable_readahead(const ReadaheadOptions& options = ReadaheadOptions());
  bool readahead_enabled() const { return ra_cache_ != nullptr; }
  // Cache counters incl. prefetch issues; zero-value when disabled.
  cache::MetricsSnapshot readahead_metrics() const;
  // Wait until no read-ahead fetch is in flight (tests).
  void drain_readahead();

 private:
  struct BlockRef {
    std::uint64_t block;
    std::uint64_t offset_in_block;
    std::size_t length;
    std::uint8_t* dest;
  };
  // One fetched block: payload plus the generation the server stamped it
  // with (0 for reconstructed blocks, which have no single server stamp).
  struct Fetched {
    std::vector<std::uint8_t> data;
    std::uint64_t generation = 0;
  };
  core::Status fetch_blocks(std::vector<BlockRef> refs);
  // Fetch whole blocks from their owning servers, one worker per server,
  // pipelined; on a server failure the affected blocks retry against the
  // next live replica (or, erasure-coded, fall through to reconstruction).
  // A replica answering with a generation older than an acknowledged write
  // is skipped for that block and the fetch retried on the next replica.
  // Caller must hold wire_mu_ (the per-server streams carry pipelined
  // request/reply pairs that must not interleave).
  core::Status fetch_wire_blocks(const std::vector<std::uint64_t>& blocks,
                                 std::map<std::uint64_t, Fetched>* received);
  // Degraded EC read: rebuild `blocks` (whose data-slice owners are dead)
  // from any k surviving slices per group.  Caller holds wire_mu_.
  core::Status reconstruct_blocks(const std::vector<std::uint64_t>& blocks,
                                  std::map<std::uint64_t, Fetched>* received);
  // One (dataset, block) request against one server, used by the slice
  // fetch path.  Caller holds wire_mu_.
  struct SliceFetch {
    std::uint32_t slice = 0;
    std::size_t server = 0;
    std::string dataset;
    std::uint64_t block = 0;
  };
  // Returns false when any server failed mid-fetch (the dead servers are
  // marked and reported; the caller re-plans against updated liveness).
  bool fetch_slices(const std::vector<SliceFetch>& fetches,
                    std::map<std::uint32_t, std::vector<std::uint8_t>>* out);
  void prefetch_fill(std::uint64_t block);

  // ---- write paths (all hold wire_mu_) ----
  // Server-driven pipeline: one IngestWriteRequest per block to its
  // primary, pipelined per primary connection.
  core::Status write_chain(std::uint64_t first_block,
                           const std::uint8_t* src, std::size_t len);
  // Classic client-fanout: every replica written from here (old-mode
  // deployments and A/B benches).
  core::Status write_fanout(std::uint64_t first_block,
                            const std::uint8_t* src, std::size_t len);
  // Bookkeeping for one acknowledged ingest write: learn the generation,
  // re-key the read-ahead tier, count degradation, report missed targets
  // (matched against `deltas` so a missed parity owner's debt names the
  // parity block, not the data block).
  void account_write_ack(
      std::uint64_t block, const IngestWriteReply& reply,
      std::uint32_t targets,
      const std::vector<IngestWriteRequest::DeltaTarget>* deltas = nullptr);

  // Replica candidates for `block` in preference order (health class,
  // then load, then ring order), memoised per placement group.  Requires
  // placement_; classic layouts derive their single striped owner inline.
  // Includes dead servers; callers filter by server_alive_.
  const std::vector<std::uint32_t>& candidates_for_block(std::uint64_t block);
  // First live candidate not in `exclude`, or -1.  Caller holds wire_mu_.
  int pick_server(std::uint64_t block,
                  const std::set<std::size_t>* exclude = nullptr);
  // Mark a server dead and report the failure (caller holds wire_mu_).
  void mark_server_failed(std::size_t s, std::uint64_t block,
                          const core::Status& status);

  std::string dataset_;
  DatasetLayout layout_;
  std::vector<net::StreamPtr> servers_;
  std::vector<ServerAddress> addresses_;
  std::shared_ptr<const placement::PlacementMap> placement_;
  std::vector<placement::HealthState> server_health_;
  std::vector<std::uint64_t> server_load_;
  FailureReporter reporter_;
  FixupReporter fixup_reporter_;
  bool ingest_capable_ = true;
  std::uint64_t generation_floor_ = 0;
  meta::CacheHint cache_hint_ = meta::CacheHint::kNone;
  ingest::AckPolicy ack_policy_ = ingest::AckPolicy::kAll;
  WriteMode write_mode_ = WriteMode::kServerChain;
  // Latest acknowledged/observed generation per block (its own lock).
  ingest::GenerationMap known_gens_;
  // Per-server liveness as seen by this file (guarded by wire_mu_ on the
  // read path; write() also takes wire_mu_).
  std::vector<char> server_alive_;
  // Ranked replica candidates per placement group, memoised.
  std::map<std::uint64_t, std::vector<std::uint32_t>> group_candidates_;
  std::vector<std::uint64_t> per_server_blocks_;
  std::uint64_t offset_ = 0;
  CompressionConfig compression_;
  // EC view of the placement map and its decoder, built at construction
  // for erasure-coded datasets (invalid/null for replicated and classic
  // layouts -- the coding-matrix setup is O(k^3) but runs once per open).
  codec::StripeLayout ec_;
  std::unique_ptr<codec::ReedSolomon> rs_;
  // Metrics plane: registry_ precedes the instrument references it backs.
  obs::MetricsRegistry registry_;
  obs::Counter& wire_bytes_;
  obs::Counter& raw_bytes_;
  obs::Counter& failover_reads_;
  obs::Counter& reconstructed_reads_;
  obs::Counter& degraded_writes_;
  obs::Counter& stale_retries_;
  obs::Histogram& read_seconds_;
  obs::Histogram& write_seconds_;
  // Tracing plane (enable_tracing): the logger lifeline events go to, the
  // sampling gate, and the trace the current wire round carries (guarded
  // by wire_mu_ like the streams it is stamped onto).
  std::shared_ptr<netlog::NetLogger> logger_;
  obs::TraceSampler sampler_;
  double slow_threshold_ = 0.0;
  obs::TraceContext active_trace_;
  // Serialises wire activity between the demand path and read-ahead tasks.
  mutable std::mutex wire_mu_;
  // Teardown order: the prefetcher drains before the pool and cache die.
  std::unique_ptr<cache::BlockCache> ra_cache_;
  std::unique_ptr<core::ThreadPool> ra_pool_;
  std::unique_ptr<cache::Prefetcher> prefetcher_;
};

}  // namespace visapult::dpss
