// DPSS client library.
//
// "The application interface to the DPSS cache supports a variety of I/O
// semantics, including Unix-like I/O semantics, through an easy-to-use
// client API library (e.g., dpssOpen(), dpssRead(), dpssWrite(),
// dpssLSeek(), dpssClose()).  The DPSS client library is multi-threaded,
// where the number of client threads is equal to the number of DPSS
// servers." (section 3.5)
//
// DpssClient talks to the master to resolve a dataset, then DpssFile opens
// one connection *per block server* and fans block requests out with one
// worker thread per server -- the client-side parallelism Visapult's
// back-end PEs leverage for their parallel loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "cache/prefetch.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "dpss/protocol.h"
#include "net/stream.h"

namespace visapult::dpss {

// Opens a transport to a server address.  Pipe deployments and TCP
// deployments provide different connectors; the client is agnostic.
using Connector =
    std::function<core::Result<net::StreamPtr>(const ServerAddress&)>;

class DpssFile;

class DpssClient {
 public:
  // `master` is an established connection to the DPSS master.
  DpssClient(net::StreamPtr master, Connector connector)
      : master_(std::move(master)), connector_(std::move(connector)) {}

  // dpssOpen(): resolve the dataset and connect to all of its servers.
  core::Result<std::unique_ptr<DpssFile>> open(const std::string& dataset,
                                               const std::string& auth_token = "");

 private:
  net::StreamPtr master_;
  Connector connector_;
};

enum class Whence { kSet, kCur, kEnd };

// Client-side read-ahead configuration (DpssFile::enable_readahead).
struct ReadaheadOptions {
  std::size_t cache_bytes = 16ull << 20;
  int cache_shards = 4;
  cache::PolicyKind policy = cache::PolicyKind::kSegmentedLru;
  cache::PrefetchConfig prefetch;
  // Pool threads issuing read-ahead; 0 fetches inline on the demand path
  // (deterministic -- what unit tests use).
  int threads = 1;
};

class DpssFile {
 public:
  DpssFile(std::string dataset, DatasetLayout layout,
           std::vector<net::StreamPtr> server_streams);
  ~DpssFile();

  const DatasetLayout& layout() const { return layout_; }
  std::uint64_t size() const { return layout_.total_bytes; }
  int server_count() const { return static_cast<int>(servers_.size()); }

  // dpssLSeek(): returns the new offset, or < 0 on bad seek.
  std::int64_t lseek(std::int64_t offset, Whence whence = Whence::kSet);
  std::uint64_t tell() const { return offset_; }

  // dpssRead(): read up to `len` bytes at the current offset, advancing it.
  // Short reads happen only at end of dataset.  Blocks are fetched from all
  // owning servers in parallel (one thread per server).
  core::Result<std::size_t> read(std::uint8_t* buf, std::size_t len);

  // Positional read; does not move the file offset.
  core::Result<std::size_t> pread(std::uint8_t* buf, std::size_t len,
                                  std::uint64_t offset);

  // Scatter read: fetch several (offset, length) extents in one parallel
  // round -- the access pattern of a non-contiguous slab (vol::ByteRange
  // lists).  Extents must lie within the dataset.
  struct Extent {
    std::uint64_t offset = 0;
    std::size_t length = 0;
    std::uint8_t* dest = nullptr;
  };
  core::Status read_extents(const std::vector<Extent>& extents);

  // dpssWrite(): striped write-through at the current offset (ingest path).
  // Writes must be block-aligned and whole-block except the final block.
  core::Status write(const std::uint8_t* buf, std::size_t len);

  // dpssClose(): close all server connections.
  void close();

  // Total blocks fetched per server (load-balance introspection).
  std::vector<std::uint64_t> per_server_blocks() const;

  // Request wire-level compression on subsequent block reads (section 5
  // future work).  kLossyQuant trades accuracy for bandwidth; the error
  // bound is (block max - min) / (2^bits - 1) per value.
  void set_compression(const CompressionConfig& config) { compression_ = config; }
  const CompressionConfig& compression() const { return compression_; }

  // Bytes that actually crossed the wire vs raw bytes delivered, for
  // effective-bandwidth reporting.
  std::uint64_t wire_bytes_received() const { return wire_bytes_; }
  std::uint64_t raw_bytes_received() const { return raw_bytes_; }

  // ---- client-side read-ahead ----
  // Attach a block cache plus a run-detecting prefetcher to this file:
  // sequential (or strided) dpssRead patterns trigger asynchronous fetches
  // of the next blocks over the same striped server connections, so WAN
  // transfer overlaps with whatever the caller does between reads (the
  // back end's render phase).  Call before issuing reads; not synchronized
  // against in-flight operations.
  void enable_readahead(const ReadaheadOptions& options = ReadaheadOptions());
  bool readahead_enabled() const { return ra_cache_ != nullptr; }
  // Cache counters incl. prefetch issues; zero-value when disabled.
  cache::MetricsSnapshot readahead_metrics() const;
  // Wait until no read-ahead fetch is in flight (tests).
  void drain_readahead();

 private:
  struct BlockRef {
    std::uint64_t block;
    std::uint64_t offset_in_block;
    std::size_t length;
    std::uint8_t* dest;
  };
  core::Status fetch_blocks(std::vector<BlockRef> refs);
  // Fetch whole blocks from their owning servers, one worker per server,
  // pipelined.  Caller must hold wire_mu_ (the per-server streams carry
  // pipelined request/reply pairs that must not interleave).
  core::Status fetch_wire_blocks(
      const std::vector<std::uint64_t>& blocks,
      std::map<std::uint64_t, std::vector<std::uint8_t>>* received);
  void prefetch_fill(std::uint64_t block);

  std::string dataset_;
  DatasetLayout layout_;
  std::vector<net::StreamPtr> servers_;
  std::vector<std::uint64_t> per_server_blocks_;
  std::uint64_t offset_ = 0;
  CompressionConfig compression_;
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> raw_bytes_{0};
  // Serialises wire activity between the demand path and read-ahead tasks.
  std::mutex wire_mu_;
  // Teardown order: the prefetcher drains before the pool and cache die.
  std::unique_ptr<cache::BlockCache> ra_cache_;
  std::unique_ptr<core::ThreadPool> ra_pool_;
  std::unique_ptr<cache::Prefetcher> prefetcher_;
};

}  // namespace visapult::dpss
