#include "dpss/deployment.h"

#include <cstring>
#include <map>

#include "codec/reed_solomon.h"
#include "codec/stripe_layout.h"
#include "core/clock.h"
#include "net/stream.h"
#include "obs/metrics.h"
#include "placement/placement_map.h"

namespace visapult::dpss {

std::uint64_t export_spans_to_master(Master& master, TraceExport& e) {
  std::vector<obs::SpanRecord> spans;
  e.extractor.feed(e.sink->drain(), spans);
  if (spans.empty()) return 0;
  SpanExportBatch batch;
  batch.host = e.host;
  batch.sent_at = core::global_real_clock().now();
  batch.spans = std::move(spans);
  // Through the kSpanExport codec, not a direct collector call: the
  // in-process deployments exercise the exact bytes a remote exporter
  // would put on the wire.
  net::Message reply =
      master.handle_request(encode_span_export_request(batch));
  auto accepted = decode_span_export_reply(reply);
  return accepted.is_ok() ? accepted.value() : 0;
}

namespace {

// Wire one component's trace-export pipeline: a bounded sink fed by a
// real-clock NetLogger handed to `attach`.
std::unique_ptr<TraceExport> make_trace_export(
    const std::string& host, std::size_t sink_capacity,
    const std::function<void(std::shared_ptr<netlog::NetLogger>)>& attach) {
  auto e = std::make_unique<TraceExport>();
  e->host = host;
  e->sink = std::make_shared<netlog::MemorySink>(sink_capacity);
  attach(std::make_shared<netlog::NetLogger>(core::global_real_clock(), host,
                                             "dpss", e->sink));
  return e;
}

}  // namespace

namespace {

// Flatten one front door's transport counters into exposition samples
// under `prefix` (dpss_master_net / dpss_server_net).  `role` labels the
// dpss_util_* connection families so master and server samples stay
// distinguishable in a merged scrape.
void collect_front_stats(const std::string& prefix,
                         const net::ReactorServerStats& s,
                         std::vector<obs::Sample>& out,
                         const char* role = "server") {
  auto emit = [&](const char* suffix, double v) {
    out.push_back(obs::Sample{prefix + suffix, "", v});
  };
  emit("_connections_accepted_total", static_cast<double>(s.accepted));
  emit("_connections_closed_total", static_cast<double>(s.closed));
  emit("_requests_total", static_cast<double>(s.requests));
  emit("_read_timeouts_total", static_cast<double>(s.read_timeouts));
  emit("_overflow_closes_total", static_cast<double>(s.overflow_closes));
  emit("_accept_failures_total", static_cast<double>(s.accept_failures));
  emit("_active_connections", static_cast<double>(s.active_conns));
  emit("_queued_write_bytes", static_cast<double>(s.queued_write_bytes));
  emit("_queued_write_hwm_bytes",
       static_cast<double>(s.queued_write_hwm_bytes));
  emit("_conn_write_queue_hwm_bytes",
       static_cast<double>(s.conn_write_queue_hwm_bytes));
  // USE view of the front door: bytes moved (utilization) and reply
  // backlog (saturation).
  const std::string label = obs::label_pair("front", role);
  out.push_back({"dpss_util_conn_bytes_read_total", label,
                 static_cast<double>(s.bytes_read)});
  out.push_back({"dpss_util_conn_bytes_written_total", label,
                 static_cast<double>(s.bytes_written)});
  out.push_back({"dpss_util_conn_backlog_bytes", label,
                 static_cast<double>(s.queued_write_bytes)});
}

// One worker pool's USE samples: depth/peak (saturation), task counters
// (utilization).  The wait/run histograms are registered instruments fed
// by the pool's TaskObserver, so they expand to quantiles on their own.
void collect_pool_stats(const core::ThreadPoolStats& s,
                        std::vector<obs::Sample>& out,
                        const std::string& prefix = "dpss_util_pool") {
  out.push_back({prefix + "_queue_depth", "",
                 static_cast<double>(s.queue_depth)});
  out.push_back({prefix + "_queue_peak", "",
                 static_cast<double>(s.queue_peak)});
  out.push_back({prefix + "_threads", "",
                 static_cast<double>(s.threads)});
  out.push_back({prefix + "_tasks_submitted_total", "",
                 static_cast<double>(s.submitted)});
  out.push_back({prefix + "_tasks_completed_total", "",
                 static_cast<double>(s.completed)});
  out.push_back({prefix + "_saturation", "", s.saturation()});
}

}  // namespace

// ---- shared ingest -----------------------------------------------------------

core::Status ingest_dataset(Master& master, std::vector<BlockServer*> servers,
                            std::vector<ServerAddress> addresses,
                            const vol::DatasetDesc& desc,
                            std::uint32_t block_bytes,
                            std::uint32_t stripe_blocks,
                            std::uint32_t replication_factor,
                            const codec::EcProfile& ec) {
  if (servers.empty()) return core::invalid_argument("no servers");
  if (replication_factor == 0) replication_factor = 1;
  if (replication_factor > servers.size()) {
    return core::invalid_argument("replication factor exceeds server count");
  }
  if (ec.enabled()) {
    if (replication_factor > 1) {
      return core::invalid_argument(
          "erasure coding and replication are mutually exclusive");
    }
    if (ec.total_slices() > servers.size()) {
      return core::invalid_argument("EC profile needs k+m distinct servers");
    }
    if (ec.total_slices() > 255) {
      // GF(2^8) has 256 evaluation points; reject before the parity pass
      // (ReedSolomon would clamp its own profile and the encode loop
      // below would run off the end of the parity vector).
      return core::invalid_argument("EC profile exceeds GF(2^8) limits");
    }
    // EC geometry: one placement group is one stripe of k data blocks.
    stripe_blocks = ec.data_slices;
  }
  DatasetLayout layout;
  layout.total_bytes = desc.total_bytes();
  layout.block_bytes = block_bytes;
  layout.stripe_blocks = stripe_blocks;
  layout.server_count = static_cast<std::uint32_t>(servers.size());

  PlacementOptions options;
  options.replication_factor = replication_factor;
  options.ec = ec;
  std::unique_ptr<placement::PlacementMap> map;
  if (options.uses_ring()) {
    placement::HashRing ring(addresses, placement::kDefaultVnodes);
    map = std::make_unique<placement::PlacementMap>(
        desc.name, std::move(ring), layout.block_count(), stripe_blocks,
        replication_factor, ec);
    if (ec.enabled()) {
      // The k+m <= servers count check above cannot catch duplicate
      // addresses; a group with fewer than k+m distinct owners must fail
      // the ingest loudly, not misplace slices.
      for (std::uint64_t g = 0; g < map->group_count(); ++g) {
        if (map->replicas_for_group(g).servers.size() < ec.total_slices()) {
          return core::invalid_argument(
              "ring yielded fewer than k+m distinct servers for group " +
              std::to_string(g));
        }
      }
    }
  }
  auto owners = [&](std::uint64_t block) -> std::vector<std::uint32_t> {
    if (map && ec.enabled()) {
      // Systematic data slice: exactly one owner; parity is encoded after
      // the data pass below.
      const int s = map->slice_server(
          map->group_of(block), static_cast<std::uint32_t>(block % ec.data_slices));
      return {static_cast<std::uint32_t>(s < 0 ? 0 : s)};
    }
    if (map) return map->replicas_for_block(block).servers;
    return {layout.server_for_block(block)};
  };

  const std::size_t step_bytes = desc.bytes_per_step();
  for (int t = 0; t < desc.timesteps; ++t) {
    const vol::Volume v = desc.generate(t);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(v.data().data());
    const std::uint64_t base = static_cast<std::uint64_t>(t) * step_bytes;
    std::uint64_t at = 0;
    while (at < step_bytes) {
      const std::uint64_t abs = base + at;
      const std::uint64_t block = abs / block_bytes;
      // Timestep boundaries are block-aligned only if step_bytes is a
      // multiple of block_bytes; handle the general case by splitting at
      // block boundaries and merging partial blocks across steps.
      const std::uint64_t in_block = abs % block_bytes;
      const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
          step_bytes - at, block_bytes - in_block));
      for (std::uint32_t owner : owners(block)) {
        BlockServer* srv = servers[owner];
        if (in_block == 0 && n == block_bytes) {
          srv->put_block(desc.name, block,
                         std::vector<std::uint8_t>(bytes + at, bytes + at + n));
        } else {
          // Read-modify-write the partial block.
          std::vector<std::uint8_t> blk;
          auto existing = srv->get_block(desc.name, block);
          if (existing.is_ok()) {
            blk = std::move(existing).take();
          }
          const std::uint64_t want = layout.block_length(block);
          if (blk.size() < want) blk.resize(static_cast<std::size_t>(want), 0);
          std::memcpy(blk.data() + in_block, bytes + at, n);
          srv->put_block(desc.name, block, std::move(blk));
        }
      }
      at += n;
    }
  }

  if (ec.enabled()) {
    // Parity pass: for each group, read back its k data slices (zero-pad
    // the dataset tail and the short final block -- the decoder applies
    // the same padding), encode, and write the m parity slices to their
    // owners under the companion parity dataset.
    const codec::ReedSolomon rs(ec);
    const std::string parity_name =
        codec::StripeLayout::parity_dataset(desc.name);
    const std::uint32_t k = ec.data_slices, m = ec.parity_slices;
    std::vector<std::vector<std::uint8_t>> data(k);
    std::vector<const std::uint8_t*> ptrs(k);
    for (std::uint64_t g = 0; g < map->group_count(); ++g) {
      for (std::uint32_t i = 0; i < k; ++i) {
        const std::uint64_t block = g * k + i;
        if (block >= layout.block_count()) {
          data[i].assign(block_bytes, 0);
        } else {
          const int owner = map->slice_server(g, i);
          auto blk = servers[static_cast<std::size_t>(owner)]->get_block(
              desc.name, block);
          if (!blk.is_ok()) return blk.status();
          data[i] = std::move(blk).take();
          data[i].resize(block_bytes, 0);
        }
        ptrs[i] = data[i].data();
      }
      std::vector<std::vector<std::uint8_t>> parity;
      rs.encode(ptrs, block_bytes, &parity);
      for (std::uint32_t j = 0; j < m; ++j) {
        const int owner = map->slice_server(g, k + j);
        servers[static_cast<std::size_t>(owner)]->put_block(
            parity_name, g * m + j, std::move(parity[j]));
      }
    }
  }
  return master.register_dataset(desc.name, layout, std::move(addresses),
                                 options);
}

namespace {

// Storage identity of slice `s` of group `g`: data slices are the dataset's
// own blocks, parity slices live in the companion "#parity" dataset.
struct SliceKey {
  std::string dataset;
  std::uint64_t block = 0;
};

SliceKey ec_slice_key(const placement::RebalancePlan& plan, std::uint64_t g,
                      std::uint32_t s) {
  const std::uint32_t k = plan.ec.data_slices;
  if (s < k) return {plan.dataset, g * k + s};
  return {codec::StripeLayout::parity_dataset(plan.dataset),
          g * plan.ec.parity_slices + (s - k)};
}

// Stored byte length of slice `s` of group `g` (parity is always a full
// block; the final data block clips to the dataset size).
std::size_t ec_slice_len(const placement::RebalancePlan& plan, std::uint64_t g,
                         std::uint32_t s) {
  if (s >= plan.ec.data_slices) return plan.block_bytes;
  const std::uint64_t start =
      (g * plan.ec.data_slices + s) * static_cast<std::uint64_t>(plan.block_bytes);
  if (start >= plan.total_bytes) return 0;
  return static_cast<std::size_t>(std::min<std::uint64_t>(
      plan.block_bytes, plan.total_bytes - start));
}

// Rebuild slice `s` of group `g` from any k surviving slices at their old
// owners -- the executor-side mirror of the client's degraded read.
core::Status ec_reconstruct_slice(
    const placement::RebalancePlan& plan, const codec::ReedSolomon& rs,
    std::uint64_t g, std::uint32_t s,
    const std::function<BlockServer*(const ServerAddress&)>& resolve,
    std::vector<std::uint8_t>* out) {
  const auto it = plan.old_slice_owners.find(g);
  if (it == plan.old_slice_owners.end()) {
    return core::unavailable("no old slice owners recorded for group " +
                             std::to_string(g));
  }
  const auto& owners = it->second;
  const std::uint32_t k = plan.ec.data_slices;
  const std::uint32_t total = plan.ec.total_slices();
  const std::size_t n = plan.block_bytes;
  std::vector<std::vector<std::uint8_t>> shards(total);
  std::vector<char> present(total, 0);
  std::uint32_t have = 0;
  for (std::uint32_t t = 0; t < total && have < k; ++t) {
    if (t < k && ec_slice_len(plan, g, t) == 0) {
      // Zero-padded tail slice: known content, no fetch needed.
      shards[t].assign(n, 0);
      present[t] = 1;
      ++have;
      continue;
    }
    if (t >= owners.size()) break;
    BlockServer* srv = resolve(owners[t]);
    if (!srv) continue;
    const SliceKey key = ec_slice_key(plan, g, t);
    auto data = srv->get_block(key.dataset, key.block);
    if (!data.is_ok()) continue;
    shards[t] = std::move(data).take();
    shards[t].resize(n, 0);
    present[t] = 1;
    ++have;
  }
  // Parity re-derivation is only needed when the wanted slice IS parity.
  if (auto st = rs.reconstruct(shards, present, n,
                               /*rebuild_parity=*/s >= k);
      !st.is_ok()) {
    return st;
  }
  *out = std::move(shards[s]);
  out->resize(ec_slice_len(plan, g, s));
  return core::Status::ok();
}

core::Status apply_ec_plan(
    const placement::RebalancePlan& plan,
    const std::function<BlockServer*(const ServerAddress&)>& resolve) {
  if (plan.block_bytes == 0) {
    return core::invalid_argument("EC plan lacks block geometry");
  }
  // One decoder for the whole plan: the coding-matrix setup is O(k^3).
  const codec::ReedSolomon rs(plan.ec);
  for (const auto& copy : plan.slice_copies) {
    BlockServer* target = resolve(copy.target);
    if (!target) {
      return core::unavailable("rebalance target unreachable: " +
                               copy.target.key());
    }
    const SliceKey key = ec_slice_key(plan, copy.group, copy.slice);
    std::vector<std::uint8_t> bytes;
    std::uint64_t generation = 0;
    bool have = false;
    if (BlockServer* source = resolve(copy.source)) {
      auto data = source->stamped_block(key.dataset, key.block);
      if (data.is_ok()) {
        generation = data.value().generation;
        bytes = std::move(data).take().data;
        have = true;
      }
    }
    if (!have) {
      // Disk loss at the source: degrade the copy into a reconstruction.
      // The rebuilt bytes reflect the surviving slices' current state, so
      // they carry no single stamp (generation 0 keeps the target's).
      if (auto st = ec_reconstruct_slice(plan, rs, copy.group, copy.slice,
                                         resolve, &bytes);
          !st.is_ok()) {
        return st;
      }
    }
    auto st = have ? target->put_block_at(key.dataset, key.block,
                                          std::move(bytes), generation)
                   : target->put_block(key.dataset, key.block,
                                       std::move(bytes));
    if (!st.is_ok() && st.code() != core::StatusCode::kFailedPrecondition) {
      return st;
    }
  }
  for (const auto& drop : plan.slice_drops) {
    BlockServer* server = resolve(drop.server);
    if (!server) continue;  // a dead server's store needs no cleanup
    const SliceKey key = ec_slice_key(plan, drop.group, drop.slice);
    server->drop_block(key.dataset, key.block);
  }
  return core::Status::ok();
}

}  // namespace

core::Status apply_rebalance_plan(
    const placement::RebalancePlan& plan,
    const std::function<BlockServer*(const ServerAddress&)>& resolve) {
  // Runs as the master's rebalance executor, i.e. before the new map is
  // published.  Copies first regardless, so a partially-executed plan
  // never leaves a published replica without its blocks.
  if (plan.is_ec()) return apply_ec_plan(plan, resolve);
  for (const auto& copy : plan.copies) {
    BlockServer* source = resolve(copy.source);
    BlockServer* target = resolve(copy.target);
    if (!target) {
      return core::unavailable("rebalance target unreachable: " +
                               copy.target.key());
    }
    if (!source) {
      return core::unavailable("rebalance source unreachable: " +
                               copy.source.key());
    }
    for (std::uint64_t b = plan.group_first_block(copy.group);
         b < plan.group_last_block(copy.group); ++b) {
      auto stamped = source->stamped_block(plan.dataset, b);
      if (!stamped.is_ok()) return stamped.status();
      // put_block_at is write-through (the replica fill is admitted to the
      // target's memory tier, so a failover read hits warm) and carries
      // the source's generation, so an overwritten block stays
      // overwritten on its new replica.  A target already past this stamp
      // keeps its newer copy.
      const std::uint64_t gen = stamped.value().generation;
      auto st = target->put_block_at(plan.dataset, b,
                                     std::move(stamped).take().data, gen);
      if (!st.is_ok() &&
          st.code() != core::StatusCode::kFailedPrecondition) {
        return st;
      }
    }
  }
  for (const auto& drop : plan.drops) {
    BlockServer* server = resolve(drop.server);
    if (!server) continue;  // a dead server's store needs no cleanup
    for (std::uint64_t b = plan.group_first_block(drop.group);
         b < plan.group_last_block(drop.group); ++b) {
      server->drop_block(plan.dataset, b);
    }
  }
  return core::Status::ok();
}

core::Status apply_fixup(
    const ingest::FixupTask& task, Master& master,
    const std::function<BlockServer*(const ServerAddress&)>& resolve) {
  BlockServer* target = resolve(task.target);
  if (!target) {
    return core::unavailable("fixup target unreachable: " + task.target.key());
  }
  static const std::string kParitySuffix = "#parity";
  const bool is_parity =
      task.dataset.size() > kParitySuffix.size() &&
      task.dataset.compare(task.dataset.size() - kParitySuffix.size(),
                           kParitySuffix.size(), kParitySuffix) == 0;
  if (is_parity) {
    // Re-encode the parity block from the group's data slices at their
    // current state: every delta the target missed -- however many -- is
    // folded in by one encode pass.
    const std::string base =
        task.dataset.substr(0, task.dataset.size() - kParitySuffix.size());
    auto map = master.placement_map(base);
    if (!map || !map->erasure_coded()) {
      return core::failed_precondition(
          "parity fixup for non-EC dataset " + base);
    }
    auto open = master.lookup(base);
    if (!open.is_ok()) return open.status();
    const codec::EcProfile& ec = map->ec_profile();
    const std::uint32_t k = ec.data_slices;
    const std::uint64_t group = task.block / ec.parity_slices;
    const std::uint32_t parity_index =
        static_cast<std::uint32_t>(task.block % ec.parity_slices);
    const std::uint32_t block_bytes = open.value().layout.block_bytes;
    std::vector<std::vector<std::uint8_t>> data(k);
    std::vector<const std::uint8_t*> ptrs(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t b = group * k + i;
      if (b >= map->block_count()) {
        data[i].assign(block_bytes, 0);
      } else {
        const int owner = map->slice_server(group, i);
        if (owner < 0) {
          return core::unavailable("no owner for data slice " +
                                   std::to_string(i));
        }
        BlockServer* src = resolve(
            map->ring().servers()[static_cast<std::size_t>(owner)]);
        if (!src) {
          return core::unavailable("data-slice owner unreachable for group " +
                                   std::to_string(group));
        }
        auto blk = src->get_block(base, b);
        if (!blk.is_ok()) return blk.status();
        data[i] = std::move(blk).take();
        data[i].resize(block_bytes, 0);
      }
      ptrs[i] = data[i].data();
    }
    const codec::ReedSolomon rs(ec);
    std::vector<std::vector<std::uint8_t>> parity;
    rs.encode(ptrs, block_bytes, &parity);
    // Parity generations allocate locally; stamp past whatever the target
    // carries so the re-encode supersedes the missed deltas.
    const std::uint64_t gen =
        std::max(task.generation,
                 target->block_generation(task.dataset, task.block) + 1);
    return target->put_block_at(task.dataset, task.block,
                                std::move(parity[parity_index]), gen);
  }
  // Replicated (or classic striped) block: copy, stamp included, from a
  // replica that has reached the missed generation.
  auto map = master.placement_map(task.dataset);
  if (!map) {
    return core::failed_precondition("fixup for unplaced dataset " +
                                     task.dataset);
  }
  const auto& replicas = map->replicas_for_block(task.block);
  for (std::uint32_t s : replicas.servers) {
    if (s >= map->ring().servers().size()) continue;
    const ServerAddress& addr = map->ring().servers()[s];
    if (addr == task.target) continue;
    BlockServer* src = resolve(addr);
    if (!src) continue;
    auto stamped = src->stamped_block(task.dataset, task.block);
    if (!stamped.is_ok()) continue;
    if (stamped.value().generation < task.generation) continue;  // lagging too
    const std::uint64_t gen = stamped.value().generation;
    auto st = target->put_block_at(task.dataset, task.block,
                                   std::move(stamped).take().data, gen);
    // A target already past this stamp needs no fixup.
    if (!st.is_ok() && st.code() == core::StatusCode::kFailedPrecondition) {
      return core::Status::ok();
    }
    return st;
  }
  return core::unavailable("no replica holds generation " +
                           std::to_string(task.generation) + " of block " +
                           std::to_string(task.block) + " of " + task.dataset);
}

namespace {

// Shared deployment rebalance flow: hand the master the live membership
// and execute the plan against the resolved block servers while the old
// map is still the one being served.
core::Status rebalance_live(
    Master& master, const std::string& name,
    std::vector<ServerAddress> live,
    const std::function<BlockServer*(const ServerAddress&)>& resolve) {
  auto plan = master.rebalance_dataset(
      name, std::move(live), [&](const placement::RebalancePlan& p) {
        return apply_rebalance_plan(p, resolve);
      });
  return plan.is_ok() ? core::Status::ok() : plan.status();
}

}  // namespace

// ---- pipe deployment ---------------------------------------------------------

Connector PipeDeployment::make_peer_connector() {
  return [this](const ServerAddress& addr) -> core::Result<net::StreamPtr> {
    BlockServer* srv = nullptr;
    {
      std::lock_guard lk(state_mu_);
      if (addr.port >= servers_.size()) {
        return core::not_found("unknown pipe server: " + addr.host);
      }
      if (killed_[addr.port]) {
        return core::unavailable("server killed: " + addr.host);
      }
      srv = servers_[addr.port].get();
    }
    auto [near_end, far_end] = net::make_pipe();
    srv->serve(far_end);
    return near_end;
  };
}

namespace {

// Generation source for the master's rebalance planner, shared by both
// deployments: the min stamp `addr` holds across a placement group's
// blocks, or -1 when it does not hold the whole group (it cannot source
// the copy).  Invoked under the master's request mutex; the catalog and
// block stores lock independently, matching the executor's lock order.
Master::DatasetGenerationView make_generation_view(
    Master& master,
    std::function<BlockServer*(const ServerAddress&)> resolve) {
  return [&master, resolve = std::move(resolve)](
             const std::string& dataset, const ServerAddress& addr,
             std::uint64_t group) -> std::int64_t {
    BlockServer* server = resolve(addr);
    if (!server) return -1;
    auto entry = master.catalog().lookup(dataset);
    if (!entry) return -1;
    const std::uint64_t first = group * entry->layout.stripe_blocks;
    const std::uint64_t last = std::min<std::uint64_t>(
        first + entry->layout.stripe_blocks, entry->layout.block_count());
    if (first >= last) return -1;
    std::int64_t min_gen = -1;
    for (std::uint64_t b = first; b < last; ++b) {
      if (!server->has_block(dataset, b)) return -1;
      const auto gen =
          static_cast<std::int64_t>(server->block_generation(dataset, b));
      if (min_gen < 0 || gen < min_gen) min_gen = gen;
    }
    return min_gen;
  };
}

}  // namespace

PipeDeployment::PipeDeployment(int server_count, DiskModel disk,
                               ServerCacheConfig cache)
    : disk_(disk), cache_config_(cache) {
  for (int i = 0; i < server_count; ++i) {
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk, /*throttle=*/false, cache));
    servers_.back()->set_peer_connector(make_peer_connector());
    killed_.push_back(0);
  }
  master_.set_generation_view(make_generation_view(
      master_, [this](const ServerAddress& a) { return server_for(a); }));
}

PipeDeployment::~PipeDeployment() {
  master_.shutdown();
  for (auto& s : servers_) s->shutdown();
}

ServerAddress PipeDeployment::server_address(int i) const {
  return ServerAddress{"pipe-server-" + std::to_string(i),
                       static_cast<std::uint16_t>(i)};
}

core::Status PipeDeployment::ingest(const vol::DatasetDesc& desc,
                                    std::uint32_t block_bytes,
                                    std::uint32_t stripe_blocks,
                                    std::uint32_t replication_factor,
                                    const codec::EcProfile& ec) {
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(server_address(static_cast<int>(i)));
  }
  return ingest_dataset(master_, std::move(raw), std::move(addrs), desc,
                        block_bytes, stripe_blocks, replication_factor, ec);
}

core::Status PipeDeployment::generate_thumbnails(
    const vol::DatasetDesc& desc, const render::TransferFunction& tf,
    const ThumbnailOptions& options) {
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(server_address(static_cast<int>(i)));
  }
  return dpss::generate_thumbnails(master_, std::move(raw), std::move(addrs),
                                   desc, tf, options);
}

DpssClient PipeDeployment::make_client() {
  auto [client_end, master_end] = net::make_pipe();
  master_.serve(master_end);
  Connector connector = [this](const ServerAddress& addr)
      -> core::Result<net::StreamPtr> {
    BlockServer* srv = nullptr;
    {
      std::lock_guard lk(state_mu_);
      // Pipe addresses carry the server index in the port field.
      if (addr.port >= servers_.size()) {
        return core::not_found("unknown pipe server: " + addr.host);
      }
      if (killed_[addr.port]) {
        return core::unavailable("server killed: " + addr.host);
      }
      srv = servers_[addr.port].get();
    }
    auto [client_side, server_side] = net::make_pipe();
    srv->serve(server_side);
    return client_side;
  };
  return DpssClient(client_end, std::move(connector));
}

void PipeDeployment::kill_server(int i) {
  BlockServer* srv = nullptr;
  {
    std::lock_guard lk(state_mu_);
    if (i < 0 || static_cast<std::size_t>(i) >= servers_.size() ||
        killed_[static_cast<std::size_t>(i)]) {
      return;
    }
    killed_[static_cast<std::size_t>(i)] = 1;
    srv = servers_[static_cast<std::size_t>(i)].get();
  }
  // Outside the lock: shutdown joins service threads.
  srv->shutdown();
}

void PipeDeployment::revive_server(int i) {
  std::uint64_t served = 0;
  {
    std::lock_guard lk(state_mu_);
    if (i < 0 || static_cast<std::size_t>(i) >= servers_.size() ||
        !killed_[static_cast<std::size_t>(i)]) {
      return;
    }
    killed_[static_cast<std::size_t>(i)] = 0;
    served = servers_[static_cast<std::size_t>(i)]->requests_served();
  }
  // Announce the rejoin so health-ranked opens use the server again.
  master_.heartbeat(server_address(i), served);
}

bool PipeDeployment::server_killed(int i) const {
  std::lock_guard lk(state_mu_);
  return i >= 0 && static_cast<std::size_t>(i) < servers_.size() &&
         killed_[static_cast<std::size_t>(i)];
}

int PipeDeployment::add_server() {
  int i;
  {
    std::lock_guard lk(state_mu_);
    i = static_cast<int>(servers_.size());
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk_, /*throttle=*/false,
        cache_config_));
    killed_.push_back(0);
  }
  servers_[static_cast<std::size_t>(i)]->set_peer_connector(
      make_peer_connector());
  master_.heartbeat(server_address(i), 0);
  return i;
}

void PipeDeployment::wipe_server(int i) {
  kill_server(i);
  BlockServer* srv = nullptr;
  {
    std::lock_guard lk(state_mu_);
    if (i < 0 || static_cast<std::size_t>(i) >= servers_.size()) return;
    srv = servers_[static_cast<std::size_t>(i)].get();
  }
  srv->wipe();
  // A wiped disk is known-gone; no need to wait for failure reports.
  master_.health().mark_down(server_address(i));
}

void PipeDeployment::heartbeat_all(double now) {
  std::vector<std::pair<int, std::uint64_t>> beats;
  std::vector<meta::GenerationFloor> floors;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (killed_[i]) continue;
      beats.emplace_back(static_cast<int>(i), servers_[i]->requests_served());
      // Gossip: each live server's per-dataset max generation rides its
      // heartbeat; the master ratchets them into floors for OpenReplys.
      for (const auto& name : servers_[i]->dataset_names()) {
        floors.push_back({name, servers_[i]->max_generation(name)});
      }
    }
  }
  for (const auto& [i, served] : beats) {
    master_.heartbeat(server_address(i), served, now);
  }
  master_.gossip().merge(floors);
}

void PipeDeployment::enable_auto_rebalance(double down_deadline_seconds) {
  master_.enable_auto_rebalance(
      AutoRebalanceConfig{down_deadline_seconds},
      [this](const placement::RebalancePlan& plan) {
        return apply_rebalance_plan(
            plan, [this](const ServerAddress& a) { return server_for(a); });
      });
}

void PipeDeployment::enable_fixups() {
  master_.set_fixup_executor([this](const ingest::FixupTask& task) {
    return apply_fixup(task, master_,
                       [this](const ServerAddress& a) { return server_for(a); });
  });
}

void PipeDeployment::enable_trace_collection(std::size_t sink_capacity) {
  trace_exports_.clear();
  trace_exports_.push_back(make_trace_export(
      "master", sink_capacity,
      [this](std::shared_ptr<netlog::NetLogger> l) {
        master_.set_logger(std::move(l));
      }));
  std::lock_guard lk(state_mu_);
  for (auto& server : servers_) {
    BlockServer* s = server.get();
    trace_exports_.push_back(make_trace_export(
        s->name(), sink_capacity, [s](std::shared_ptr<netlog::NetLogger> l) {
          s->set_logger(std::move(l));
        }));
  }
}

std::uint64_t PipeDeployment::export_spans() {
  std::uint64_t accepted = 0;
  for (auto& e : trace_exports_) {
    accepted += export_spans_to_master(master_, *e);
  }
  return accepted;
}

BlockServer* PipeDeployment::server_for(const ServerAddress& addr) {
  std::lock_guard lk(state_mu_);
  if (addr.port >= servers_.size()) return nullptr;
  return servers_[addr.port].get();
}

core::Status PipeDeployment::rebalance_dataset(const std::string& name) {
  std::vector<ServerAddress> live;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!killed_[i]) live.push_back(server_address(static_cast<int>(i)));
    }
  }
  return rebalance_live(master_, name, std::move(live),
                        [this](const ServerAddress& a) { return server_for(a); });
}

// ---- TCP deployment ----------------------------------------------------------

TcpDeployment::TcpDeployment(int server_count, DiskModel disk, bool throttle,
                             ServerCacheConfig cache,
                             TcpDeploymentOptions options)
    : options_(options) {
  for (int i = 0; i < server_count; ++i) {
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk, throttle, cache));
    killed_.push_back(0);
  }
  master_.set_generation_view(make_generation_view(
      master_, [this](const ServerAddress& a) { return server_for(a); }));
}

TcpDeployment::~TcpDeployment() { stop(); }

core::Status TcpDeployment::start() {
  if (started_) return core::Status::ok();

  if (options_.serve_mode == ServeMode::kReactor) {
    // One shared pool of event loops fronts the master and every block
    // server; connections are dealt round-robin across the loops.
    reactors_ = std::make_unique<net::ReactorPool>(options_.reactor_loops);
    net::ReactorServerOptions ropts;
    ropts.request_read_timeout_seconds = options_.request_read_timeout_seconds;
    ropts.write_queue_cap_bytes = options_.write_queue_cap_bytes;

    // Master handlers are pure catalog/health bookkeeping -- they never
    // block, so they run inline on the loops (workers = nullptr).
    Master* master = &master_;
    master_front_ = std::make_unique<net::ReactorServer>(
        *reactors_,
        [master](net::Message&& msg, std::uint64_t) {
          return master->handle_request(std::move(msg));
        },
        ropts);
    master_front_->set_read_timeout_observer(
        [master] { master->note_read_timeout(); });
    if (auto st = master_front_->listen(0); !st.is_ok()) return st;

    for (auto& server : servers_) {
      // Block-server handlers may sleep on the modelled disks or forward
      // down a replica chain, so each server offloads to its own worker
      // pool; per-server pools keep a forwarded hop from starving the
      // downstream server's inbound capacity.
      worker_pools_.push_back(std::make_unique<core::ThreadPool>(
          std::max(1, options_.worker_threads)));
      BlockServer* srv = server.get();
      core::ThreadPool* pool = worker_pools_.back().get();
      // Feed the pool's per-task wait/run timings into registered
      // histograms so the exposition carries p50/p95/p99 saturation
      // quantiles for each server's worker pool.
      obs::Histogram& wait_hist =
          srv->metrics_registry().histogram("dpss_util_pool_task_wait_seconds");
      obs::Histogram& run_hist =
          srv->metrics_registry().histogram("dpss_util_pool_task_run_seconds");
      pool->set_task_observer(
          [&wait_hist, &run_hist](double wait_s, double run_s) {
            wait_hist.observe(wait_s);
            run_hist.observe(run_s);
          });
      auto front = std::make_unique<net::ReactorServer>(
          *reactors_,
          [srv](net::Message&& msg, std::uint64_t conn_id) {
            return srv->handle_request(std::move(msg), conn_id);
          },
          ropts, pool);
      front->set_read_timeout_observer([srv] { srv->note_read_timeout(); });
      if (auto st = front->listen(0); !st.is_ok()) return st;
      addresses_.push_back(ServerAddress{"127.0.0.1", front->port()});
      // Surface this server's front-door transport counters and worker
      // pool USE gauges through its own kStats registry (removed in
      // stop() before the front and pool die).
      // Second door for server-to-server traffic, on an ELASTIC pool:
      // client writes saturating the main pool must never starve an
      // incoming chain forward, and a forward blocked on the next hop must
      // never starve that hop's own forward (see the peer_fronts_ comment
      // in the header).  Elasticity is what makes the argument hold at
      // every chain depth: a peer task always gets a worker, so blocking
      // chains bottom out at the terminal hop instead of deadlocking on
      // pool capacity.
      peer_pools_.push_back(std::make_unique<core::ThreadPool>(
          std::max(1, options_.worker_threads), /*elastic=*/true));
      core::ThreadPool* peer_pool = peer_pools_.back().get();
      auto peer_front = std::make_unique<net::ReactorServer>(
          *reactors_,
          [srv](net::Message&& msg, std::uint64_t conn_id) {
            return srv->handle_request(std::move(msg), conn_id);
          },
          ropts, peer_pool);
      if (auto st = peer_front->listen(0); !st.is_ok()) return st;
      net::ReactorServer* front_raw = front.get();
      server_collectors_.push_back(srv->metrics_registry().add_collector(
          [front_raw, pool, peer_pool](std::vector<obs::Sample>& out) {
            collect_front_stats("dpss_server_net", front_raw->stats(), out);
            collect_pool_stats(pool->stats(), out);
            collect_pool_stats(peer_pool->stats(), out,
                               "dpss_util_peer_pool");
          }));
      server_fronts_.push_back(std::move(front));
      peer_fronts_.push_back(std::move(peer_front));
    }

    // The master's exposition additionally carries the shared reactor
    // pool's per-loop counters (labelled loop="N") and its own front door.
    master_collector_ = master_.metrics_registry().add_collector(
        [this](std::vector<obs::Sample>& out) {
          const auto loops = reactor_stats();
          for (std::size_t i = 0; i < loops.size(); ++i) {
            const std::string label = "loop=\"" + std::to_string(i) + "\"";
            auto emit = [&](const char* name, double v) {
              out.push_back(obs::Sample{name, label, v});
            };
            emit("net_reactor_wakeups_total",
                 static_cast<double>(loops[i].wakeups));
            emit("net_reactor_fd_dispatches_total",
                 static_cast<double>(loops[i].fd_dispatches));
            emit("net_reactor_timers_fired_total",
                 static_cast<double>(loops[i].timers_fired));
            emit("net_reactor_tasks_run_total",
                 static_cast<double>(loops[i].tasks_run));
            emit("net_reactor_fds", static_cast<double>(loops[i].fds));
            emit("net_reactor_timers_pending",
                 static_cast<double>(loops[i].timers_pending));
            emit("net_reactor_tasks_queued",
                 static_cast<double>(loops[i].tasks_queued));
            // USE view of the loop: busy fraction (utilization) and
            // dispatch wait quantiles (saturation of the task queue).
            emit("dpss_util_loop_busy_fraction", loops[i].busy_fraction());
            emit("dpss_util_loop_busy_seconds", loops[i].busy_seconds);
            emit("dpss_util_loop_idle_seconds", loops[i].idle_seconds);
            const auto dw =
                reactors_->at(static_cast<int>(i)).dispatch_wait();
            emit("dpss_util_loop_dispatch_wait_seconds_count",
                 static_cast<double>(dw.count));
            emit("dpss_util_loop_dispatch_wait_seconds_p50", dw.p50());
            emit("dpss_util_loop_dispatch_wait_seconds_p95", dw.p95());
            emit("dpss_util_loop_dispatch_wait_seconds_p99", dw.p99());
          }
          double busy_max = 0.0;
          for (const auto& l : loops)
            busy_max = std::max(busy_max, l.busy_fraction());
          out.push_back(
              {"dpss_util_loop_busy_fraction_max", "", busy_max});
          collect_front_stats("dpss_master_net", master_net_stats(), out,
                              "master");
        });
  } else {
    if (auto st = master_listener_.listen(0); !st.is_ok()) return st;
    accept_threads_.emplace_back([this] {
      for (;;) {
        auto stream = master_listener_.accept();
        if (!stream.is_ok()) return;
        master_.serve(stream.value());
      }
    });
    for (auto& server : servers_) {
      auto listener = std::make_unique<net::TcpListener>();
      if (auto st = listener->listen(0); !st.is_ok()) return st;
      net::TcpListener* raw = listener.get();
      BlockServer* srv = server.get();
      accept_threads_.emplace_back([raw, srv] {
        for (;;) {
          auto stream = raw->accept();
          if (!stream.is_ok()) return;
          srv->serve(stream.value());
        }
      });
      addresses_.push_back(ServerAddress{"127.0.0.1", listener->port()});
      server_listeners_.push_back(std::move(listener));
    }
  }

  // Chain forwarding and parity deltas travel plain loopback TCP, exactly
  // like client traffic -- including the connect deadline, so a hop into a
  // dead peer fails over instead of hanging the chain.  In reactor mode
  // peers dial the target's dedicated peer door (the chain carries public
  // addresses, so the connector rewrites them here).
  const net::ConnectOptions copts = connect_options();
  std::map<std::string, ServerAddress> peer_doors;
  for (std::size_t i = 0; i < peer_fronts_.size(); ++i) {
    peer_doors[addresses_[i].key()] =
        ServerAddress{"127.0.0.1", peer_fronts_[i]->port()};
  }
  for (auto& server : servers_) {
    server->set_peer_connector(
        [copts,
         peer_doors](const ServerAddress& addr) -> core::Result<net::StreamPtr> {
          const auto it = peer_doors.find(addr.key());
          const ServerAddress& target =
              it == peer_doors.end() ? addr : it->second;
          return net::TcpStream::connect(target.host, target.port, copts);
        });
  }
  started_ = true;
  return core::Status::ok();
}

void TcpDeployment::stop() {
  if (!started_) return;
  if (options_.serve_mode == ServeMode::kReactor) {
    // Unregister the stats collectors before their backing fronts die.
    if (master_collector_ != 0) {
      master_.metrics_registry().remove_collector(master_collector_);
      master_collector_ = 0;
    }
    for (std::size_t i = 0; i < server_collectors_.size(); ++i) {
      servers_[i]->metrics_registry().remove_collector(server_collectors_[i]);
    }
    server_collectors_.clear();
    // close() waits until no handler is running or queued, so the servers
    // and master the handlers capture outlive every dispatch.
    if (master_front_) master_front_->close();
    for (auto& f : server_fronts_) {
      if (f) f->close();
    }
    for (auto& f : peer_fronts_) {
      if (f) f->close();
    }
    master_front_.reset();
    server_fronts_.clear();
    peer_fronts_.clear();
    worker_pools_.clear();
    peer_pools_.clear();
    reactors_.reset();
  } else {
    master_listener_.close();
    for (auto& l : server_listeners_) l->close();
    for (auto& t : accept_threads_) {
      if (t.joinable()) t.join();
    }
    accept_threads_.clear();
  }
  master_.shutdown();
  for (auto& s : servers_) s->shutdown();
  started_ = false;
}

std::uint16_t TcpDeployment::master_port() const {
  return master_front_ ? master_front_->port() : master_listener_.port();
}

std::vector<net::ReactorStats> TcpDeployment::reactor_stats() const {
  return reactors_ ? reactors_->stats() : std::vector<net::ReactorStats>{};
}

net::ReactorServerStats TcpDeployment::server_net_stats(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= server_fronts_.size() ||
      !server_fronts_[static_cast<std::size_t>(i)]) {
    return {};
  }
  return server_fronts_[static_cast<std::size_t>(i)]->stats();
}

net::ReactorServerStats TcpDeployment::master_net_stats() const {
  return master_front_ ? master_front_->stats() : net::ReactorServerStats{};
}

ServerAddress TcpDeployment::server_address(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= addresses_.size()) return {};
  return addresses_[static_cast<std::size_t>(i)];
}

core::Status TcpDeployment::ingest(const vol::DatasetDesc& desc,
                                   std::uint32_t block_bytes,
                                   std::uint32_t stripe_blocks,
                                   std::uint32_t replication_factor,
                                   const codec::EcProfile& ec) {
  if (!started_) {
    if (auto st = start(); !st.is_ok()) return st;
  }
  std::vector<BlockServer*> raw;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
  }
  return ingest_dataset(master_, std::move(raw), addresses_, desc,
                        block_bytes, stripe_blocks, replication_factor, ec);
}

core::Result<DpssClient> TcpDeployment::make_client() {
  if (!started_) {
    if (auto st = start(); !st.is_ok()) return st;
  }
  const net::ConnectOptions copts = connect_options();
  auto master_stream =
      net::TcpStream::connect("127.0.0.1", master_port(), copts);
  if (!master_stream.is_ok()) return master_stream.status();
  Connector connector =
      [copts](const ServerAddress& addr) -> core::Result<net::StreamPtr> {
    return net::TcpStream::connect(addr.host, addr.port, copts);
  };
  return DpssClient(std::move(master_stream).take(), std::move(connector));
}

void TcpDeployment::kill_server(int i) {
  {
    std::lock_guard lk(state_mu_);
    if (!started_ || i < 0 ||
        static_cast<std::size_t>(i) >= servers_.size() ||
        killed_[static_cast<std::size_t>(i)]) {
      return;
    }
    killed_[static_cast<std::size_t>(i)] = 1;
  }
  // Stop the front door first (reactor close drains in-flight handlers;
  // listener close wakes the accept thread), then shut the server down to
  // drop its pooled peer links.
  if (options_.serve_mode == ServeMode::kReactor) {
    server_fronts_[static_cast<std::size_t>(i)]->close();
    if (static_cast<std::size_t>(i) < peer_fronts_.size() &&
        peer_fronts_[static_cast<std::size_t>(i)]) {
      peer_fronts_[static_cast<std::size_t>(i)]->close();
    }
  } else {
    server_listeners_[static_cast<std::size_t>(i)]->close();
  }
  servers_[static_cast<std::size_t>(i)]->shutdown();
}

bool TcpDeployment::server_killed(int i) const {
  std::lock_guard lk(state_mu_);
  return i >= 0 && static_cast<std::size_t>(i) < servers_.size() &&
         killed_[static_cast<std::size_t>(i)];
}

void TcpDeployment::wipe_server(int i) {
  kill_server(i);
  if (i < 0 || static_cast<std::size_t>(i) >= servers_.size()) return;
  servers_[static_cast<std::size_t>(i)]->wipe();
  master_.health().mark_down(server_address(i));
}

void TcpDeployment::heartbeat_all(double now) {
  std::vector<std::pair<int, std::uint64_t>> beats;
  std::vector<meta::GenerationFloor> floors;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (killed_[i]) continue;
      beats.emplace_back(static_cast<int>(i), servers_[i]->requests_served());
      for (const auto& name : servers_[i]->dataset_names()) {
        floors.push_back({name, servers_[i]->max_generation(name)});
      }
    }
  }
  for (const auto& [i, served] : beats) {
    master_.heartbeat(server_address(i), served, now);
  }
  master_.gossip().merge(floors);
}

void TcpDeployment::enable_auto_rebalance(double down_deadline_seconds) {
  master_.enable_auto_rebalance(
      AutoRebalanceConfig{down_deadline_seconds},
      [this](const placement::RebalancePlan& plan) {
        return apply_rebalance_plan(
            plan, [this](const ServerAddress& a) { return server_for(a); });
      });
}

void TcpDeployment::enable_fixups() {
  master_.set_fixup_executor([this](const ingest::FixupTask& task) {
    return apply_fixup(task, master_,
                       [this](const ServerAddress& a) { return server_for(a); });
  });
}

void TcpDeployment::enable_trace_collection(std::size_t sink_capacity) {
  trace_exports_.clear();
  trace_exports_.push_back(make_trace_export(
      "master", sink_capacity,
      [this](std::shared_ptr<netlog::NetLogger> l) {
        master_.set_logger(std::move(l));
      }));
  for (auto& server : servers_) {
    BlockServer* s = server.get();
    trace_exports_.push_back(make_trace_export(
        s->name(), sink_capacity, [s](std::shared_ptr<netlog::NetLogger> l) {
          s->set_logger(std::move(l));
        }));
  }
}

std::uint64_t TcpDeployment::export_spans() {
  std::uint64_t accepted = 0;
  for (auto& e : trace_exports_) {
    accepted += export_spans_to_master(master_, *e);
  }
  return accepted;
}

BlockServer* TcpDeployment::server_for(const ServerAddress& addr) {
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] == addr) return servers_[i].get();
  }
  return nullptr;
}

core::Status TcpDeployment::rebalance_dataset(const std::string& name) {
  std::vector<ServerAddress> live;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!killed_[i]) live.push_back(server_address(static_cast<int>(i)));
    }
  }
  return rebalance_live(master_, name, std::move(live),
                        [this](const ServerAddress& a) { return server_for(a); });
}

}  // namespace visapult::dpss
