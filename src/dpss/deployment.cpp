#include "dpss/deployment.h"

#include <cstring>

#include "net/stream.h"
#include "placement/placement_map.h"

namespace visapult::dpss {

// ---- shared ingest -----------------------------------------------------------

core::Status ingest_dataset(Master& master, std::vector<BlockServer*> servers,
                            std::vector<ServerAddress> addresses,
                            const vol::DatasetDesc& desc,
                            std::uint32_t block_bytes,
                            std::uint32_t stripe_blocks,
                            std::uint32_t replication_factor) {
  if (servers.empty()) return core::invalid_argument("no servers");
  if (replication_factor == 0) replication_factor = 1;
  if (replication_factor > servers.size()) {
    return core::invalid_argument("replication factor exceeds server count");
  }
  DatasetLayout layout;
  layout.total_bytes = desc.total_bytes();
  layout.block_bytes = block_bytes;
  layout.stripe_blocks = stripe_blocks;
  layout.server_count = static_cast<std::uint32_t>(servers.size());

  PlacementOptions options;
  options.replication_factor = replication_factor;
  std::unique_ptr<placement::PlacementMap> map;
  if (options.uses_ring()) {
    placement::HashRing ring(addresses, placement::kDefaultVnodes);
    map = std::make_unique<placement::PlacementMap>(
        desc.name, std::move(ring), layout.block_count(), stripe_blocks,
        replication_factor);
  }
  auto owners = [&](std::uint64_t block) -> std::vector<std::uint32_t> {
    if (map) return map->replicas_for_block(block).servers;
    return {layout.server_for_block(block)};
  };

  const std::size_t step_bytes = desc.bytes_per_step();
  for (int t = 0; t < desc.timesteps; ++t) {
    const vol::Volume v = desc.generate(t);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(v.data().data());
    const std::uint64_t base = static_cast<std::uint64_t>(t) * step_bytes;
    std::uint64_t at = 0;
    while (at < step_bytes) {
      const std::uint64_t abs = base + at;
      const std::uint64_t block = abs / block_bytes;
      // Timestep boundaries are block-aligned only if step_bytes is a
      // multiple of block_bytes; handle the general case by splitting at
      // block boundaries and merging partial blocks across steps.
      const std::uint64_t in_block = abs % block_bytes;
      const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
          step_bytes - at, block_bytes - in_block));
      for (std::uint32_t owner : owners(block)) {
        BlockServer* srv = servers[owner];
        if (in_block == 0 && n == block_bytes) {
          srv->put_block(desc.name, block,
                         std::vector<std::uint8_t>(bytes + at, bytes + at + n));
        } else {
          // Read-modify-write the partial block.
          std::vector<std::uint8_t> blk;
          auto existing = srv->get_block(desc.name, block);
          if (existing.is_ok()) {
            blk = std::move(existing).take();
          }
          const std::uint64_t want = layout.block_length(block);
          if (blk.size() < want) blk.resize(static_cast<std::size_t>(want), 0);
          std::memcpy(blk.data() + in_block, bytes + at, n);
          srv->put_block(desc.name, block, std::move(blk));
        }
      }
      at += n;
    }
  }
  return master.register_dataset(desc.name, layout, std::move(addresses),
                                 options);
}

core::Status apply_rebalance_plan(
    const placement::RebalancePlan& plan,
    const std::function<BlockServer*(const ServerAddress&)>& resolve) {
  // Runs as the master's rebalance executor, i.e. before the new map is
  // published.  Copies first regardless, so a partially-executed plan
  // never leaves a published replica without its blocks.
  for (const auto& copy : plan.copies) {
    BlockServer* source = resolve(copy.source);
    BlockServer* target = resolve(copy.target);
    if (!target) {
      return core::unavailable("rebalance target unreachable: " +
                               copy.target.key());
    }
    if (!source) {
      return core::unavailable("rebalance source unreachable: " +
                               copy.source.key());
    }
    for (std::uint64_t b = plan.group_first_block(copy.group);
         b < plan.group_last_block(copy.group); ++b) {
      auto data = source->get_block(plan.dataset, b);
      if (!data.is_ok()) return data.status();
      // put_block is write-through: the replica fill is admitted to the
      // target's memory tier, so a failover read hits warm.
      target->put_block(plan.dataset, b, std::move(data).take());
    }
  }
  for (const auto& drop : plan.drops) {
    BlockServer* server = resolve(drop.server);
    if (!server) continue;  // a dead server's store needs no cleanup
    for (std::uint64_t b = plan.group_first_block(drop.group);
         b < plan.group_last_block(drop.group); ++b) {
      server->drop_block(plan.dataset, b);
    }
  }
  return core::Status::ok();
}

namespace {

// Shared deployment rebalance flow: hand the master the live membership
// and execute the plan against the resolved block servers while the old
// map is still the one being served.
core::Status rebalance_live(
    Master& master, const std::string& name,
    std::vector<ServerAddress> live,
    const std::function<BlockServer*(const ServerAddress&)>& resolve) {
  auto plan = master.rebalance_dataset(
      name, std::move(live), [&](const placement::RebalancePlan& p) {
        return apply_rebalance_plan(p, resolve);
      });
  return plan.is_ok() ? core::Status::ok() : plan.status();
}

}  // namespace

// ---- pipe deployment ---------------------------------------------------------

PipeDeployment::PipeDeployment(int server_count, DiskModel disk,
                               ServerCacheConfig cache)
    : disk_(disk), cache_config_(cache) {
  for (int i = 0; i < server_count; ++i) {
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk, /*throttle=*/false, cache));
    killed_.push_back(0);
  }
}

PipeDeployment::~PipeDeployment() {
  master_.shutdown();
  for (auto& s : servers_) s->shutdown();
}

ServerAddress PipeDeployment::server_address(int i) const {
  return ServerAddress{"pipe-server-" + std::to_string(i),
                       static_cast<std::uint16_t>(i)};
}

core::Status PipeDeployment::ingest(const vol::DatasetDesc& desc,
                                    std::uint32_t block_bytes,
                                    std::uint32_t stripe_blocks,
                                    std::uint32_t replication_factor) {
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(server_address(static_cast<int>(i)));
  }
  return ingest_dataset(master_, std::move(raw), std::move(addrs), desc,
                        block_bytes, stripe_blocks, replication_factor);
}

core::Status PipeDeployment::generate_thumbnails(
    const vol::DatasetDesc& desc, const render::TransferFunction& tf,
    const ThumbnailOptions& options) {
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(server_address(static_cast<int>(i)));
  }
  return dpss::generate_thumbnails(master_, std::move(raw), std::move(addrs),
                                   desc, tf, options);
}

DpssClient PipeDeployment::make_client() {
  auto [client_end, master_end] = net::make_pipe();
  master_.serve(master_end);
  Connector connector = [this](const ServerAddress& addr)
      -> core::Result<net::StreamPtr> {
    BlockServer* srv = nullptr;
    {
      std::lock_guard lk(state_mu_);
      // Pipe addresses carry the server index in the port field.
      if (addr.port >= servers_.size()) {
        return core::not_found("unknown pipe server: " + addr.host);
      }
      if (killed_[addr.port]) {
        return core::unavailable("server killed: " + addr.host);
      }
      srv = servers_[addr.port].get();
    }
    auto [client_side, server_side] = net::make_pipe();
    srv->serve(server_side);
    return client_side;
  };
  return DpssClient(client_end, std::move(connector));
}

void PipeDeployment::kill_server(int i) {
  BlockServer* srv = nullptr;
  {
    std::lock_guard lk(state_mu_);
    if (i < 0 || static_cast<std::size_t>(i) >= servers_.size() ||
        killed_[static_cast<std::size_t>(i)]) {
      return;
    }
    killed_[static_cast<std::size_t>(i)] = 1;
    srv = servers_[static_cast<std::size_t>(i)].get();
  }
  // Outside the lock: shutdown joins service threads.
  srv->shutdown();
}

void PipeDeployment::revive_server(int i) {
  std::uint64_t served = 0;
  {
    std::lock_guard lk(state_mu_);
    if (i < 0 || static_cast<std::size_t>(i) >= servers_.size() ||
        !killed_[static_cast<std::size_t>(i)]) {
      return;
    }
    killed_[static_cast<std::size_t>(i)] = 0;
    served = servers_[static_cast<std::size_t>(i)]->requests_served();
  }
  // Announce the rejoin so health-ranked opens use the server again.
  master_.heartbeat(server_address(i), served);
}

bool PipeDeployment::server_killed(int i) const {
  std::lock_guard lk(state_mu_);
  return i >= 0 && static_cast<std::size_t>(i) < servers_.size() &&
         killed_[static_cast<std::size_t>(i)];
}

int PipeDeployment::add_server() {
  int i;
  {
    std::lock_guard lk(state_mu_);
    i = static_cast<int>(servers_.size());
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk_, /*throttle=*/false,
        cache_config_));
    killed_.push_back(0);
  }
  master_.heartbeat(server_address(i), 0);
  return i;
}

void PipeDeployment::heartbeat_all() {
  std::vector<std::pair<int, std::uint64_t>> beats;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (killed_[i]) continue;
      beats.emplace_back(static_cast<int>(i), servers_[i]->requests_served());
    }
  }
  for (const auto& [i, served] : beats) {
    master_.heartbeat(server_address(i), served);
  }
}

BlockServer* PipeDeployment::server_for(const ServerAddress& addr) {
  std::lock_guard lk(state_mu_);
  if (addr.port >= servers_.size()) return nullptr;
  return servers_[addr.port].get();
}

core::Status PipeDeployment::rebalance_dataset(const std::string& name) {
  std::vector<ServerAddress> live;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!killed_[i]) live.push_back(server_address(static_cast<int>(i)));
    }
  }
  return rebalance_live(master_, name, std::move(live),
                        [this](const ServerAddress& a) { return server_for(a); });
}

// ---- TCP deployment ----------------------------------------------------------

TcpDeployment::TcpDeployment(int server_count, DiskModel disk, bool throttle,
                             ServerCacheConfig cache) {
  for (int i = 0; i < server_count; ++i) {
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk, throttle, cache));
    killed_.push_back(0);
  }
}

TcpDeployment::~TcpDeployment() { stop(); }

core::Status TcpDeployment::start() {
  if (started_) return core::Status::ok();
  if (auto st = master_listener_.listen(0); !st.is_ok()) return st;
  accept_threads_.emplace_back([this] {
    for (;;) {
      auto stream = master_listener_.accept();
      if (!stream.is_ok()) return;
      master_.serve(stream.value());
    }
  });
  for (auto& server : servers_) {
    auto listener = std::make_unique<net::TcpListener>();
    if (auto st = listener->listen(0); !st.is_ok()) return st;
    net::TcpListener* raw = listener.get();
    BlockServer* srv = server.get();
    accept_threads_.emplace_back([raw, srv] {
      for (;;) {
        auto stream = raw->accept();
        if (!stream.is_ok()) return;
        srv->serve(stream.value());
      }
    });
    addresses_.push_back(ServerAddress{"127.0.0.1", listener->port()});
    server_listeners_.push_back(std::move(listener));
  }
  started_ = true;
  return core::Status::ok();
}

void TcpDeployment::stop() {
  if (!started_) return;
  master_listener_.close();
  for (auto& l : server_listeners_) l->close();
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  master_.shutdown();
  for (auto& s : servers_) s->shutdown();
  started_ = false;
}

ServerAddress TcpDeployment::server_address(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= addresses_.size()) return {};
  return addresses_[static_cast<std::size_t>(i)];
}

core::Status TcpDeployment::ingest(const vol::DatasetDesc& desc,
                                   std::uint32_t block_bytes,
                                   std::uint32_t stripe_blocks,
                                   std::uint32_t replication_factor) {
  if (!started_) {
    if (auto st = start(); !st.is_ok()) return st;
  }
  std::vector<BlockServer*> raw;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
  }
  return ingest_dataset(master_, std::move(raw), addresses_, desc,
                        block_bytes, stripe_blocks, replication_factor);
}

core::Result<DpssClient> TcpDeployment::make_client() {
  if (!started_) {
    if (auto st = start(); !st.is_ok()) return st;
  }
  auto master_stream = net::TcpStream::connect("127.0.0.1", master_port());
  if (!master_stream.is_ok()) return master_stream.status();
  Connector connector =
      [](const ServerAddress& addr) -> core::Result<net::StreamPtr> {
    return net::TcpStream::connect(addr.host, addr.port);
  };
  return DpssClient(std::move(master_stream).take(), std::move(connector));
}

void TcpDeployment::kill_server(int i) {
  {
    std::lock_guard lk(state_mu_);
    if (!started_ || i < 0 ||
        static_cast<std::size_t>(i) >= servers_.size() ||
        killed_[static_cast<std::size_t>(i)]) {
      return;
    }
    killed_[static_cast<std::size_t>(i)] = 1;
  }
  // Closing the listener wakes its accept thread; shutting the server down
  // closes every established connection mid-request.
  server_listeners_[static_cast<std::size_t>(i)]->close();
  servers_[static_cast<std::size_t>(i)]->shutdown();
}

bool TcpDeployment::server_killed(int i) const {
  std::lock_guard lk(state_mu_);
  return i >= 0 && static_cast<std::size_t>(i) < servers_.size() &&
         killed_[static_cast<std::size_t>(i)];
}

void TcpDeployment::heartbeat_all() {
  std::vector<std::pair<int, std::uint64_t>> beats;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (killed_[i]) continue;
      beats.emplace_back(static_cast<int>(i), servers_[i]->requests_served());
    }
  }
  for (const auto& [i, served] : beats) {
    master_.heartbeat(server_address(i), served);
  }
}

BlockServer* TcpDeployment::server_for(const ServerAddress& addr) {
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] == addr) return servers_[i].get();
  }
  return nullptr;
}

core::Status TcpDeployment::rebalance_dataset(const std::string& name) {
  std::vector<ServerAddress> live;
  {
    std::lock_guard lk(state_mu_);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!killed_[i]) live.push_back(server_address(static_cast<int>(i)));
    }
  }
  return rebalance_live(master_, name, std::move(live),
                        [this](const ServerAddress& a) { return server_for(a); });
}

}  // namespace visapult::dpss
