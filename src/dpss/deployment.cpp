#include "dpss/deployment.h"

#include <cstring>

#include "net/stream.h"

namespace visapult::dpss {

// ---- shared ingest -----------------------------------------------------------

core::Status ingest_dataset(Master& master, std::vector<BlockServer*> servers,
                            std::vector<ServerAddress> addresses,
                            const vol::DatasetDesc& desc,
                            std::uint32_t block_bytes,
                            std::uint32_t stripe_blocks) {
  if (servers.empty()) return core::invalid_argument("no servers");
  DatasetLayout layout;
  layout.total_bytes = desc.total_bytes();
  layout.block_bytes = block_bytes;
  layout.stripe_blocks = stripe_blocks;
  layout.server_count = static_cast<std::uint32_t>(servers.size());

  const std::size_t step_bytes = desc.bytes_per_step();
  for (int t = 0; t < desc.timesteps; ++t) {
    const vol::Volume v = desc.generate(t);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(v.data().data());
    const std::uint64_t base = static_cast<std::uint64_t>(t) * step_bytes;
    std::uint64_t at = 0;
    while (at < step_bytes) {
      const std::uint64_t abs = base + at;
      const std::uint64_t block = abs / block_bytes;
      // Timestep boundaries are block-aligned only if step_bytes is a
      // multiple of block_bytes; handle the general case by splitting at
      // block boundaries and merging partial blocks across steps.
      const std::uint64_t in_block = abs % block_bytes;
      const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
          step_bytes - at, block_bytes - in_block));
      BlockServer* srv = servers[layout.server_for_block(block)];
      if (in_block == 0 && n == block_bytes) {
        srv->put_block(desc.name, block,
                       std::vector<std::uint8_t>(bytes + at, bytes + at + n));
      } else {
        // Read-modify-write the partial block.
        std::vector<std::uint8_t> blk;
        auto existing = srv->get_block(desc.name, block);
        if (existing.is_ok()) {
          blk = std::move(existing).take();
        }
        const std::uint64_t want = layout.block_length(block);
        if (blk.size() < want) blk.resize(static_cast<std::size_t>(want), 0);
        std::memcpy(blk.data() + in_block, bytes + at, n);
        srv->put_block(desc.name, block, std::move(blk));
      }
      at += n;
    }
  }
  return master.register_dataset(desc.name, layout, std::move(addresses));
}

// ---- pipe deployment ---------------------------------------------------------

PipeDeployment::PipeDeployment(int server_count, DiskModel disk,
                               ServerCacheConfig cache) {
  for (int i = 0; i < server_count; ++i) {
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk, /*throttle=*/false, cache));
  }
}

PipeDeployment::~PipeDeployment() {
  master_.shutdown();
  for (auto& s : servers_) s->shutdown();
}

core::Status PipeDeployment::ingest(const vol::DatasetDesc& desc,
                                    std::uint32_t block_bytes,
                                    std::uint32_t stripe_blocks) {
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(ServerAddress{"pipe-server-" + std::to_string(i),
                                  static_cast<std::uint16_t>(i)});
  }
  return ingest_dataset(master_, std::move(raw), std::move(addrs), desc,
                        block_bytes, stripe_blocks);
}

core::Status PipeDeployment::generate_thumbnails(
    const vol::DatasetDesc& desc, const render::TransferFunction& tf,
    const ThumbnailOptions& options) {
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(ServerAddress{"pipe-server-" + std::to_string(i),
                                  static_cast<std::uint16_t>(i)});
  }
  return dpss::generate_thumbnails(master_, std::move(raw), std::move(addrs),
                                   desc, tf, options);
}

DpssClient PipeDeployment::make_client() {
  auto [client_end, master_end] = net::make_pipe();
  master_.serve(master_end);
  Connector connector = [this](const ServerAddress& addr)
      -> core::Result<net::StreamPtr> {
    // Pipe addresses carry the server index in the port field.
    if (addr.port >= servers_.size()) {
      return core::not_found("unknown pipe server: " + addr.host);
    }
    auto [client_side, server_side] = net::make_pipe();
    servers_[addr.port]->serve(server_side);
    return client_side;
  };
  return DpssClient(client_end, std::move(connector));
}

// ---- TCP deployment ----------------------------------------------------------

TcpDeployment::TcpDeployment(int server_count, DiskModel disk, bool throttle,
                             ServerCacheConfig cache) {
  for (int i = 0; i < server_count; ++i) {
    servers_.push_back(std::make_unique<BlockServer>(
        "dpss-server-" + std::to_string(i), disk, throttle, cache));
  }
}

TcpDeployment::~TcpDeployment() { stop(); }

core::Status TcpDeployment::start() {
  if (started_) return core::Status::ok();
  if (auto st = master_listener_.listen(0); !st.is_ok()) return st;
  accept_threads_.emplace_back([this] {
    for (;;) {
      auto stream = master_listener_.accept();
      if (!stream.is_ok()) return;
      master_.serve(stream.value());
    }
  });
  for (auto& server : servers_) {
    auto listener = std::make_unique<net::TcpListener>();
    if (auto st = listener->listen(0); !st.is_ok()) return st;
    net::TcpListener* raw = listener.get();
    BlockServer* srv = server.get();
    accept_threads_.emplace_back([raw, srv] {
      for (;;) {
        auto stream = raw->accept();
        if (!stream.is_ok()) return;
        srv->serve(stream.value());
      }
    });
    server_listeners_.push_back(std::move(listener));
  }
  started_ = true;
  return core::Status::ok();
}

void TcpDeployment::stop() {
  if (!started_) return;
  master_listener_.close();
  for (auto& l : server_listeners_) l->close();
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  master_.shutdown();
  for (auto& s : servers_) s->shutdown();
  started_ = false;
}

core::Status TcpDeployment::ingest(const vol::DatasetDesc& desc,
                                   std::uint32_t block_bytes,
                                   std::uint32_t stripe_blocks) {
  if (!started_) {
    if (auto st = start(); !st.is_ok()) return st;
  }
  std::vector<BlockServer*> raw;
  std::vector<ServerAddress> addrs;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    raw.push_back(servers_[i].get());
    addrs.push_back(
        ServerAddress{"127.0.0.1", server_listeners_[i]->port()});
  }
  return ingest_dataset(master_, std::move(raw), std::move(addrs), desc,
                        block_bytes, stripe_blocks);
}

core::Result<DpssClient> TcpDeployment::make_client() {
  if (!started_) {
    if (auto st = start(); !st.is_ok()) return st;
  }
  auto master_stream = net::TcpStream::connect("127.0.0.1", master_port());
  if (!master_stream.is_ok()) return master_stream.status();
  Connector connector =
      [](const ServerAddress& addr) -> core::Result<net::StreamPtr> {
    return net::TcpStream::connect(addr.host, addr.port);
  };
  return DpssClient(std::move(master_stream).take(), std::move(connector));
}

}  // namespace visapult::dpss
