#include "netsim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace visapult::netsim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Byte-level epsilon for "transfer finished".
constexpr double kEps = 1e-6;
}  // namespace

NodeId Network::add_node(const std::string& name) {
  node_names_.push_back(name);
  adjacency_.emplace_back();
  return static_cast<NodeId>(node_names_.size() - 1);
}

LinkId Network::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  assert(a >= 0 && a < node_count() && b >= 0 && b < node_count());
  Link link;
  link.a = a;
  link.b = b;
  link.config = config;
  links_.push_back(link);
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[a].push_back({b, id});
  adjacency_[b].push_back({a, id});
  return id;
}

void Network::set_background(LinkId l, double bytes_per_sec) {
  links_[l].config.background_bytes_per_sec = bytes_per_sec;
}

std::vector<LinkId> Network::route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  std::vector<int> prev_link(node_count(), -1);
  std::vector<NodeId> prev_node(node_count(), -1);
  std::vector<bool> seen(node_count(), false);
  std::deque<NodeId> q{src};
  seen[src] = true;
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop_front();
    if (n == dst) break;
    for (const auto& [next, link] : adjacency_[n]) {
      if (seen[next]) continue;
      seen[next] = true;
      prev_link[next] = link;
      prev_node[next] = n;
      q.push_back(next);
    }
  }
  if (!seen[dst]) return {};
  std::vector<LinkId> path;
  for (NodeId n = dst; n != src; n = prev_node[n]) path.push_back(prev_link[n]);
  std::reverse(path.begin(), path.end());
  return path;
}

double Network::path_latency(NodeId src, NodeId dst) const {
  double total = 0.0;
  for (LinkId l : route(src, dst)) total += links_[l].config.latency_sec;
  return total;
}

core::Result<FlowId> Network::start_flow(NodeId src, NodeId dst, double bytes,
                                         const TcpParams& tcp,
                                         Callback on_complete) {
  if (bytes <= 0.0) return core::invalid_argument("flow bytes must be > 0");
  if (src < 0 || dst < 0 || src >= node_count() || dst >= node_count()) {
    return core::invalid_argument("bad node id");
  }
  std::vector<LinkId> path = route(src, dst);
  if (path.empty() && src != dst) {
    return core::unavailable("no route from " + node_names_[src] + " to " +
                             node_names_[dst]);
  }

  const FlowId id = next_flow_id_++;
  FlowStats& st = flow_stats_[id];
  st.id = id;
  st.src = src;
  st.dst = dst;
  st.bytes = bytes;
  st.start_time = now_;

  double rtt = 0.0;
  for (LinkId l : path) rtt += links_[l].config.latency_sec;
  const double one_way = rtt;
  rtt *= 2.0;

  auto activate = [this, id, path = std::move(path), bytes, tcp, rtt, one_way,
                   on_complete = std::move(on_complete)]() mutable {
    ActiveFlow f;
    f.id = id;
    f.path = std::move(path);
    f.remaining = bytes;
    f.tcp = tcp;
    f.rtt = rtt;
    if (rtt <= 0.0) {
      // Zero-latency path: window never limits throughput.
      f.cwnd = tcp.max_window_bytes;
      f.next_window_update = kInf;
    } else {
      f.cwnd = std::min(tcp.initial_window_bytes, tcp.max_window_bytes);
      f.next_window_update = now_ + rtt;
    }
    f.on_complete = [this, one_way, cb = std::move(on_complete)]() {
      // Last byte still has to propagate to the receiver.
      if (cb) schedule_at(now_ + one_way, cb);
    };
    flows_.emplace(id, std::move(f));
  };

  if (tcp.handshake && rtt > 0.0) {
    schedule_at(now_ + rtt, std::move(activate));
  } else {
    activate();
  }
  return id;
}

void Network::schedule_at(double t, Callback fn) {
  assert(t >= now_ - 1e-12);
  events_.push(PendingEvent{std::max(t, now_), event_seq_++, std::move(fn)});
}

bool Network::idle() const { return flows_.empty() && events_.empty(); }

double Network::flow_rate(FlowId f) const {
  auto it = flows_.find(f);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void Network::recompute_rates() {
  // Phase 1 -- QoS grants: each reserved flow is granted up to its
  // reservation from residual link capacity, first-come-first-served (by
  // flow id, i.e. admission order).  Phase 2 -- window-capped max-min
  // fairness distributes the remaining capacity: repeatedly fix the most-
  // constrained unfixed flow, charging its extra rate against residuals.
  std::vector<ActiveFlow*> unfixed;
  unfixed.reserve(flows_.size());
  std::vector<double> grant(flows_.size(), 0.0);
  for (auto& [id, f] : flows_) {
    f.rate = 0.0;
    unfixed.push_back(&f);
  }
  std::vector<double> residual(links_.size());
  std::vector<int> active_count(links_.size(), 0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].config.available();
  }
  for (ActiveFlow* f : unfixed) {
    for (LinkId l : f->path) ++active_count[l];
  }

  std::vector<double> granted(unfixed.size(), 0.0);
  for (std::size_t i = 0; i < unfixed.size(); ++i) {
    ActiveFlow* f = unfixed[i];
    if (f->tcp.reserved_bytes_per_sec <= 0.0 || f->path.empty()) continue;
    double g = f->tcp.reserved_bytes_per_sec;
    if (f->rtt > 0.0) g = std::min(g, f->cwnd / f->rtt);
    for (LinkId l : f->path) g = std::min(g, residual[l]);
    granted[i] = std::max(0.0, g);
    for (LinkId l : f->path) residual[l] -= granted[i];
  }

  while (!unfixed.empty()) {
    // Candidate *extra* rate (above any grant) for each unfixed flow.
    double best = kInf;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < unfixed.size(); ++i) {
      ActiveFlow* f = unfixed[i];
      double cand = f->rtt > 0.0
                        ? std::max(0.0, f->cwnd / f->rtt - granted[i])
                        : kInf;
      for (LinkId l : f->path) {
        cand = std::min(cand, std::max(0.0, residual[l]) / active_count[l]);
      }
      if (f->path.empty()) cand = kInf;  // src == dst: instantaneous-ish
      if (cand < best) {
        best = cand;
        best_idx = i;
      }
    }
    ActiveFlow* f = unfixed[best_idx];
    const double extra = best == kInf ? kInf : std::max(0.0, best);
    f->rate = std::isinf(extra) ? kInf : granted[best_idx] + extra;
    for (LinkId l : f->path) {
      residual[l] = std::max(0.0, residual[l] - (std::isinf(extra) ? 0.0 : extra));
      --active_count[l];
    }
    granted.erase(granted.begin() + static_cast<std::ptrdiff_t>(best_idx));
    unfixed.erase(unfixed.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }
}

double Network::next_intrinsic_event() const {
  double t = kInf;
  for (const auto& [id, f] : flows_) {
    if (f.rate > 0.0 && !std::isinf(f.rate)) {
      t = std::min(t, now_ + f.remaining / f.rate);
    } else if (std::isinf(f.rate)) {
      t = std::min(t, now_);  // completes immediately
    }
    if (f.cwnd < std::min(f.tcp.max_window_bytes, f.tcp.ssthresh_bytes) ||
        (f.cwnd < f.tcp.max_window_bytes)) {
      t = std::min(t, f.next_window_update);
    }
  }
  return t;
}

void Network::integrate(double dt) {
  if (dt <= 0.0) return;
  for (auto& [id, f] : flows_) {
    const double moved = std::isinf(f.rate) ? f.remaining : f.rate * dt;
    const double delivered = std::min(f.remaining, moved);
    f.remaining -= delivered;
    for (LinkId l : f.path) {
      links_[l].stats.bytes_carried += delivered;
    }
  }
  // Busy-time accounting: a link is busy if any foreground flow crosses it.
  std::vector<bool> busy(links_.size(), false);
  for (const auto& [id, f] : flows_) {
    for (LinkId l : f.path) busy[l] = true;
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (busy[l]) links_[l].stats.busy_time += dt;
  }
}

void Network::handle_intrinsic_events() {
  // Window growth for flows whose update time has arrived.
  for (auto& [id, f] : flows_) {
    while (f.next_window_update <= now_ + 1e-12 &&
           f.cwnd < f.tcp.max_window_bytes) {
      if (f.cwnd < f.tcp.ssthresh_bytes) {
        f.cwnd = std::min(f.cwnd * 2.0, f.tcp.max_window_bytes);  // slow start
      } else {
        f.cwnd = std::min(f.cwnd + f.tcp.mss_bytes, f.tcp.max_window_bytes);
      }
      f.next_window_update += f.rtt;
    }
    if (f.cwnd >= f.tcp.max_window_bytes) f.next_window_update = kInf;
  }
  // Completions.  Collect first: callbacks may start new flows.
  std::vector<Callback> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    ActiveFlow& f = it->second;
    if (f.remaining <= kEps || std::isinf(f.rate)) {
      FlowStats& st = flow_stats_[f.id];
      st.finished = true;
      st.end_time = now_;
      st.final_cwnd = f.cwnd;
      if (f.on_complete) done.push_back(std::move(f.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& cb : done) cb();
}

void Network::run_until(double t) {
  stalled_ = false;
  while (now_ < t - 1e-12) {
    // Fire all events due now.
    while (!events_.empty() && events_.top().time <= now_ + 1e-12) {
      Callback fn = events_.top().fn;
      events_.pop();
      fn();
    }
    recompute_rates();
    handle_intrinsic_events();
    recompute_rates();

    double next = t;
    if (!events_.empty()) next = std::min(next, events_.top().time);
    next = std::min(next, next_intrinsic_event());
    if (next <= now_ + 1e-12) {
      // An intrinsic event fires "now"; loop again without advancing.
      // (handle_intrinsic_events above has already consumed it.)
      if (flows_.empty() && events_.empty()) {
        now_ = t;
        return;
      }
      // Avoid an infinite loop on pathological zero-progress states.
      if (std::isinf(next_intrinsic_event()) && events_.empty()) {
        stalled_ = true;
        return;
      }
      continue;
    }
    const double dt = next - now_;
    integrate(dt);
    now_ = next;
    handle_intrinsic_events();
  }
  now_ = std::max(now_, t);
}

void Network::run() {
  for (;;) {
    // Fire everything due now (callbacks may enqueue more "now" work; the
    // loop comes back around for it).
    while (!events_.empty() && events_.top().time <= now_ + 1e-12) {
      Callback fn = events_.top().fn;
      events_.pop();
      fn();
    }
    recompute_rates();
    handle_intrinsic_events();
    if (idle()) return;
    recompute_rates();

    double next = kInf;
    if (!events_.empty()) next = std::min(next, events_.top().time);
    next = std::min(next, next_intrinsic_event());
    if (std::isinf(next)) {
      // Flows exist but nothing can ever progress (e.g. a link fully
      // consumed by background traffic).
      stalled_ = !flows_.empty();
      return;
    }
    if (next <= now_ + 1e-12) continue;  // more work materialised "now"
    integrate(next - now_);
    now_ = next;
  }
}

// ---- Connection -------------------------------------------------------------

Connection::Connection(Network& net, NodeId src, NodeId dst, TcpParams tcp)
    : net_(net), src_(src), dst_(dst), tcp_(tcp),
      queue_(std::make_shared<std::deque<Pending>>()) {}

core::Result<FlowId> Connection::transfer(double bytes,
                                          Network::Callback on_complete) {
  if (in_flight_) {
    // Serialize: remember the request; pump() will issue it.  The FlowId is
    // not known yet, so queued transfers report id -1 via the Result; the
    // callback still fires.  Callers that need the id should await the
    // previous transfer first (the pipeline components do).
    queue_->push_back({bytes, std::move(on_complete)});
    return FlowId{-1};
  }
  TcpParams p = tcp_;
  p.handshake = first_;
  first_ = false;
  in_flight_ = true;
  auto result = net_.start_flow(
      src_, dst_, bytes, p,
      [this, cb = std::move(on_complete)]() {
        in_flight_ = false;
        if (cb) cb();
        pump();
      });
  if (!result.is_ok()) {
    in_flight_ = false;
    return result;
  }
  // Remember the flow so pump() can adopt its final cwnd as the next
  // transfer's initial window (persistent-connection window carry-over).
  last_flow_ = result.value();
  return result;
}

void Connection::pump() {
  // Adopt the finished flow's window.
  if (last_flow_ >= 0) {
    const FlowStats& st = net_.flow_stats(last_flow_);
    if (st.finished && st.final_cwnd > 0.0) {
      tcp_.initial_window_bytes = st.final_cwnd;
    }
  }
  if (queue_->empty() || in_flight_) return;
  Pending p = std::move(queue_->front());
  queue_->pop_front();
  (void)transfer(p.bytes, std::move(p.cb));
}

}  // namespace visapult::netsim
