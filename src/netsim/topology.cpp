#include "netsim/topology.h"

#include "core/units.h"

namespace visapult::netsim {

using core::bytes_per_sec_from_mbps;
using core::kGigEMbps;
using core::kOC12Mbps;
using core::kOC48Mbps;

namespace {
LinkConfig link(const std::string& name, double mbps, double latency_sec,
                double background_mbps = 0.0) {
  LinkConfig c;
  c.name = name;
  c.bandwidth_bytes_per_sec = bytes_per_sec_from_mbps(mbps);
  c.latency_sec = latency_sec;
  c.background_bytes_per_sec = bytes_per_sec_from_mbps(background_mbps);
  return c;
}
}  // namespace

Testbed make_lan_gige() {
  Testbed tb;
  tb.name = "LAN-GigE";
  const NodeId dpss = tb.net.add_node("lbl-dpss");
  const NodeId sw = tb.net.add_node("lbl-switch");
  const NodeId smp = tb.net.add_node("diesel-e4500");
  const NodeId viewer = tb.net.add_node("lbl-desktop");
  tb.net.add_link(dpss, sw, link("dpss-uplink", kGigEMbps, 50e-6));
  tb.bottleneck =
      tb.net.add_link(sw, smp, link("smp-gige", kGigEMbps, 50e-6));
  tb.net.add_link(sw, viewer, link("viewer-gige", kGigEMbps, 50e-6));
  tb.site = {dpss, smp, viewer};
  tb.default_tcp.max_window_bytes = 1024.0 * 1024.0;
  return tb;
}

Testbed make_nton() {
  Testbed tb;
  tb.name = "NTON";
  const NodeId dpss = tb.net.add_node("lbl-dpss");
  const NodeId lbl = tb.net.add_node("lbl-border");
  const NodeId pop = tb.net.add_node("nton-oakland-pop");
  const NodeId snl = tb.net.add_node("snl-ca-border");
  const NodeId cplant = tb.net.add_node("cplant");
  const NodeId viewer = tb.net.add_node("snl-desktop");
  tb.net.add_link(dpss, lbl, link("dpss-gige", kGigEMbps, 50e-6));
  // The paper: "the OC-12 connection between LBL and NTON" is the
  // theoretical limit (622 Mbps).  SONET/ATM framing + IP/TCP headers eat
  // ~25% of the line rate, which is why even a saturated OC-12 delivers
  // ~70% goodput (Fig. 10's "respectable 70% utilization rate of the
  // theoretical bandwidth limit").  Modelled as permanent background load.
  tb.bottleneck = tb.net.add_link(
      lbl, pop, link("lbl-nton-oc12", kOC12Mbps, 0.5e-3,
                     /*background_mbps=*/kOC12Mbps * 0.25));
  tb.net.add_link(pop, snl, link("nton-oc48", kOC48Mbps, 0.7e-3));
  tb.net.add_link(snl, cplant, link("cplant-gige", kGigEMbps, 50e-6));
  tb.net.add_link(snl, viewer, link("viewer-100bt", 100.0, 50e-6));
  tb.site = {dpss, cplant, viewer};
  // NTON RTT is ~2.5 ms; 4 MB tuned buffers mean the window never binds.
  tb.default_tcp.max_window_bytes = 4.0 * 1024 * 1024;
  return tb;
}

Testbed make_esnet() {
  Testbed tb;
  tb.name = "ESnet";
  const NodeId dpss = tb.net.add_node("lbl-dpss");
  const NodeId lbl = tb.net.add_node("lbl-border");
  const NodeId es = tb.net.add_node("esnet-backbone");
  const NodeId anl = tb.net.add_node("anl-border");
  const NodeId smp = tb.net.add_node("anl-onyx2");
  const NodeId viewer = tb.net.add_node("lbl-desktop");
  tb.net.add_link(dpss, lbl, link("dpss-gige", kGigEMbps, 50e-6));
  // OC-12 backbone but shared: the paper measured ~100 Mbps with iperf and
  // ~128 Mbps with Visapult's parallel streams.  Background traffic leaves
  // ~130 Mbps available to a well-parallelised application.
  tb.bottleneck = tb.net.add_link(
      lbl, es, link("esnet-oc12-shared", kOC12Mbps, 14e-3,
                    /*background_mbps=*/kOC12Mbps - 130.0));
  tb.net.add_link(es, anl, link("esnet-anl-tail", kOC12Mbps, 14e-3,
                                kOC12Mbps - 200.0));
  tb.net.add_link(anl, smp, link("onyx2-gige", kGigEMbps, 50e-6));
  tb.net.add_link(lbl, viewer, link("viewer-100bt", 100.0, 50e-6));
  tb.site = {dpss, smp, viewer};
  // ~56 ms RTT with ~700 KB effective socket buffers: a single stream is
  // window-limited to ~100 Mbps (the iperf figure); parallel streams
  // together reach the ~130 Mbps the path has available.
  tb.default_tcp.max_window_bytes = 700.0 * 1024;
  return tb;
}

Sc99Testbed make_sc99() {
  Sc99Testbed tb;
  Network& net = tb.net;
  const NodeId lbl_dpss = net.add_node("lbl-dpss");
  const NodeId lbl = net.add_node("lbl-border");
  const NodeId pop = net.add_node("nton-oakland-pop");
  const NodeId snl = net.add_node("snl-ca-border");
  const NodeId cplant = net.add_node("cplant");
  const NodeId portland = net.add_node("nton-portland");
  const NodeId scinet = net.add_node("scinet-core");
  const NodeId lbl_booth = net.add_node("lbl-booth-cluster");
  const NodeId anl_booth = net.add_node("anl-booth-dpss");
  const NodeId viewer = net.add_node("showfloor-viewer");

  net.add_link(lbl_dpss, lbl, link("dpss-gige", kGigEMbps, 50e-6));
  tb.nton_link = net.add_link(lbl, pop, link("lbl-nton-oc12", kOC12Mbps, 0.5e-3));
  net.add_link(pop, snl, link("nton-oc48-south", kOC48Mbps, 0.7e-3));
  net.add_link(snl, cplant, link("cplant-gige", kGigEMbps, 50e-6));
  // NTON trunk up to Portland, then the shared SciNet show-floor segment.
  net.add_link(pop, portland, link("nton-oc48-north", kOC48Mbps, 5e-3));
  // SciNet: gigabit drop shared with the rest of the exhibit floor.  The
  // paper attributes the 250 -> 150 Mbps drop to "resource sharing over
  // SciNet"; ~65% of the segment is other exhibitors' traffic.
  tb.scinet_link = net.add_link(
      portland, scinet,
      link("scinet-shared", kGigEMbps, 0.3e-3, /*background_mbps=*/680.0));
  net.add_link(scinet, lbl_booth, link("booth-gige", kGigEMbps, 50e-6));
  net.add_link(scinet, anl_booth, link("anl-booth-gige", kGigEMbps, 50e-6));
  net.add_link(scinet, viewer, link("viewer-gige", kGigEMbps, 50e-6));

  tb.lbl_dpss = lbl_dpss;
  tb.anl_booth_dpss = anl_booth;
  tb.cplant = cplant;
  tb.showfloor_cluster = lbl_booth;
  tb.showfloor_viewer = viewer;
  return tb;
}

}  // namespace visapult::netsim
