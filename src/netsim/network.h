// Discrete-event wide-area network simulator.
//
// Substitutes for the paper's physical testbeds (NTON OC-12, ESnet, gigabit
// LAN, the shared SciNet show-floor path).  The model is a *fluid-flow* TCP
// approximation rather than per-packet simulation: each active transfer is a
// flow whose instantaneous rate is
//
//     rate = min( cwnd / RTT,  max-min fair share of every link on its path )
//
// with slow-start (cwnd doubles each RTT until ssthresh) and congestion-
// avoidance (one MSS per RTT) window growth, and a receiver-window cap
// (socket buffer size).  This reproduces exactly the effects the paper
// measures:
//   * bandwidth saturation and the ~70% OC-12 utilisation of Fig. 10,
//   * the slow first frame on high-latency ESnet while "the TCP window
//     fully opened" (Fig. 17),
//   * parallel striped connections outrunning a single iperf-like stream
//     (section 4.4.2),
//   * throughput loss on shared links (SciNet at SC99, section 4.1).
//
// The engine is single-threaded and deterministic; time is virtual, so a
// 44-minute ESnet campaign replays in microseconds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/status.h"

namespace visapult::netsim {

using NodeId = int;
using LinkId = int;
using FlowId = std::int64_t;

struct LinkConfig {
  std::string name;
  double bandwidth_bytes_per_sec = 0.0;  // capacity per direction (full duplex)
  double latency_sec = 0.0;              // one-way propagation delay
  // Capacity permanently consumed by unrelated traffic (SciNet sharing).
  double background_bytes_per_sec = 0.0;

  double available() const {
    return std::max(0.0, bandwidth_bytes_per_sec - background_bytes_per_sec);
  }
};

struct TcpParams {
  double mss_bytes = 1460.0;
  // Initial congestion window (bytes). RFC 2581-era: 2 segments.
  double initial_window_bytes = 2 * 1460.0;
  // Receiver window / socket buffer cap.  2000-era defaults were 64 KB;
  // the paper's tuned hosts used large buffers.
  double max_window_bytes = 1024.0 * 1024.0;
  // Slow-start threshold; effectively "none" by default so flows probe to
  // their fair share, which is how a loss-free fluid model behaves.
  double ssthresh_bytes = std::numeric_limits<double>::infinity();
  // Pay a one-RTT connection handshake before data flows.  Persistent
  // connections (Connection below) only pay it on the first transfer.
  bool handshake = true;
  // QoS bandwidth reservation (paper section 5 future work: "QoS
  // (including bandwidth reservation) capabilities ... to provide some
  // minimum bandwidth guarantees to a Visapult session").  A reserved flow
  // is granted up to this rate before fair sharing distributes the rest;
  // reservations are honoured first-come-first-served against residual
  // link capacity.
  double reserved_bytes_per_sec = 0.0;
};

struct FlowStats {
  FlowId id = -1;
  NodeId src = -1;
  NodeId dst = -1;
  double bytes = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;     // valid once finished
  bool finished = false;
  double final_cwnd = 0.0;   // congestion window at completion

  double duration() const { return end_time - start_time; }
  double throughput_bytes_per_sec() const {
    const double d = duration();
    return d > 0 ? bytes / d : 0.0;
  }
};

struct LinkStats {
  double bytes_carried = 0.0;   // foreground bytes across both directions
  double busy_time = 0.0;       // time with >= 1 active foreground flow
};

class Network {
 public:
  Network() = default;

  // ---- topology -------------------------------------------------------

  NodeId add_node(const std::string& name);
  // Bidirectional, full-duplex link (independent capacity per direction).
  LinkId add_link(NodeId a, NodeId b, const LinkConfig& config);

  int node_count() const { return static_cast<int>(node_names_.size()); }
  const std::string& node_name(NodeId n) const { return node_names_[n]; }
  const LinkConfig& link_config(LinkId l) const { return links_[l].config; }
  // Mutable so experiments can change background traffic mid-run.
  void set_background(LinkId l, double bytes_per_sec);

  // BFS hop-count route; empty if unreachable.
  std::vector<LinkId> route(NodeId src, NodeId dst) const;
  // Sum of one-way latencies along the route.
  double path_latency(NodeId src, NodeId dst) const;

  // ---- flows and events -------------------------------------------------

  using Callback = std::function<void()>;

  // Start a TCP-like transfer of `bytes` from src to dst; `on_complete`
  // fires (in virtual time) when the last byte is delivered.  Fails if
  // src/dst are disconnected or bytes <= 0.
  core::Result<FlowId> start_flow(NodeId src, NodeId dst, double bytes,
                                  const TcpParams& tcp = {},
                                  Callback on_complete = nullptr);

  // Schedule an arbitrary callback at absolute virtual time t (>= now).
  void schedule_at(double t, Callback fn);
  void schedule_after(double dt, Callback fn) { schedule_at(now_ + dt, fn); }

  // ---- execution --------------------------------------------------------

  double now() const { return now_; }
  bool idle() const;                 // no flows and no pending events
  void run_until(double t);          // advance virtual time to exactly t
  void run();                        // run until idle

  // ---- introspection ------------------------------------------------------

  const FlowStats& flow_stats(FlowId f) const { return flow_stats_.at(f); }
  const LinkStats& link_stats(LinkId l) const { return links_[l].stats; }
  int active_flow_count() const { return static_cast<int>(flows_.size()); }
  // Current fluid rate of an active flow (0 if finished).
  double flow_rate(FlowId f) const;
  // True if run() stopped with flows pending but unable to make progress
  // (e.g. background traffic consuming the whole path).
  bool stalled() const { return stalled_; }

 private:
  struct Link {
    NodeId a = -1, b = -1;
    LinkConfig config;
    LinkStats stats;
  };

  struct ActiveFlow {
    FlowId id = -1;
    std::vector<LinkId> path;
    double remaining = 0.0;
    double rate = 0.0;          // current allocated rate
    TcpParams tcp;
    double cwnd = 0.0;          // congestion window, bytes
    double rtt = 0.0;           // two-way propagation along path
    double next_window_update = 0.0;  // virtual time of next per-RTT growth
    Callback on_complete;
  };

  struct PendingEvent {
    double time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    Callback fn;
    bool operator>(const PendingEvent& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Window-capped max-min fair rate allocation across all active flows.
  void recompute_rates();
  // Advance fluid state by dt (no events inside), accruing link stats.
  void integrate(double dt);
  // Earliest time at which fluid state changes discretely (a completion or
  // a window update), or +inf.
  double next_intrinsic_event() const;
  void handle_intrinsic_events();

  double now_ = 0.0;
  std::uint64_t event_seq_ = 0;
  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adjacency_;
  std::map<FlowId, ActiveFlow> flows_;
  std::map<FlowId, FlowStats> flow_stats_;
  FlowId next_flow_id_ = 0;
  std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                      std::greater<PendingEvent>>
      events_;
  bool stalled_ = false;
};

// A persistent TCP connection: the congestion window survives across
// successive transfers, so only the first transfer pays slow-start from the
// initial window.  This is the mechanism behind the paper's Fig. 17
// observation that "after the first time step's worth of data was loaded and
// the TCP window fully opened, we were able to steadily consume in excess of
// 100Mbps".
class Connection {
 public:
  Connection(Network& net, NodeId src, NodeId dst, TcpParams tcp = {});

  // Queue a transfer on this connection.  Transfers on one connection are
  // serialized in FIFO order (a TCP byte stream).  on_complete fires when
  // the last byte is delivered.
  core::Result<FlowId> transfer(double bytes, Network::Callback on_complete = nullptr);

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  double current_window() const { return tcp_.initial_window_bytes; }

 private:
  void pump();

  Network& net_;
  NodeId src_;
  NodeId dst_;
  TcpParams tcp_;
  bool first_ = true;
  bool in_flight_ = false;
  FlowId last_flow_ = -1;
  struct Pending {
    double bytes;
    Network::Callback cb;
  };
  std::shared_ptr<std::deque<Pending>> queue_;
};

}  // namespace visapult::netsim
