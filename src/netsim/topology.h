// The paper's network testbeds as ready-made topologies.
//
// Latency and capacity figures come from the paper and period records:
//   * NTON: OC-12 (622.08 Mbps) LBL <-> SNL-CA path, low latency (the sites
//     are ~70 km apart; we use 1 ms one-way on the WAN segment).
//   * ESnet: OC-12 backbone LBL <-> ANL but *shared*; the paper measured
//     ~100 Mbps with iperf and ~128 Mbps with parallel streams, so the
//     model reserves background traffic accordingly.  Higher latency
//     (~28 ms one-way Berkeley <-> Argonne, paper: "higher latency").
//   * LAN: gigabit ethernet, sub-millisecond.
//   * SC99/SciNet: the show-floor path -- an OC-48 NTON trunk into a shared
//     SciNet segment; sharing is what cut LBL->show-floor to 150 Mbps vs
//     the 250 Mbps LBL->CPlant path (section 4.1).
//
// Each topology names its nodes after the paper's sites so NetLogger output
// reads like the paper's NLV figures.
#pragma once

#include <string>

#include "netsim/network.h"

namespace visapult::netsim {

struct Site {
  NodeId dpss;     // where the data cache lives
  NodeId backend;  // where the Visapult back end runs
  NodeId viewer;   // where the Visapult viewer runs
};

struct Testbed {
  std::string name;
  Network net;
  Site site;
  // The WAN segment between DPSS and back end (for utilisation reporting).
  LinkId bottleneck;
  // Period-appropriate TCP parameters for flows on this testbed (socket
  // buffer sizing is what separates iperf's ~100 Mbps from Visapult's
  // ~128 Mbps on ESnet).
  TcpParams default_tcp;
  // Theoretical capacity of that segment in bytes/sec.
  double bottleneck_capacity() const {
    return net.link_config(bottleneck).bandwidth_bytes_per_sec;
  }
};

// Gigabit-ethernet LAN: DPSS, back end (the E4500 "diesel" SMP of Figs.
// 12/13) and viewer on one switch.
Testbed make_lan_gige();

// NTON: DPSS at LBL, back end on CPlant at SNL-CA over OC-12, viewer back
// at LBL over ESnet (the section 4.4.1 configuration).
Testbed make_nton();

// ESnet: DPSS at LBL, back end on the ANL SMP, viewer at LBL
// (the section 4.4.2 configuration).  ~100 Mbps effective, high latency.
Testbed make_esnet();

// SC99 exhibit: DPSS at LBL, back end at SNL-CA (CPlant) over NTON, and an
// alternative path from LBL through the shared SciNet segment to the
// show-floor cluster in the LBL booth.
struct Sc99Testbed {
  Network net;
  NodeId lbl_dpss;
  NodeId anl_booth_dpss;
  NodeId cplant;
  NodeId showfloor_cluster;
  NodeId showfloor_viewer;
  LinkId nton_link;    // LBL <-> NTON POP (OC-12)
  LinkId scinet_link;  // shared show-floor segment
};
Sc99Testbed make_sc99();

}  // namespace visapult::netsim
