// Streaming statistics and CSV/table report helpers.
//
// Every bench prints paper-style rows; RunningStat accumulates the
// mean/stddev/min/max of timing samples and TableWriter renders the aligned
// text tables that appear in EXPERIMENTS.md and bench output.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace visapult::core {

class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Accumulates rows of strings and prints them with aligned columns.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Render as aligned text with a rule under the header.
  std::string to_string() const;
  // Render as CSV.
  std::string to_csv() const;

  // Convenience: write CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style float formatting helper for table cells.
std::string fmt_double(double v, int decimals = 2);

}  // namespace visapult::core
