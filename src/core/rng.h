// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the reproduction (synthetic datasets, network
// jitter, disk seek variation, failure injection) flows through Rng so runs
// are reproducible from a single seed.  SplitMix64 seeds a xoshiro256**
// state; both are public-domain algorithms (Blackman & Vigna).
#pragma once

#include <cstdint>

namespace visapult::core {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  // Standard normal via Box-Muller (no cached spare: simpler, stateless).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given mean (inter-arrival style jitter).
  double exponential(double mean);

  // Bernoulli trial.
  bool chance(double p);

  // Derive an independent stream (for per-component RNGs from a master seed).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace visapult::core
