// Lightweight Status / Result error handling.
//
// Distributed components (DPSS client, striped sockets, viewer I/O threads)
// must surface peer failures as recoverable values rather than exceptions
// crossing thread boundaries, so the networking and storage APIs return
// Status / Result<T>.  Internal programming errors still use assertions.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace visapult::core {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnavailable,     // peer gone, connection refused/reset
  kDeadlineExceeded,
  kDataLoss,        // truncated / corrupt payload
  kPermissionDenied,
  kFailedPrecondition,
  kInternal,
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "UNAVAILABLE: connection reset by dpss server 2"
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
inline Status not_found(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
inline Status out_of_range(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
inline Status unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
inline Status deadline_exceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
inline Status data_loss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }
inline Status permission_denied(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
inline Status failed_precondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
inline Status internal_error(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& take() && { return std::get<T>(std::move(v_)); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace visapult::core
