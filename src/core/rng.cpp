#include "core/rng.h"

#include <cmath>

namespace visapult::core {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Debiased modulo: rejection sampling on the top of the range.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double mean) {
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace visapult::core
