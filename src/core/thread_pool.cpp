#include "core/thread_pool.h"

#include <algorithm>

namespace visapult::core {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks =
      std::min(n, static_cast<std::size_t>(size()) * 2);
  const std::size_t per = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();  // rethrows worker exceptions
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace visapult::core
