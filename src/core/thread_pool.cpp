#include "core/thread_pool.h"

#include <algorithm>

namespace visapult::core {

ThreadPool::ThreadPool(int num_threads, bool elastic) : elastic_(elastic) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::set_clock(const Clock* clock) {
  std::lock_guard lk(mu_);
  clock_ = clock;
}

void ThreadPool::set_task_observer(TaskObserver observer) {
  std::lock_guard lk(mu_);
  observer_ = std::move(observer);
}

double ThreadPool::clock_now() const {
  return clock_ != nullptr ? clock_->now() : global_real_clock().now();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  Entry entry;
  entry.task = std::packaged_task<void()>(std::move(fn));
  auto fut = entry.task.get_future();
  {
    std::lock_guard lk(mu_);
    entry.enqueued_at = clock_now();
    queue_.push_back(std::move(entry));
    ++submitted_;
    queue_peak_ = std::max(queue_peak_, queue_.size());
    // Elastic growth: with every worker busy (possibly blocked on work
    // this very queue feeds), a queued task could wait forever.  Give it
    // its own worker instead of gambling on one freeing up.
    if (elastic_ && idle_ == 0 && !stopping_) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks =
      std::min(n, static_cast<std::size_t>(size()) * 2);
  const std::size_t per = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();  // rethrows worker exceptions
}

void ThreadPool::worker_loop() {
  for (;;) {
    Entry entry;
    TaskObserver observer;
    double picked_at;
    {
      std::unique_lock lk(mu_);
      ++idle_;
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      --idle_;
      if (stopping_ && queue_.empty()) return;
      entry = std::move(queue_.front());
      queue_.pop_front();
      observer = observer_;
      picked_at = clock_now();
    }
    entry.task();
    double finished_at;
    {
      std::lock_guard lk(mu_);
      ++completed_;
      finished_at = clock_now();
    }
    if (observer) {
      observer(std::max(0.0, picked_at - entry.enqueued_at),
               std::max(0.0, finished_at - picked_at));
    }
  }
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard lk(mu_);
  ThreadPoolStats out;
  out.submitted = submitted_;
  out.completed = completed_;
  out.queue_depth = queue_.size();
  out.queue_peak = queue_peak_;
  out.threads = static_cast<int>(workers_.size());
  return out;
}

}  // namespace visapult::core
