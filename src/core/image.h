// RGBA images and Porter-Duff compositing.
//
// Images are the currency of the whole pipeline: each back-end PE volume
// renders its data slab into an ImageRGBA, ships it to the viewer as a
// texture ("heavy payload"), and the viewer's software rasterizer composites
// textured quads into a final frame.  Channels are float in [0,1] with
// *premultiplied* alpha, which makes the `over` operator associative -- the
// property object-order parallel volume rendering depends on (section 3.2,
// Porter & Duff [11]).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace visapult::core {

struct Pixel {
  float r = 0, g = 0, b = 0, a = 0;

  friend bool operator==(const Pixel& x, const Pixel& y) {
    return x.r == y.r && x.g == y.g && x.b == y.b && x.a == y.a;
  }
  friend bool operator!=(const Pixel& x, const Pixel& y) { return !(x == y); }
};

// a OVER b, premultiplied alpha: out = a + (1 - a.alpha) * b.
Pixel over(const Pixel& front, const Pixel& back);

class ImageRGBA {
 public:
  ImageRGBA() = default;
  ImageRGBA(int width, int height, Pixel fill = {});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  std::size_t pixel_count() const { return pixels_.size(); }
  std::size_t byte_size() const { return pixels_.size() * sizeof(Pixel); }

  Pixel& at(int x, int y) { return pixels_[index(x, y)]; }
  const Pixel& at(int x, int y) const { return pixels_[index(x, y)]; }

  // Bounds-checked sample; out-of-range coordinates read as transparent.
  Pixel sample_clamped(int x, int y) const;

  // Bilinear sample at continuous texture coordinates in [0,1]x[0,1].
  Pixel sample_bilinear(float u, float v) const;

  std::vector<Pixel>& pixels() { return pixels_; }
  const std::vector<Pixel>& pixels() const { return pixels_; }

  void fill(const Pixel& p);

  // Composite `front` OVER this image, in place.  Sizes must match.
  Status composite_over(const ImageRGBA& front);

  // Serialize to/from raw little-endian float32 RGBA (the wire format of the
  // heavy payload).
  std::vector<std::uint8_t> to_bytes() const;
  static Result<ImageRGBA> from_bytes(int width, int height,
                                      const std::vector<std::uint8_t>& bytes);

  // Mean absolute per-channel difference; the artifact metric of Fig. 6
  // benches builds on this.  Returns +inf on size mismatch.
  static double mean_abs_diff(const ImageRGBA& a, const ImageRGBA& b);

  // Write binary PPM (P6); alpha is composited against `background` grey.
  Status write_ppm(const std::string& path, float background = 0.0f) const;

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Pixel> pixels_;
};

}  // namespace visapult::core
