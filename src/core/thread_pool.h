// Fixed-size thread pool with a parallel_for helper.
//
// Used by the renderer's parallel drivers and by the DPSS client (one worker
// per server, as in the paper: "the DPSS client library is multi-threaded,
// where the number of client threads is equal to the number of DPSS
// servers").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace visapult::core {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueue arbitrary work; the future resolves when it has run.
  std::future<void> submit(std::function<void()> fn);

  // Run fn(i) for i in [begin, end), split into ~2x-oversubscribed chunks.
  // Blocks until complete.  Exceptions in fn propagate from here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace visapult::core
