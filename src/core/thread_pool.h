// Fixed-size thread pool with a parallel_for helper.
//
// Used by the renderer's parallel drivers and by the DPSS client (one worker
// per server, as in the paper: "the DPSS client library is multi-threaded,
// where the number of client threads is equal to the number of DPSS
// servers").
//
// Utilization accounting: the pool tracks queue depth (with a high-water
// mark) and per-task wait/run times against an injectable Clock.  core sits
// below obs in the module DAG, so the pool cannot own histograms itself;
// instead a TaskObserver hook receives (wait_seconds, run_seconds) after
// every task, and deployments bind it to their obs::Histogram instruments.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/clock.h"

namespace visapult::core {

// Point-in-time pool accounting, snapshotted under the queue lock.
struct ThreadPoolStats {
  std::uint64_t submitted = 0;   // tasks ever enqueued
  std::uint64_t completed = 0;   // tasks fully run
  std::size_t queue_depth = 0;   // waiting (not yet picked up)
  std::size_t queue_peak = 0;    // high-water mark of queue_depth
  int threads = 0;

  // Saturation: a queue deeper than the worker count means arrivals are
  // outrunning service.
  double saturation() const {
    return threads == 0 ? 0.0
                        : static_cast<double>(queue_depth) / threads;
  }
};

class ThreadPool {
 public:
  // elastic=true lets the pool grow past num_threads: submit() spawns an
  // extra worker whenever no worker is idle.  Use this for pools whose
  // tasks may BLOCK on work serviced by the same pool family (e.g. the
  // deployment peer doors, where a chain forward waits on the next hop's
  // reply) -- a bounded pool there is a hold-and-wait deadlock waiting to
  // happen.  Grown workers persist until destruction, so the thread count
  // high-water-marks at peak concurrency.
  explicit ThreadPool(int num_threads, bool elastic = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueue arbitrary work; the future resolves when it has run.
  std::future<void> submit(std::function<void()> fn);

  // Run fn(i) for i in [begin, end), split into ~2x-oversubscribed chunks.
  // Blocks until complete.  Exceptions in fn propagate from here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Timestamp source for wait/run accounting (default: the process real
  // clock).  Tests inject a VirtualClock for deterministic histograms.
  // Call before the first submit(); the pointer must outlive the pool.
  void set_clock(const Clock* clock);

  // Invoked once per task, after it ran, from the worker thread that ran
  // it: (seconds queued, seconds executing).  Call before the first
  // submit(); the observer must be thread-safe.
  using TaskObserver = std::function<void(double wait_seconds,
                                          double run_seconds)>;
  void set_task_observer(TaskObserver observer);

  ThreadPoolStats stats() const;

 private:
  struct Entry {
    std::packaged_task<void()> task;
    double enqueued_at = 0.0;
  };

  void worker_loop();
  double clock_now() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool stopping_ = false;
  bool elastic_ = false;
  std::size_t idle_ = 0;  // workers parked in cv_.wait
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t queue_peak_ = 0;
  const Clock* clock_ = nullptr;  // nullptr -> global_real_clock()
  TaskObserver observer_;
  std::vector<std::thread> workers_;
};

}  // namespace visapult::core
