#include "core/image.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

namespace visapult::core {

Pixel over(const Pixel& front, const Pixel& back) {
  const float k = 1.0f - front.a;
  return Pixel{front.r + k * back.r, front.g + k * back.g,
               front.b + k * back.b, front.a + k * back.a};
}

ImageRGBA::ImageRGBA(int width, int height, Pixel fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill) {}

Pixel ImageRGBA::sample_clamped(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return Pixel{};
  return at(x, y);
}

Pixel ImageRGBA::sample_bilinear(float u, float v) const {
  if (empty()) return Pixel{};
  const float fx = u * (width_ - 1);
  const float fy = v * (height_ - 1);
  const int x0 = static_cast<int>(std::floor(fx));
  const int y0 = static_cast<int>(std::floor(fy));
  const float tx = fx - x0;
  const float ty = fy - y0;
  const Pixel p00 = sample_clamped(x0, y0);
  const Pixel p10 = sample_clamped(x0 + 1, y0);
  const Pixel p01 = sample_clamped(x0, y0 + 1);
  const Pixel p11 = sample_clamped(x0 + 1, y0 + 1);
  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  Pixel out;
  out.r = lerp(lerp(p00.r, p10.r, tx), lerp(p01.r, p11.r, tx), ty);
  out.g = lerp(lerp(p00.g, p10.g, tx), lerp(p01.g, p11.g, tx), ty);
  out.b = lerp(lerp(p00.b, p10.b, tx), lerp(p01.b, p11.b, tx), ty);
  out.a = lerp(lerp(p00.a, p10.a, tx), lerp(p01.a, p11.a, tx), ty);
  return out;
}

void ImageRGBA::fill(const Pixel& p) { std::fill(pixels_.begin(), pixels_.end(), p); }

Status ImageRGBA::composite_over(const ImageRGBA& front) {
  if (front.width_ != width_ || front.height_ != height_) {
    return invalid_argument("composite_over: image size mismatch");
  }
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    pixels_[i] = over(front.pixels_[i], pixels_[i]);
  }
  return Status::ok();
}

std::vector<std::uint8_t> ImageRGBA::to_bytes() const {
  std::vector<std::uint8_t> out(byte_size());
  if (!out.empty()) std::memcpy(out.data(), pixels_.data(), out.size());
  return out;
}

Result<ImageRGBA> ImageRGBA::from_bytes(int width, int height,
                                        const std::vector<std::uint8_t>& bytes) {
  if (width < 0 || height < 0) return invalid_argument("negative image size");
  const std::size_t expected =
      static_cast<std::size_t>(width) * height * sizeof(Pixel);
  if (bytes.size() != expected) {
    return data_loss("image payload truncated: expected " +
                     std::to_string(expected) + " bytes, got " +
                     std::to_string(bytes.size()));
  }
  ImageRGBA img(width, height);
  if (expected) std::memcpy(img.pixels_.data(), bytes.data(), expected);
  return img;
}

double ImageRGBA::mean_abs_diff(const ImageRGBA& a, const ImageRGBA& b) {
  if (a.width_ != b.width_ || a.height_ != b.height_ || a.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.pixels_.size(); ++i) {
    sum += std::abs(a.pixels_[i].r - b.pixels_[i].r);
    sum += std::abs(a.pixels_[i].g - b.pixels_[i].g);
    sum += std::abs(a.pixels_[i].b - b.pixels_[i].b);
    sum += std::abs(a.pixels_[i].a - b.pixels_[i].a);
  }
  return sum / (4.0 * static_cast<double>(a.pixels_.size()));
}

Status ImageRGBA::write_ppm(const std::string& path, float background) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return unavailable("cannot open " + path);
  f << "P6\n" << width_ << " " << height_ << "\n255\n";
  auto to_byte = [](float v) {
    return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
  };
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Pixel& p = at(x, y);
      // Premultiplied source over an opaque grey background.
      const float k = 1.0f - p.a;
      row[3 * x + 0] = to_byte(p.r + k * background);
      row[3 * x + 1] = to_byte(p.g + k * background);
      row[3 * x + 2] = to_byte(p.b + k * background);
    }
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  if (!f) return data_loss("short write to " + path);
  return Status::ok();
}

}  // namespace visapult::core
