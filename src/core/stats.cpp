#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace visapult::core {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  // Welford's online update.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TableWriter::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      // Quote cells containing commas.
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace visapult::core
