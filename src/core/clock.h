// Clock abstraction.
//
// Every time-aware component (NetLogger stamps, DPSS service times, the
// backend/viewer pipeline) takes a Clock&.  Production code uses RealClock
// (steady_clock); the experiment harness and the discrete-event network
// simulator use VirtualClock so that paper-scale campaigns (41 GB over an
// OC-12) replay in milliseconds of wall time, deterministically.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace visapult::core {

// Seconds since an arbitrary epoch.  double gives ~microsecond resolution
// over the multi-hour spans the paper's campaigns cover, which matches
// NetLogger's precision ("precision event logs").
using TimePoint = double;

class Clock {
 public:
  virtual ~Clock() = default;
  // Current time in seconds since the clock's epoch.
  virtual TimePoint now() const = 0;
  // Block (real clock) or advance (virtual clock) for `seconds`.
  virtual void sleep_for(double seconds) = 0;
};

// Wall-clock time via std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  RealClock();
  TimePoint now() const override;
  void sleep_for(double seconds) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

// Manually driven clock.  sleep_for() advances immediately; advance_to()
// never moves backwards.  Thread-safe: the experiment harness advances it
// from the event loop while worker abstractions read it.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimePoint start = 0.0) : now_(start) {}

  TimePoint now() const override {
    std::lock_guard lk(mu_);
    return now_;
  }
  void sleep_for(double seconds) override { advance_by(seconds); }

  void advance_by(double seconds);
  // Moves time forward to `t`; a request to move backwards is ignored so the
  // clock stays monotone even with slightly out-of-order event timestamps.
  void advance_to(TimePoint t);

 private:
  mutable std::mutex mu_;
  TimePoint now_;
};

// Process-wide default real clock, shared by components that do not care
// about virtualised time (e.g. ad-hoc logging in examples).
RealClock& global_real_clock();

}  // namespace visapult::core
