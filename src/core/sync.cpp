#include "core/sync.h"

#include <chrono>

namespace visapult::core {

void CountingSemaphore::post(int n) {
  {
    std::lock_guard lk(mu_);
    count_ += n;
  }
  if (n == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void CountingSemaphore::wait() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return count_ > 0; });
  --count_;
}

bool CountingSemaphore::wait_for(double seconds) {
  std::unique_lock lk(mu_);
  const bool ok = cv_.wait_for(lk, std::chrono::duration<double>(seconds),
                               [&] { return count_ > 0; });
  if (!ok) return false;
  --count_;
  return true;
}

int CountingSemaphore::value() const {
  std::lock_guard lk(mu_);
  return count_;
}

DoubleBuffer::DoubleBuffer(std::size_t bytes_per_half)
    : half_(bytes_per_half), storage_(2 * bytes_per_half) {}

std::uint8_t* DoubleBuffer::half_ptr(std::uint64_t timestep) {
  return storage_.data() + (timestep % 2) * half_;
}

void DoubleBuffer::note_acquire(Side side, int half_index) {
  std::lock_guard lk(mu_);
  const int bit = side == Side::kReader ? 1 : 2;
  if (owner_[half_index] & ~bit & 3) {
    // The other side already holds this half: protocol violation.
    violated_.store(true, std::memory_order_relaxed);
  }
  owner_[half_index] |= bit;
}

void DoubleBuffer::note_release(Side side, int half_index) {
  std::lock_guard lk(mu_);
  const int bit = side == Side::kReader ? 1 : 2;
  owner_[half_index] &= ~bit;
}

std::uint8_t* DoubleBuffer::acquire(Side side, std::uint64_t timestep) {
  note_acquire(side, static_cast<int>(timestep % 2));
  return half_ptr(timestep);
}

const std::uint8_t* DoubleBuffer::acquire_const(Side side, std::uint64_t timestep) {
  note_acquire(side, static_cast<int>(timestep % 2));
  return half_ptr(timestep);
}

void DoubleBuffer::release(Side side, std::uint64_t timestep) {
  note_release(side, static_cast<int>(timestep % 2));
}

SpinBarrier::SpinBarrier(int parties) : parties_(parties) {}

void SpinBarrier::arrive_and_wait() {
  std::unique_lock lk(mu_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lk, [&] { return generation_ != gen; });
}

}  // namespace visapult::core
