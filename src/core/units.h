// Units and conversions used throughout the Visapult reproduction.
//
// The paper mixes megaBITS per second (network rates: "622 Mbps OC-12",
// "433 megabits per second") with megaBYTES (data sizes: "160 megabytes of
// data per time step").  To keep those straight every quantity in this code
// base is carried in base SI units -- bytes and seconds, as double -- and
// converted at the edges with the helpers below.
#pragma once

#include <cstdint>
#include <string>

namespace visapult::core {

// ---- byte quantities -------------------------------------------------------

inline constexpr double kKB = 1024.0;
inline constexpr double kMB = 1024.0 * 1024.0;
inline constexpr double kGB = 1024.0 * 1024.0 * 1024.0;

constexpr double bytes_from_mb(double mb) { return mb * kMB; }
constexpr double bytes_from_gb(double gb) { return gb * kGB; }
constexpr double mb_from_bytes(double bytes) { return bytes / kMB; }
constexpr double gb_from_bytes(double bytes) { return bytes / kGB; }

// ---- bit rates -------------------------------------------------------------
//
// Network rates use decimal megabits (1 Mbit = 1e6 bits), the convention used
// for OC-12 = 622.08 Mbps etc.

constexpr double bytes_per_sec_from_mbps(double mbps) { return mbps * 1e6 / 8.0; }
constexpr double mbps_from_bytes_per_sec(double bps) { return bps * 8.0 / 1e6; }
constexpr double gbps_from_bytes_per_sec(double bps) { return bps * 8.0 / 1e9; }

// Named line rates from the paper (section 2 and section 4).
inline constexpr double kOC3Mbps = 155.52;
inline constexpr double kOC12Mbps = 622.08;   // NTON LBL<->SNL-CA path
inline constexpr double kOC48Mbps = 2488.32;  // NTON backbone
inline constexpr double kOC192Mbps = 9953.28; // "approximately a dedicated OC192 link"
inline constexpr double kGigEMbps = 1000.0;   // gigabit ethernet LAN
inline constexpr double kFastEMbps = 100.0;

// ---- formatting ------------------------------------------------------------

// "433.2 Mbps", "1.02 Gbps" -- human-readable rate for reports.
std::string format_rate(double bytes_per_sec);

// "160.0 MB", "41.4 GB" -- human-readable size for reports.
std::string format_bytes(double bytes);

// "3.02 s", "12.4 ms" -- human-readable duration for reports.
std::string format_seconds(double seconds);

}  // namespace visapult::core
