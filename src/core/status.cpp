#include "core/status.h"

namespace visapult::core {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace visapult::core
