// Synchronisation primitives mirroring the paper's Appendix B machinery.
//
// The overlapped Visapult back end couples each MPI render process with a
// detached pthread reader via (1) a pair of SystemV semaphores -- semaphore A
// is the reader's execution barrier, semaphore B the renderer's -- and (2) a
// double-buffered shared memory block with implicit even/odd access control.
// CountingSemaphore reproduces the SysV semantics (post/wait with optional
// timeout); DoubleBuffer reproduces the even/odd buffer handoff and *checks*
// the exclusion invariant so tests can prove the paper's "guaranteed that
// reader and render threads will not access the same odd/even data buffer at
// the same time" claim.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace visapult::core {

// SysV-style counting semaphore.  std::counting_semaphore exists, but we need
// timed waits reporting timeout as a value plus introspection for tests.
class CountingSemaphore {
 public:
  explicit CountingSemaphore(int initial = 0) : count_(initial) {}

  void post(int n = 1);
  void wait();
  // Returns false on timeout.
  bool wait_for(double seconds);

  int value() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

// The semaphore A/B pair from Appendix B, bundled for clarity at call sites:
// the render process posts `work` (A) and waits on `done` (B); the reader
// thread waits on `work` and posts `done`.
struct SemaphorePair {
  CountingSemaphore work;  // "semaphore A": render -> reader requests
  CountingSemaphore done;  // "semaphore B": reader -> render completions
};

// Double-buffered shared block with even/odd timestep decomposition.
// Buffer for timestep t is t % 2.  acquire()/release() record which side
// (reader or renderer) holds which half and abort the invariant check if
// both sides ever hold the same half.
class DoubleBuffer {
 public:
  enum class Side { kReader, kRenderer };

  // `bytes_per_half` is one timestep's worth of data; total allocation is
  // twice that, exactly as in Appendix B.
  explicit DoubleBuffer(std::size_t bytes_per_half);

  std::size_t bytes_per_half() const { return half_; }

  // Returns the half for timestep `t` and records ownership.  Violating the
  // exclusion protocol (both sides on one half) trips `violated()`.
  std::uint8_t* acquire(Side side, std::uint64_t timestep);
  const std::uint8_t* acquire_const(Side side, std::uint64_t timestep);
  void release(Side side, std::uint64_t timestep);

  // True if the even/odd protocol was ever violated.  The paper's control
  // flow guarantees this stays false; tests assert it.
  bool violated() const { return violated_.load(std::memory_order_relaxed); }

 private:
  std::uint8_t* half_ptr(std::uint64_t timestep);
  void note_acquire(Side side, int half_index);
  void note_release(Side side, int half_index);

  std::size_t half_;
  std::vector<std::uint8_t> storage_;
  std::mutex mu_;
  // owner_[half] bitmask: bit0 = reader holds, bit1 = renderer holds.
  int owner_[2] = {0, 0};
  std::atomic<bool> violated_{false};
};

// Reusable barrier for N participants (the back end's per-frame MPI barrier).
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties);

  // Blocks until all parties arrive; generation counter makes it reusable.
  void arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

// Single-producer single-consumer mailbox used for scene-graph update
// signalling between viewer I/O threads and the render thread ("Thread 0
// signals render thread" in Fig. 18).
template <typename T>
class Mailbox {
 public:
  void put(T value) {
    {
      std::lock_guard lk(mu_);
      slot_ = std::move(value);
      full_ = true;
    }
    cv_.notify_one();
  }

  // Blocking take.
  T take() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return full_; });
    full_ = false;
    return std::move(slot_);
  }

  // Non-blocking; returns true if a value was present.
  bool try_take(T& out) {
    std::lock_guard lk(mu_);
    if (!full_) return false;
    full_ = false;
    out = std::move(slot_);
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  T slot_{};
  bool full_ = false;
};

}  // namespace visapult::core
