#include "core/clock.h"

#include <thread>

namespace visapult::core {

RealClock::RealClock() : epoch_(std::chrono::steady_clock::now()) {}

TimePoint RealClock::now() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(d).count();
}

void RealClock::sleep_for(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void VirtualClock::advance_by(double seconds) {
  if (seconds <= 0.0) return;
  std::lock_guard lk(mu_);
  now_ += seconds;
}

void VirtualClock::advance_to(TimePoint t) {
  std::lock_guard lk(mu_);
  if (t > now_) now_ = t;
}

RealClock& global_real_clock() {
  static RealClock clock;
  return clock;
}

}  // namespace visapult::core
