#include "core/units.h"

#include <cmath>
#include <cstdio>

namespace visapult::core {

namespace {
std::string fmt(double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s", value, suffix);
  return buf;
}
}  // namespace

std::string format_rate(double bytes_per_sec) {
  const double mbps = mbps_from_bytes_per_sec(bytes_per_sec);
  if (mbps >= 1000.0) return fmt(mbps / 1000.0, "Gbps");
  if (mbps >= 1.0) return fmt(mbps, "Mbps");
  return fmt(mbps * 1000.0, "Kbps");
}

std::string format_bytes(double bytes) {
  if (bytes >= kGB) return fmt(bytes / kGB, "GB");
  if (bytes >= kMB) return fmt(bytes / kMB, "MB");
  if (bytes >= kKB) return fmt(bytes / kKB, "KB");
  return fmt(bytes, "B");
}

std::string format_seconds(double seconds) {
  if (seconds >= 60.0) {
    const int mins = static_cast<int>(seconds / 60.0);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%dm%04.1fs", mins, seconds - 60.0 * mins);
    return buf;
  }
  if (seconds >= 1.0) return fmt(seconds, "s");
  if (seconds >= 1e-3) return fmt(seconds * 1e3, "ms");
  return fmt(seconds * 1e6, "us");
}

}  // namespace visapult::core
