// Software volume rendering by orthographic ray marching.
//
// Two renderers:
//
//  * render_brick_along_axis -- the back end's workhorse.  Each PE volume
//    renders its slab along a principal axis into an RGBA texture whose
//    pixel grid is the full volume's transverse extent, so the per-slab
//    textures from all PEs align exactly when the viewer composites them
//    (the IBRAVR source images of section 3.3).
//
//  * render_volume_rotated -- a general orthographic ray caster with a
//    rotation about the vertical axis.  This is the "costly volume
//    rendering on each frame" IBRAVR avoids; the reproduction uses it as
//    ground truth to *measure* the IBRAVR off-axis artifacts of Fig. 6.
//
// Both composite front-to-back with opacity corrected for step size, and
// produce premultiplied-alpha images (see core/image.h).
#pragma once

#include <cmath>

#include "core/image.h"
#include "render/transfer.h"
#include "vol/decompose.h"
#include "vol/volume.h"

namespace visapult::render {

struct RenderOptions {
  float step = 1.0f;        // ray-march step, in cells
  float value_lo = 0.0f;    // data window mapped to [0,1] before the TF
  float value_hi = 1.0f;
  // Pixels per cell in the output image (1 = one pixel per cell).
  float resolution_scale = 1.0f;
};

// The two image axes for viewing along `axis`, chosen with a consistent
// handedness so textures from different slabs/axes line up.
void image_axes_for(vol::Axis view_axis, vol::Axis& img_u, vol::Axis& img_v);

// Render `slab` (a brick of `volume`, which must contain it) along
// `view_axis`, front-to-back with the *near* side being low coordinates.
// The output image spans the full transverse extent of `volume`.
core::Result<core::ImageRGBA> render_brick_along_axis(
    const vol::Volume& volume, const vol::Brick& slab, vol::Axis view_axis,
    const TransferFunction& tf, const RenderOptions& options = {});

// Ground-truth renderer: orthographic view of the whole volume, rotated by
// `angle_rad` about the image-vertical axis relative to viewing along
// `base_axis`.  angle 0 reproduces render_brick_along_axis of the full
// volume (up to sampling).
core::Result<core::ImageRGBA> render_volume_rotated(
    const vol::Volume& volume, vol::Axis base_axis, float angle_rad,
    const TransferFunction& tf, const RenderOptions& options = {});

// Advanced entry point: render only image rows [row_begin, row_end) into
// `out`, which must already have the full image size.  This is what the
// image-order parallel driver uses to give each processor a screen-space
// band.  render_brick_along_axis is the whole-image convenience wrapper.
core::Status render_brick_rows(const vol::Volume& volume,
                               const vol::Brick& slab, vol::Axis view_axis,
                               const TransferFunction& tf,
                               const RenderOptions& options, int row_begin,
                               int row_end, core::ImageRGBA& out);

// Per-sample opacity from extinction for a given step length.
inline float opacity_for_step(float extinction, float step) {
  // Beer-Lambert: alpha = 1 - exp(-extinction * step).
  return 1.0f - std::exp(-extinction * step);
}

}  // namespace visapult::render
