#include "render/transfer.h"

#include <algorithm>
#include <cmath>

namespace visapult::render {

TransferFunction::TransferFunction(std::vector<ControlPoint> points) {
  if (points.empty()) {
    points.push_back({0.0f, 0, 0, 0, 0});
    points.push_back({1.0f, 1, 1, 1, 1});
  }
  std::sort(points.begin(), points.end(),
            [](const ControlPoint& a, const ControlPoint& b) {
              return a.value < b.value;
            });
  for (int i = 0; i < kTableSize; ++i) {
    const float v = static_cast<float>(i) / (kTableSize - 1);
    // Find the bracketing control points.
    const ControlPoint* lo = &points.front();
    const ControlPoint* hi = &points.back();
    for (std::size_t p = 0; p + 1 < points.size(); ++p) {
      if (v >= points[p].value && v <= points[p + 1].value) {
        lo = &points[p];
        hi = &points[p + 1];
        break;
      }
    }
    ControlPoint out;
    out.value = v;
    const float span = hi->value - lo->value;
    const float t = span > 0 ? std::clamp((v - lo->value) / span, 0.0f, 1.0f)
                             : 0.0f;
    out.r = lo->r + (hi->r - lo->r) * t;
    out.g = lo->g + (hi->g - lo->g) * t;
    out.b = lo->b + (hi->b - lo->b) * t;
    out.opacity = lo->opacity + (hi->opacity - lo->opacity) * t;
    table_[static_cast<std::size_t>(i)] = out;
  }
}

ControlPoint TransferFunction::classify(float value) const {
  const float v = std::clamp(value, 0.0f, 1.0f);
  const int i = static_cast<int>(v * (kTableSize - 1) + 0.5f);
  return table_[static_cast<std::size_t>(i)];
}

TransferFunction TransferFunction::fire() {
  return TransferFunction({
      {0.00f, 0.0f, 0.0f, 0.0f, 0.000f},
      {0.15f, 0.1f, 0.0f, 0.0f, 0.002f},
      {0.35f, 0.8f, 0.1f, 0.0f, 0.030f},
      {0.60f, 1.0f, 0.5f, 0.0f, 0.080f},
      {0.85f, 1.0f, 0.9f, 0.4f, 0.150f},
      {1.00f, 1.0f, 1.0f, 1.0f, 0.250f},
  });
}

TransferFunction TransferFunction::density() {
  return TransferFunction({
      {0.00f, 0.0f, 0.0f, 0.0f, 0.000f},
      {0.20f, 0.0f, 0.1f, 0.4f, 0.004f},
      {0.50f, 0.2f, 0.4f, 0.9f, 0.030f},
      {0.80f, 0.7f, 0.8f, 1.0f, 0.100f},
      {1.00f, 1.0f, 1.0f, 1.0f, 0.200f},
  });
}

TransferFunction TransferFunction::linear_grey() {
  return TransferFunction({
      {0.0f, 0.0f, 0.0f, 0.0f, 0.0f},
      {1.0f, 1.0f, 1.0f, 1.0f, 0.1f},
  });
}

}  // namespace visapult::render
