#include "render/parallel.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "vol/generate.h"

namespace visapult::render {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int brick_origin_along(const vol::Brick& b, vol::Axis a) {
  switch (a) {
    case vol::Axis::kX: return b.x0;
    case vol::Axis::kY: return b.y0;
    case vol::Axis::kZ: return b.z0;
  }
  return 0;
}
}  // namespace

core::Result<ObjectOrderReport> render_object_order(
    const vol::Volume& volume, const std::vector<vol::Brick>& bricks,
    vol::Axis view_axis, const TransferFunction& tf, core::ThreadPool& pool,
    const RenderOptions& options) {
  if (bricks.empty()) return core::invalid_argument("no bricks");

  // Depth-sort front (low view-axis coordinate) to back, so compositing
  // order is well defined regardless of the input order.
  std::vector<std::size_t> order(bricks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return brick_origin_along(bricks[a], view_axis) <
           brick_origin_along(bricks[b], view_axis);
  });

  std::vector<core::ImageRGBA> images(bricks.size());
  std::vector<double> times(bricks.size(), 0.0);
  std::vector<core::Status> statuses(bricks.size());

  pool.parallel_for(0, bricks.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result =
        render_brick_along_axis(volume, bricks[i], view_axis, tf, options);
    times[i] = seconds_since(t0);
    if (result.is_ok()) {
      images[i] = std::move(result).take();
    } else {
      statuses[i] = result.status();
    }
  });
  for (const auto& st : statuses) {
    if (!st.is_ok()) return st;
  }

  // Ordered recombination: back-to-front alpha blending (section 3.2:
  // "must occur in a prescribed order").
  const auto t0 = std::chrono::steady_clock::now();
  ObjectOrderReport report;
  report.image = core::ImageRGBA(images[order[0]].width(),
                                 images[order[0]].height());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (auto st = report.image.composite_over(images[*it]); !st.is_ok()) {
      return st;
    }
  }
  report.composite_seconds = seconds_since(t0);
  report.per_processor_seconds = std::move(times);
  return report;
}

core::Result<ImageOrderReport> render_image_order(
    const vol::Volume& volume, int tile_count, vol::Axis view_axis,
    const TransferFunction& tf, core::ThreadPool& pool,
    const RenderOptions& options) {
  if (tile_count <= 0) return core::invalid_argument("tile_count must be > 0");

  vol::Axis ua, va;
  image_axes_for(view_axis, ua, va);
  const vol::Dims vd = volume.dims();
  const int width =
      std::max(1, static_cast<int>(vd.extent(ua) * options.resolution_scale));
  const int height =
      std::max(1, static_cast<int>(vd.extent(va) * options.resolution_scale));
  if (tile_count > height) {
    return core::invalid_argument("more tiles than image rows");
  }

  ImageOrderReport report;
  report.image = core::ImageRGBA(width, height);
  report.per_processor_seconds.assign(static_cast<std::size_t>(tile_count), 0.0);
  std::vector<core::Status> statuses(static_cast<std::size_t>(tile_count));

  // Whole volume as one brick; each tile renders its band of rows.
  vol::Brick full;
  full.dims = vd;
  const int base = height / tile_count;
  const int extra = height % tile_count;

  pool.parallel_for(0, static_cast<std::size_t>(tile_count), [&](std::size_t t) {
    const int ti = static_cast<int>(t);
    const int j0 = ti * base + std::min(ti, extra);
    const int j1 = j0 + base + (ti < extra ? 1 : 0);
    const auto t0 = std::chrono::steady_clock::now();
    statuses[t] = render_brick_rows(volume, full, view_axis, tf, options, j0,
                                    j1, report.image);
    report.per_processor_seconds[t] = seconds_since(t0);
  });
  for (const auto& st : statuses) {
    if (!st.is_ok()) return st;
  }

  // Each tile's rays sweep the full view-axis and full image-horizontal
  // extent; only the image-vertical range is private.  With an axis-aligned
  // view the touched fraction is rows/height, but any processor may need
  // *any* part of the volume as the view rotates -- the duplication cost
  // the paper attributes to image-order algorithms.
  report.mean_data_fraction = 1.0 / static_cast<double>(tile_count);
  return report;
}

CostModel calibrate_cost_model() {
  const vol::Dims dims{48, 48, 48};
  const vol::Volume v = vol::generate_combustion(dims, 0);
  const TransferFunction tf = TransferFunction::fire();
  vol::Brick full;
  full.dims = dims;
  const auto t0 = std::chrono::steady_clock::now();
  (void)render_brick_along_axis(v, full, vol::Axis::kZ, tf);
  const double secs = seconds_since(t0);
  CostModel m;
  m.seconds_per_cell = secs / static_cast<double>(dims.cell_count());
  return m;
}

CostModel paper_cplant_cost_model() {
  // Fig. 10: "software rendering then consumed about eight or nine seconds
  // on four processors" for a 640x256x256 grid.
  CostModel m;
  m.seconds_per_cell = 8.5 * 4.0 / 41943040.0;  // ~8.1e-7 s/cell
  return m;
}

CostModel paper_e4500_cost_model() {
  // Figs. 12/13: R ~= 12 s per frame on eight 336 MHz UltraSPARC-II procs.
  CostModel m;
  m.seconds_per_cell = 12.0 * 8.0 / 41943040.0;  // ~2.3e-6 s/cell
  return m;
}

CostModel paper_onyx2_cost_model() {
  // Figs. 16/17: rendering is clearly minor next to the ~10 s loads; the
  // render band in the profile is ~4 s on eight processors.
  CostModel m;
  m.seconds_per_cell = 4.0 * 8.0 / 41943040.0;  // ~7.6e-7 s/cell
  return m;
}

}  // namespace visapult::render
