// Transfer functions: scalar field value -> emission colour + opacity.
//
// Classic volume rendering after Drebin/Carpenter/Hanrahan [9]: a lookup
// from normalised data value to RGBA.  Opacity is per *unit length* and is
// converted to per-sample opacity by the renderer's step correction, so
// images converge as the sampling rate changes.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/image.h"

namespace visapult::render {

struct ControlPoint {
  float value = 0.0f;  // normalised scalar in [0,1]
  float r = 0, g = 0, b = 0;
  float opacity = 0.0f;  // extinction per unit length, >= 0
};

class TransferFunction {
 public:
  // Control points are sorted by value internally; lookups interpolate
  // piecewise-linearly and a 1024-entry table caches the result.
  explicit TransferFunction(std::vector<ControlPoint> points);

  // Classify a normalised value: straight (non-premultiplied) colour plus
  // extinction coefficient.
  ControlPoint classify(float value) const;

  // Presets used by the examples and benches.
  static TransferFunction fire();     // combustion: black->red->orange->white
  static TransferFunction density();  // cosmology: transparent blue->white
  static TransferFunction linear_grey();

 private:
  static constexpr int kTableSize = 1024;
  std::array<ControlPoint, kTableSize> table_;
};

}  // namespace visapult::render
