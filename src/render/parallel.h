// Parallel volume rendering drivers: object order vs image order.
//
// Section 3.2's taxonomy, implemented as runnable engines over a thread
// pool so the decomposition benches can measure the trade-offs the paper
// describes:
//   * object order -- data distributed across processors (slab/shaft/
//     block); each renders its subset; recombination composites the
//     intermediate images in depth order (back-to-front).  Scales with data
//     size; needs ordered compositing.
//   * image order -- screen space split across processors; no compositing,
//     but every processor may touch any part of the volume (data
//     duplication) and per-processor work varies with the view.
//
// Both produce the same image (to sampling precision), which the tests
// verify -- that equivalence is exactly why Visapult can choose object
// order for its pipeline.
#pragma once

#include <vector>

#include "core/image.h"
#include "core/thread_pool.h"
#include "render/raycast.h"
#include "vol/decompose.h"

namespace visapult::render {

struct ObjectOrderReport {
  core::ImageRGBA image;
  std::vector<double> per_processor_seconds;  // render time per brick
  double composite_seconds = 0.0;
};

// Render `volume` along `view_axis` using an object-order decomposition
// into `bricks` (must tile the volume along the view axis for correct
// compositing order -- slab_decompose output qualifies).  One pool task per
// brick; compositing runs back-to-front on the caller.
core::Result<ObjectOrderReport> render_object_order(
    const vol::Volume& volume, const std::vector<vol::Brick>& bricks,
    vol::Axis view_axis, const TransferFunction& tf, core::ThreadPool& pool,
    const RenderOptions& options = {});

struct ImageOrderReport {
  core::ImageRGBA image;
  std::vector<double> per_processor_seconds;  // render time per tile
  // Fraction of volume cells each tile's rays could touch: the data-
  // duplication cost of image-order decomposition.
  double mean_data_fraction = 0.0;
};

// Render with an image-order decomposition into `tile_count` horizontal
// bands of the image, each ray-marching the full volume.
core::Result<ImageOrderReport> render_image_order(
    const vol::Volume& volume, int tile_count, vol::Axis view_axis,
    const TransferFunction& tf, core::ThreadPool& pool,
    const RenderOptions& options = {});

// ---- cost model -------------------------------------------------------------
//
// The virtual-time experiment harness needs render times for paper-scale
// volumes without rendering 160 MB grids for every frame.  CostModel
// calibrates seconds-per-(cell-sample) by timing a small real render, then
// predicts R for any volume/processor count, matching the linear speedup
// the paper observes ("we expect linear speedup in the rendering process").

struct CostModel {
  double seconds_per_cell = 0.0;

  // Predicted per-PE render time for one timestep of `dims` split over
  // `processors` slabs.
  double render_seconds(vol::Dims dims, int processors) const {
    return seconds_per_cell * static_cast<double>(dims.cell_count()) /
           std::max(1, processors);
  }
};

// Calibrate by rendering a small combustion volume.
CostModel calibrate_cost_model();

// The paper's measured figure for CPlant: ~8.5 s for 160 MB on 4 procs
// (Fig. 10), i.e. ~2e-7 s/cell.  Used when benches want paper-era CPU
// speeds rather than this machine's.
CostModel paper_cplant_cost_model();
// The E4500 "diesel" SMP of Figs. 12/13: R ~= 12 s at 8 procs.
CostModel paper_e4500_cost_model();
// The ANL Onyx2 of Figs. 16/17: R ~= 5 s at 8 procs (render is minor there).
CostModel paper_onyx2_cost_model();

}  // namespace visapult::render
