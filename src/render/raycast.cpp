#include "render/raycast.h"

#include <algorithm>
#include <cmath>

namespace visapult::render {

namespace {

struct Vec3 {
  float x = 0, y = 0, z = 0;
};

Vec3 axis_dir(vol::Axis a) {
  switch (a) {
    case vol::Axis::kX: return {1, 0, 0};
    case vol::Axis::kY: return {0, 1, 0};
    case vol::Axis::kZ: return {0, 0, 1};
  }
  return {};
}

Vec3 add(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec3 scale(Vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }

float normalise_value(float v, const RenderOptions& o) {
  const float span = o.value_hi - o.value_lo;
  if (span <= 0.0f) return 0.0f;
  return std::clamp((v - o.value_lo) / span, 0.0f, 1.0f);
}

// Front-to-back accumulation of one classified sample.
void accumulate(core::Pixel& acc, const ControlPoint& cp, float alpha) {
  const float w = (1.0f - acc.a) * alpha;
  acc.r += w * cp.r;
  acc.g += w * cp.g;
  acc.b += w * cp.b;
  acc.a += w;
}

constexpr float kOpaqueCutoff = 0.995f;

}  // namespace

void image_axes_for(vol::Axis view_axis, vol::Axis& img_u, vol::Axis& img_v) {
  img_u = static_cast<vol::Axis>((static_cast<int>(view_axis) + 1) % 3);
  img_v = static_cast<vol::Axis>((static_cast<int>(view_axis) + 2) % 3);
}

core::Status render_brick_rows(const vol::Volume& volume,
                               const vol::Brick& slab, vol::Axis view_axis,
                               const TransferFunction& tf,
                               const RenderOptions& options, int row_begin,
                               int row_end, core::ImageRGBA& img) {
  const vol::Dims vd = volume.dims();
  if (slab.x0 < 0 || slab.y0 < 0 || slab.z0 < 0 ||
      slab.x0 + slab.dims.nx > vd.nx || slab.y0 + slab.dims.ny > vd.ny ||
      slab.z0 + slab.dims.nz > vd.nz) {
    return core::out_of_range("slab exceeds volume bounds");
  }
  if (options.step <= 0.0f || options.resolution_scale <= 0.0f) {
    return core::invalid_argument("step and resolution_scale must be > 0");
  }
  if (row_begin < 0 || row_end > img.height() || row_begin > row_end) {
    return core::out_of_range("bad row range");
  }

  vol::Axis ua, va;
  image_axes_for(view_axis, ua, va);
  const int width = img.width();

  // Slab extent along the view axis.
  int a0 = 0, alen = 0;
  switch (view_axis) {
    case vol::Axis::kX: a0 = slab.x0; alen = slab.dims.nx; break;
    case vol::Axis::kY: a0 = slab.y0; alen = slab.dims.ny; break;
    case vol::Axis::kZ: a0 = slab.z0; alen = slab.dims.nz; break;
  }

  const Vec3 du = axis_dir(ua);
  const Vec3 dv = axis_dir(va);
  const Vec3 dw = axis_dir(view_axis);

  for (int j = row_begin; j < row_end; ++j) {
    const float cv = (static_cast<float>(j) + 0.5f) / options.resolution_scale;
    for (int i = 0; i < width; ++i) {
      const float cu = (static_cast<float>(i) + 0.5f) / options.resolution_scale;
      core::Pixel acc;
      for (float t = 0.5f * options.step; t < static_cast<float>(alen);
           t += options.step) {
        const Vec3 p = add(add(scale(du, cu), scale(dv, cv)),
                           scale(dw, static_cast<float>(a0) + t));
        const float raw = volume.sample(p.x - 0.5f, p.y - 0.5f, p.z - 0.5f);
        const ControlPoint cp = tf.classify(normalise_value(raw, options));
        const float alpha = opacity_for_step(cp.opacity, options.step);
        if (alpha > 0.0f) accumulate(acc, cp, alpha);
        if (acc.a >= kOpaqueCutoff) break;
      }
      img.at(i, j) = acc;
    }
  }
  return core::Status::ok();
}

core::Result<core::ImageRGBA> render_brick_along_axis(
    const vol::Volume& volume, const vol::Brick& slab, vol::Axis view_axis,
    const TransferFunction& tf, const RenderOptions& options) {
  if (options.resolution_scale <= 0.0f) {
    return core::invalid_argument("resolution_scale must be > 0");
  }
  vol::Axis ua, va;
  image_axes_for(view_axis, ua, va);
  const vol::Dims vd = volume.dims();
  const int width = std::max(
      1, static_cast<int>(vd.extent(ua) * options.resolution_scale));
  const int height = std::max(
      1, static_cast<int>(vd.extent(va) * options.resolution_scale));
  core::ImageRGBA img(width, height);
  if (auto st = render_brick_rows(volume, slab, view_axis, tf, options, 0,
                                  height, img);
      !st.is_ok()) {
    return st;
  }
  return img;
}

core::Result<core::ImageRGBA> render_volume_rotated(
    const vol::Volume& volume, vol::Axis base_axis, float angle_rad,
    const TransferFunction& tf, const RenderOptions& options) {
  if (options.step <= 0.0f || options.resolution_scale <= 0.0f) {
    return core::invalid_argument("step and resolution_scale must be > 0");
  }
  const vol::Dims vd = volume.dims();
  vol::Axis ua, va;
  image_axes_for(base_axis, ua, va);
  const int width = std::max(
      1, static_cast<int>(vd.extent(ua) * options.resolution_scale));
  const int height = std::max(
      1, static_cast<int>(vd.extent(va) * options.resolution_scale));
  core::ImageRGBA img(width, height);

  // Rotate the view direction and image-horizontal axis about the image-
  // vertical axis by angle_rad.
  const Vec3 w0 = axis_dir(base_axis);
  const Vec3 u0 = axis_dir(ua);
  const Vec3 v0 = axis_dir(va);
  const float ca = std::cos(angle_rad), sa = std::sin(angle_rad);
  // Rodrigues rotation about v0 for vectors orthogonal to v0.
  auto rot = [&](Vec3 p) {
    // cross(v0, p)
    const Vec3 cr{v0.y * p.z - v0.z * p.y, v0.z * p.x - v0.x * p.z,
                  v0.x * p.y - v0.y * p.x};
    return Vec3{p.x * ca + cr.x * sa, p.y * ca + cr.y * sa, p.z * ca + cr.z * sa};
  };
  const Vec3 w = rot(w0);
  const Vec3 u = rot(u0);

  const Vec3 centre{vd.nx * 0.5f, vd.ny * 0.5f, vd.nz * 0.5f};
  const float eu = static_cast<float>(vd.extent(ua));
  const float ev = static_cast<float>(vd.extent(va));
  const float diag = std::sqrt(static_cast<float>(vd.nx) * vd.nx +
                               static_cast<float>(vd.ny) * vd.ny +
                               static_cast<float>(vd.nz) * vd.nz);

  auto inside = [&](const Vec3& p) {
    return p.x >= 0 && p.x <= static_cast<float>(vd.nx) && p.y >= 0 &&
           p.y <= static_cast<float>(vd.ny) && p.z >= 0 &&
           p.z <= static_cast<float>(vd.nz);
  };

  for (int j = 0; j < height; ++j) {
    const float cv = (static_cast<float>(j) + 0.5f) / options.resolution_scale - ev * 0.5f;
    for (int i = 0; i < width; ++i) {
      const float cu = (static_cast<float>(i) + 0.5f) / options.resolution_scale - eu * 0.5f;
      const Vec3 p0 = add(centre, add(scale(u, cu), scale(v0, cv)));
      core::Pixel acc;
      for (float t = -diag * 0.5f; t <= diag * 0.5f; t += options.step) {
        const Vec3 p = add(p0, scale(w, t));
        if (!inside(p)) continue;
        const float raw = volume.sample(p.x - 0.5f, p.y - 0.5f, p.z - 0.5f);
        const ControlPoint cp = tf.classify(normalise_value(raw, options));
        const float alpha = opacity_for_step(cp.opacity, options.step);
        if (alpha > 0.0f) accumulate(acc, cp, alpha);
        if (acc.a >= kOpaqueCutoff) break;
      }
      img.at(i, j) = acc;
    }
  }
  return img;
}

}  // namespace visapult::render
