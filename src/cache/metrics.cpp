#include "cache/metrics.h"

#include <cstdio>

namespace visapult::cache {

std::string MetricsSnapshot::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"hits\":%llu,\"misses\":%llu,\"hit_ratio\":%.4f,"
      "\"insertions\":%llu,\"evictions\":%llu,\"admit_rejects\":%llu,"
      "\"prefetch_issued\":%llu,\"prefetch_hits\":%llu,"
      "\"bytes\":%llu,\"capacity_bytes\":%llu,\"entries\":%llu}",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), hit_ratio(),
      static_cast<unsigned long long>(insertions),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(admit_rejects),
      static_cast<unsigned long long>(prefetch_issued),
      static_cast<unsigned long long>(prefetch_hits),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(capacity_bytes),
      static_cast<unsigned long long>(entries));
  return buf;
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.admit_rejects = admit_rejects_.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  return s;
}

void Metrics::reset() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  admit_rejects_.store(0, std::memory_order_relaxed);
  prefetch_issued_.store(0, std::memory_order_relaxed);
  prefetch_hits_.store(0, std::memory_order_relaxed);
}

}  // namespace visapult::cache
