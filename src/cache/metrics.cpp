#include "cache/metrics.h"

#include <cstdio>

namespace visapult::cache {

std::string MetricsSnapshot::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"hits\":%llu,\"misses\":%llu,\"hit_ratio\":%.4f,"
      "\"insertions\":%llu,\"evictions\":%llu,\"admit_rejects\":%llu,"
      "\"prefetch_issued\":%llu,\"prefetch_hits\":%llu,"
      "\"bytes\":%llu,\"capacity_bytes\":%llu,\"entries\":%llu}",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), hit_ratio(),
      static_cast<unsigned long long>(insertions),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(admit_rejects),
      static_cast<unsigned long long>(prefetch_issued),
      static_cast<unsigned long long>(prefetch_hits),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(capacity_bytes),
      static_cast<unsigned long long>(entries));
  return buf;
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.insertions = insertions_.value();
  s.evictions = evictions_.value();
  s.admit_rejects = admit_rejects_.value();
  s.prefetch_issued = prefetch_issued_.value();
  s.prefetch_hits = prefetch_hits_.value();
  return s;
}

void Metrics::reset() {
  hits_.reset();
  misses_.reset();
  insertions_.reset();
  evictions_.reset();
  admit_rejects_.reset();
  prefetch_issued_.reset();
  prefetch_hits_.reset();
}

void Metrics::collect(const std::string& prefix,
                      std::vector<obs::Sample>& out) const {
  const auto s = snapshot();
  auto emit = [&](const char* name, double v) {
    out.push_back({prefix + name, "", v});
  };
  emit("_hits_total", static_cast<double>(s.hits));
  emit("_misses_total", static_cast<double>(s.misses));
  emit("_insertions_total", static_cast<double>(s.insertions));
  emit("_evictions_total", static_cast<double>(s.evictions));
  emit("_admit_rejects_total", static_cast<double>(s.admit_rejects));
  emit("_prefetch_issued_total", static_cast<double>(s.prefetch_issued));
  emit("_prefetch_hits_total", static_cast<double>(s.prefetch_hits));
}

}  // namespace visapult::cache
