// Sharded in-memory block cache.
//
// The memory tier the paper's DPSS block servers rely on (section 3.5):
// logical blocks keyed by (dataset, block index), bounded by a byte budget,
// with pluggable eviction (policy.h) and a pin/refcount protocol so a block
// being served to a client can never be evicted out from under the read.
//
// Concurrency: the key space is hash-sharded; each shard owns a mutex, an
// eviction policy instance and a slice of the byte budget, so concurrent
// readers on different shards never contend.  Block payloads are
// shared_ptr<const vector<uint8_t>>, so even an evicted block stays valid
// for readers that already hold it -- pins additionally guarantee
// *residency* (refill protocols and zero-copy servers want both).
//
// Instrumentation: every hit/miss/insert/eviction is counted in
// cache::Metrics and, when a NetLogger is attached, bracketed with
// CACHE_HIT / CACHE_MISS / CACHE_EVICT events so NLV analysis of a run can
// report hit ratios next to the paper's pipeline tags.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/admission.h"
#include "cache/metrics.h"
#include "cache/policy.h"
#include "netlog/logger.h"

namespace visapult::cache {

// Immutable shared block payload.
using BlockData = std::shared_ptr<const std::vector<std::uint8_t>>;

struct BlockCacheConfig {
  std::size_t capacity_bytes = 64ull << 20;
  int shards = 8;  // clamped to >= 1; use 1 for strict global ordering
  PolicyKind policy = PolicyKind::kLru;
  // TinyLFU-style admission gate (admission.h): an insert that would have
  // to evict is rejected unless the candidate's sketched frequency beats
  // the proposed victim's, so one-touch scans cannot flush the hot set
  // even under plain LRU.  Inserts that fit without eviction are always
  // admitted.
  bool tinylfu_admission = false;
  // Sketch counters per shard; 0 sizes from the shard's byte budget
  // assuming 64 KB blocks.
  std::size_t admission_counters = 0;
};

class BlockCache {
 public:
  explicit BlockCache(BlockCacheConfig config = BlockCacheConfig());
  ~BlockCache() = default;

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // RAII residency pin.  While a Pin is alive its block cannot be evicted
  // or erased; the data pointer is always valid (empty Pin on cache miss).
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    explicit operator bool() const { return data_ != nullptr; }
    const std::vector<std::uint8_t>& operator*() const { return *data_; }
    const BlockData& data() const { return data_; }
    const BlockKey& key() const { return key_; }

    // Drop the pin early (idempotent).
    void release();

   private:
    friend class BlockCache;
    Pin(BlockCache* cache, BlockKey key, BlockData data)
        : cache_(cache), key_(std::move(key)), data_(std::move(data)) {}

    BlockCache* cache_ = nullptr;
    BlockKey key_;
    BlockData data_;
  };

  // Demand lookup: returns the payload and refreshes the policy on a hit,
  // nullptr on a miss.  Counted.
  BlockData lookup(const BlockKey& key);
  // Demand lookup that also pins the entry.  Counted.
  Pin lookup_pinned(const BlockKey& key);
  // Residency probe: no policy refresh, no metrics.
  bool contains(const BlockKey& key) const;

  // Admit (or overwrite) a block, evicting unpinned victims until the
  // payload fits its shard's budget.  Returns false -- and counts an
  // admission reject -- when the block cannot fit (payload larger than the
  // shard budget, or everything else pinned).  `prefetched` marks entries
  // brought in by read-ahead; the first demand hit on one counts as a
  // prefetch hit.
  bool insert(const BlockKey& key, BlockData data, bool prefetched = false);
  bool insert(const BlockKey& key, std::vector<std::uint8_t> bytes,
              bool prefetched = false);
  // Admit with an explicit byte charge instead of data->size().  Model-only
  // users (the campaign simulator) cache empty placeholders that stand for
  // multi-megabyte slabs.
  bool insert_charged(const BlockKey& key, BlockData data,
                      std::size_t charge_bytes, bool prefetched = false);

  // Explicit invalidation.  Pinned entries are in active use and are left
  // in place (erase returns false; the bulk forms skip them).
  bool erase(const BlockKey& key);
  std::size_t erase_dataset(const std::string& dataset);
  void clear();

  std::size_t total_bytes() const;
  std::size_t entry_count() const;
  std::size_t capacity_bytes() const { return config_.capacity_bytes; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  const char* policy_name() const {
    return cache::policy_name(config_.policy);
  }

  // Full snapshot: counters plus current occupancy.
  MetricsSnapshot metrics() const;
  // Counter handle for collaborators that account into the same snapshot
  // (the Prefetcher counts issues here).
  Metrics& counters() { return metrics_; }

  // Attach a NetLogger for CACHE_* events.  Call during setup, before the
  // cache sees traffic; not synchronized against in-flight operations.
  void set_logger(std::shared_ptr<netlog::NetLogger> logger) {
    logger_ = std::move(logger);
  }

 private:
  struct Entry {
    BlockData data;
    std::size_t charge = 0;
    int pins = 0;
    bool prefetched = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<BlockKey, Entry, BlockKeyHash> map;
    std::unique_ptr<EvictionPolicy> policy;
    std::unique_ptr<FrequencySketch> sketch;  // null without admission
    std::size_t bytes = 0;
    std::size_t capacity = 0;
  };

  Shard& shard_for(const BlockKey& key);
  const Shard& shard_for(const BlockKey& key) const;
  void unpin(const BlockKey& key);
  void log_event(const char* tag, const BlockKey& key, std::size_t bytes);
  // Erase one entry under the shard lock (policy + byte accounting).
  void erase_locked(Shard& shard,
                    std::unordered_map<BlockKey, Entry, BlockKeyHash>::iterator it);

  BlockCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable Metrics metrics_;
  std::shared_ptr<netlog::NetLogger> logger_;
};

}  // namespace visapult::cache
