// Eviction policies for the block cache.
//
// One EvictionPolicy instance lives inside each BlockCache shard, always
// driven under that shard's mutex, so implementations need no locking of
// their own.  The policy tracks *keys only*; sizes and pin counts stay in
// the cache, which passes an `evictable` predicate to select_victim() so a
// policy can never propose a pinned block.
//
// Three classic policies, selectable per cache:
//   * LRU           -- exact recency list; the DPSS default.
//   * Segmented LRU -- probationary + protected segments: blocks must be
//                      re-referenced to earn protection, so one scan of a
//                      large dataset cannot flush the hot set.
//   * CLOCK         -- one-bit second-chance approximation of LRU with O(1)
//                      accesses; the policy a 2000-era block server would
//                      actually have shipped.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/status.h"

namespace visapult::cache {

// Identity of a cached block: the DPSS dataset name plus the logical block
// index within it, plus the block's ingest *generation* -- an overwrite
// bumps the generation, so the fresh payload lives under a new key and a
// stale entry can never satisfy a lookup for the latest data (the DPSS
// write pipeline erases the old key explicitly; unversioned users leave
// generation at 0 and behave exactly as before).  Integration layers reuse
// the block field for their own granularity (the backend keys whole
// timesteps, the campaign keys PE slabs).
struct BlockKey {
  std::string dataset;
  std::uint64_t block = 0;
  std::uint64_t generation = 0;

  friend bool operator==(const BlockKey& a, const BlockKey& b) {
    return a.block == b.block && a.generation == b.generation &&
           a.dataset == b.dataset;
  }
  friend bool operator!=(const BlockKey& a, const BlockKey& b) {
    return !(a == b);
  }
  friend bool operator<(const BlockKey& a, const BlockKey& b) {
    if (a.dataset != b.dataset) return a.dataset < b.dataset;
    if (a.block != b.block) return a.block < b.block;
    return a.generation < b.generation;
  }
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& key) const {
    // splitmix64 finish over the block index and generation, xored into
    // the string hash.
    std::uint64_t z =
        key.block + 0x9e3779b97f4a7c15ull + (key.generation << 32);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return std::hash<std::string>{}(key.dataset) ^
           static_cast<std::size_t>(z ^ (z >> 31));
  }
};

enum class PolicyKind { kLru, kSegmentedLru, kClock };

const char* policy_name(PolicyKind kind);
core::Result<PolicyKind> parse_policy(const std::string& name);

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual const char* name() const = 0;

  // A new key was admitted.  The key is guaranteed untracked.
  virtual void on_insert(const BlockKey& key) = 0;
  // A tracked key was referenced (demand hit or overwrite).
  virtual void on_access(const BlockKey& key) = 0;
  // A tracked key left the cache (eviction or explicit erase).
  virtual void on_erase(const BlockKey& key) = 0;

  // Propose the next victim among tracked keys for which `evictable`
  // returns true.  Returns false when no tracked key is evictable.  The
  // cache erases the victim itself (triggering on_erase).
  virtual bool select_victim(
      const std::function<bool(const BlockKey&)>& evictable,
      BlockKey* victim) = 0;

  virtual std::size_t tracked() const = 0;
};

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind);

// ---- implementations (exposed for direct unit testing) ---------------------

class LruPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "lru"; }
  void on_insert(const BlockKey& key) override;
  void on_access(const BlockKey& key) override;
  void on_erase(const BlockKey& key) override;
  bool select_victim(const std::function<bool(const BlockKey&)>& evictable,
                     BlockKey* victim) override;
  std::size_t tracked() const override { return pos_.size(); }

 private:
  std::list<BlockKey> order_;  // front = most recent
  std::unordered_map<BlockKey, std::list<BlockKey>::iterator, BlockKeyHash>
      pos_;
};

class SegmentedLruPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "slru"; }
  void on_insert(const BlockKey& key) override;
  void on_access(const BlockKey& key) override;
  void on_erase(const BlockKey& key) override;
  bool select_victim(const std::function<bool(const BlockKey&)>& evictable,
                     BlockKey* victim) override;
  std::size_t tracked() const override { return pos_.size(); }

  // Introspection for tests.
  std::size_t probation_size() const { return probation_.size(); }
  std::size_t protected_size() const { return protected_.size(); }

 private:
  struct Slot {
    std::list<BlockKey>::iterator it;
    bool is_protected = false;
  };
  // Protected segment holds at most 2/3 of tracked keys; overflow demotes
  // its LRU tail back to probation.
  std::size_t protected_cap() const;
  void enforce_protected_cap();

  std::list<BlockKey> probation_;   // front = most recent
  std::list<BlockKey> protected_;   // front = most recent
  std::unordered_map<BlockKey, Slot, BlockKeyHash> pos_;
};

class ClockPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "clock"; }
  void on_insert(const BlockKey& key) override;
  void on_access(const BlockKey& key) override;
  void on_erase(const BlockKey& key) override;
  bool select_victim(const std::function<bool(const BlockKey&)>& evictable,
                     BlockKey* victim) override;
  std::size_t tracked() const override { return pos_.size(); }

 private:
  struct Node {
    BlockKey key;
    bool referenced = true;
  };
  void advance_hand();

  std::list<Node> ring_;
  std::list<Node>::iterator hand_ = ring_.end();
  std::unordered_map<BlockKey, std::list<Node>::iterator, BlockKeyHash> pos_;
};

}  // namespace visapult::cache
