#include "cache/block_cache.h"

#include <algorithm>
#include <set>

#include "netlog/event.h"

namespace visapult::cache {

BlockCache::Pin& BlockCache::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    release();
    cache_ = other.cache_;
    key_ = std::move(other.key_);
    data_ = std::move(other.data_);
    other.cache_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void BlockCache::Pin::release() {
  if (cache_ && data_) {
    cache_->unpin(key_);
  }
  cache_ = nullptr;
  data_ = nullptr;
}

BlockCache::BlockCache(BlockCacheConfig config) : config_(config) {
  const int n = std::max(1, config_.shards);
  config_.shards = n;
  const std::size_t per = config_.capacity_bytes / static_cast<std::size_t>(n);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = make_policy(config_.policy);
    shard->capacity = per;
    if (config_.tinylfu_admission) {
      std::size_t counters = config_.admission_counters;
      if (counters == 0) counters = std::max<std::size_t>(256, per / (64 * 1024));
      shard->sketch = std::make_unique<FrequencySketch>(counters);
    }
    shards_.push_back(std::move(shard));
  }
  // Remainder bytes go to shard 0 so the shard budgets sum to the total.
  shards_[0]->capacity += config_.capacity_bytes % static_cast<std::size_t>(n);
}

BlockCache::Shard& BlockCache::shard_for(const BlockKey& key) {
  return *shards_[BlockKeyHash{}(key) % shards_.size()];
}

const BlockCache::Shard& BlockCache::shard_for(const BlockKey& key) const {
  return *shards_[BlockKeyHash{}(key) % shards_.size()];
}

void BlockCache::log_event(const char* tag, const BlockKey& key,
                           std::size_t bytes) {
  if (!logger_) return;
  logger_->log(tag, static_cast<std::int64_t>(key.block), -1,
               {{"DATASET", key.dataset}, {"BYTES", std::to_string(bytes)}});
}

BlockData BlockCache::lookup(const BlockKey& key) {
  Shard& shard = shard_for(key);
  BlockData data;
  std::size_t bytes = 0;
  bool hit = false;
  {
    std::lock_guard lk(shard.mu);
    if (shard.sketch) shard.sketch->record(BlockKeyHash{}(key));
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hit = true;
      data = it->second.data;
      bytes = it->second.charge;
      shard.policy->on_access(key);
      if (it->second.prefetched) {
        it->second.prefetched = false;
        metrics_.count_prefetch_hit();
      }
    }
  }
  if (hit) {
    metrics_.count_hit();
    log_event(netlog::tags::kCacheHit, key, bytes);
  } else {
    metrics_.count_miss();
    log_event(netlog::tags::kCacheMiss, key, 0);
  }
  return data;
}

BlockCache::Pin BlockCache::lookup_pinned(const BlockKey& key) {
  Shard& shard = shard_for(key);
  BlockData data;
  std::size_t bytes = 0;
  {
    std::lock_guard lk(shard.mu);
    if (shard.sketch) shard.sketch->record(BlockKeyHash{}(key));
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      data = it->second.data;
      bytes = it->second.charge;
      ++it->second.pins;
      shard.policy->on_access(key);
      if (it->second.prefetched) {
        it->second.prefetched = false;
        metrics_.count_prefetch_hit();
      }
    }
  }
  if (data) {
    metrics_.count_hit();
    log_event(netlog::tags::kCacheHit, key, bytes);
    return Pin(this, key, std::move(data));
  }
  metrics_.count_miss();
  log_event(netlog::tags::kCacheMiss, key, 0);
  return Pin();
}

void BlockCache::unpin(const BlockKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lk(shard.mu);
  auto it = shard.map.find(key);
  // The entry is guaranteed present: erase/evict skip pinned entries, so a
  // live Pin keeps its key resident.
  if (it != shard.map.end() && it->second.pins > 0) {
    --it->second.pins;
  }
}

bool BlockCache::contains(const BlockKey& key) const {
  const Shard& shard = shard_for(key);
  std::lock_guard lk(shard.mu);
  return shard.map.count(key) > 0;
}

bool BlockCache::insert(const BlockKey& key, BlockData data, bool prefetched) {
  const std::size_t charge = data ? data->size() : 0;
  return insert_charged(key, std::move(data), charge, prefetched);
}

bool BlockCache::insert(const BlockKey& key, std::vector<std::uint8_t> bytes,
                        bool prefetched) {
  return insert(
      key, std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes)),
      prefetched);
}

bool BlockCache::insert_charged(const BlockKey& key, BlockData data,
                                std::size_t charge_bytes, bool prefetched) {
  Shard& shard = shard_for(key);
  std::vector<std::pair<BlockKey, std::size_t>> evicted;
  bool admitted = false;
  {
    std::lock_guard lk(shard.mu);
    auto it = shard.map.find(key);
    const std::size_t existing_charge =
        it != shard.map.end() ? it->second.charge : 0;
    if (charge_bytes <= shard.capacity) {
      // TinyLFU admission: a brand-new key that can only enter by evicting
      // must out-score its victims' sketched frequency.  The attempt is
      // recorded either way, so a genuinely recurring block accumulates
      // frequency and wins on a later try.
      const bool gated = shard.sketch != nullptr && it == shard.map.end();
      std::uint32_t candidate_freq = 0;
      if (gated) {
        const std::uint64_t key_hash = BlockKeyHash{}(key);
        shard.sketch->record(key_hash);
        candidate_freq = shard.sketch->estimate(key_hash);
      }
      // Trial victim selection among unpinned entries other than the key
      // itself (an overwrite reuses its own entry's budget).  Nothing is
      // evicted until the block is known to fit: a doomed admission must
      // not empty the shard on its way to being rejected.
      std::set<BlockKey> chosen;
      std::size_t reclaimed = 0;
      bool fits;
      while (!(fits = shard.bytes + charge_bytes <=
                      shard.capacity + existing_charge + reclaimed)) {
        BlockKey victim;
        const bool found = shard.policy->select_victim(
            [&shard, &key, &chosen](const BlockKey& k) {
              if (k == key || chosen.count(k)) return false;
              auto v = shard.map.find(k);
              return v != shard.map.end() && v->second.pins == 0;
            },
            &victim);
        if (!found) break;
        if (gated &&
            shard.sketch->estimate(BlockKeyHash{}(victim)) >= candidate_freq) {
          break;  // the resident block is at least as hot: admission denied
        }
        reclaimed += shard.map.find(victim)->second.charge;
        chosen.insert(victim);
      }
      if (fits) {
        for (const BlockKey& victim : chosen) {
          auto v = shard.map.find(victim);
          evicted.emplace_back(victim, v->second.charge);
          erase_locked(shard, v);
        }
        if (it != shard.map.end()) {
          // Overwrite in place: adjust the byte accounting, keep pins.
          shard.bytes -= it->second.charge;
          it->second.data = std::move(data);
          it->second.charge = charge_bytes;
          it->second.prefetched = prefetched;
          shard.bytes += charge_bytes;
          shard.policy->on_access(key);
        } else {
          Entry entry;
          entry.data = std::move(data);
          entry.charge = charge_bytes;
          entry.prefetched = prefetched;
          shard.map.emplace(key, std::move(entry));
          shard.policy->on_insert(key);
          shard.bytes += charge_bytes;
        }
        admitted = true;
      }
    }
  }
  for (const auto& [victim, bytes] : evicted) {
    metrics_.count_eviction();
    log_event(netlog::tags::kCacheEvict, victim, bytes);
  }
  if (admitted) {
    metrics_.count_insertion();
  } else {
    metrics_.count_admit_reject();
  }
  return admitted;
}

void BlockCache::erase_locked(
    Shard& shard,
    std::unordered_map<BlockKey, Entry, BlockKeyHash>::iterator it) {
  shard.bytes -= it->second.charge;
  shard.policy->on_erase(it->first);
  shard.map.erase(it);
}

bool BlockCache::erase(const BlockKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lk(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.pins > 0) return false;
  erase_locked(shard, it);
  return true;
}

std::size_t BlockCache::erase_dataset(const std::string& dataset) {
  std::size_t erased = 0;
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->first.dataset == dataset && it->second.pins == 0) {
        auto victim = it++;
        erase_locked(*shard, victim);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  return erased;
}

void BlockCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->second.pins == 0) {
        auto victim = it++;
        erase_locked(*shard, victim);
      } else {
        ++it;
      }
    }
  }
}

std::size_t BlockCache::total_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    total += shard->bytes;
  }
  return total;
}

std::size_t BlockCache::entry_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    total += shard->map.size();
  }
  return total;
}

MetricsSnapshot BlockCache::metrics() const {
  MetricsSnapshot s = metrics_.snapshot();
  s.capacity_bytes = config_.capacity_bytes;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    s.bytes += shard->bytes;
    s.entries += shard->map.size();
  }
  return s;
}

}  // namespace visapult::cache
