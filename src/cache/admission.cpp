#include "cache/admission.h"

#include <algorithm>

namespace visapult::cache {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Per-row mixers: distinct odd multipliers give four near-independent
// index streams from one 64-bit key hash.
constexpr std::uint64_t kRowSeeds[4] = {
    0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull,
    0x94d049bb133111ebull, 0xd6e8feb86659fd93ull};
}  // namespace

FrequencySketch::FrequencySketch(std::size_t counters) {
  const std::size_t per_row = round_up_pow2(std::max<std::size_t>(64, counters));
  row_mask_ = per_row - 1;
  table_.assign(per_row * kRows, 0);
  // The classic TinyLFU sample window: ~10x the counter population keeps
  // the sketch fresh without forgetting the working set.
  sample_limit_ = 10 * static_cast<std::uint64_t>(per_row);
}

std::size_t FrequencySketch::index(std::uint64_t key_hash, int row) const {
  std::uint64_t z = key_hash * kRowSeeds[row];
  z ^= z >> 32;
  return (static_cast<std::size_t>(z) & row_mask_) +
         static_cast<std::size_t>(row) * (row_mask_ + 1);
}

void FrequencySketch::record(std::uint64_t key_hash) {
  for (int r = 0; r < kRows; ++r) {
    std::uint8_t& c = table_[index(key_hash, r)];
    if (c < kMaxCount) ++c;
  }
  if (++samples_ >= sample_limit_) age();
}

std::uint32_t FrequencySketch::estimate(std::uint64_t key_hash) const {
  std::uint32_t best = kMaxCount;
  for (int r = 0; r < kRows; ++r) {
    best = std::min<std::uint32_t>(best, table_[index(key_hash, r)]);
  }
  return best;
}

void FrequencySketch::age() {
  for (std::uint8_t& c : table_) c >>= 1;
  samples_ = 0;
  ++ages_;
}

}  // namespace visapult::cache
