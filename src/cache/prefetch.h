// Stripe-aware read-ahead.
//
// Visapult's access patterns are runs: a back-end PE reads its slab of a
// timestep as a sequence of consecutive logical blocks, and each DPSS
// block server sees every `server_count`-th block of that run -- a
// constant-*stride* sequence.  RunDetector recognises both (any constant
// stride, forward or backward), and Prefetcher turns a confirmed run into
// asynchronous fetches of the next `depth` predicted blocks through a
// core::ThreadPool, so striped WAN reads overlap with rendering instead of
// serialising behind it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/metrics.h"
#include "core/thread_pool.h"

namespace visapult::cache {

// Detects sequential / constant-stride runs in a stream of block indices.
// Not thread-safe; the owning Prefetcher serialises access.
class RunDetector {
 public:
  // `min_run` = number of accesses that must share one stride before the
  // run is confirmed (3 means: two accesses propose a stride, the third
  // confirms it).
  explicit RunDetector(int min_run = 3) : min_run_(min_run < 2 ? 2 : min_run) {}

  // Observe a demand access.  Returns the active stride (signed, non-zero)
  // while a run is confirmed, 0 otherwise.
  std::int64_t observe(std::uint64_t block);

  std::int64_t stride() const { return active() ? stride_ : 0; }
  int run_length() const { return run_; }
  std::uint64_t last_block() const { return last_; }

 private:
  bool active() const { return run_ >= min_run_; }

  int min_run_;
  bool has_last_ = false;
  std::uint64_t last_ = 0;
  std::int64_t stride_ = 0;
  int run_ = 1;
};

struct PrefetchConfig {
  int min_run = 3;        // accesses that confirm a run
  int depth = 4;          // predicted blocks fetched ahead
  int max_in_flight = 16; // cap on concurrently scheduled fetches
};

// Schedules read-ahead on a ThreadPool.  One Prefetcher serves any number
// of datasets (one RunDetector per dataset-and-stride stream).
class Prefetcher {
 public:
  // Performs the actual fetch+admit; runs on a pool thread (or inline when
  // `pool` is null -- the deterministic mode unit tests use).  Must not
  // call back into this Prefetcher.
  using Fetch =
      std::function<void(const std::string& dataset, std::uint64_t block)>;
  // Returns true when a predicted block should be skipped (already cached,
  // not resident on this server, ...).
  using Filter =
      std::function<bool(const std::string& dataset, std::uint64_t block)>;

  Prefetcher(PrefetchConfig config, Fetch fetch,
             core::ThreadPool* pool = nullptr, Metrics* metrics = nullptr);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  void set_filter(Filter filter);

  // Observe a demand access on `dataset`; once a run is confirmed,
  // schedules fetches for up to `depth` predicted blocks in
  // [0, block_count).  Pass block_count = UINT64_MAX when the caller's
  // filter already bounds the block space.  `stream` distinguishes
  // concurrent access streams over the same dataset (one per client
  // connection on a block server): each stream gets its own RunDetector,
  // so interleaved multi-PE runs do not garble each other's strides.
  void on_access(const std::string& dataset, std::uint64_t block,
                 std::uint64_t block_count, std::uint64_t stream = 0);

  // Forget learned access patterns (e.g. after a cache drop).
  void reset_patterns();

  std::uint64_t issued() const;
  std::size_t in_flight() const;
  // Block until every scheduled fetch has completed.
  void drain();

 private:
  void run_fetch(const std::string& dataset, std::uint64_t block);

  PrefetchConfig config_;
  Fetch fetch_;
  core::ThreadPool* pool_;
  Metrics* metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Filter filter_;
  // One detector per (dataset, stream) access sequence.
  std::map<std::pair<std::string, std::uint64_t>, RunDetector> detectors_;
  std::set<std::pair<std::string, std::uint64_t>> scheduled_;
  int in_flight_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace visapult::cache
