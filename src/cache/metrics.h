// Cache instrumentation counters.
//
// Every BlockCache operation is counted here so the hit ratios the paper's
// DPSS measurements imply ("the cache" of section 3.5) are observable: the
// bench harness prints them as JSON, dpss_tool prints them per run, and the
// campaign simulator reports them per replay pass.  Counters are sharded
// obs::Counter instances (lock-free, cacheline-padded) because they sit on
// the block-read hot path; MetricsSnapshot is the value-type view handed to
// reporting code, and obs collectors sample the same counters into the
// stats exposition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace visapult::cache {

struct MetricsSnapshot {
  std::uint64_t hits = 0;            // demand lookups served from memory
  std::uint64_t misses = 0;          // demand lookups that fell through
  std::uint64_t insertions = 0;      // admissions (including overwrites)
  std::uint64_t evictions = 0;       // entries dropped for capacity
  std::uint64_t admit_rejects = 0;   // blocks that could not be admitted
  std::uint64_t prefetch_issued = 0; // read-ahead fetches scheduled
  std::uint64_t prefetch_hits = 0;   // demand hits on prefetched entries
  std::size_t bytes = 0;             // resident bytes (charged sizes)
  std::size_t capacity_bytes = 0;    // configured budget
  std::size_t entries = 0;           // resident block count

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  // One-line machine-readable form, e.g. for bench output.
  std::string to_json() const;
};

class Metrics {
 public:
  void count_hit() { hits_.inc(); }
  void count_miss() { misses_.inc(); }
  void count_insertion() { insertions_.inc(); }
  void count_eviction() { evictions_.inc(); }
  void count_admit_reject() { admit_rejects_.inc(); }
  void count_prefetch_issued() { prefetch_issued_.inc(); }
  void count_prefetch_hit() { prefetch_hits_.inc(); }

  // Counter fields only; the cache fills bytes/capacity/entries.
  MetricsSnapshot snapshot() const;

  void reset();

  // Emit the counters as exposition samples under `prefix` (e.g.
  // "dpss_cache"), for MetricsRegistry::add_collector.
  void collect(const std::string& prefix, std::vector<obs::Sample>& out) const;

 private:
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter admit_rejects_;
  obs::Counter prefetch_issued_;
  obs::Counter prefetch_hits_;
};

}  // namespace visapult::cache
