// Cache instrumentation counters.
//
// Every BlockCache operation is counted here so the hit ratios the paper's
// DPSS measurements imply ("the cache" of section 3.5) are observable: the
// bench harness prints them as JSON, dpss_tool prints them per run, and the
// campaign simulator reports them per replay pass.  Counters are lock-free
// atomics because they sit on the block-read hot path; MetricsSnapshot is
// the value-type view handed to reporting code.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace visapult::cache {

struct MetricsSnapshot {
  std::uint64_t hits = 0;            // demand lookups served from memory
  std::uint64_t misses = 0;          // demand lookups that fell through
  std::uint64_t insertions = 0;      // admissions (including overwrites)
  std::uint64_t evictions = 0;       // entries dropped for capacity
  std::uint64_t admit_rejects = 0;   // blocks that could not be admitted
  std::uint64_t prefetch_issued = 0; // read-ahead fetches scheduled
  std::uint64_t prefetch_hits = 0;   // demand hits on prefetched entries
  std::size_t bytes = 0;             // resident bytes (charged sizes)
  std::size_t capacity_bytes = 0;    // configured budget
  std::size_t entries = 0;           // resident block count

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  // One-line machine-readable form, e.g. for bench output.
  std::string to_json() const;
};

class Metrics {
 public:
  void count_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void count_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void count_insertion() { insertions_.fetch_add(1, std::memory_order_relaxed); }
  void count_eviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  void count_admit_reject() { admit_rejects_.fetch_add(1, std::memory_order_relaxed); }
  void count_prefetch_issued() { prefetch_issued_.fetch_add(1, std::memory_order_relaxed); }
  void count_prefetch_hit() { prefetch_hits_.fetch_add(1, std::memory_order_relaxed); }

  // Counter fields only; the cache fills bytes/capacity/entries.
  MetricsSnapshot snapshot() const;

  void reset();

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> admit_rejects_{0};
  std::atomic<std::uint64_t> prefetch_issued_{0};
  std::atomic<std::uint64_t> prefetch_hits_{0};
};

}  // namespace visapult::cache
