#include "cache/policy.h"

#include <algorithm>

namespace visapult::cache {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kSegmentedLru: return "slru";
    case PolicyKind::kClock: return "clock";
  }
  return "unknown";
}

core::Result<PolicyKind> parse_policy(const std::string& name) {
  if (name == "lru") return PolicyKind::kLru;
  if (name == "slru") return PolicyKind::kSegmentedLru;
  if (name == "clock") return PolicyKind::kClock;
  return core::invalid_argument("unknown eviction policy: " + name);
}

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSegmentedLru:
      return std::make_unique<SegmentedLruPolicy>();
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>();
    case PolicyKind::kLru:
      break;
  }
  return std::make_unique<LruPolicy>();
}

// ---- LRU -------------------------------------------------------------------

void LruPolicy::on_insert(const BlockKey& key) {
  order_.push_front(key);
  pos_[key] = order_.begin();
}

void LruPolicy::on_access(const BlockKey& key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return;
  order_.splice(order_.begin(), order_, it->second);
  it->second = order_.begin();
}

void LruPolicy::on_erase(const BlockKey& key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return;
  order_.erase(it->second);
  pos_.erase(it);
}

bool LruPolicy::select_victim(
    const std::function<bool(const BlockKey&)>& evictable, BlockKey* victim) {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (evictable(*it)) {
      *victim = *it;
      return true;
    }
  }
  return false;
}

// ---- Segmented LRU ---------------------------------------------------------

std::size_t SegmentedLruPolicy::protected_cap() const {
  // ceil(2/3 of tracked keys), at least 1.
  return std::max<std::size_t>(1, (pos_.size() * 2 + 2) / 3);
}

void SegmentedLruPolicy::enforce_protected_cap() {
  while (protected_.size() > protected_cap()) {
    // Demote the protected tail to the probationary MRU position: it keeps
    // one more chance before becoming an eviction candidate.
    const BlockKey key = protected_.back();
    protected_.pop_back();
    probation_.push_front(key);
    Slot& slot = pos_[key];
    slot.it = probation_.begin();
    slot.is_protected = false;
  }
}

void SegmentedLruPolicy::on_insert(const BlockKey& key) {
  probation_.push_front(key);
  Slot slot;
  slot.it = probation_.begin();
  slot.is_protected = false;
  pos_[key] = slot;
}

void SegmentedLruPolicy::on_access(const BlockKey& key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return;
  Slot& slot = it->second;
  if (slot.is_protected) {
    protected_.splice(protected_.begin(), protected_, slot.it);
  } else {
    // Re-reference promotes out of probation: scans touch each block once
    // and therefore never displace the protected set.
    probation_.erase(slot.it);
    protected_.push_front(key);
    slot.is_protected = true;
  }
  slot.it = protected_.begin();
  enforce_protected_cap();
}

void SegmentedLruPolicy::on_erase(const BlockKey& key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return;
  if (it->second.is_protected) {
    protected_.erase(it->second.it);
  } else {
    probation_.erase(it->second.it);
  }
  pos_.erase(it);
}

bool SegmentedLruPolicy::select_victim(
    const std::function<bool(const BlockKey&)>& evictable, BlockKey* victim) {
  for (auto it = probation_.rbegin(); it != probation_.rend(); ++it) {
    if (evictable(*it)) {
      *victim = *it;
      return true;
    }
  }
  for (auto it = protected_.rbegin(); it != protected_.rend(); ++it) {
    if (evictable(*it)) {
      *victim = *it;
      return true;
    }
  }
  return false;
}

// ---- CLOCK -----------------------------------------------------------------

void ClockPolicy::advance_hand() {
  if (ring_.empty()) {
    hand_ = ring_.end();
    return;
  }
  if (hand_ == ring_.end()) {
    hand_ = ring_.begin();
    return;
  }
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockPolicy::on_insert(const BlockKey& key) {
  Node node;
  node.key = key;
  node.referenced = true;
  // Insert just behind the hand, so a fresh block gets a full sweep before
  // it is examined.
  auto at = hand_ == ring_.end() ? ring_.end() : hand_;
  pos_[key] = ring_.insert(at, node);
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockPolicy::on_access(const BlockKey& key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return;
  it->second->referenced = true;
}

void ClockPolicy::on_erase(const BlockKey& key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return;
  if (hand_ == it->second) advance_hand();
  // advance_hand() can only land back on the erased node if it is the sole
  // element; erase leaves the hand at end() in that case.
  if (hand_ == it->second) hand_ = ring_.end();
  ring_.erase(it->second);
  pos_.erase(it);
}

bool ClockPolicy::select_victim(
    const std::function<bool(const BlockKey&)>& evictable, BlockKey* victim) {
  if (ring_.empty()) return false;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  // Two full sweeps suffice: the first clears reference bits, the second
  // must then find an unreferenced evictable node if one exists.
  const std::size_t limit = 2 * ring_.size() + 1;
  for (std::size_t step = 0; step < limit; ++step) {
    if (evictable(hand_->key)) {
      if (hand_->referenced) {
        hand_->referenced = false;  // second chance
      } else {
        *victim = hand_->key;
        return true;
      }
    }
    advance_hand();
  }
  // Every evictable node kept getting re-referenced between sweeps is
  // impossible under the shard lock; reaching here means nothing was
  // evictable at all.
  return false;
}

}  // namespace visapult::cache
