#include "cache/prefetch.h"

namespace visapult::cache {

std::int64_t RunDetector::observe(std::uint64_t block) {
  if (!has_last_) {
    has_last_ = true;
    last_ = block;
    run_ = 1;
    return 0;
  }
  const std::int64_t delta =
      static_cast<std::int64_t>(block) - static_cast<std::int64_t>(last_);
  if (delta == 0) {
    // Re-read of the same block: neither extends nor breaks the run.
    return stride();
  }
  if (run_ >= 2 && delta == stride_) {
    ++run_;
  } else {
    // Two points propose a new candidate stride.
    stride_ = delta;
    run_ = 2;
  }
  last_ = block;
  return stride();
}

Prefetcher::Prefetcher(PrefetchConfig config, Fetch fetch,
                       core::ThreadPool* pool, Metrics* metrics)
    : config_(config), fetch_(std::move(fetch)), pool_(pool),
      metrics_(metrics) {}

Prefetcher::~Prefetcher() { drain(); }

void Prefetcher::set_filter(Filter filter) {
  std::lock_guard lk(mu_);
  filter_ = std::move(filter);
}

void Prefetcher::on_access(const std::string& dataset, std::uint64_t block,
                           std::uint64_t block_count, std::uint64_t stream) {
  std::vector<std::uint64_t> to_fetch;
  {
    std::lock_guard lk(mu_);
    const auto det_key = std::make_pair(dataset, stream);
    auto det = detectors_.find(det_key);
    if (det == detectors_.end()) {
      det = detectors_.emplace(det_key, RunDetector(config_.min_run)).first;
    }
    const std::int64_t stride = det->second.observe(block);
    if (stride == 0) return;

    for (int k = 1; k <= config_.depth; ++k) {
      const std::int64_t predicted =
          static_cast<std::int64_t>(block) + stride * k;
      if (predicted < 0) break;
      const std::uint64_t p = static_cast<std::uint64_t>(predicted);
      if (block_count != UINT64_MAX && p >= block_count) break;
      if (in_flight_ >= config_.max_in_flight) break;
      const auto key = std::make_pair(dataset, p);
      if (scheduled_.count(key)) continue;
      if (filter_ && filter_(dataset, p)) continue;
      scheduled_.insert(key);
      ++in_flight_;
      ++issued_;
      if (metrics_) metrics_->count_prefetch_issued();
      to_fetch.push_back(p);
    }
  }
  for (std::uint64_t p : to_fetch) {
    if (pool_) {
      pool_->submit([this, dataset, p] { run_fetch(dataset, p); });
    } else {
      run_fetch(dataset, p);
    }
  }
}

void Prefetcher::run_fetch(const std::string& dataset, std::uint64_t block) {
  try {
    fetch_(dataset, block);
  } catch (...) {
    // Read-ahead is best-effort: a failed speculative fetch must never
    // take down a pool worker or wedge drain().
  }
  {
    std::lock_guard lk(mu_);
    scheduled_.erase(std::make_pair(dataset, block));
    --in_flight_;
    // Notify while still holding the lock: once it drops, a drain()ing
    // owner may see in_flight_ == 0 and destroy this object, so touching
    // cv_ after the unlock would be a use-after-free.
    cv_.notify_all();
  }
}

void Prefetcher::reset_patterns() {
  std::lock_guard lk(mu_);
  detectors_.clear();
}

std::uint64_t Prefetcher::issued() const {
  std::lock_guard lk(mu_);
  return issued_;
}

std::size_t Prefetcher::in_flight() const {
  std::lock_guard lk(mu_);
  return static_cast<std::size_t>(in_flight_);
}

void Prefetcher::drain() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return in_flight_ == 0; });
}

}  // namespace visapult::cache
