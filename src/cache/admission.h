// TinyLFU-style admission control for the block cache.
//
// Eviction policies decide who *leaves* a full cache; admission decides
// who may *enter*.  Without it, one sequential scan of a large dataset
// pushes every hot block out of an LRU tier -- precisely the access mix a
// DPSS sees when interactive browsing shares servers with batch staging.
//
// The FrequencySketch is a count-min sketch with 4-bit-saturating counters
// and periodic aging (every sample_limit recordings all counters halve),
// so it tracks *recent* popularity in O(1) space per counter.  The cache
// records every demand lookup and insert attempt; when an insert would
// have to evict, the candidate is admitted only if its estimated frequency
// beats the proposed victim's -- a one-touch scan block (frequency 1)
// never displaces a re-referenced hot block.
//
// Thread safety: none.  A sketch lives inside one BlockCache shard and is
// driven under that shard's mutex, like the eviction policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace visapult::cache {

class FrequencySketch {
 public:
  // `counters` is rounded up to a power of two; sizing it near the
  // expected resident entry count keeps collision noise low.
  explicit FrequencySketch(std::size_t counters = 1024);

  void record(std::uint64_t key_hash);
  // Minimum over the key's rows: an overestimate only via collisions.
  std::uint32_t estimate(std::uint64_t key_hash) const;

  // Halve every counter (the aging step).  Normally triggered internally
  // every `sample_limit` recordings; exposed for tests.
  void age();

  std::uint64_t samples() const { return samples_; }
  std::uint64_t ages() const { return ages_; }

 private:
  static constexpr int kRows = 4;
  static constexpr std::uint8_t kMaxCount = 15;

  std::size_t index(std::uint64_t key_hash, int row) const;

  std::vector<std::uint8_t> table_;  // kRows consecutive slices
  std::size_t row_mask_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t sample_limit_ = 0;
  std::uint64_t ages_ = 0;
};

}  // namespace visapult::cache
