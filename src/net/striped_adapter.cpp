#include "net/striped_adapter.h"

namespace visapult::net {

core::Status StripedByteStream::send_all(const std::uint8_t* data,
                                         std::size_t len) {
  // Zero-byte writes must not consume a payload sequence number: the
  // receiver's recv_all(0) returns without pulling a payload, so an empty
  // striped payload would desynchronise the stream (e.g. the end-of-data
  // message's empty body).
  if (len == 0) return core::Status::ok();
  std::lock_guard lk(send_mu_);
  return striped_.send(std::vector<std::uint8_t>(data, data + len));
}

core::Status StripedByteStream::recv_all(std::uint8_t* data, std::size_t len) {
  std::lock_guard lk(recv_mu_);
  std::size_t got = 0;
  while (got < len) {
    if (pending_.empty()) {
      auto payload = striped_.recv();
      if (!payload.is_ok()) {
        if (got > 0 &&
            payload.status().code() == core::StatusCode::kUnavailable) {
          return core::data_loss("striped stream closed mid-message");
        }
        return payload.status();
      }
      pending_.insert(pending_.end(), payload.value().begin(),
                      payload.value().end());
      continue;  // a zero-byte payload is legal; loop again
    }
    const std::size_t n = std::min(len - got, pending_.size());
    std::copy(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n),
              data + got);
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n));
    got += n;
  }
  return core::Status::ok();
}

std::pair<StreamPtr, StreamPtr> make_striped_pipe_pair(
    int lanes, std::size_t stripe_bytes, std::size_t pipe_capacity) {
  std::vector<StreamPtr> left, right;
  left.reserve(static_cast<std::size_t>(lanes));
  right.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    auto [a, b] = make_pipe(pipe_capacity);
    left.push_back(a);
    right.push_back(b);
  }
  return {std::make_shared<StripedByteStream>(std::move(left), stripe_bytes),
          std::make_shared<StripedByteStream>(std::move(right), stripe_bytes)};
}

}  // namespace visapult::net
