// ByteStream adapter over striped sockets.
//
// Lets any component written against ByteStream (the payload protocol, the
// DPSS client, the NetLogger stream sink) run over N parallel lanes -- the
// paper's "custom TCP-based protocol over striped sockets" applied to the
// back-end -> viewer hop.  Each send_all() call ships as one striped
// payload; the receiver re-buffers payload bytes so recv_all() sees a
// plain byte stream.
#pragma once

#include <deque>
#include <mutex>

#include "net/striped.h"
#include "net/stream.h"

namespace visapult::net {

class StripedByteStream final : public ByteStream {
 public:
  StripedByteStream(std::vector<StreamPtr> lanes,
                    std::size_t stripe_bytes = 256 * 1024)
      : striped_(std::move(lanes), stripe_bytes) {}

  core::Status send_all(const std::uint8_t* data, std::size_t len) override;
  core::Status recv_all(std::uint8_t* data, std::size_t len) override;
  void close() override { striped_.close(); }

  int lane_count() const { return striped_.lane_count(); }

 private:
  StripedStream striped_;
  std::mutex send_mu_;
  std::mutex recv_mu_;
  std::deque<std::uint8_t> pending_;  // received-but-unconsumed bytes
};

// Build a connected pair of striped byte streams over `lanes` in-memory
// pipes (testing / in-process deployments).
std::pair<StreamPtr, StreamPtr> make_striped_pipe_pair(
    int lanes, std::size_t stripe_bytes = 256 * 1024,
    std::size_t pipe_capacity = 4u << 20);

}  // namespace visapult::net
