// Token-bucket rate shaping + latency injection over any ByteStream.
//
// Wraps a transport so that real-transport integration tests and the
// dpss_tool example can emulate a WAN segment in *real* time (e.g. shape
// loopback down to a scaled OC-12 and add milliseconds of delay), without
// the virtual-time simulator.  Shaping applies on send; latency applies as a
// fixed sleep before the first byte of each send call.
#pragma once

#include <mutex>

#include "core/clock.h"
#include "net/stream.h"

namespace visapult::net {

struct ShaperConfig {
  double rate_bytes_per_sec = 0.0;  // 0 = unshaped
  double latency_sec = 0.0;         // one-way injected delay
  std::size_t burst_bytes = 64 * 1024;
};

class ShapedStream final : public ByteStream {
 public:
  ShapedStream(StreamPtr inner, ShaperConfig config,
               core::Clock& clock = core::global_real_clock());

  core::Status send_all(const std::uint8_t* data, std::size_t len) override;
  core::Status recv_all(std::uint8_t* data, std::size_t len) override;
  void close() override;

 private:
  // Blocks until `bytes` tokens are available, then consumes them.
  void throttle(std::size_t bytes);

  StreamPtr inner_;
  ShaperConfig config_;
  core::Clock& clock_;
  std::mutex mu_;
  double tokens_;
  core::TimePoint last_refill_;
};

}  // namespace visapult::net
