#include "net/striped.h"

#include <cstring>
#include <mutex>
#include <thread>

namespace visapult::net {

// Per-lane wire format, per payload:
//   preamble: [u64 seq][u64 total_len][u32 lane_stripes]
//   stripes : lane_stripes x ([u64 offset][u64 len][bytes])
// Every lane carries a preamble for every payload (possibly with zero
// stripes), so lane readers never have to guess whether their lane
// participates -- the property that keeps back-to-back payloads framed.

namespace {
constexpr std::size_t kPreambleBytes = 8 + 8 + 4;
constexpr std::size_t kStripeHeaderBytes = 8 + 8;
}  // namespace

StripedStream::StripedStream(std::vector<StreamPtr> lanes,
                             std::size_t stripe_bytes)
    : lanes_(std::move(lanes)),
      stripe_bytes_(stripe_bytes == 0 ? 1 : stripe_bytes) {}

core::Status StripedStream::send(const std::vector<std::uint8_t>& payload) {
  const std::uint64_t seq = send_seq_++;
  const std::uint64_t n = payload.size();
  const std::uint64_t stripe_count =
      n == 0 ? 0 : (n + stripe_bytes_ - 1) / stripe_bytes_;

  std::vector<core::Status> lane_status(lanes_.size());
  std::vector<std::thread> threads;
  threads.reserve(lanes_.size());
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    threads.emplace_back([&, lane] {
      // Stripes {lane, lane + L, lane + 2L, ...}.
      std::uint32_t mine = 0;
      for (std::uint64_t s = lane; s < stripe_count; s += lanes_.size()) ++mine;

      std::uint8_t preamble[kPreambleBytes];
      std::memcpy(preamble + 0, &seq, 8);
      std::memcpy(preamble + 8, &n, 8);
      std::memcpy(preamble + 16, &mine, 4);
      auto st = lanes_[lane]->send_all(preamble, sizeof preamble);
      if (!st.is_ok()) {
        lane_status[lane] = st;
        return;
      }
      for (std::uint64_t s = lane; s < stripe_count; s += lanes_.size()) {
        const std::uint64_t offset = s * stripe_bytes_;
        const std::uint64_t len = std::min<std::uint64_t>(stripe_bytes_, n - offset);
        std::vector<std::uint8_t> frame(kStripeHeaderBytes + len);
        std::memcpy(frame.data() + 0, &offset, 8);
        std::memcpy(frame.data() + 8, &len, 8);
        std::memcpy(frame.data() + kStripeHeaderBytes, payload.data() + offset, len);
        st = lanes_[lane]->send_all(frame.data(), frame.size());
        if (!st.is_ok()) {
          lane_status[lane] = st;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& st : lane_status) {
    if (!st.is_ok()) return st;
  }
  return core::Status::ok();
}

core::Result<std::vector<std::uint8_t>> StripedStream::recv() {
  const std::uint64_t want_seq = recv_seq_++;

  std::mutex mu;
  std::vector<std::uint8_t> payload;
  std::uint64_t total_len = 0;
  std::uint64_t received = 0;
  bool sized = false;
  core::Status failure = core::Status::ok();

  std::vector<std::thread> threads;
  threads.reserve(lanes_.size());
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    threads.emplace_back([&, lane] {
      std::uint8_t preamble[kPreambleBytes];
      auto st = lanes_[lane]->recv_all(preamble, sizeof preamble);
      if (!st.is_ok()) {
        std::lock_guard lk(mu);
        if (failure.is_ok()) failure = st;
        return;
      }
      std::uint64_t seq, len;
      std::uint32_t mine;
      std::memcpy(&seq, preamble + 0, 8);
      std::memcpy(&len, preamble + 8, 8);
      std::memcpy(&mine, preamble + 16, 4);
      {
        std::lock_guard lk(mu);
        if (seq != want_seq) {
          if (failure.is_ok()) {
            failure = core::data_loss(
                "stripe sequence mismatch: expected " +
                std::to_string(want_seq) + ", got " + std::to_string(seq));
          }
          return;
        }
        if (!sized) {
          total_len = len;
          payload.resize(len);
          sized = true;
        } else if (len != total_len) {
          if (failure.is_ok()) {
            failure = core::data_loss("lanes disagree about payload length");
          }
          return;
        }
      }
      for (std::uint32_t i = 0; i < mine; ++i) {
        std::uint8_t header[kStripeHeaderBytes];
        st = lanes_[lane]->recv_all(header, sizeof header);
        if (!st.is_ok()) {
          std::lock_guard lk(mu);
          if (failure.is_ok()) failure = st;
          return;
        }
        std::uint64_t offset, slen;
        std::memcpy(&offset, header + 0, 8);
        std::memcpy(&slen, header + 8, 8);
        if (offset + slen > total_len) {
          std::lock_guard lk(mu);
          if (failure.is_ok()) {
            failure = core::data_loss("stripe exceeds payload bounds");
          }
          return;
        }
        std::vector<std::uint8_t> body(slen);
        if (slen) {
          st = lanes_[lane]->recv_all(body.data(), slen);
          if (!st.is_ok()) {
            std::lock_guard lk(mu);
            if (failure.is_ok()) failure = st;
            return;
          }
        }
        std::lock_guard lk(mu);
        std::memcpy(payload.data() + offset, body.data(), slen);
        received += slen;
      }
    });
  }
  for (auto& t : threads) t.join();
  if (!failure.is_ok()) return failure;
  if (!sized) return core::data_loss("no preambles received");
  if (received != total_len) {
    return core::data_loss("striped payload incomplete: got " +
                           std::to_string(received) + " of " +
                           std::to_string(total_len) + " bytes");
  }
  return payload;
}

void StripedStream::close() {
  for (auto& lane : lanes_) lane->close();
}

}  // namespace visapult::net
