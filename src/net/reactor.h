// Epoll readiness loop -- the event-driven core of the net layer.
//
// One Reactor is one event-loop thread: an epoll_wait dispatcher over
// registered fds, a task queue for cross-thread posts (woken by an
// eventfd), and a hashed TimerWheel driving connect deadlines, per-request
// read timeouts, and heartbeat ticks.  The shape follows SimGrid's
// event-driven kernel: all state attached to an fd is owned by exactly one
// loop and only ever touched from that loop's thread, so per-connection
// machinery needs no locks.  A ReactorPool runs one loop per core and
// deals connections out round-robin -- the front door that absorbs
// thousands of sockets where thread-per-connection fell over.
//
// Threading contract:
//   * post(), schedule_after(), cancel_timer(), stats() -- any thread.
//   * add_fd()/mod_fd()/del_fd() -- loop thread only (post() a task to get
//     there); this is what keeps the handler table lock-free.
//   * Handlers and timer callbacks run on the loop thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "core/status.h"
#include "net/timer_wheel.h"
#include "obs/metrics.h"

namespace visapult::net {

struct ReactorStats {
  std::uint64_t wakeups = 0;        // epoll_wait returns
  std::uint64_t fd_dispatches = 0;  // fd handler invocations
  std::uint64_t timers_fired = 0;
  std::uint64_t tasks_run = 0;      // posted tasks executed
  std::size_t fds = 0;              // currently registered (excl. wake fd)
  std::size_t timers_pending = 0;
  std::size_t tasks_queued = 0;
  // USE accounting: wall time blocked in epoll_wait (idle) vs everything
  // else in the loop body -- dispatch, posted tasks, timers (busy).
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;

  double busy_fraction() const {
    const double total = busy_seconds + idle_seconds;
    return total <= 0.0 ? 0.0 : busy_seconds / total;
  }
};

class Reactor {
 public:
  // Event mask bits passed to handlers (a subset of epoll's, renamed so
  // headers above net/ need no <sys/epoll.h>).
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  static constexpr std::uint32_t kError = 1u << 2;  // EPOLLERR/EPOLLHUP

  using FdHandler = std::function<void(std::uint32_t events)>;

  Reactor();
  ~Reactor();  // stop() + join

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Stop the loop and join its thread.  Pending posted tasks are dropped
  // (their captures are destroyed on the loop thread).  Idempotent.
  void stop();

  // Run `fn` on the loop thread as soon as possible.  Thread-safe; safe to
  // call from handlers (runs after the current dispatch batch).
  void post(std::function<void()> fn);

  // Arm `fn` to run on the loop thread after `delay_seconds`.  Thread-safe.
  // Cancellation is best-effort: a callback may still fire if it was
  // already due when cancel_timer() was posted.
  TimerWheel::TimerId schedule_after(double delay_seconds,
                                     std::function<void()> fn);
  void cancel_timer(TimerWheel::TimerId id);

  // ---- loop-thread-only fd registry ----
  core::Status add_fd(int fd, std::uint32_t events, FdHandler handler);
  core::Status mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_id_;
  }

  // Monotonic seconds on the loop's own epoch (what timer deadlines use).
  double now() const;

  // Override the loop's time source (busy/idle accounting, dispatch-wait
  // stamps, timer deadlines).  Test-only: a VirtualClock that does not
  // advance will starve the timer wheel.  nullptr restores the default.
  void set_clock(const core::Clock* clock) {
    clock_.store(clock, std::memory_order_relaxed);
  }

  ReactorStats stats() const;

  // Post-to-run latency of posted tasks: how long a cross-thread request
  // for loop time waited in the queue.  A saturated loop shows up here
  // before throughput drops.
  obs::HistogramSnapshot dispatch_wait() const {
    return dispatch_wait_.snapshot();
  }

 private:
  struct FdEntry {
    std::uint64_t gen = 0;
    FdHandler handler;
  };

  void run();
  void wake();
  void drain_tasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::thread::id loop_thread_id_;

  // Loop-thread-only: fd -> handler, with a generation stamp so an event
  // raced by a close-and-recycle of the same fd number within one
  // epoll_wait batch is recognised as stale and dropped.
  std::map<int, FdEntry> fds_;
  std::uint64_t next_gen_ = 1;
  TimerWheel wheel_;
  // Token -> wheel id, loop-thread-only; tokens are what schedule_after
  // returns so callers on any thread get an id synchronously.
  std::map<TimerWheel::TimerId, TimerWheel::TimerId> timer_tokens_;
  std::atomic<TimerWheel::TimerId> next_timer_token_{0};

  mutable std::mutex tasks_mu_;
  // (enqueue timestamp, task): the stamp feeds dispatch_wait_ when the
  // loop picks the task up.
  std::vector<std::pair<double, std::function<void()>>> tasks_;

  mutable std::mutex stats_mu_;
  ReactorStats stats_;
  // Live USE phase: what the loop is doing RIGHT NOW, so stats() can
  // attribute an in-progress epoll_wait park (idle) or a long dispatch
  // (busy) without waiting for the iteration-end batch add.  -1 = loop not
  // running.
  std::atomic<bool> in_wait_{false};
  std::atomic<double> phase_started_{-1.0};

  std::atomic<const core::Clock*> clock_{nullptr};
  obs::Histogram dispatch_wait_;
};

// Per-core event loops with round-robin connection placement.
class ReactorPool {
 public:
  // `loops` <= 0 picks one per hardware thread, capped at 8 (the loops are
  // I/O-bound; past the core count they only add wakeup shuffling).
  explicit ReactorPool(int loops = 0);

  int size() const { return static_cast<int>(reactors_.size()); }
  Reactor& at(int i) { return *reactors_[static_cast<std::size_t>(i)]; }
  // Round-robin dealer for new connections.  Thread-safe.
  Reactor& next();

  std::vector<ReactorStats> stats() const;

 private:
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace visapult::net
