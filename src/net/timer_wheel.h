// Hashed timer wheel.
//
// The reactor's time source for connect deadlines, per-request read
// timeouts, and heartbeat ticks.  A classic hashed wheel: deadlines are
// quantised to ticks and hashed into a fixed ring of buckets, so schedule
// and cancel are O(1) and advancing fires only the buckets the cursor
// actually crosses.  Thousands of mostly-cancelled timers (the common case:
// a request's read timeout is cancelled the moment its last byte arrives)
// cost almost nothing.
//
// The wheel is deliberately clock-free: the owner passes absolute times
// (seconds on any monotonic scale) into advance(), which is what makes the
// unit tests deterministic -- they drive virtual time through the same code
// the reactor drives with CLOCK_MONOTONIC.  Not thread-safe; the Reactor
// confines it to its loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace visapult::net {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  explicit TimerWheel(double tick_seconds = 0.001,
                      std::size_t buckets = 512);

  // Arm `fn` to fire once `advance()` reaches `deadline_seconds`.  A
  // deadline at or before the cursor fires on the next advance() call.
  TimerId schedule(double deadline_seconds, std::function<void()> fn);

  // Disarm.  Returns false when the timer already fired or never existed.
  bool cancel(TimerId id);

  // Advance the cursor to absolute time `now`, firing every due timer.
  // Timers fire in deadline order; ties fire in schedule order.  Returns
  // the number fired.  Callbacks may schedule() and cancel() freely; a
  // callback scheduling into the past fires on the *next* advance, never
  // recursively within this one.
  std::size_t advance(double now);

  // Absolute time of the earliest armed timer, or +infinity when none --
  // what the reactor turns into its epoll_wait timeout.
  double next_deadline() const;

  std::size_t pending() const { return entries_.size(); }
  double tick_seconds() const { return tick_seconds_; }

 private:
  struct Entry {
    std::uint64_t tick = 0;
    std::function<void()> fn;
  };

  std::uint64_t tick_for(double seconds) const;

  double tick_seconds_;
  std::vector<std::vector<TimerId>> buckets_;
  std::map<TimerId, Entry> entries_;
  // Armed-timer count per tick: gives next_deadline() and lets advance()
  // jump the cursor over empty stretches instead of walking them.
  std::map<std::uint64_t, std::size_t> tick_counts_;
  std::uint64_t cursor_ = 0;  // last tick fully processed
  TimerId next_id_ = 1;
};

}  // namespace visapult::net
