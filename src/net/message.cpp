#include "net/message.h"

#include <cstdint>

namespace visapult::net {

// std::endian is C++20; under C++17 probe the compiler macro instead.
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "wire format assumes a little-endian host (x86-64/aarch64)");
#elif defined(_MSC_VER)
// MSVC does not define __BYTE_ORDER__; every platform it targets
// (x86, x64, ARM64 Windows) is little-endian.
#else
#error "cannot verify host endianness; the wire format requires little-endian"
#endif

core::Status send_message(ByteStream& stream, const Message& msg) {
  std::uint8_t header[kFrameHeaderBytes];
  std::uint32_t magic = kMessageMagic;
  std::uint64_t len = msg.payload.size();
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &msg.type, 4);
  std::memcpy(header + 8, &len, 8);
  std::memcpy(header + 16, &msg.trace_id, 8);
  std::memcpy(header + 24, &msg.span_id, 8);
  if (auto st = stream.send_all(header, sizeof header); !st.is_ok()) return st;
  return stream.send_all(msg.payload.data(), msg.payload.size());
}

core::Result<Message> recv_message(ByteStream& stream, std::size_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  if (auto st = stream.recv_all(header, sizeof header); !st.is_ok()) return st;
  std::uint32_t magic, type;
  std::uint64_t len;
  std::memcpy(&magic, header + 0, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  if (magic != kMessageMagic) {
    return core::data_loss("bad message magic (stream desynchronised)");
  }
  if (len > max_payload) {
    return core::data_loss("message payload exceeds limit: " + std::to_string(len));
  }
  Message msg;
  msg.type = type;
  std::memcpy(&msg.trace_id, header + 16, 8);
  std::memcpy(&msg.span_id, header + 24, 8);
  msg.payload.resize(len);
  if (len > 0) {
    if (auto st = stream.recv_all(msg.payload.data(), len); !st.is_ok()) return st;
  }
  return msg;
}

void Writer::u32(std::uint32_t v) { raw(&v, 4); }
void Writer::u64(std::uint64_t v) { raw(&v, 8); }
void Writer::f32(float v) { raw(&v, 4); }
void Writer::f64(double v) { raw(&v, 8); }

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void Writer::bytes(const std::vector<std::uint8_t>& b) {
  u64(b.size());
  raw(b.data(), b.size());
}

void Writer::raw(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

core::Status Reader::need(std::size_t n) {
  if (buf_.size() - pos_ < n) {
    return core::data_loss("truncated payload: wanted " + std::to_string(n) +
                           " bytes, have " + std::to_string(buf_.size() - pos_));
  }
  return core::Status::ok();
}

core::Result<std::uint8_t> Reader::u8() {
  if (auto st = need(1); !st.is_ok()) return st;
  return buf_[pos_++];
}

core::Result<std::uint32_t> Reader::u32() {
  if (auto st = need(4); !st.is_ok()) return st;
  std::uint32_t v;
  std::memcpy(&v, buf_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

core::Result<std::uint64_t> Reader::u64() {
  if (auto st = need(8); !st.is_ok()) return st;
  std::uint64_t v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

core::Result<std::int64_t> Reader::i64() {
  auto r = u64();
  if (!r.is_ok()) return r.status();
  return static_cast<std::int64_t>(r.value());
}

core::Result<float> Reader::f32() {
  if (auto st = need(4); !st.is_ok()) return st;
  float v;
  std::memcpy(&v, buf_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

core::Result<double> Reader::f64() {
  if (auto st = need(8); !st.is_ok()) return st;
  double v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

core::Result<std::string> Reader::str() {
  auto len = u32();
  if (!len.is_ok()) return len.status();
  if (auto st = need(len.value()); !st.is_ok()) return st;
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), len.value());
  pos_ += len.value();
  return s;
}

core::Result<std::vector<std::uint8_t>> Reader::bytes() {
  auto len = u64();
  if (!len.is_ok()) return len.status();
  if (auto st = need(len.value()); !st.is_ok()) return st;
  std::vector<std::uint8_t> b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return b;
}

}  // namespace visapult::net
