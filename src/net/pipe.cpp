#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "net/stream.h"

namespace visapult::net {

namespace {

// One direction of a pipe: a bounded byte queue with blocking semantics.
class PipeChannel {
 public:
  explicit PipeChannel(std::size_t capacity) : capacity_(capacity) {}

  core::Status write(const std::uint8_t* data, std::size_t len) {
    std::unique_lock lk(mu_);
    std::size_t written = 0;
    while (written < len) {
      cv_space_.wait(lk, [&] { return closed_ || buf_.size() < capacity_; });
      if (closed_) return core::unavailable("pipe closed");
      const std::size_t room = capacity_ - buf_.size();
      const std::size_t n = std::min(room, len - written);
      buf_.insert(buf_.end(), data + written, data + written + n);
      written += n;
      cv_data_.notify_all();
    }
    return core::Status::ok();
  }

  core::Status read(std::uint8_t* data, std::size_t len) {
    std::unique_lock lk(mu_);
    std::size_t got = 0;
    while (got < len) {
      cv_data_.wait(lk, [&] { return closed_ || !buf_.empty(); });
      if (buf_.empty() && closed_) {
        if (got == 0) return core::unavailable("pipe closed by peer");
        return core::data_loss("pipe closed mid-message");
      }
      const std::size_t n = std::min(buf_.size(), len - got);
      std::copy(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n),
                data + got);
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
      got += n;
      cv_space_.notify_all();
    }
    return core::Status::ok();
  }

  void close() {
    std::lock_guard lk(mu_);
    closed_ = true;
    cv_data_.notify_all();
    cv_space_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_data_;
  std::condition_variable cv_space_;
  std::deque<std::uint8_t> buf_;
  std::size_t capacity_;
  bool closed_ = false;
};

class PipeEndpoint final : public ByteStream {
 public:
  PipeEndpoint(std::shared_ptr<PipeChannel> out, std::shared_ptr<PipeChannel> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~PipeEndpoint() override { close(); }

  core::Status send_all(const std::uint8_t* data, std::size_t len) override {
    return out_->write(data, len);
  }
  core::Status recv_all(std::uint8_t* data, std::size_t len) override {
    return in_->read(data, len);
  }
  void close() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<PipeChannel> out_;
  std::shared_ptr<PipeChannel> in_;
};

}  // namespace

std::pair<StreamPtr, StreamPtr> make_pipe(std::size_t capacity_bytes) {
  auto a_to_b = std::make_shared<PipeChannel>(capacity_bytes);
  auto b_to_a = std::make_shared<PipeChannel>(capacity_bytes);
  return {std::make_shared<PipeEndpoint>(a_to_b, b_to_a),
          std::make_shared<PipeEndpoint>(b_to_a, a_to_b)};
}

}  // namespace visapult::net
