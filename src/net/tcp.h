// Real TCP sockets (loopback-oriented) behind the ByteStream interface.
//
// Used by the socket-backed DPSS deployment and the real-transport
// integration tests.  IPv4 only; the reproduction always runs on 127.0.0.1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/status.h"
#include "net/stream.h"

namespace visapult::net {

struct ConnectOptions {
  // Maximum seconds to wait for the TCP handshake; a server whose accept
  // queue is full (or a blackholed address) yields kDeadlineExceeded
  // instead of hanging until the kernel's SYN retries give up (minutes).
  // <= 0 waits without bound (the historical behaviour).
  double timeout_seconds = 0.0;
};

// Connected TCP socket.  Owns the fd.
class TcpStream final : public ByteStream {
 public:
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  core::Status send_all(const std::uint8_t* data, std::size_t len) override;
  // Honours set_recv_timeout(): with a timeout armed, a read that cannot
  // complete in time returns kDeadlineExceeded (the connection should be
  // considered poisoned: partial bytes may have been consumed).
  core::Status recv_all(std::uint8_t* data, std::size_t len) override;
  // Wakes any thread blocked in send/recv (via ::shutdown); the fd itself
  // is released in the destructor, when no thread can still be inside a
  // syscall on it.  Safe to call from a different thread than the reader.
  void close() override;

  core::Status set_recv_timeout(double seconds) override;

  int fd() const { return fd_.load(std::memory_order_relaxed); }

  // Connect to host:port.  TCP_NODELAY is set: the paper's light payloads
  // are small control messages where Nagle delays hurt.
  static core::Result<StreamPtr> connect(const std::string& host,
                                         std::uint16_t port,
                                         const ConnectOptions& options = {});

 private:
  std::atomic<int> fd_{-1};
  std::atomic<bool> shut_{false};
  std::atomic<double> recv_timeout_seconds_{0.0};
};

// Listening socket bound to 127.0.0.1.  Port 0 picks an ephemeral port,
// readable via port() -- tests and in-process deployments depend on that.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Refuses (kFailedPrecondition) if this listener already holds a socket
  // -- rebinding used to silently leak the previous fd.  On bind/listen
  // failure no fd is retained, so the call may be retried.
  core::Status listen(std::uint16_t port, int backlog = 16);
  std::uint16_t port() const { return port_; }

  // Blocking accept.  Returns kUnavailable after close().
  core::Result<StreamPtr> accept();

  // Unblocks pending accept() calls (via ::shutdown); the fd is released
  // in the destructor.  Safe to call from another thread.
  void close();

 private:
  std::atomic<int> fd_{-1};
  std::atomic<bool> shut_{false};
  std::uint16_t port_ = 0;
};

}  // namespace visapult::net
