// Reactor-backed message server: the DPSS front door for massive fan-in.
//
// Accepts loopback TCP connections on a non-blocking listener, deals them
// round-robin across a ReactorPool's event loops, and speaks the framed
// Message protocol (net/message.h) per connection with an explicit state
// machine instead of a blocked thread:
//
//   * reads are readiness-driven and parsed incrementally; a connection
//     costs a buffer, not a thread stack;
//   * requests on one connection dispatch strictly serially (replies stay
//     in order, which the pipelined DpssFile fetch paths rely on), while
//     different connections proceed independently;
//   * handlers optionally run on a worker ThreadPool so a handler that
//     blocks (modelled disk sleeps, chain forwarding to a peer) never
//     stalls an event loop;
//   * replies land in a BOUNDED per-connection write queue -- a peer that
//     stops reading gets its connection closed at the cap (back-pressure)
//     instead of growing an unbounded thread stack or heap;
//   * a per-request read timeout (timer wheel) closes connections that
//     stall mid-request, counted so server metrics can expose them.
//
// The blocking BlockServer::serve(StreamPtr)/Master::serve(StreamPtr) API
// survives as a shim for in-memory pipe deployments; both paths feed the
// same handle_request dispatch, so behaviour is identical by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/status.h"
#include "core/thread_pool.h"
#include "net/message.h"
#include "net/reactor.h"

namespace visapult::net {

struct ReactorServerOptions {
  int backlog = 256;
  // Bytes of un-flushed replies one connection may hold before it is
  // closed for back-pressure.  0 = unbounded (benchmarks only).
  std::size_t write_queue_cap_bytes = 4u << 20;
  // Once a request's first byte arrives, the rest must arrive within this
  // many seconds or the connection is closed (0 disables).  Idle
  // connections -- no partial request -- never time out.
  double request_read_timeout_seconds = 0.0;
  std::size_t max_payload = 1ull << 32;
};

struct ReactorServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t overflow_closes = 0;   // write-queue cap exceeded
  std::uint64_t accept_failures = 0;   // EMFILE etc.
  std::size_t active_conns = 0;
  std::size_t queued_write_bytes = 0;  // across live connections, right now
  // High-water marks since the server started: the aggregate write-queue
  // depth and the deepest any single connection's queue has reached.
  // Together with write_queue_cap_bytes they show how close the server has
  // come to shedding a slow consumer.
  std::size_t queued_write_hwm_bytes = 0;
  std::size_t conn_write_queue_hwm_bytes = 0;
  // Wire totals across all connections, live and closed: the front door's
  // utilization axis (bytes moved) next to the saturation axes above.
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class ReactorServer {
 public:
  // One request in, one reply out; invoked serially per connection.
  // `conn_id` is stable for a connection's lifetime and unique within this
  // server (feeds e.g. the block server's per-connection stride detector).
  using Handler = std::function<Message(Message&&, std::uint64_t conn_id)>;

  // `workers` null runs handlers inline on the event loop (only for
  // handlers that never block); non-null offloads them, keeping loops pure
  // I/O.  The pool and the pool of reactors must outlive this server.
  ReactorServer(ReactorPool& pool, Handler handler,
                ReactorServerOptions options = {},
                core::ThreadPool* workers = nullptr);
  ~ReactorServer();  // close()

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  // Invoked (from a loop thread) whenever a connection is closed by the
  // per-request read timeout; lets owners count it in their own metrics.
  // Set before listen().
  void set_read_timeout_observer(std::function<void()> observer);

  // Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start accepting.
  core::Status listen(std::uint16_t port);
  std::uint16_t port() const { return port_; }

  // Stop accepting, close every connection, and wait until no handler is
  // running or queued -- after close() returns, objects the handler
  // captured can be destroyed safely.  Idempotent.  Must not be called
  // from a reactor loop thread.
  void close();

  ReactorServerStats stats() const;

  // Shared implementation state; public so the connection machinery in the
  // .cpp (namespace-scope, to keep this header free of socket headers) can
  // name it.  Not part of the API.
  struct State;

 private:
  std::shared_ptr<State> state_;
  std::uint16_t port_ = 0;
  bool listening_ = false;
};

}  // namespace visapult::net
