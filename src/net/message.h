// Message framing and portable serialization.
//
// Every Visapult protocol message -- DPSS block requests, viewer light/heavy
// payloads, NetLogger events shipped to a collector -- is framed as
//
//   [magic u32][type u32][length u64][trace u64][span u64][payload ...]
//
// in little-endian byte order.  The trace/span pair is the request-tracing
// context (obs/trace.h): zero means untraced, anything else names the
// end-to-end request and this hop of it, so every component on the path can
// stamp lifeline events carrying the same trace id.  Replies echo the
// request's ids.  Writer/Reader provide checked field-level encoding so a
// truncated or corrupt payload surfaces as kDataLoss rather than undefined
// behaviour.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/status.h"
#include "net/stream.h"

namespace visapult::net {

inline constexpr std::uint32_t kMessageMagic = 0x56535031;  // "VSP1"

// Bytes on the wire before the payload.
inline constexpr std::size_t kFrameHeaderBytes = 32;

struct Message {
  std::uint32_t type = 0;
  // Request-tracing context, carried in the frame header (0 = untraced).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::vector<std::uint8_t> payload;
};

// Blocking send/recv of a framed message over any ByteStream.
core::Status send_message(ByteStream& stream, const Message& msg);
core::Result<Message> recv_message(ByteStream& stream,
                                   std::size_t max_payload = 1ull << 32);

// ---- field-level serialization ---------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);                   // u32 length + bytes
  void bytes(const std::vector<std::uint8_t>& b);   // u64 length + bytes
  void raw(const void* data, std::size_t len);

  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  core::Result<std::uint8_t> u8();
  core::Result<std::uint32_t> u32();
  core::Result<std::uint64_t> u64();
  core::Result<std::int64_t> i64();
  core::Result<float> f32();
  core::Result<double> f64();
  core::Result<std::string> str();
  core::Result<std::vector<std::uint8_t>> bytes();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  core::Status need(std::size_t n);

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace visapult::net
