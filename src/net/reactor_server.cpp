#include "net/reactor_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <mutex>

namespace visapult::net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kFrameHeader = kFrameHeaderBytes;
}  // namespace

struct Conn;

// Shared between the server facade, the listener, and every connection.
// Connections hold it by shared_ptr, so a completion posted to a loop after
// the facade died still lands on live state.
struct ReactorServer::State {
  ReactorPool& pool;
  Handler handler;
  ReactorServerOptions opts;
  core::ThreadPool* workers;
  std::function<void()> timeout_observer;

  int listen_fd = -1;
  Reactor* listen_loop = nullptr;

  std::mutex mu;
  std::condition_variable drained_cv;
  bool closing = false;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 0;
  // Handlers running or queued; close() waits for zero so handler captures
  // (BlockServer, Master) can be torn down afterwards.
  int in_flight = 0;

  // Counters (guarded by mu; queued_write_bytes adjusted from loop threads).
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t overflow_closes = 0;
  std::uint64_t accept_failures = 0;
  std::size_t queued_write_bytes = 0;
  std::size_t queued_write_hwm_bytes = 0;       // high-water of the sum
  std::size_t conn_write_queue_hwm_bytes = 0;   // high-water of any one conn
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  State(ReactorPool& p, Handler h, ReactorServerOptions o,
        core::ThreadPool* w)
      : pool(p), handler(std::move(h)), opts(o), workers(w) {}
};

// One accepted connection.  Every field is owned by `loop`'s thread; the
// only cross-thread entry points are posted tasks.
struct Conn : std::enable_shared_from_this<Conn> {
  std::shared_ptr<ReactorServer::State> state;
  Reactor* loop;
  int fd;
  std::uint64_t id;

  std::vector<std::uint8_t> rbuf;  // received, not yet consumed
  std::size_t rpos = 0;            // parse cursor into rbuf
  std::deque<std::vector<std::uint8_t>> wq;
  std::size_t wq_head_off = 0;  // bytes of wq.front() already sent
  std::size_t wq_bytes = 0;
  bool busy = false;    // a request is dispatched, its reply not yet queued
  bool closed = false;
  std::uint32_t armed = 0;  // current epoll interest
  TimerWheel::TimerId read_timer = 0;

  Conn(std::shared_ptr<ReactorServer::State> s, Reactor* l, int f,
       std::uint64_t i)
      : state(std::move(s)), loop(l), fd(f), id(i) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void start() {
    armed = Reactor::kReadable;
    auto self = shared_from_this();
    if (!loop->add_fd(fd, armed, [self](std::uint32_t ev) {
          self->on_event(ev);
        }).is_ok()) {
      close_conn();
    }
  }

  void update_interest() {
    if (closed) return;
    const std::uint32_t want = (busy ? 0u : Reactor::kReadable) |
                               (wq.empty() ? 0u : Reactor::kWritable);
    if (want == armed) return;
    armed = want;
    loop->mod_fd(fd, want);
  }

  void on_event(std::uint32_t ev) {
    if (closed) return;
    if (ev & Reactor::kWritable) flush_writes();
    if (closed) return;
    if (ev & Reactor::kReadable) read_ready();
  }

  void read_ready() {
    // Pull everything the kernel has, then parse.  While a request is in
    // flight EPOLLIN is disarmed, so rbuf is bounded by what arrived
    // before the pause plus one socket buffer.
    std::uint64_t got = 0;
    for (;;) {
      std::uint8_t chunk[kReadChunk];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        got += static_cast<std::uint64_t>(n);
        rbuf.insert(rbuf.end(), chunk, chunk + n);
        if (static_cast<std::size_t>(n) < sizeof chunk) break;
        continue;
      }
      if (n == 0) {  // orderly peer close
        note_read_bytes(got);
        close_conn();
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      note_read_bytes(got);
      close_conn();
      return;
    }
    note_read_bytes(got);
    parse_and_dispatch();
  }

  void note_read_bytes(std::uint64_t n) {
    if (n == 0) return;
    std::lock_guard lk(state->mu);
    state->bytes_read += n;
  }

  // Parse at most one request off rbuf (dispatch is serial per
  // connection) and manage the partial-request read timer.
  void parse_and_dispatch() {
    if (closed || busy) return;
    compact();
    const std::size_t avail = rbuf.size() - rpos;
    if (avail >= kFrameHeader) {
      std::uint32_t magic, type;
      std::uint64_t len;
      std::memcpy(&magic, rbuf.data() + rpos, 4);
      std::memcpy(&type, rbuf.data() + rpos + 4, 4);
      std::memcpy(&len, rbuf.data() + rpos + 8, 8);
      if (magic != kMessageMagic || len > state->opts.max_payload) {
        close_conn();  // desynchronised or hostile peer
        return;
      }
      if (avail >= kFrameHeader + len) {
        Message msg;
        msg.type = type;
        std::memcpy(&msg.trace_id, rbuf.data() + rpos + 16, 8);
        std::memcpy(&msg.span_id, rbuf.data() + rpos + 24, 8);
        const auto* p = rbuf.data() + rpos + kFrameHeader;
        msg.payload.assign(p, p + len);
        rpos += kFrameHeader + static_cast<std::size_t>(len);
        cancel_read_timer();
        dispatch(std::move(msg));
        return;
      }
    }
    // Incomplete request: bound how long the tail may dawdle.
    if (rbuf.size() - rpos > 0) {
      arm_read_timer();
    } else {
      cancel_read_timer();
    }
    update_interest();
  }

  void arm_read_timer() {
    const double t = state->opts.request_read_timeout_seconds;
    if (t <= 0 || read_timer != 0) return;
    auto self = shared_from_this();
    read_timer = loop->schedule_after(t, [self] {
      self->read_timer = 0;
      if (self->closed || self->busy) return;
      if (self->rbuf.size() - self->rpos == 0) return;  // became idle
      {
        std::lock_guard lk(self->state->mu);
        ++self->state->read_timeouts;
      }
      if (self->state->timeout_observer) self->state->timeout_observer();
      self->close_conn();
    });
  }

  void cancel_read_timer() {
    if (read_timer == 0) return;
    loop->cancel_timer(read_timer);
    read_timer = 0;
  }

  void compact() {
    if (rpos == rbuf.size()) {
      rbuf.clear();
      rpos = 0;
    } else if (rpos > (1u << 20)) {
      rbuf.erase(rbuf.begin(), rbuf.begin() + static_cast<std::ptrdiff_t>(rpos));
      rpos = 0;
    }
  }

  void dispatch(Message&& msg) {
    busy = true;
    update_interest();  // pause reading until the reply is queued
    {
      std::lock_guard lk(state->mu);
      ++state->requests;
      ++state->in_flight;
    }
    auto self = shared_from_this();
    auto run = [self, msg = std::move(msg)]() mutable {
      const std::uint64_t req_trace = msg.trace_id;
      const std::uint64_t req_span = msg.span_id;
      Message reply = self->state->handler(std::move(msg), self->id);
      // Replies travel under the request's trace unless the handler
      // stamped its own context.
      if (reply.trace_id == 0) {
        reply.trace_id = req_trace;
        reply.span_id = req_span;
      }
      {
        std::lock_guard lk(self->state->mu);
        if (--self->state->in_flight == 0) {
          self->state->drained_cv.notify_all();
        }
      }
      auto finish = [self, reply = std::move(reply)]() mutable {
        self->complete(std::move(reply));
      };
      if (self->loop->on_loop_thread()) {
        finish();  // inline handler: already on the loop
      } else {
        self->loop->post(std::move(finish));
      }
    };
    if (state->workers) {
      state->workers->submit(std::move(run));
    } else {
      // Inline handlers still go through the task queue: a burst of
      // pipelined requests unwinds iteratively instead of recursing
      // dispatch -> complete -> dispatch down the stack.
      loop->post(std::move(run));
    }
  }

  // Reply produced: frame it into the bounded write queue and resume.
  void complete(Message&& reply) {
    if (closed) return;
    busy = false;
    std::vector<std::uint8_t> frame(kFrameHeader + reply.payload.size());
    const std::uint32_t magic = kMessageMagic;
    const std::uint64_t len = reply.payload.size();
    std::memcpy(frame.data(), &magic, 4);
    std::memcpy(frame.data() + 4, &reply.type, 4);
    std::memcpy(frame.data() + 8, &len, 8);
    std::memcpy(frame.data() + 16, &reply.trace_id, 8);
    std::memcpy(frame.data() + 24, &reply.span_id, 8);
    std::memcpy(frame.data() + kFrameHeader, reply.payload.data(),
                reply.payload.size());
    add_queued(frame.size());
    wq_bytes += frame.size();
    wq.push_back(std::move(frame));
    {
      std::lock_guard lk(state->mu);
      if (wq_bytes > state->conn_write_queue_hwm_bytes) {
        state->conn_write_queue_hwm_bytes = wq_bytes;
      }
    }
    const std::size_t cap = state->opts.write_queue_cap_bytes;
    if (cap > 0 && wq_bytes > cap) {
      // Back-pressure: the peer is not draining replies; shedding the
      // connection bounds memory where thread-per-connection grew stacks.
      {
        std::lock_guard lk(state->mu);
        ++state->overflow_closes;
      }
      close_conn();
      return;
    }
    flush_writes();
    if (closed) return;
    // A pipelined request may already be buffered; otherwise this re-arms
    // EPOLLIN via update_interest().
    parse_and_dispatch();
  }

  void flush_writes() {
    std::uint64_t sent = 0;
    while (!wq.empty()) {
      const auto& head = wq.front();
      const ssize_t n = ::send(fd, head.data() + wq_head_off,
                               head.size() - wq_head_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        note_written_bytes(sent);
        close_conn();
        return;
      }
      sent += static_cast<std::uint64_t>(n);
      wq_head_off += static_cast<std::size_t>(n);
      wq_bytes -= static_cast<std::size_t>(n);
      add_queued(-static_cast<std::ptrdiff_t>(n));
      if (wq_head_off == head.size()) {
        wq.pop_front();
        wq_head_off = 0;
      }
    }
    note_written_bytes(sent);
    update_interest();
  }

  void note_written_bytes(std::uint64_t n) {
    if (n == 0) return;
    std::lock_guard lk(state->mu);
    state->bytes_written += n;
  }

  void add_queued(std::ptrdiff_t delta) {
    std::lock_guard lk(state->mu);
    if (delta < 0 &&
        state->queued_write_bytes < static_cast<std::size_t>(-delta)) {
      state->queued_write_bytes = 0;
    } else {
      state->queued_write_bytes += delta;
    }
    if (state->queued_write_bytes > state->queued_write_hwm_bytes) {
      state->queued_write_hwm_bytes = state->queued_write_bytes;
    }
  }

  void close_conn() {
    if (closed) return;
    closed = true;
    // Pin ourselves: del_fd drops the handler's ref and conns.erase drops
    // the registry's -- without this, *this dies before the method ends.
    auto self = shared_from_this();
    cancel_read_timer();
    loop->del_fd(fd);
    ::close(fd);
    fd = -1;
    add_queued(-static_cast<std::ptrdiff_t>(wq_bytes));
    wq.clear();
    wq_bytes = 0;
    std::lock_guard lk(state->mu);
    ++state->closed;
    state->conns.erase(id);
    if (state->conns.empty()) state->drained_cv.notify_all();
  }
};

ReactorServer::ReactorServer(ReactorPool& pool, Handler handler,
                             ReactorServerOptions options,
                             core::ThreadPool* workers)
    : state_(std::make_shared<State>(pool, std::move(handler), options,
                                     workers)) {}

ReactorServer::~ReactorServer() { close(); }

void ReactorServer::set_read_timeout_observer(std::function<void()> observer) {
  state_->timeout_observer = std::move(observer);
}

core::Status ReactorServer::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    return core::unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const auto st =
        core::unavailable(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, state_->opts.backlog) != 0) {
    const auto st =
        core::unavailable(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const auto st =
        core::unavailable(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);

  state_->listen_fd = fd;
  state_->listen_loop = &state_->pool.at(0);
  auto state = state_;
  // Registration must happen on the listener's loop thread.
  std::promise<core::Status> registered;
  state->listen_loop->post([state, &registered] {
    registered.set_value(state->listen_loop->add_fd(
        state->listen_fd, Reactor::kReadable, [state](std::uint32_t) {
          // Drain the accept queue; LT epoll re-signals anything left.
          for (;;) {
            const int cfd = ::accept4(state->listen_fd, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (cfd < 0) {
              if (errno == EINTR) continue;
              if (errno != EAGAIN && errno != EWOULDBLOCK) {
                std::lock_guard lk(state->mu);
                ++state->accept_failures;
              }
              return;
            }
            const int nodelay = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                         sizeof nodelay);
            Reactor& loop = state->pool.next();
            std::shared_ptr<Conn> conn;
            {
              std::lock_guard lk(state->mu);
              if (state->closing) {
                ::close(cfd);
                return;
              }
              const std::uint64_t id = ++state->next_conn_id;
              conn = std::make_shared<Conn>(state, &loop, cfd, id);
              state->conns[id] = conn;
              ++state->accepted;
            }
            loop.post([conn] { conn->start(); });
          }
        }));
  });
  if (auto st = registered.get_future().get(); !st.is_ok()) {
    ::close(fd);
    state_->listen_fd = -1;
    return st;
  }
  listening_ = true;
  return core::Status::ok();
}

void ReactorServer::close() {
  auto state = state_;
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard lk(state->mu);
    if (state->closing) return;
    state->closing = true;
    conns.reserve(state->conns.size());
    for (auto& [id, c] : state->conns) conns.push_back(c);
  }
  if (listening_) {
    // Tear the listener down on its loop so no accept callback races the
    // close; the promise makes it synchronous.
    std::promise<void> done;
    state->listen_loop->post([state, &done] {
      state->listen_loop->del_fd(state->listen_fd);
      ::close(state->listen_fd);
      state->listen_fd = -1;
      done.set_value();
    });
    done.get_future().wait();
    listening_ = false;
  }
  for (auto& conn : conns) {
    conn->loop->post([conn] { conn->close_conn(); });
  }
  // Until no handler is running or queued AND every connection has shut,
  // objects the handler references must stay alive; block here so callers
  // can sequence teardown after us.
  std::unique_lock lk(state->mu);
  state->drained_cv.wait(lk, [&] {
    return state->in_flight == 0 && state->conns.empty();
  });
}

ReactorServerStats ReactorServer::stats() const {
  std::lock_guard lk(state_->mu);
  ReactorServerStats out;
  out.accepted = state_->accepted;
  out.closed = state_->closed;
  out.requests = state_->requests;
  out.read_timeouts = state_->read_timeouts;
  out.overflow_closes = state_->overflow_closes;
  out.accept_failures = state_->accept_failures;
  out.active_conns = state_->conns.size();
  out.queued_write_bytes = state_->queued_write_bytes;
  out.queued_write_hwm_bytes = state_->queued_write_hwm_bytes;
  out.conn_write_queue_hwm_bytes = state_->conn_write_queue_hwm_bytes;
  out.bytes_read = state_->bytes_read;
  out.bytes_written = state_->bytes_written;
  return out;
}

}  // namespace visapult::net
