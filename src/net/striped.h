// Striped sockets: one logical stream over N parallel transport streams.
//
// Section 3.4: viewer/back-end I/O is "implemented with a custom TCP-based
// protocol over striped sockets".  A payload is split into fixed-size
// stripes distributed round-robin across the member streams and pushed by
// one sender thread per stripe lane; the receiver runs one thread per lane
// and reassembles by (payload sequence, stripe index).  On a real WAN this
// is what lets a transfer outrun a single TCP window (the paper's
// parallel-streams-beat-iperf observation); over loopback it exercises the
// exact concurrency structure of the paper's implementation.
//
// Wire format, per lane per payload: a preamble
//   [u64 payload_seq][u64 total_len][u32 lane_stripe_count]
// followed by that many stripes of [u64 offset][u64 len][bytes].  Every
// lane carries a preamble for every payload (possibly with zero stripes)
// so back-to-back payloads stay framed on every lane.
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "net/stream.h"

namespace visapult::net {

class StripedStream {
 public:
  // All lanes must be connected to the same peer's StripedStream, in the
  // same order.  stripe_bytes is the interleave granularity.
  StripedStream(std::vector<StreamPtr> lanes, std::size_t stripe_bytes = 256 * 1024);

  int lane_count() const { return static_cast<int>(lanes_.size()); }
  std::size_t stripe_bytes() const { return stripe_bytes_; }

  // Send one payload, striped across all lanes in parallel (one thread per
  // lane).  Payloads are sequenced; sends must not be issued concurrently
  // from multiple threads.
  core::Status send(const std::vector<std::uint8_t>& payload);

  // Receive the next payload (by sequence number).  Runs one reader thread
  // per lane; detects truncation, sequence gaps and stripe overlap.
  core::Result<std::vector<std::uint8_t>> recv();

  void close();

 private:
  std::vector<StreamPtr> lanes_;
  std::size_t stripe_bytes_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace visapult::net
