#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/profiler.h"

namespace visapult::net {

namespace {

std::uint64_t pack(int fd, std::uint64_t gen) {
  return (gen << 32) | static_cast<std::uint32_t>(fd);
}

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t e = 0;
  if (events & Reactor::kReadable) e |= EPOLLIN | EPOLLRDHUP;
  if (events & Reactor::kWritable) e |= EPOLLOUT;
  return e;
}

std::uint32_t from_epoll(std::uint32_t e) {
  std::uint32_t events = 0;
  if (e & (EPOLLIN | EPOLLRDHUP)) events |= Reactor::kReadable;
  if (e & EPOLLOUT) events |= Reactor::kWritable;
  if (e & (EPOLLERR | EPOLLHUP)) {
    // A hangup must reach the read path so it can observe EOF and tear the
    // connection down; surface it as readable + error.
    events |= Reactor::kError | Reactor::kReadable;
  }
  return events;
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  thread_ = std::thread([this] { run(); });
}

Reactor::~Reactor() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard lk(tasks_mu_);
    tasks_.emplace_back(now(), std::move(fn));
  }
  wake();
}

TimerWheel::TimerId Reactor::schedule_after(double delay_seconds,
                                            std::function<void()> fn) {
  // Wheel ids are allocated on the loop thread; hand callers a stable
  // token mapped to the wheel id once the arm task runs there.
  const TimerWheel::TimerId token =
      next_timer_token_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto arm = [this, token, delay_seconds, fn = std::move(fn)]() mutable {
    const TimerWheel::TimerId id = wheel_.schedule(
        now() + delay_seconds, [this, token, fn = std::move(fn)] {
          timer_tokens_.erase(token);
          fn();
        });
    timer_tokens_[token] = id;
  };
  if (on_loop_thread()) {
    arm();
  } else {
    post(std::move(arm));
  }
  return token;
}

void Reactor::cancel_timer(TimerWheel::TimerId token) {
  auto disarm = [this, token] {
    auto it = timer_tokens_.find(token);
    if (it == timer_tokens_.end()) return;  // already fired (or never armed)
    wheel_.cancel(it->second);
    timer_tokens_.erase(it);
  };
  if (on_loop_thread()) {
    disarm();
  } else {
    post(disarm);
  }
}

core::Status Reactor::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  FdEntry& entry = fds_[fd];
  entry.gen = next_gen_++;
  entry.handler = std::move(handler);
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = pack(fd, entry.gen);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    fds_.erase(fd);
    return core::internal_error(std::string("epoll_ctl add: ") +
                                std::strerror(errno));
  }
  return core::Status::ok();
}

core::Status Reactor::mod_fd(int fd, std::uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return core::not_found("mod_fd: fd not registered");
  }
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = pack(fd, it->second.gen);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return core::internal_error(std::string("epoll_ctl mod: ") +
                                std::strerror(errno));
  }
  return core::Status::ok();
}

void Reactor::del_fd(int fd) {
  if (fds_.erase(fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

double Reactor::now() const {
  const core::Clock* clock = clock_.load(std::memory_order_relaxed);
  if (clock != nullptr) return clock->now();
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void Reactor::drain_tasks() {
  std::vector<std::pair<double, std::function<void()>>> batch;
  {
    std::lock_guard lk(tasks_mu_);
    batch.swap(tasks_);
  }
  if (batch.empty()) return;
  const double picked = now();
  for (auto& [enqueued, fn] : batch) {
    dispatch_wait_.observe(std::max(0.0, picked - enqueued));
    fn();
  }
  std::lock_guard lk(stats_mu_);
  stats_.tasks_run += batch.size();
}

void Reactor::run() {
  loop_thread_id_ = std::this_thread::get_id();
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.u64 = pack(wake_fd_, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_ev);

  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  double busy_since = now();
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep until the next timer deadline (epoll granularity: ms), a
    // registered fd turns ready, or a post() wakes the eventfd.
    int timeout_ms = 1000;
    const double next = wheel_.next_deadline();
    if (std::isfinite(next)) {
      const double delta = next - now();
      timeout_ms = delta <= 0
                       ? 0
                       : static_cast<int>(std::min(1000.0, delta * 1e3) + 1);
    }
    {
      std::lock_guard lk(tasks_mu_);
      if (!tasks_.empty()) timeout_ms = 0;
    }

    // USE split: the block inside epoll_wait is the loop's idle time;
    // everything from wakeup to the next wait is busy time.  The phase
    // marker lets stats() attribute the CURRENT block live -- an idle loop
    // parks in epoll_wait up to a second at a time, and a scrape mid-park
    // must count that as idle, not wait for the iteration to finish.
    const double wait_start = now();
    phase_started_.store(wait_start, std::memory_order_relaxed);
    in_wait_.store(true, std::memory_order_release);
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    const double wait_end = now();
    in_wait_.store(false, std::memory_order_relaxed);
    phase_started_.store(wait_end, std::memory_order_release);
    if (n < 0 && errno != EINTR) break;

    std::uint64_t dispatched = 0;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = static_cast<int>(events[i].data.u64 & 0xffffffffu);
      const std::uint64_t gen = events[i].data.u64 >> 32;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      // A handler earlier in this batch may have closed this fd (and the
      // kernel may even have recycled the number); the generation stamp
      // unmasks such stale events.
      auto it = fds_.find(fd);
      if (it == fds_.end() || it->second.gen != gen) continue;
      ++dispatched;
      // Invoke a copy: the handler may del_fd its own entry, which would
      // destroy the stored closure (and its captures) out from under us.
      FdHandler handler = it->second.handler;
      OBS_STAGE("net.dispatch");
      handler(from_epoll(events[i].events));
    }

    drain_tasks();
    const std::size_t fired = wheel_.advance(now());

    const double iter_end = now();
    std::lock_guard lk(stats_mu_);
    ++stats_.wakeups;
    stats_.fd_dispatches += dispatched;
    stats_.timers_fired += fired;
    stats_.fds = fds_.size();
    stats_.timers_pending = wheel_.pending();
    stats_.busy_seconds += std::max(0.0, wait_start - busy_since) +
                           std::max(0.0, iter_end - wait_end);
    stats_.idle_seconds += std::max(0.0, wait_end - wait_start);
    // The chunk up to iter_end is in stats_ now; restart the live phase
    // here so a concurrent stats() cannot count it twice.
    phase_started_.store(iter_end, std::memory_order_relaxed);
    busy_since = iter_end;
  }
  phase_started_.store(-1.0, std::memory_order_relaxed);

  // Unwind on the loop thread: destroy handlers and queued task captures
  // here so anything they hold (connection state, shared_ptrs) is released
  // off the caller's thread but race-free.
  fds_.clear();
  timer_tokens_.clear();
  std::lock_guard lk(tasks_mu_);
  tasks_.clear();
}

ReactorStats Reactor::stats() const {
  ReactorStats out;
  {
    std::lock_guard lk(stats_mu_);
    out = stats_;
  }
  // Attribute the loop's in-progress phase (parked in epoll_wait, or busy
  // in a long dispatch) to this snapshot; the iteration-end batch add has
  // not seen it yet, so this never double-counts.
  const double started = phase_started_.load(std::memory_order_acquire);
  if (started >= 0.0) {
    const double elapsed = std::max(0.0, now() - started);
    if (in_wait_.load(std::memory_order_relaxed)) {
      out.idle_seconds += elapsed;
    } else {
      out.busy_seconds += elapsed;
    }
  }
  std::lock_guard lk(tasks_mu_);
  out.tasks_queued = tasks_.size();
  return out;
}

ReactorPool::ReactorPool(int loops) {
  int n = loops;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(hw == 0 ? 2 : hw);
    if (n > 8) n = 8;
  }
  reactors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    reactors_.push_back(std::make_unique<Reactor>());
  }
}

Reactor& ReactorPool::next() {
  const std::size_t i =
      cursor_.fetch_add(1, std::memory_order_relaxed) % reactors_.size();
  return *reactors_[i];
}

std::vector<ReactorStats> ReactorPool::stats() const {
  std::vector<ReactorStats> out;
  out.reserve(reactors_.size());
  for (const auto& r : reactors_) out.push_back(r->stats());
  return out;
}

}  // namespace visapult::net
