#include "net/shaper.h"

#include <algorithm>

namespace visapult::net {

ShapedStream::ShapedStream(StreamPtr inner, ShaperConfig config,
                           core::Clock& clock)
    : inner_(std::move(inner)),
      config_(config),
      clock_(clock),
      tokens_(static_cast<double>(config.burst_bytes)),
      last_refill_(clock.now()) {}

void ShapedStream::throttle(std::size_t bytes) {
  if (config_.rate_bytes_per_sec <= 0.0) return;
  std::unique_lock lk(mu_);
  double need = static_cast<double>(bytes);
  for (;;) {
    const core::TimePoint now = clock_.now();
    tokens_ = std::min(static_cast<double>(config_.burst_bytes),
                       tokens_ + (now - last_refill_) * config_.rate_bytes_per_sec);
    last_refill_ = now;
    // Accept an epsilon shortfall: the post-sleep refill is computed in
    // floating point and can land a hair under `need`, and the residual
    // wait can be too small to advance a double-valued clock at all --
    // an exact `>=` here spins forever on a virtual clock.
    if (tokens_ + 1e-6 >= need) {
      tokens_ = std::max(0.0, tokens_ - need);
      return;
    }
    const double wait = (need - tokens_) / config_.rate_bytes_per_sec;
    lk.unlock();
    clock_.sleep_for(wait);
    lk.lock();
  }
}

core::Status ShapedStream::send_all(const std::uint8_t* data, std::size_t len) {
  if (config_.latency_sec > 0.0) clock_.sleep_for(config_.latency_sec);
  // Shape in bucket-sized chunks so a huge send spreads smoothly.
  std::size_t sent = 0;
  while (sent < len) {
    const std::size_t n = std::min(len - sent, config_.burst_bytes);
    throttle(n);
    if (auto st = inner_->send_all(data + sent, n); !st.is_ok()) return st;
    sent += n;
  }
  if (len == 0) return inner_->send_all(data, 0);
  return core::Status::ok();
}

core::Status ShapedStream::recv_all(std::uint8_t* data, std::size_t len) {
  return inner_->recv_all(data, len);
}

void ShapedStream::close() { inner_->close(); }

}  // namespace visapult::net
