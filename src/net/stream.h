// Byte-stream transport abstraction.
//
// The Visapult components speak a "custom TCP-based protocol over striped
// sockets" (section 3.4).  Everything above this layer -- message framing,
// striping, the DPSS wire protocol, the backend/viewer payload protocol --
// is written against ByteStream so it runs identically over:
//   * real loopback TCP sockets (integration tests, the dpss_tool example),
//   * in-memory pipes (fast deterministic unit tests),
// and can be rate-shaped to emulate a WAN in real time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/status.h"

namespace visapult::net {

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Blocking write of the whole buffer.  kUnavailable if the peer is gone.
  virtual core::Status send_all(const std::uint8_t* data, std::size_t len) = 0;

  // Blocking read of exactly `len` bytes.  kUnavailable on orderly peer
  // close before any byte, kDataLoss on close mid-message.
  virtual core::Status recv_all(std::uint8_t* data, std::size_t len) = 0;

  // Close the stream; subsequent sends on the peer fail with kUnavailable.
  virtual void close() = 0;

  // Optional deadline for each subsequent recv_all() call: if the full
  // read has not completed within `seconds`, it fails with
  // kDeadlineExceeded instead of blocking forever on a stalled peer.
  // 0 restores the unbounded default.  Transports that cannot enforce a
  // deadline (in-memory pipes, whose tests are deterministic and never
  // stall) accept and ignore it.
  virtual core::Status set_recv_timeout(double seconds) {
    (void)seconds;
    return core::Status::ok();
  }

  core::Status send_bytes(const std::vector<std::uint8_t>& b) {
    return send_all(b.data(), b.size());
  }
  core::Result<std::vector<std::uint8_t>> recv_bytes(std::size_t len) {
    std::vector<std::uint8_t> buf(len);
    auto st = recv_all(buf.data(), len);
    if (!st.is_ok()) return st;
    return buf;
  }
};

using StreamPtr = std::shared_ptr<ByteStream>;

// In-memory full-duplex pipe: make_pipe() returns the two endpoints.
// Blocking semantics match sockets; close() wakes blocked readers.
std::pair<StreamPtr, StreamPtr> make_pipe(std::size_t capacity_bytes = 1 << 20);

}  // namespace visapult::net
