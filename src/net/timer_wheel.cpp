#include "net/timer_wheel.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace visapult::net {

TimerWheel::TimerWheel(double tick_seconds, std::size_t buckets)
    : tick_seconds_(tick_seconds > 0 ? tick_seconds : 0.001),
      buckets_(std::max<std::size_t>(buckets, 2)) {}

std::uint64_t TimerWheel::tick_for(double seconds) const {
  if (seconds <= 0) return 0;
  return static_cast<std::uint64_t>(std::ceil(seconds / tick_seconds_));
}

TimerWheel::TimerId TimerWheel::schedule(double deadline_seconds,
                                         std::function<void()> fn) {
  // Clamp into the future: a deadline the cursor already passed still gets
  // a tick that the next advance() will cross.
  const std::uint64_t tick = std::max(tick_for(deadline_seconds), cursor_ + 1);
  const TimerId id = next_id_++;
  entries_[id] = Entry{tick, std::move(fn)};
  buckets_[tick % buckets_.size()].push_back(id);
  ++tick_counts_[tick];
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  // The bucket slot is left behind and skipped when the cursor crosses it;
  // only the per-tick count is maintained eagerly so next_deadline() and
  // the cursor jump stay exact.
  auto tc = tick_counts_.find(it->second.tick);
  if (tc != tick_counts_.end() && --tc->second == 0) tick_counts_.erase(tc);
  entries_.erase(it);
  return true;
}

std::size_t TimerWheel::advance(double now) {
  const std::uint64_t target =
      static_cast<std::uint64_t>(std::max(0.0, now) / tick_seconds_);
  std::size_t fired = 0;
  // Due callbacks are collected first and invoked after the bookkeeping for
  // their tick is complete, so a callback that re-schedules cannot land in
  // a bucket the loop below is mid-way through mutating.
  std::vector<std::function<void()>> due;
  while (cursor_ < target) {
    // Jump straight to the next tick that actually holds armed timers.
    auto next = tick_counts_.begin();
    if (next == tick_counts_.end() || next->first > target) {
      cursor_ = target;
      break;
    }
    cursor_ = std::max(cursor_ + 1, next->first);
    auto& bucket = buckets_[cursor_ % buckets_.size()];
    std::vector<TimerId> keep;
    for (TimerId id : bucket) {
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;          // cancelled slot
      if (it->second.tick != cursor_) {            // a later wheel round
        keep.push_back(id);
        continue;
      }
      due.push_back(std::move(it->second.fn));
      auto tc = tick_counts_.find(cursor_);
      if (tc != tick_counts_.end() && --tc->second == 0) {
        tick_counts_.erase(tc);
      }
      entries_.erase(it);
    }
    bucket.swap(keep);
  }
  for (auto& fn : due) {
    ++fired;
    fn();
  }
  return fired;
}

double TimerWheel::next_deadline() const {
  if (tick_counts_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(tick_counts_.begin()->first) * tick_seconds_;
}

}  // namespace visapult::net
