#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace visapult::net {

namespace {
core::Status errno_status(const std::string& what) {
  return core::unavailable(what + ": " + std::strerror(errno));
}
}  // namespace

TcpStream::~TcpStream() {
  close();
  // No other thread can reach this stream once its last owner destroys
  // it, so releasing the descriptor here cannot race a blocked syscall.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

core::Status TcpStream::send_all(const std::uint8_t* data, std::size_t len) {
  const int fd = fd_.load();
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    if (n == 0) return core::unavailable("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

core::Status TcpStream::recv_all(std::uint8_t* data, std::size_t len) {
  const int fd = fd_.load();
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    if (n == 0) {
      if (got == 0) return core::unavailable("recv: connection closed by peer");
      return core::data_loss("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

void TcpStream::close() {
  // Only shut the socket down here: a concurrent reader blocked in recv()
  // wakes with end-of-stream instead of racing a closed (and possibly
  // recycled) descriptor.  ~TcpStream() releases the fd.
  const int fd = fd_.load();
  if (fd >= 0 && !shut_.exchange(true)) ::shutdown(fd, SHUT_RDWR);
}

core::Result<StreamPtr> TcpStream::connect(const std::string& host,
                                           std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return core::invalid_argument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const auto st = errno_status("connect to " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return StreamPtr(std::make_shared<TcpStream>(fd));
}

TcpListener::~TcpListener() {
  close();
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

core::Status TcpListener::listen(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  fd_.store(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_status("bind");
  }
  if (::listen(fd, backlog) != 0) return errno_status("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return core::Status::ok();
}

core::Result<StreamPtr> TcpListener::accept() {
  const int fd = fd_.load();
  if (fd < 0 || shut_.load()) return core::unavailable("listener closed");
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR && !shut_.load()) return accept();
    return errno_status("accept");
  }
  if (shut_.load()) {
    // close() raced the accept: drop the connection and report closed.
    ::close(client);
    return core::unavailable("listener closed");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return StreamPtr(std::make_shared<TcpStream>(client));
}

void TcpListener::close() {
  // Shutdown wakes a blocked accept() (it fails with EINVAL); the fd is
  // released in the destructor so no accept() can race a recycled fd.
  const int fd = fd_.load();
  if (fd >= 0 && !shut_.exchange(true)) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace visapult::net
