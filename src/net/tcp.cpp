#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace visapult::net {

namespace {
core::Status errno_status(const std::string& what) {
  return core::unavailable(what + ": " + std::strerror(errno));
}
}  // namespace

TcpStream::~TcpStream() { close(); }

core::Status TcpStream::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    if (n == 0) return core::unavailable("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

core::Status TcpStream::recv_all(std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    if (n == 0) {
      if (got == 0) return core::unavailable("recv: connection closed by peer");
      return core::data_loss("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

core::Result<StreamPtr> TcpStream::connect(const std::string& host,
                                           std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return core::invalid_argument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const auto st = errno_status("connect to " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return StreamPtr(std::make_shared<TcpStream>(fd));
}

TcpListener::~TcpListener() { close(); }

core::Status TcpListener::listen(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_status("bind");
  }
  if (::listen(fd_, backlog) != 0) return errno_status("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return core::Status::ok();
}

core::Result<StreamPtr> TcpListener::accept() {
  if (fd_ < 0) return core::unavailable("listener closed");
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR) return accept();
    return errno_status("accept");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return StreamPtr(std::make_shared<TcpStream>(client));
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace visapult::net
