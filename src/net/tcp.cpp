#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

namespace visapult::net {

namespace {

core::Status errno_status(const std::string& what) {
  return core::unavailable(what + ": " + std::strerror(errno));
}

double monotonic_now() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Wait until `fd` reports `events` or `deadline` (monotonic seconds,
// infinity = wait forever) passes.  Returns +1 ready, 0 deadline, -1 error.
int wait_ready(int fd, short events, double deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (std::isfinite(deadline)) {
      const double remaining = deadline - monotonic_now();
      if (remaining <= 0) return 0;
      timeout_ms = static_cast<int>(std::min(remaining * 1e3 + 1, 3.6e6));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return 1;
    if (rc == 0) {
      if (!std::isfinite(deadline)) continue;  // spurious; keep waiting
      return 0;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

core::Status set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return errno_status("fcntl(F_SETFL)");
  }
  return core::Status::ok();
}

}  // namespace

TcpStream::~TcpStream() {
  close();
  // No other thread can reach this stream once its last owner destroys
  // it, so releasing the descriptor here cannot race a blocked syscall.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

core::Status TcpStream::send_all(const std::uint8_t* data, std::size_t len) {
  const int fd = fd_.load();
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    if (n == 0) return core::unavailable("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

core::Status TcpStream::recv_all(std::uint8_t* data, std::size_t len) {
  const int fd = fd_.load();
  const double timeout = recv_timeout_seconds_.load();
  // One deadline covers the whole read: a peer trickling a byte per
  // timeout window cannot hold the reader hostage indefinitely.
  const double deadline = timeout > 0
                              ? monotonic_now() + timeout
                              : std::numeric_limits<double>::infinity();
  std::size_t got = 0;
  while (got < len) {
    if (timeout > 0) {
      const int ready = wait_ready(fd, POLLIN, deadline);
      if (ready == 0) {
        return core::deadline_exceeded("recv: no data within " +
                                       std::to_string(timeout) + "s");
      }
      if (ready < 0) return errno_status("poll(recv)");
    }
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (timeout > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;  // raced another reader for the poll'd bytes
      }
      return errno_status("recv");
    }
    if (n == 0) {
      if (got == 0) return core::unavailable("recv: connection closed by peer");
      return core::data_loss("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

void TcpStream::close() {
  // Only shut the socket down here: a concurrent reader blocked in recv()
  // wakes with end-of-stream instead of racing a closed (and possibly
  // recycled) descriptor.  ~TcpStream() releases the fd.
  const int fd = fd_.load();
  if (fd >= 0 && !shut_.exchange(true)) ::shutdown(fd, SHUT_RDWR);
}

core::Status TcpStream::set_recv_timeout(double seconds) {
  if (!(seconds >= 0) || !std::isfinite(seconds)) {
    return core::invalid_argument("recv timeout must be finite and >= 0");
  }
  recv_timeout_seconds_.store(seconds);
  return core::Status::ok();
}

core::Result<StreamPtr> TcpStream::connect(const std::string& host,
                                           std::uint16_t port,
                                           const ConnectOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return core::invalid_argument("bad IPv4 address: " + host);
  }

  const std::string where = host + ":" + std::to_string(port);
  // Handshake in non-blocking mode so a full accept queue or blackholed
  // address hits the caller's deadline, not the kernel's SYN-retry clock.
  if (auto st = set_nonblocking(fd, true); !st.is_ok()) {
    ::close(fd);
    return st;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    const auto st = errno_status("connect to " + where);
    ::close(fd);
    return st;
  }
  const double deadline = options.timeout_seconds > 0
                              ? monotonic_now() + options.timeout_seconds
                              : std::numeric_limits<double>::infinity();
  const int ready = wait_ready(fd, POLLOUT, deadline);
  if (ready <= 0) {
    const auto st =
        ready == 0
            ? core::deadline_exceeded(
                  "connect to " + where + ": no handshake within " +
                  std::to_string(options.timeout_seconds) + "s")
            : errno_status("poll(connect to " + where + ")");
    ::close(fd);
    return st;
  }
  int err = 0;
  socklen_t err_len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
      err != 0) {
    const auto st = core::unavailable("connect to " + where + ": " +
                                      std::strerror(err != 0 ? err : errno));
    ::close(fd);
    return st;
  }
  if (auto st = set_nonblocking(fd, false); !st.is_ok()) {
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return StreamPtr(std::make_shared<TcpStream>(fd));
}

TcpListener::~TcpListener() {
  close();
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

core::Status TcpListener::listen(std::uint16_t port, int backlog) {
  if (fd_.load() >= 0) {
    // Rebinding used to overwrite fd_ and leak the previous socket (still
    // accepting in the kernel, invisible to this object).  Refuse instead;
    // callers that want a new port construct a new listener.
    return core::failed_precondition(
        "listen: listener already bound to port " + std::to_string(port_));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // The fd stays local until the socket is fully listening: every error
  // path below must close it, leaving the listener unbound and retryable.
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const auto st = errno_status("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const auto st = errno_status("listen");
    ::close(fd);
    return st;
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const auto st = errno_status("getsockname");
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
  return core::Status::ok();
}

core::Result<StreamPtr> TcpListener::accept() {
  const int fd = fd_.load();
  if (fd < 0 || shut_.load()) return core::unavailable("listener closed");
  int client;
  // Retry EINTR iteratively: the old tail-recursive retry grew the stack
  // under a signal storm (e.g. a profiler's SIGPROF every few ms).
  do {
    client = ::accept(fd, nullptr, nullptr);
  } while (client < 0 && errno == EINTR && !shut_.load());
  if (client < 0) return errno_status("accept");
  if (shut_.load()) {
    // close() raced the accept: drop the connection and report closed.
    ::close(client);
    return core::unavailable("listener closed");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return StreamPtr(std::make_shared<TcpStream>(client));
}

void TcpListener::close() {
  // Shutdown wakes a blocked accept() (it fails with EINVAL); the fd is
  // released in the destructor so no accept() can race a recycled fd.
  const int fd = fd_.load();
  if (fd >= 0 && !shut_.exchange(true)) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace visapult::net
