#include "codec/reed_solomon.h"

#include <algorithm>

#include "codec/gf256.h"

namespace visapult::codec {

namespace {

using Matrix = std::vector<std::vector<std::uint8_t>>;

// Gauss-Jordan inverse of a square GF(2^8) matrix.  Returns an empty
// matrix when singular -- which cannot happen for the sub-matrices this
// file builds (any k rows of a systematized Vandermonde are independent),
// but the caller still checks so corruption fails loudly.
Matrix invert(Matrix a) {
  const std::size_t n = a.size();
  Matrix inv(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) return {};
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const std::uint8_t scale = gf256::inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] = gf256::mul(a[col][j], scale);
      inv[col][j] = gf256::mul(inv[col][j], scale);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const std::uint8_t f = a[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        a[row][j] ^= gf256::mul(f, a[col][j]);
        inv[row][j] ^= gf256::mul(f, inv[col][j]);
      }
    }
  }
  return inv;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  const std::size_t rows = a.size(), inner = b.size(), cols = b[0].size();
  Matrix out(rows, std::vector<std::uint8_t>(cols, 0));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < inner; ++i) {
      if (a[r][i] == 0) continue;
      for (std::size_t c = 0; c < cols; ++c) {
        out[r][c] ^= gf256::mul(a[r][i], b[i][c]);
      }
    }
  }
  return out;
}

}  // namespace

ReedSolomon::ReedSolomon(const EcProfile& profile) : profile_(profile) {
  const std::uint32_t k = std::min<std::uint32_t>(
      255, std::max<std::uint32_t>(1, profile_.data_slices));
  const std::uint32_t m = std::min<std::uint32_t>(255 - k,
                                                  profile_.parity_slices);
  profile_.data_slices = k;
  profile_.parity_slices = m;
  const std::uint32_t total = k + m;

  // Vandermonde over distinct evaluation points 0..total-1 (0^0 == 1), then
  // normalise the top k x k to the identity.  Any k rows of a Vandermonde
  // matrix are independent (distinct points); right-multiplying by one
  // fixed invertible matrix preserves that, so any k stored slices decode.
  Matrix vander(total, std::vector<std::uint8_t>(k, 0));
  for (std::uint32_t r = 0; r < total; ++r) {
    std::uint8_t v = 1;
    for (std::uint32_t c = 0; c < k; ++c) {
      vander[r][c] = v;
      v = gf256::mul(v, static_cast<std::uint8_t>(r));
    }
  }
  Matrix top(vander.begin(), vander.begin() + k);
  matrix_ = multiply(vander, invert(std::move(top)));
}

void ReedSolomon::encode(const std::vector<const std::uint8_t*>& data,
                         std::size_t n,
                         std::vector<std::vector<std::uint8_t>>* parity) const {
  const std::uint32_t kk = k();
  parity->assign(m(), std::vector<std::uint8_t>(n, 0));
  for (std::uint32_t j = 0; j < m(); ++j) {
    const auto& coef = matrix_[kk + j];
    auto& out = (*parity)[j];
    for (std::uint32_t i = 0; i < kk; ++i) {
      gf256::mul_add(out.data(), data[i], n, coef[i]);
    }
  }
}

core::Status ReedSolomon::reconstruct(
    std::vector<std::vector<std::uint8_t>>& shards,
    const std::vector<char>& present, std::size_t n,
    bool rebuild_parity) const {
  const std::uint32_t kk = k(), total = kk + m();
  if (shards.size() != total || present.size() != total) {
    return core::invalid_argument("reconstruct wants k+m shard slots");
  }
  std::vector<std::uint32_t> have;
  for (std::uint32_t s = 0; s < total && have.size() < kk; ++s) {
    if (present[s]) {
      if (shards[s].size() < n) {
        return core::invalid_argument("present shard shorter than n");
      }
      have.push_back(s);
    }
  }
  if (have.size() < kk) {
    return core::unavailable("only " + std::to_string(have.size()) +
                             " of " + std::to_string(kk) +
                             " required slices survive");
  }

  bool data_missing = false;
  for (std::uint32_t s = 0; s < kk; ++s) data_missing |= !present[s];

  // data[i] = sum_j decode[i][j] * shards[have[j]] where decode is the
  // inverse of the coding-matrix rows we actually hold.
  std::vector<const std::uint8_t*> data_ptr(kk, nullptr);
  std::vector<std::vector<std::uint8_t>> recovered;
  if (data_missing) {
    Matrix sub(kk);
    for (std::uint32_t j = 0; j < kk; ++j) sub[j] = matrix_[have[j]];
    Matrix decode = invert(std::move(sub));
    if (decode.empty()) {
      return core::internal_error("singular decode matrix");
    }
    recovered.reserve(kk);
    for (std::uint32_t i = 0; i < kk; ++i) {
      if (present[i]) {
        data_ptr[i] = shards[i].data();
        continue;
      }
      std::vector<std::uint8_t> out(n, 0);
      for (std::uint32_t j = 0; j < kk; ++j) {
        gf256::mul_add(out.data(), shards[have[j]].data(), n, decode[i][j]);
      }
      recovered.push_back(std::move(out));
      data_ptr[i] = recovered.back().data();
    }
    std::size_t r = 0;
    for (std::uint32_t i = 0; i < kk; ++i) {
      if (!present[i]) shards[i] = std::move(recovered[r++]);
    }
  }
  for (std::uint32_t i = 0; i < kk; ++i) data_ptr[i] = shards[i].data();

  // Re-derive any missing parity from the (now complete) data slices.
  if (!rebuild_parity) return core::Status::ok();
  for (std::uint32_t s = kk; s < total; ++s) {
    if (present[s]) continue;
    std::vector<std::uint8_t> out(n, 0);
    const auto& coef = matrix_[s];
    for (std::uint32_t i = 0; i < kk; ++i) {
      gf256::mul_add(out.data(), data_ptr[i], n, coef[i]);
    }
    shards[s] = std::move(out);
  }
  return core::Status::ok();
}

}  // namespace visapult::codec
