// GF(2^8) arithmetic for Reed-Solomon coding.
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) -- polynomial 0x11d,
// the AES-unrelated "Rijndael cousin" every storage RS implementation uses
// -- with generator 2.  Addition is XOR; multiplication goes through
// exp/log tables, and the bulk kernels behind encode/decode use one
// 256-byte row of the full product table per coefficient so the inner loop
// is a single lookup + XOR per byte.
//
// All tables are built once at static-init time from the polynomial; there
// is no per-instance state, so the functions are free and thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>

namespace visapult::codec {

// x^8 + x^4 + x^3 + x^2 + 1.
inline constexpr std::uint16_t kGf256Poly = 0x11d;

namespace gf256 {

std::uint8_t mul(std::uint8_t a, std::uint8_t b);
// b must be non-zero.
std::uint8_t div(std::uint8_t a, std::uint8_t b);
// a must be non-zero.
std::uint8_t inv(std::uint8_t a);
// generator^e for e >= 0.
std::uint8_t exp(unsigned e);
// discrete log base the generator; a must be non-zero.
std::uint8_t log(std::uint8_t a);

// y[i] ^= c * x[i] -- the accumulate kernel of encode and decode.
void mul_add(std::uint8_t* y, const std::uint8_t* x, std::size_t n,
             std::uint8_t c);
// y[i] = c * x[i].
void mul_to(std::uint8_t* y, const std::uint8_t* x, std::size_t n,
            std::uint8_t c);
// y[i] = a[i] ^ c * d[i] -- the bulk parity-delta kernel (PR 5).  Because
// the code is GF-linear, overwriting one data slice updates each parity
// slice as parity' = parity ^ coef * (new ^ old); the data-slice primary
// ships the XOR delta and the parity owner runs this kernel to build the
// next generation's parity.  Out of place on purpose: the old generation's
// bytes stay immutable for readers that still hold them (aliasing y == a
// is allowed and gives the in-place form).
void delta_apply(std::uint8_t* y, const std::uint8_t* a, const std::uint8_t* d,
                 std::size_t n, std::uint8_t c);

}  // namespace gf256
}  // namespace visapult::codec
