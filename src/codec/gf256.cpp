#include "codec/gf256.h"

#include <array>

namespace visapult::codec::gf256 {

namespace {

// exp_ is doubled so mul via exp[log(a) + log(b)] never needs a modulo;
// prod_ is the full 64 KB product table feeding the bulk kernels.
struct Tables {
  std::array<std::uint8_t, 512> exp_;
  std::array<std::uint8_t, 256> log_;
  std::array<std::array<std::uint8_t, 256>, 256> prod_;

  Tables() {
    std::uint16_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      exp_[i + 255] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kGf256Poly;
    }
    exp_[510] = exp_[0];
    exp_[511] = exp_[1];
    log_[0] = 0;  // never consulted: log of zero is undefined
    for (unsigned a = 0; a < 256; ++a) {
      prod_[a][0] = 0;
      prod_[0][a] = 0;
    }
    for (unsigned a = 1; a < 256; ++a) {
      for (unsigned b = 1; b < 256; ++b) {
        prod_[a][b] = exp_[log_[a] + log_[b]];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().prod_[a][b];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

std::uint8_t inv(std::uint8_t a) {
  const Tables& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t exp(unsigned e) { return tables().exp_[e % 255]; }

std::uint8_t log(std::uint8_t a) { return tables().log_[a]; }

void mul_add(std::uint8_t* y, const std::uint8_t* x, std::size_t n,
             std::uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
    return;
  }
  const std::uint8_t* row = tables().prod_[c].data();
  for (std::size_t i = 0; i < n; ++i) y[i] ^= row[x[i]];
}

void delta_apply(std::uint8_t* y, const std::uint8_t* a, const std::uint8_t* d,
                 std::size_t n, std::uint8_t c) {
  if (c == 0) {
    if (y != a) {
      for (std::size_t i = 0; i < n; ++i) y[i] = a[i];
    }
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] = a[i] ^ d[i];
    return;
  }
  const std::uint8_t* row = tables().prod_[c].data();
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] ^ row[d[i]];
}

void mul_to(std::uint8_t* y, const std::uint8_t* x, std::size_t n,
            std::uint8_t c) {
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) y[i] = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
    return;
  }
  const std::uint8_t* row = tables().prod_[c].data();
  for (std::size_t i = 0; i < n; ++i) y[i] = row[x[i]];
}

}  // namespace visapult::codec::gf256
