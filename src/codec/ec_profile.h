// Erasure-coding profile: the (k, m) of a Reed-Solomon redundancy mode.
//
// A dataset placed with an enabled profile stores each group of
// `data_slices` consecutive blocks as k data slices plus `parity_slices`
// parity slices, any k of which recover the group.  Availability then costs
// (k+m)/k of raw capacity -- 1.5x for (4, 2) -- where replication costs a
// full rf x.
//
// The struct is header-only and dependency-free on purpose: the placement
// subsystem stores it inside PlacementMap and the DPSS wire protocol
// carries it in OpenReply, neither of which may link the codec math.
#pragma once

#include <cstdint>

namespace visapult::codec {

struct EcProfile {
  std::uint32_t data_slices = 1;    // k
  std::uint32_t parity_slices = 0;  // m

  bool enabled() const { return data_slices > 0 && parity_slices > 0; }
  std::uint32_t total_slices() const { return data_slices + parity_slices; }
  // Raw bytes stored per logical byte: (k + m) / k.
  double capacity_ratio() const {
    return data_slices == 0
               ? 1.0
               : static_cast<double>(total_slices()) / data_slices;
  }

  friend bool operator==(const EcProfile& a, const EcProfile& b) {
    return a.data_slices == b.data_slices && a.parity_slices == b.parity_slices;
  }
  friend bool operator!=(const EcProfile& a, const EcProfile& b) {
    return !(a == b);
  }
};

}  // namespace visapult::codec
