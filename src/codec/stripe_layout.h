// StripeLayout: where every slice of an erasure-coded dataset lives.
//
// Wraps an EC-enabled placement::PlacementMap (groups of k consecutive
// blocks hashed onto k + m distinct ring servers) and answers the
// questions the ingest encoder, the client's degraded read path, and the
// rebalance executor all share:
//
//   * which group a block belongs to, and which of the group's slices it
//     IS (data slice s of group g is logical block g*k + s, stored
//     verbatim on the slice-s owner -- the systematic fast path);
//   * which server owns each slice;
//   * the storage identity of parity: parity slice j of group g is block
//     g*m + j of the companion dataset "<name>#parity", which keeps block
//     servers and the wire protocol entirely EC-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codec/ec_profile.h"
#include "placement/placement_map.h"

namespace visapult::codec {

class StripeLayout {
 public:
  StripeLayout() = default;
  explicit StripeLayout(std::shared_ptr<const placement::PlacementMap> map)
      : map_(std::move(map)) {}

  // True when the wrapped map exists and is erasure-coded.
  bool valid() const { return map_ && map_->erasure_coded(); }
  const EcProfile& profile() const {
    static const EcProfile none;
    return map_ ? map_->ec_profile() : none;
  }
  const placement::PlacementMap& map() const { return *map_; }

  std::uint64_t block_count() const { return map_ ? map_->block_count() : 0; }
  std::uint64_t group_count() const { return map_ ? map_->group_count() : 0; }
  std::uint64_t group_of_block(std::uint64_t block) const {
    return map_ ? map_->group_of(block) : 0;
  }
  std::uint32_t slice_of_block(std::uint64_t block) const {
    const std::uint32_t k = profile().data_slices;
    return k == 0 ? 0 : static_cast<std::uint32_t>(block % k);
  }
  std::uint64_t block_of_slice(std::uint64_t group, std::uint32_t slice) const {
    return group * profile().data_slices + slice;
  }
  // Data blocks [first, last) of `group`, clipped to the dataset (the last
  // group may cover fewer than k real blocks; the missing tail slices are
  // all-zero for parity purposes and are never stored or fetched).
  std::uint64_t group_first_block(std::uint64_t group) const {
    return map_ ? map_->group_first_block(group) : 0;
  }
  std::uint64_t group_last_block(std::uint64_t group) const {
    return map_ ? map_->group_last_block(group) : 0;
  }

  // Slice owners of `group` in slice order (size k + m when the ring had
  // enough servers).  Indices into map().ring().servers().
  const std::vector<std::uint32_t>& group_servers(std::uint64_t group) const {
    return map_->replicas_for_group(group).servers;
  }
  int server_for_slice(std::uint64_t group, std::uint32_t slice) const {
    return map_ ? map_->slice_server(group, slice) : -1;
  }

  // ---- parity storage identity ----
  static std::string parity_dataset(const std::string& dataset) {
    return dataset + "#parity";
  }
  std::uint64_t parity_block(std::uint64_t group, std::uint32_t parity_index) const {
    return group * profile().parity_slices + parity_index;
  }

 private:
  std::shared_ptr<const placement::PlacementMap> map_;
};

}  // namespace visapult::codec
