// Systematic Reed-Solomon erasure codes over GF(2^8).
//
// An (k, m) code turns k equal-length data slices into k + m stored slices
// -- the k data slices verbatim (systematic: the healthy read path never
// decodes) plus m parity slices -- such that ANY k of the k + m recover
// everything.  The coding matrix is a Vandermonde matrix row-reduced so its
// top k x k is the identity; any k rows of the result stay invertible,
// which is the whole erasure-tolerance argument.
//
// Encode cost is m GF multiply-accumulate passes per data slice; decode
// inverts one k x k matrix per erasure pattern (microseconds) and then runs
// the same bulk kernels.  Instances are immutable after construction and
// safe to share across threads.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/ec_profile.h"
#include "core/status.h"

namespace visapult::codec {

class ReedSolomon {
 public:
  // Requires 1 <= k, 0 <= m, k + m <= 255 (a Vandermonde matrix needs
  // distinct evaluation points, and GF(2^8) has 256).  Out-of-range
  // profiles are clamped into range (k into [1, 255], then m into
  // [0, 255-k]); untrusted inputs -- the wire-decoded OpenReply, the
  // master's register validation -- are rejected before construction, so
  // the clamp is a belt-and-braces backstop, not an API.
  explicit ReedSolomon(const EcProfile& profile);
  ReedSolomon(std::uint32_t data_slices, std::uint32_t parity_slices)
      : ReedSolomon(EcProfile{data_slices, parity_slices}) {}

  const EcProfile& profile() const { return profile_; }
  std::uint32_t k() const { return profile_.data_slices; }
  std::uint32_t m() const { return profile_.parity_slices; }

  // parity receives m slices of `n` bytes each, computed over the k data
  // slices (each at least `n` bytes long).
  void encode(const std::vector<const std::uint8_t*>& data, std::size_t n,
              std::vector<std::vector<std::uint8_t>>* parity) const;

  // shards has k + m entries in slice order; present[s] marks the slices
  // that survived (each of size >= n).  Rebuilds every absent data shard
  // in place (resized to n); absent parity shards are re-derived only
  // when `rebuild_parity` is set -- the client's degraded read needs the
  // data alone, and skipping parity saves up to m bulk passes per group.
  // Fails unless at least k slices are present.
  core::Status reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                           const std::vector<char>& present, std::size_t n,
                           bool rebuild_parity = true) const;

  // Coding-matrix row for stored slice `s` (identity rows for s < k);
  // exposed for tests of the any-k-rows-invertible property.
  const std::vector<std::uint8_t>& row(std::uint32_t s) const {
    return matrix_[s];
  }

  // Coefficient of data slice `data_slice` in parity slice `parity_index`:
  // the GF(2^8) constant c such that overwriting that data slice updates
  // the parity as parity' = parity ^ c * (new ^ old) (the parity-delta
  // write path).
  std::uint8_t parity_coefficient(std::uint32_t parity_index,
                                  std::uint32_t data_slice) const {
    return matrix_[profile_.data_slices + parity_index][data_slice];
  }

 private:
  EcProfile profile_;
  // (k + m) x k; top k rows are the identity.
  std::vector<std::vector<std::uint8_t>> matrix_;
};

}  // namespace visapult::codec
