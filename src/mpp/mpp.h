// mpp: a miniature message-passing runtime (the MPI substitution).
//
// "The Visapult back end is implemented using MPI as the multiprocessing
// and IPC framework" (Appendix B).  No MPI implementation is available in
// this environment, so mpp provides the slice of MPI the back end uses --
// rank identity, blocking tagged point-to-point send/recv, barrier,
// broadcast and reductions -- with one OS thread per rank inside a single
// process.  The paper itself runs a pthread next to each MPI process, so a
// thread-based rank maps naturally onto its execution model; back-end code
// written against Comm would port to real MPI by swapping this runtime.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "core/status.h"
#include "core/sync.h"

namespace visapult::mpp {

class Comm;

// Owns the shared mailboxes and barrier for one "job".
class Runtime {
 public:
  explicit Runtime(int world_size);

  int world_size() const { return world_size_; }

  // Launch `rank_main` on world_size threads, each with its Comm handle.
  // Blocks until every rank returns.  The first exception thrown by any
  // rank is rethrown here after all ranks have been joined.
  void run(const std::function<void(Comm&)>& rank_main);

 private:
  friend class Comm;

  struct Envelope {
    int src = 0;
    int tag = 0;
    std::vector<std::uint8_t> data;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> queue;
  };

  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  core::SpinBarrier barrier_;
};

// Per-rank communicator handle.  Not thread-safe within a rank (like an
// MPI communicator used from its owning thread).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return runtime_->world_size(); }

  // Blocking tagged send (copies the buffer into the destination mailbox;
  // send never blocks on the receiver, like a buffered MPI send).
  void send(int dst, int tag, std::vector<std::uint8_t> data);

  // Blocking receive matching (src, tag).  src = kAnySource matches any.
  static constexpr int kAnySource = -1;
  std::vector<std::uint8_t> recv(int src, int tag, int* actual_src = nullptr);

  // Collectives over all ranks.
  void barrier();
  void bcast(std::vector<std::uint8_t>& data, int root);
  double allreduce_sum(double value);
  double allreduce_max(double value);

  // Typed convenience for POD payloads.
  template <typename T>
  void send_value(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> buf(sizeof(T));
    std::memcpy(buf.data(), &value, sizeof(T));
    send(dst, tag, std::move(buf));
  }
  template <typename T>
  T recv_value(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto buf = recv(src, tag);
    T value{};
    std::memcpy(&value, buf.data(), std::min(sizeof(T), buf.size()));
    return value;
  }

 private:
  friend class Runtime;
  Comm(Runtime* runtime, int rank) : runtime_(runtime), rank_(rank) {}

  Runtime* runtime_;
  int rank_;
};

}  // namespace visapult::mpp
