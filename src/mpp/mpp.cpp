#include "mpp/mpp.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace visapult::mpp {

Runtime::Runtime(int world_size)
    : world_size_(std::max(1, world_size)), barrier_(std::max(1, world_size)) {
  mailboxes_.reserve(static_cast<std::size_t>(world_size_));
  for (int i = 0; i < world_size_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Runtime::run(const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world_size_));
  threads.reserve(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &errors] {
      Comm comm(this, r);
      try {
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Comm::send(int dst, int tag, std::vector<std::uint8_t> data) {
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("mpp::send: bad destination rank");
  }
  auto& box = *runtime_->mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lk(box.mu);
    box.queue.push_back(Runtime::Envelope{rank_, tag, std::move(data)});
  }
  box.cv.notify_all();
}

std::vector<std::uint8_t> Comm::recv(int src, int tag, int* actual_src) {
  auto& box = *runtime_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lk(box.mu);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->tag != tag) continue;
      if (src != kAnySource && it->src != src) continue;
      if (actual_src) *actual_src = it->src;
      std::vector<std::uint8_t> data = std::move(it->data);
      box.queue.erase(it);
      return data;
    }
    box.cv.wait(lk);
  }
}

void Comm::barrier() { runtime_->barrier_.arrive_and_wait(); }

namespace {
constexpr int kBcastTag = -1000;
constexpr int kReduceTag = -1001;
}  // namespace

void Comm::bcast(std::vector<std::uint8_t>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv(root, kBcastTag);
  }
}

double Comm::allreduce_sum(double value) {
  // Gather to rank 0, reduce, broadcast back.
  if (rank_ == 0) {
    double total = value;
    for (int r = 1; r < size(); ++r) {
      total += recv_value<double>(kAnySource, kReduceTag);
    }
    for (int r = 1; r < size(); ++r) send_value(r, kReduceTag, total);
    return total;
  }
  send_value(0, kReduceTag, value);
  return recv_value<double>(0, kReduceTag);
}

double Comm::allreduce_max(double value) {
  if (rank_ == 0) {
    double best = value;
    for (int r = 1; r < size(); ++r) {
      best = std::max(best, recv_value<double>(kAnySource, kReduceTag));
    }
    for (int r = 1; r < size(); ++r) send_value(r, kReduceTag, best);
    return best;
  }
  send_value(0, kReduceTag, value);
  return recv_value<double>(0, kReduceTag);
}

}  // namespace visapult::mpp
