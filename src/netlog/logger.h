// NetLogger producer API and sinks.
//
// Mirrors the original toolkit's procedural interface: a component creates a
// NetLogger bound to its (host, program) identity and a sink, then drops
// `log(tag, frame, rank, fields...)` calls at instrumentation points.  Sinks:
//   * MemorySink  -- thread-safe in-process accumulation (the default for
//                    the experiment harness; plays the role of the netlogd
//                    daemon's event log),
//   * FileSink    -- ULM lines to a file,
//   * StreamSink  -- framed events over a ByteStream to a CollectorDaemon
//                    on another "host" (the paper's daemon model),
//   * TeeSink     -- fan-out to several sinks.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.h"
#include "netlog/event.h"

namespace visapult::netlog {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void consume(const Event& event) = 0;
};

using SinkPtr = std::shared_ptr<Sink>;

class MemorySink final : public Sink {
 public:
  // `capacity` bounds the buffer: once full, the oldest event is dropped to
  // admit the newest (a ring), and dropped() counts the losses.  0 keeps
  // the historical unbounded behaviour -- fine for tests and short
  // campaigns, not for a long-lived traced deployment.
  explicit MemorySink(std::size_t capacity = 0) : capacity_(capacity) {}

  void consume(const Event& event) override;

  // Snapshot of retained events, oldest first.
  std::vector<Event> events() const;
  // Take-and-clear, oldest first: the atomic handoff span export needs so
  // an event is shipped exactly once even while producers keep logging.
  // Unlike clear(), dropped() keeps counting across drains.
  std::vector<Event> drain();
  std::size_t size() const;
  void clear();  // resets dropped() too

  std::size_t capacity() const { return capacity_; }
  // Events evicted to make room since construction or clear().
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  std::uint64_t dropped_ = 0;
};

class FileSink final : public Sink {
 public:
  // Appends ULM lines; throws std::runtime_error if the file cannot open.
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void consume(const Event& event) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class TeeSink final : public Sink {
 public:
  explicit TeeSink(std::vector<SinkPtr> sinks) : sinks_(std::move(sinks)) {}
  void consume(const Event& event) override {
    for (auto& s : sinks_) s->consume(event);
  }

 private:
  std::vector<SinkPtr> sinks_;
};

// The producer handle.
class NetLogger {
 public:
  NetLogger(core::Clock& clock, std::string host, std::string program,
            SinkPtr sink)
      : clock_(&clock), host_(std::move(host)), program_(std::move(program)),
        sink_(std::move(sink)) {}

  // Stamp and emit an event now.
  void log(const std::string& tag, std::int64_t frame = -1, int rank = -1,
           std::vector<std::pair<std::string, std::string>> fields = {});

  // Convenience for the common BYTES field.
  void log_bytes(const std::string& tag, std::int64_t frame, int rank,
                 double bytes);

  // Emit with an explicit timestamp (used by virtual-time components that
  // know event times ahead of the clock).
  void log_at(core::TimePoint t, const std::string& tag, std::int64_t frame,
              int rank,
              std::vector<std::pair<std::string, std::string>> fields = {});

  const std::string& host() const { return host_; }
  const std::string& program() const { return program_; }

 private:
  core::Clock* clock_;
  std::string host_;
  std::string program_;
  SinkPtr sink_;
};

}  // namespace visapult::netlog
