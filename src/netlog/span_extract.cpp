#include "netlog/span_extract.h"

#include <algorithm>
#include <cstdlib>

namespace visapult::netlog {

namespace {

std::uint64_t parse_hex(const std::string& s) {
  if (s.empty()) return 0;
  return std::strtoull(s.c_str(), nullptr, 16);
}

// START/IN tag -> the stage the paired span belongs to; nullptr if the tag
// does not open a span.
const char* open_stage(const std::string& tag) {
  if (tag == tags::kDpssReadStart) return obs::stages::kClientRead;
  if (tag == tags::kDpssWriteStart) return obs::stages::kClientWrite;
  if (tag == tags::kDpssOpenStart) return obs::stages::kClientOpen;
  if (tag == tags::kDpssMasterIn) return obs::stages::kMasterOpen;
  if (tag == tags::kDpssServIn) return obs::stages::kDiskCache;
  return nullptr;
}

bool close_tag(const std::string& tag) {
  return tag == tags::kDpssReadEnd || tag == tags::kDpssWriteEnd ||
         tag == tags::kDpssOpenEnd || tag == tags::kDpssMasterOut ||
         tag == tags::kDpssServOut;
}

const char* marker_stage(const std::string& tag) {
  if (tag == tags::kDpssChainForward) return obs::stages::kChainForward;
  if (tag == tags::kDpssParityDelta) return obs::stages::kParityDelta;
  return nullptr;
}

}  // namespace

void SpanExtractor::feed(const std::vector<Event>& events,
                         std::vector<obs::SpanRecord>& out) {
  for (const Event& e : events) {
    const std::uint64_t trace = parse_hex(e.field("TRACE"));
    const std::uint64_t span = parse_hex(e.field("SPAN"));
    if (trace == 0 || span == 0) continue;
    const auto key = std::make_pair(trace, span);

    if (const char* stage = marker_stage(e.tag)) {
      // Link events: the sender's record of the hop it spawned.  The
      // receiver's SERV_IN/OUT pair supplies the window; this marker
      // supplies the stage and the parent linkage.
      obs::SpanRecord rec;
      rec.trace_id = trace;
      rec.span_id = span;
      rec.parent_span_id = parse_hex(e.field("PARENT"));
      rec.host = e.host;
      rec.stage = stage;
      rec.start = e.timestamp;
      out.push_back(std::move(rec));
      continue;
    }

    if (const char* stage = open_stage(e.tag)) {
      if (open_.size() >= kMaxPending) open_.erase(open_.begin());
      open_[key] = OpenSpan{e.timestamp, e.host, stage};
      continue;
    }

    if (close_tag(e.tag)) {
      auto it = open_.find(key);
      if (it == open_.end()) continue;  // END without START (sink wrapped)
      obs::SpanRecord rec;
      rec.trace_id = trace;
      rec.span_id = span;
      rec.host = it->second.host;
      rec.stage = it->second.stage;
      rec.start = it->second.start;
      rec.duration = std::max(0.0, e.timestamp - it->second.start);
      rec.queue_seconds = std::max(0.0, e.field_double("QUEUE", 0.0));
      rec.bytes =
          static_cast<std::uint64_t>(std::max(0.0, e.field_double("BYTES", 0.0)));
      open_.erase(it);
      out.push_back(std::move(rec));
    }
  }
}

}  // namespace visapult::netlog
