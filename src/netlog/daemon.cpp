#include "netlog/daemon.h"

#include "net/message.h"

namespace visapult::netlog {

void StreamSink::consume(const Event& event) {
  std::lock_guard lk(mu_);
  if (!status_.is_ok()) return;  // drop after transport failure
  net::Message msg;
  msg.type = kEventMessageType;
  net::Writer w;
  w.str(event.to_ulm());
  msg.payload = w.take();
  status_ = net::send_message(*stream_, msg);
}

core::Status StreamSink::status() const {
  std::lock_guard lk(mu_);
  return status_;
}

void CollectorDaemon::serve(net::StreamPtr stream) {
  std::lock_guard lk(mu_);
  streams_.push_back(stream);
  threads_.emplace_back([this, stream] {
    for (;;) {
      auto msg = net::recv_message(*stream);
      if (!msg.is_ok()) return;  // peer closed or failed
      if (msg.value().type != kEventMessageType) continue;
      net::Reader r(msg.value().payload);
      auto line = r.str();
      if (!line.is_ok()) continue;
      auto event = Event::from_ulm(line.value());
      if (event.is_ok()) log_->consume(event.value());
    }
  });
}

std::size_t CollectorDaemon::drain() {
  std::lock_guard lk(mu_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  return log_->size();
}

void CollectorDaemon::stop() {
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    for (auto& s : streams_) s->close();
    streams_.clear();
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace visapult::netlog
