#include "netlog/logger.h"

#include <fstream>
#include <stdexcept>

namespace visapult::netlog {

void MemorySink::consume(const Event& event) {
  std::lock_guard lk(mu_);
  if (capacity_ > 0 && events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<Event> MemorySink::events() const {
  std::lock_guard lk(mu_);
  return std::vector<Event>(events_.begin(), events_.end());
}

std::vector<Event> MemorySink::drain() {
  std::lock_guard lk(mu_);
  std::vector<Event> out(events_.begin(), events_.end());
  events_.clear();  // dropped_ deliberately survives: losses stay visible
  return out;
}

std::size_t MemorySink::size() const {
  std::lock_guard lk(mu_);
  return events_.size();
}

void MemorySink::clear() {
  std::lock_guard lk(mu_);
  events_.clear();
  dropped_ = 0;
}

std::uint64_t MemorySink::dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

struct FileSink::Impl {
  std::mutex mu;
  std::ofstream file;
};

FileSink::FileSink(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->file.open(path, std::ios::app);
  if (!impl_->file) throw std::runtime_error("FileSink: cannot open " + path);
}

FileSink::~FileSink() = default;

void FileSink::consume(const Event& event) {
  std::lock_guard lk(impl_->mu);
  impl_->file << event.to_ulm() << "\n";
}

void NetLogger::log(const std::string& tag, std::int64_t frame, int rank,
                    std::vector<std::pair<std::string, std::string>> fields) {
  log_at(clock_->now(), tag, frame, rank, std::move(fields));
}

void NetLogger::log_bytes(const std::string& tag, std::int64_t frame, int rank,
                          double bytes) {
  log(tag, frame, rank,
      {{"BYTES", std::to_string(static_cast<std::int64_t>(bytes))}});
}

void NetLogger::log_at(core::TimePoint t, const std::string& tag,
                       std::int64_t frame, int rank,
                       std::vector<std::pair<std::string, std::string>> fields) {
  Event e;
  e.timestamp = t;
  e.host = host_;
  e.program = program_;
  e.tag = tag;
  e.frame = frame;
  e.rank = rank;
  e.fields = std::move(fields);
  sink_->consume(e);
}

}  // namespace visapult::netlog
