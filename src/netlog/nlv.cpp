#include "netlog/nlv.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace visapult::netlog {

std::vector<Interval> extract_intervals(const std::vector<Event>& events,
                                        const std::string& start_tag,
                                        const std::string& end_tag) {
  // key: (rank, frame) -> pending start timestamp
  std::map<std::pair<int, std::int64_t>, core::TimePoint> open;
  std::vector<Interval> out;
  for (const Event& e : events) {
    const auto key = std::make_pair(e.rank, e.frame);
    if (e.tag == start_tag) {
      open[key] = e.timestamp;
    } else if (e.tag == end_tag) {
      auto it = open.find(key);
      if (it == open.end()) continue;
      Interval iv;
      iv.frame = e.frame;
      iv.rank = e.rank;
      iv.start = it->second;
      iv.end = e.timestamp;
      iv.bytes = e.field_double("BYTES");
      out.push_back(iv);
      open.erase(it);
    }
  }
  return out;
}

core::RunningStat duration_stats(const std::vector<Interval>& intervals) {
  core::RunningStat s;
  for (const auto& iv : intervals) s.add(iv.duration());
  return s;
}

std::vector<double> per_frame_aggregate_throughput(
    const std::vector<Interval>& intervals) {
  struct FrameAgg {
    double bytes = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
  };
  std::map<std::int64_t, FrameAgg> frames;
  for (const auto& iv : intervals) {
    FrameAgg& a = frames[iv.frame];
    a.bytes += iv.bytes;
    a.lo = std::min(a.lo, iv.start);
    a.hi = std::max(a.hi, iv.end);
  }
  std::vector<double> rates;
  rates.reserve(frames.size());
  for (const auto& [frame, a] : frames) {
    const double span = a.hi - a.lo;
    rates.push_back(span > 0 ? a.bytes / span : 0.0);
  }
  return rates;
}

double total_span(const std::vector<Event>& events) {
  if (events.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Event& e : events) {
    lo = std::min(lo, e.timestamp);
    hi = std::max(hi, e.timestamp);
  }
  return hi - lo;
}

std::vector<PhaseSummary> phase_breakdown(const std::vector<Event>& events) {
  struct PhaseDef {
    const char* name;
    const char* start;
    const char* end;
  };
  const PhaseDef defs[] = {
      {"load", tags::kBeLoadStart, tags::kBeLoadEnd},
      {"render", tags::kBeRenderStart, tags::kBeRenderEnd},
      {"heavy send", tags::kBeHeavySend, tags::kBeHeavyEnd},
      {"viewer receive", tags::kVHeavyStart, tags::kVHeavyEnd},
  };
  const double span = total_span(events);
  std::vector<PhaseSummary> out;
  for (const auto& def : defs) {
    PhaseSummary summary;
    summary.name = def.name;
    auto intervals = extract_intervals(events, def.start, def.end);
    summary.per_occurrence = duration_stats(intervals);

    // Merge overlapping intervals for busy time.
    std::vector<std::pair<double, double>> spans;
    spans.reserve(intervals.size());
    for (const auto& iv : intervals) spans.emplace_back(iv.start, iv.end);
    std::sort(spans.begin(), spans.end());
    double busy = 0.0;
    double cur_lo = 0.0, cur_hi = -1.0;
    for (const auto& [lo, hi] : spans) {
      if (hi < lo) continue;
      if (cur_hi < cur_lo || lo > cur_hi) {
        if (cur_hi >= cur_lo) busy += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    if (cur_hi >= cur_lo && !spans.empty()) busy += cur_hi - cur_lo;
    summary.busy_seconds = busy;
    summary.span_fraction = span > 0 ? busy / span : 0.0;
    out.push_back(std::move(summary));
  }
  return out;
}

std::string ascii_gantt(const std::vector<Event>& events,
                        const GanttOptions& options) {
  std::vector<std::string> order =
      options.tag_order.empty() ? nlv_tag_order() : options.tag_order;
  if (events.empty()) return "(no events)\n";

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Event& e : events) {
    lo = std::min(lo, e.timestamp);
    hi = std::max(hi, e.timestamp);
  }
  const double span = std::max(hi - lo, 1e-9);

  std::size_t label_width = 0;
  for (const auto& t : order) label_width = std::max(label_width, t.size());

  // Rows are rendered top-down in *reverse* tag order, matching the NLV
  // figures where back-end events run bottom-to-top.
  std::ostringstream os;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::string& tag = *it;
    std::string row(static_cast<std::size_t>(options.width), ' ');
    bool any = false;
    for (const Event& e : events) {
      if (e.tag != tag) continue;
      any = true;
      int col = static_cast<int>((e.timestamp - lo) / span * (options.width - 1));
      col = std::clamp(col, 0, options.width - 1);
      char mark = 'o';
      if (options.mark_parity && e.frame >= 0 && (e.frame % 2) == 1) mark = 'x';
      row[static_cast<std::size_t>(col)] = mark;
    }
    if (!any) continue;
    os << tag << std::string(label_width - tag.size(), ' ') << " |" << row
       << "|\n";
  }
  char lo_buf[64], hi_buf[64];
  std::snprintf(lo_buf, sizeof lo_buf, "%.2f", lo);
  std::snprintf(hi_buf, sizeof hi_buf, "%.2f", hi);
  os << std::string(label_width, ' ') << "  " << lo_buf << "s"
     << std::string(
            std::max<int>(1, options.width - static_cast<int>(
                                                 std::string(lo_buf).size() +
                                                 std::string(hi_buf).size()) - 2),
            ' ')
     << hi_buf << "s\n";
  return os.str();
}

std::string events_csv(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "time,host,program,tag,frame,rank\n";
  for (const Event& e : events) {
    os << e.timestamp << "," << e.host << "," << e.program << "," << e.tag
       << "," << e.frame << "," << e.rank << "\n";
  }
  return os.str();
}

}  // namespace visapult::netlog
