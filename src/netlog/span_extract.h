// Lifeline events -> span records.
//
// The NetLogger sinks hold raw START/END event pairs; the span collector
// wants finished SpanRecords.  SpanExtractor is the stateful bridge each
// exporting component runs over its sink drains: it pairs IN/OUT and
// START/END events by (trace, span), turns CHAIN_FWD / PARITY_DELTA link
// events into zero-duration marker records carrying parentage, and holds
// unpaired opens across feed() calls (a request can straddle two export
// batches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "netlog/event.h"
#include "obs/span.h"

namespace visapult::netlog {

class SpanExtractor {
 public:
  // Convert a batch of events (one sink drain, in arrival order) into
  // finished span records appended to `out`.  Events without TRACE/SPAN
  // fields, or with unrecognized tags, are ignored.
  void feed(const std::vector<Event>& events,
            std::vector<obs::SpanRecord>& out);

  // Spans whose START arrived but whose END has not (bounded; the oldest
  // entry is evicted past kMaxPending).
  std::size_t pending() const { return open_.size(); }

  static constexpr std::size_t kMaxPending = 4096;

 private:
  struct OpenSpan {
    double start = 0.0;
    std::string host;
    std::string stage;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, OpenSpan> open_;
};

}  // namespace visapult::netlog
