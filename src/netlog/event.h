// NetLogger events (ULM format).
//
// NetLogger [16] stamps "precision event logs" at interesting points in
// every component of the distributed system.  An event is a timestamp plus
// identity (host, program) plus a tag (the strings on the vertical axis of
// the paper's NLV figures: BE_LOAD_START, V_FRAME_END, ...) plus free-form
// key=value fields.  The canonical text rendering follows the Universal
// Logger Message (ULM) style used by the original toolkit:
//
//   DATE=20000412... HOST=cplant PROG=backend NL.EVNT=BE_LOAD_END FRAME=3 RANK=0 BYTES=41943040
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/clock.h"
#include "core/status.h"

namespace visapult::netlog {

struct Event {
  core::TimePoint timestamp = 0.0;
  std::string host;
  std::string program;
  std::string tag;     // NL.EVNT value
  std::int64_t frame = -1;  // data frame / timestep number, -1 if n/a
  int rank = -1;            // back-end PE or viewer thread, -1 if n/a
  // Additional key=value fields (e.g. BYTES for payload sizes).
  std::vector<std::pair<std::string, std::string>> fields;

  // ULM-style single-line rendering.
  std::string to_ulm() const;
  // Parse a to_ulm() line back into an Event (round-trip for file sinks).
  static core::Result<Event> from_ulm(const std::string& line);

  // Look up a field; empty string if absent.
  std::string field(const std::string& key) const;
  double field_double(const std::string& key, double fallback = 0.0) const;
};

// Standard tags from the paper's Tables 1 and 2.
namespace tags {
// Back end (Table 2).
inline constexpr const char* kBeFrameStart = "BE_FRAME_START";
inline constexpr const char* kBeLoadStart = "BE_LOAD_START";
inline constexpr const char* kBeLoadEnd = "BE_LOAD_END";
inline constexpr const char* kBeLightSend = "BE_LIGHT_SEND";
inline constexpr const char* kBeLightEnd = "BE_LIGHT_END";
inline constexpr const char* kBeRenderStart = "BE_RENDER_START";
inline constexpr const char* kBeRenderEnd = "BE_RENDER_END";
inline constexpr const char* kBeHeavySend = "BE_HEAVY_SEND";
inline constexpr const char* kBeHeavyEnd = "BE_HEAVY_END";
inline constexpr const char* kBeFrameEnd = "BE_FRAME_END";
// Viewer (Table 1).
inline constexpr const char* kVFrameStart = "V_FRAME_START";
inline constexpr const char* kVLightStart = "V_LIGHTPAYLOAD_START";
inline constexpr const char* kVLightEnd = "V_LIGHTPAYLOAD_END";
inline constexpr const char* kVHeavyStart = "V_HEAVYPAYLOAD_START";
inline constexpr const char* kVHeavyEnd = "V_HEAVYPAYLOAD_END";
inline constexpr const char* kVFrameEnd = "V_FRAME_END";
// DPSS memory-tier cache (not in the paper's tables; emitted by
// cache::BlockCache so NLV analysis can report hit ratios alongside the
// pipeline phases).
inline constexpr const char* kCacheHit = "CACHE_HIT";
inline constexpr const char* kCacheMiss = "CACHE_MISS";
inline constexpr const char* kCacheEvict = "CACHE_EVICT";
inline constexpr const char* kCachePrefetch = "CACHE_PREFETCH";
// DPSS request tracing (obs/trace.h): the hops of one traced client
// request.  Every event carries TRACE=/SPAN= fields, so grouping a sink's
// events by TRACE and sorting by arrival reconstructs the request's
// lifeline exactly like the paper's NLV plots.
inline constexpr const char* kDpssReadStart = "DPSS_READ_START";
inline constexpr const char* kDpssReadEnd = "DPSS_READ_END";
inline constexpr const char* kDpssOpenStart = "DPSS_OPEN_START";
inline constexpr const char* kDpssOpenEnd = "DPSS_OPEN_END";
inline constexpr const char* kDpssWriteStart = "DPSS_WRITE_START";
inline constexpr const char* kDpssWriteEnd = "DPSS_WRITE_END";
inline constexpr const char* kDpssServIn = "DPSS_SERV_IN";
inline constexpr const char* kDpssServOut = "DPSS_SERV_OUT";
inline constexpr const char* kDpssChainForward = "DPSS_CHAIN_FWD";
inline constexpr const char* kDpssParityDelta = "DPSS_PARITY_DELTA";
inline constexpr const char* kDpssMasterIn = "DPSS_MASTER_IN";
inline constexpr const char* kDpssMasterOut = "DPSS_MASTER_OUT";
inline constexpr const char* kDpssSlowRequest = "DPSS_SLOW_REQUEST";
}  // namespace tags

// The canonical vertical-axis ordering of the paper's NLV plots (bottom to
// top: back-end tags then viewer tags).
std::vector<std::string> nlv_tag_order();

}  // namespace visapult::netlog
