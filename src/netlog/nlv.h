// NLV -- the NetLogger visualization/analysis tool.
//
// NLV "generates two dimensional plots from the raw data accumulated during
// a run" (section 3.6): time on the horizontal axis, event tags on the
// vertical axis, one trace per (frame, component).  This reproduction
// provides the analysis half programmatically (interval extraction,
// per-frame statistics, throughput computation) and renders the plots as
// ASCII charts / CSV series -- the exact artifacts behind the paper's
// Figures 10 and 12-17.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/stats.h"
#include "netlog/event.h"

namespace visapult::netlog {

// A matched (start_tag .. end_tag) pair for one (rank, frame).
struct Interval {
  std::int64_t frame = -1;
  int rank = -1;
  core::TimePoint start = 0.0;
  core::TimePoint end = 0.0;
  double bytes = 0.0;  // BYTES field of the end event, if present

  double duration() const { return end - start; }
  double throughput_bytes_per_sec() const {
    const double d = duration();
    return d > 0 ? bytes / d : 0.0;
  }
};

// Pair start/end events by (rank, frame).  Unmatched events are ignored.
std::vector<Interval> extract_intervals(const std::vector<Event>& events,
                                        const std::string& start_tag,
                                        const std::string& end_tag);

// Duration statistics over a set of intervals.
core::RunningStat duration_stats(const std::vector<Interval>& intervals);

// Aggregate throughput for a phase across ranks: for each frame, total bytes
// moved by all ranks divided by the frame's (max end - min start) span.
// Returns per-frame rates in bytes/sec.
std::vector<double> per_frame_aggregate_throughput(
    const std::vector<Interval>& intervals);

// Wall-clock span of the whole event log (first to last event).
double total_span(const std::vector<Event>& events);

// ---- phase breakdown ----------------------------------------------------------

// Summary of one pipeline phase across the whole run, extracted from
// (start, end) tag pairs.
struct PhaseSummary {
  std::string name;
  core::RunningStat per_occurrence;  // durations of each (rank, frame) pair
  double busy_seconds = 0.0;         // union of intervals (overlap-merged)
  double span_fraction = 0.0;        // busy / total event-log span
};

// Break the run into the paper's phases (load, render, heavy send, viewer
// receive) and report where the time went -- the question every NLV figure
// in the paper answers visually.
std::vector<PhaseSummary> phase_breakdown(const std::vector<Event>& events);

// ---- rendering --------------------------------------------------------------

struct GanttOptions {
  int width = 100;                      // chart columns
  std::vector<std::string> tag_order;   // default: nlv_tag_order()
  bool mark_parity = true;              // 'o' even frames, 'x' odd (the
                                        // paper colours even/odd red/blue)
};

// ASCII NLV plot: one row per tag, event marks placed by scaled timestamp.
std::string ascii_gantt(const std::vector<Event>& events,
                        const GanttOptions& options = {});

// CSV with columns time,host,program,tag,frame,rank -- the raw NLV input.
std::string events_csv(const std::vector<Event>& events);

}  // namespace visapult::netlog
