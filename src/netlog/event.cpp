#include "netlog/event.h"

#include <cstdio>
#include <sstream>

namespace visapult::netlog {

std::string Event::to_ulm() const {
  std::ostringstream os;
  char ts[32];
  std::snprintf(ts, sizeof ts, "%.6f", timestamp);
  os << "DATE=" << ts << " HOST=" << host << " PROG=" << program
     << " NL.EVNT=" << tag;
  if (frame >= 0) os << " FRAME=" << frame;
  if (rank >= 0) os << " RANK=" << rank;
  for (const auto& [k, v] : fields) os << " " << k << "=" << v;
  return os.str();
}

core::Result<Event> Event::from_ulm(const std::string& line) {
  Event e;
  std::istringstream is(line);
  std::string token;
  bool have_date = false, have_tag = false;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      return core::data_loss("malformed ULM token: " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "DATE") {
      e.timestamp = std::stod(value);
      have_date = true;
    } else if (key == "HOST") {
      e.host = value;
    } else if (key == "PROG") {
      e.program = value;
    } else if (key == "NL.EVNT") {
      e.tag = value;
      have_tag = true;
    } else if (key == "FRAME") {
      e.frame = std::stoll(value);
    } else if (key == "RANK") {
      e.rank = std::stoi(value);
    } else {
      e.fields.emplace_back(key, value);
    }
  }
  if (!have_date || !have_tag) {
    return core::data_loss("ULM line missing DATE or NL.EVNT: " + line);
  }
  return e;
}

std::string Event::field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

double Event::field_double(const std::string& key, double fallback) const {
  const std::string v = field(key);
  if (v.empty()) return fallback;
  try {
    return std::stod(v);
  } catch (...) {
    return fallback;
  }
}

std::vector<std::string> nlv_tag_order() {
  using namespace tags;
  return {kBeFrameStart, kBeLoadStart,  kBeLoadEnd,   kBeLightSend,
          kBeLightEnd,   kBeRenderStart, kBeRenderEnd, kBeHeavySend,
          kBeHeavyEnd,   kBeFrameEnd,   kVFrameStart, kVLightStart,
          kVLightEnd,    kVHeavyStart,  kVHeavyEnd,   kVFrameEnd};
}

}  // namespace visapult::netlog
