// NetLogger collector daemon.
//
// "Prior to running the application, a NetLogger daemon is launched on a
// host accessible to all components of the distributed application.  During
// the course of application execution, the NetLogger subroutine calls
// communicate with the daemon host, where events are accumulated into an
// event log." (section 3.6)
//
// CollectorDaemon accepts framed Event messages over any number of
// ByteStream connections (sockets or pipes) and accumulates them in arrival
// order.  StreamSink is the matching producer-side sink.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/stream.h"
#include "netlog/logger.h"

namespace visapult::netlog {

// Message type for framed NetLogger events.
inline constexpr std::uint32_t kEventMessageType = 0x4e4c4f47;  // "NLOG"

// Producer-side sink shipping events over a stream to the daemon.
class StreamSink final : public Sink {
 public:
  explicit StreamSink(net::StreamPtr stream) : stream_(std::move(stream)) {}
  void consume(const Event& event) override;
  // Last transport error, if any (events after a failure are dropped).
  core::Status status() const;

 private:
  mutable std::mutex mu_;
  net::StreamPtr stream_;
  core::Status status_;
};

class CollectorDaemon {
 public:
  CollectorDaemon() : log_(std::make_shared<MemorySink>()) {}
  ~CollectorDaemon() { stop(); }

  // Spawn a service thread draining events from this connection until the
  // peer closes.
  void serve(net::StreamPtr stream);

  // Join all service threads whose peers have closed; returns accumulated
  // event count.
  std::size_t drain();

  // Stop accepting and join everything.
  void stop();

  std::vector<Event> events() const { return log_->events(); }
  std::shared_ptr<MemorySink> sink() { return log_; }

 private:
  std::shared_ptr<MemorySink> log_;
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<net::StreamPtr> streams_;
};

}  // namespace visapult::netlog
