#include "vol/volume.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

namespace visapult::vol {

const char* axis_name(Axis a) {
  switch (a) {
    case Axis::kX: return "X";
    case Axis::kY: return "Y";
    case Axis::kZ: return "Z";
  }
  return "?";
}

std::string Dims::to_string() const {
  return std::to_string(nx) + "x" + std::to_string(ny) + "x" + std::to_string(nz);
}

Volume::Volume(Dims dims, float fill)
    : dims_(dims), data_(dims.cell_count(), fill) {}

Volume::Volume(Dims dims, std::vector<float> data)
    : dims_(dims), data_(std::move(data)) {}

float Volume::at_clamped(int x, int y, int z) const {
  x = std::clamp(x, 0, dims_.nx - 1);
  y = std::clamp(y, 0, dims_.ny - 1);
  z = std::clamp(z, 0, dims_.nz - 1);
  return at(x, y, z);
}

float Volume::sample(float x, float y, float z) const {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const int z0 = static_cast<int>(std::floor(z));
  const float tx = x - x0, ty = y - y0, tz = z - z0;
  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  const float c00 = lerp(at_clamped(x0, y0, z0), at_clamped(x0 + 1, y0, z0), tx);
  const float c10 = lerp(at_clamped(x0, y0 + 1, z0), at_clamped(x0 + 1, y0 + 1, z0), tx);
  const float c01 = lerp(at_clamped(x0, y0, z0 + 1), at_clamped(x0 + 1, y0, z0 + 1), tx);
  const float c11 = lerp(at_clamped(x0, y0 + 1, z0 + 1), at_clamped(x0 + 1, y0 + 1, z0 + 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

void Volume::min_max(float& lo, float& hi) const {
  lo = std::numeric_limits<float>::infinity();
  hi = -std::numeric_limits<float>::infinity();
  for (float v : data_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (data_.empty()) lo = hi = 0.0f;
}

core::Result<Volume> Volume::subvolume(int x0, int y0, int z0, Dims sub) const {
  if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + sub.nx > dims_.nx ||
      y0 + sub.ny > dims_.ny || z0 + sub.nz > dims_.nz) {
    return core::out_of_range("subvolume box exceeds volume bounds");
  }
  Volume out(sub);
  for (int z = 0; z < sub.nz; ++z) {
    for (int y = 0; y < sub.ny; ++y) {
      const float* src = data_.data() + index(x0, y0 + y, z0 + z);
      float* dst = out.data_.data() + out.index(0, y, z);
      std::memcpy(dst, src, static_cast<std::size_t>(sub.nx) * sizeof(float));
    }
  }
  return out;
}

core::Status write_raw(const Volume& v, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return core::unavailable("cannot open " + path);
  f.write(reinterpret_cast<const char*>(v.data().data()),
          static_cast<std::streamsize>(v.byte_size()));
  if (!f) return core::data_loss("short write to " + path);
  return core::Status::ok();
}

core::Result<Volume> read_raw(const std::string& path, Dims dims) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return core::not_found("cannot open " + path);
  Volume v(dims);
  f.read(reinterpret_cast<char*>(v.data().data()),
         static_cast<std::streamsize>(v.byte_size()));
  if (static_cast<std::size_t>(f.gcount()) != v.byte_size()) {
    return core::data_loss("short read from " + path);
  }
  return v;
}

}  // namespace visapult::vol
