#include "vol/decompose.h"

#include <algorithm>

namespace visapult::vol {

namespace {
// Split `extent` into `count` spans whose sizes differ by at most one.
std::vector<std::pair<int, int>> split_extent(int extent, int count) {
  std::vector<std::pair<int, int>> spans;
  spans.reserve(static_cast<std::size_t>(count));
  const int base = extent / count;
  const int extra = extent % count;
  int at = 0;
  for (int i = 0; i < count; ++i) {
    const int len = base + (i < extra ? 1 : 0);
    spans.emplace_back(at, len);
    at += len;
  }
  return spans;
}
}  // namespace

core::Result<std::vector<Brick>> slab_decompose(Dims dims, int count, Axis axis) {
  if (count <= 0) return core::invalid_argument("slab count must be > 0");
  if (count > dims.extent(axis)) {
    return core::invalid_argument("more slabs than layers along axis");
  }
  const auto spans = split_extent(dims.extent(axis), count);
  std::vector<Brick> bricks;
  bricks.reserve(spans.size());
  for (const auto& [at, len] : spans) {
    Brick b;
    b.dims = dims;
    switch (axis) {
      case Axis::kX: b.x0 = at; b.dims.nx = len; break;
      case Axis::kY: b.y0 = at; b.dims.ny = len; break;
      case Axis::kZ: b.z0 = at; b.dims.nz = len; break;
    }
    bricks.push_back(b);
  }
  return bricks;
}

core::Result<std::vector<Brick>> shaft_decompose(Dims dims, int parts_u,
                                                 int parts_v, Axis axis) {
  if (parts_u <= 0 || parts_v <= 0) {
    return core::invalid_argument("shaft parts must be > 0");
  }
  // u, v are the two axes other than `axis`, in cyclic order.
  const Axis u = static_cast<Axis>((static_cast<int>(axis) + 1) % 3);
  const Axis v = static_cast<Axis>((static_cast<int>(axis) + 2) % 3);
  if (parts_u > dims.extent(u) || parts_v > dims.extent(v)) {
    return core::invalid_argument("more shaft parts than cells");
  }
  const auto spans_u = split_extent(dims.extent(u), parts_u);
  const auto spans_v = split_extent(dims.extent(v), parts_v);
  std::vector<Brick> bricks;
  bricks.reserve(spans_u.size() * spans_v.size());
  for (const auto& [ua, ul] : spans_u) {
    for (const auto& [va, vl] : spans_v) {
      Brick b;
      b.dims = dims;
      auto set = [&](Axis a, int at, int len) {
        switch (a) {
          case Axis::kX: b.x0 = at; b.dims.nx = len; break;
          case Axis::kY: b.y0 = at; b.dims.ny = len; break;
          case Axis::kZ: b.z0 = at; b.dims.nz = len; break;
        }
      };
      set(u, ua, ul);
      set(v, va, vl);
      bricks.push_back(b);
    }
  }
  return bricks;
}

core::Result<std::vector<Brick>> block_decompose(Dims dims, int px, int py,
                                                 int pz) {
  if (px <= 0 || py <= 0 || pz <= 0) {
    return core::invalid_argument("block parts must be > 0");
  }
  if (px > dims.nx || py > dims.ny || pz > dims.nz) {
    return core::invalid_argument("more blocks than cells");
  }
  const auto xs = split_extent(dims.nx, px);
  const auto ys = split_extent(dims.ny, py);
  const auto zs = split_extent(dims.nz, pz);
  std::vector<Brick> bricks;
  bricks.reserve(xs.size() * ys.size() * zs.size());
  for (const auto& [za, zl] : zs) {
    for (const auto& [ya, yl] : ys) {
      for (const auto& [xa, xl] : xs) {
        Brick b;
        b.x0 = xa;
        b.y0 = ya;
        b.z0 = za;
        b.dims = {xl, yl, zl};
        bricks.push_back(b);
      }
    }
  }
  return bricks;
}

std::vector<ByteRange> brick_byte_ranges(Dims volume_dims, const Brick& brick) {
  std::vector<ByteRange> ranges;
  const std::size_t row_bytes = static_cast<std::size_t>(brick.dims.nx) * sizeof(float);
  auto flat = [&](int x, int y, int z) {
    return ((static_cast<std::size_t>(z) * volume_dims.ny + y) * volume_dims.nx + x) *
           sizeof(float);
  };
  // Merge adjacent rows that happen to be contiguous in the file (full-width
  // bricks): a Z-slab of a volume collapses to a single range.
  for (int z = brick.z0; z < brick.z0 + brick.dims.nz; ++z) {
    for (int y = brick.y0; y < brick.y0 + brick.dims.ny; ++y) {
      const std::size_t off = flat(brick.x0, y, z);
      if (!ranges.empty() &&
          ranges.back().offset + ranges.back().length == off) {
        ranges.back().length += row_bytes;
      } else {
        ranges.push_back({off, row_bytes});
      }
    }
  }
  return ranges;
}

double decomposition_imbalance(const std::vector<Brick>& bricks) {
  if (bricks.empty()) return 0.0;
  std::size_t total = 0, worst = 0;
  for (const auto& b : bricks) {
    total += b.cell_count();
    worst = std::max(worst, b.cell_count());
  }
  const double mean = static_cast<double>(total) / static_cast<double>(bricks.size());
  return mean > 0 ? static_cast<double>(worst) / mean : 0.0;
}

}  // namespace visapult::vol
