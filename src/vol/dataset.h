// Time-varying dataset descriptors.
//
// Identifies a dataset the way the paper's pipeline does: a name (the DPSS
// "file"), grid dimensions, a timestep count, and which generator stands in
// for the original simulation.  The paper's reference dataset is the
// combustion run: 640x256x256 float32, 265 timesteps, 160 MB/step, 41.4 GB
// total (sections 4.2 and 5).
#pragma once

#include <cstdint>
#include <string>

#include "vol/generate.h"
#include "vol/volume.h"

namespace visapult::vol {

enum class Generator { kCombustion, kCosmology };

struct DatasetDesc {
  std::string name;
  Dims dims;
  int timesteps = 1;
  Generator generator = Generator::kCombustion;
  std::uint64_t seed = 42;

  std::size_t bytes_per_step() const { return dims.byte_size(); }
  std::size_t total_bytes() const {
    return bytes_per_step() * static_cast<std::size_t>(timesteps);
  }

  // Materialise one timestep.
  Volume generate(int t) const {
    switch (generator) {
      case Generator::kCosmology: return generate_cosmology(dims, t, seed);
      case Generator::kCombustion: break;
    }
    return generate_combustion(dims, t, seed);
  }
};

// The paper's combustion-corridor reference dataset (section 4.2): full
// scale for simulator-based experiments.
inline DatasetDesc paper_combustion_dataset() {
  return DatasetDesc{"combustion-640", {640, 256, 256}, 265,
                     Generator::kCombustion, 42};
}

// Scaled-down version for real-execution tests and examples.
inline DatasetDesc small_combustion_dataset(int timesteps = 4) {
  return DatasetDesc{"combustion-64", {64, 32, 32}, timesteps,
                     Generator::kCombustion, 42};
}

inline DatasetDesc small_cosmology_dataset(int timesteps = 4) {
  return DatasetDesc{"cosmology-64", {64, 64, 64}, timesteps,
                     Generator::kCosmology, 7};
}

}  // namespace visapult::vol
