// Domain decompositions (paper Figure 4: slab, shaft and block).
//
// Object-order parallel volume rendering distributes the volume across
// processors.  Visapult uses the slab decomposition -- perpendicular to a
// principal axis, one slab per back-end PE, because IBRAVR needs one
// axis-aligned image per slab -- but the shaft and block variants are
// implemented too, both for the taxonomy discussion (section 3.2) and for
// the decomposition benches.
#pragma once

#include <vector>

#include "core/status.h"
#include "vol/volume.h"

namespace visapult::vol {

// An axis-aligned box within a volume: origin + extent, in cells.
struct Brick {
  int x0 = 0, y0 = 0, z0 = 0;
  Dims dims;

  std::size_t cell_count() const { return dims.cell_count(); }
  std::size_t byte_size() const { return dims.byte_size(); }
  bool contains(int x, int y, int z) const {
    return x >= x0 && x < x0 + dims.nx && y >= y0 && y < y0 + dims.ny &&
           z >= z0 && z < z0 + dims.nz;
  }
  friend bool operator==(const Brick& a, const Brick& b) {
    return a.x0 == b.x0 && a.y0 == b.y0 && a.z0 == b.z0 && a.dims == b.dims;
  }
  friend bool operator!=(const Brick& a, const Brick& b) { return !(a == b); }
};

// Split `dims` into `count` slabs perpendicular to `axis`.  Remainder cells
// go to the leading slabs, so sizes differ by at most one layer.  Fails if
// count exceeds the axis extent or count <= 0.
core::Result<std::vector<Brick>> slab_decompose(Dims dims, int count, Axis axis);

// Split into shafts: a 2D grid of partitions across the two axes other than
// `axis` (the shaft runs the full length of `axis`).
core::Result<std::vector<Brick>> shaft_decompose(Dims dims, int parts_u,
                                                 int parts_v, Axis axis);

// Split into a px x py x pz grid of blocks.
core::Result<std::vector<Brick>> block_decompose(Dims dims, int px, int py, int pz);

// The byte ranges of a brick within the x-fastest row-major file layout of
// one timestep.  A slab perpendicular to Z is a single contiguous range; a
// slab perpendicular to X is nz*ny small ranges.  The DPSS client turns
// these into block requests, which is why the paper prefers Z slabs for I/O
// but still supports axis switching.
struct ByteRange {
  std::size_t offset = 0;
  std::size_t length = 0;
  friend bool operator==(const ByteRange& a, const ByteRange& b) {
    return a.offset == b.offset && a.length == b.length;
  }
  friend bool operator!=(const ByteRange& a, const ByteRange& b) {
    return !(a == b);
  }
};
std::vector<ByteRange> brick_byte_ranges(Dims volume_dims, const Brick& brick);

// Imbalance = max brick cells / mean brick cells (1.0 is perfect).
double decomposition_imbalance(const std::vector<Brick>& bricks);

}  // namespace visapult::vol
