#include "vol/generate.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace visapult::vol {

namespace {

struct FlameKernel {
  float y, z;       // transverse centre (fraction of extent)
  float radius;     // fraction of min extent
  float speed;      // cells per timestep along +X
  float phase;      // transverse wander phase
  float amplitude;  // peak value
};

// Deterministic hash-based value noise in [0,1].
float value_noise(std::uint64_t seed, int x, int y, int z) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4full;
  h ^= static_cast<std::uint64_t>(z) * 0x165667b19e3779f9ull;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return static_cast<float>(h >> 11) * 0x1.0p-53f;
}

// Trilinear-interpolated lattice noise at period `cell`.
float smooth_noise(std::uint64_t seed, float x, float y, float z, float cell) {
  const float fx = x / cell, fy = y / cell, fz = z / cell;
  const int x0 = static_cast<int>(std::floor(fx));
  const int y0 = static_cast<int>(std::floor(fy));
  const int z0 = static_cast<int>(std::floor(fz));
  const float tx = fx - x0, ty = fy - y0, tz = fz - z0;
  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  auto s = [&](int dx, int dy, int dz) {
    return value_noise(seed, x0 + dx, y0 + dy, z0 + dz);
  };
  const float c00 = lerp(s(0, 0, 0), s(1, 0, 0), tx);
  const float c10 = lerp(s(0, 1, 0), s(1, 1, 0), tx);
  const float c01 = lerp(s(0, 0, 1), s(1, 0, 1), tx);
  const float c11 = lerp(s(0, 1, 1), s(1, 1, 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

}  // namespace

Volume generate_combustion(Dims dims, int t, std::uint64_t seed) {
  core::Rng rng(seed);
  // A stable kernel population derived only from the seed, so successive
  // timesteps animate the *same* flames.
  const int kernel_count = 6;
  std::vector<FlameKernel> kernels;
  kernels.reserve(kernel_count);
  for (int i = 0; i < kernel_count; ++i) {
    FlameKernel k;
    k.y = static_cast<float>(rng.uniform(0.2, 0.8));
    k.z = static_cast<float>(rng.uniform(0.2, 0.8));
    k.radius = static_cast<float>(rng.uniform(0.08, 0.2));
    k.speed = static_cast<float>(rng.uniform(0.5, 2.0));
    k.phase = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
    k.amplitude = static_cast<float>(rng.uniform(0.6, 1.0));
    kernels.push_back(k);
  }

  Volume v(dims);
  const float min_extent =
      static_cast<float>(std::min({dims.nx, dims.ny, dims.nz}));
  for (int z = 0; z < dims.nz; ++z) {
    for (int y = 0; y < dims.ny; ++y) {
      for (int x = 0; x < dims.nx; ++x) {
        // Background fuel gradient with mild noise.
        float val = 0.05f * (1.0f - static_cast<float>(x) / dims.nx) +
                    0.03f * smooth_noise(seed ^ 0xf00d, static_cast<float>(x),
                                         static_cast<float>(y),
                                         static_cast<float>(z), 12.0f);
        for (const FlameKernel& k : kernels) {
          // Kernel centre advects along +X and wraps; wanders in Y.
          const float cx =
              std::fmod(k.speed * static_cast<float>(t) + k.phase * 10.0f,
                        static_cast<float>(dims.nx));
          const float cy =
              (k.y + 0.1f * std::sin(0.15f * t + k.phase)) * dims.ny;
          const float cz = k.z * dims.nz;
          const float r = k.radius * min_extent;
          float dx = static_cast<float>(x) - cx;
          // Periodic in X so flames re-enter smoothly.
          if (dx > dims.nx / 2.0f) dx -= dims.nx;
          if (dx < -dims.nx / 2.0f) dx += dims.nx;
          const float dy = static_cast<float>(y) - cy;
          const float dz = static_cast<float>(z) - cz;
          const float d2 = (dx * dx + dy * dy + dz * dz) / (r * r);
          if (d2 < 9.0f) {
            const float flicker =
                0.85f + 0.15f * std::sin(0.4f * t + k.phase * 3.0f);
            val += k.amplitude * flicker * std::exp(-d2);
          }
        }
        v.at(x, y, z) = std::min(val, 1.0f);
      }
    }
  }
  return v;
}

Volume generate_cosmology(Dims dims, int t, std::uint64_t seed) {
  core::Rng rng(seed);
  const int mass_count = 24;
  struct Mass {
    float x, y, z, w;
  };
  std::vector<Mass> masses;
  masses.reserve(mass_count);
  for (int i = 0; i < mass_count; ++i) {
    Mass m;
    m.x = static_cast<float>(rng.uniform(0.0, 1.0));
    m.y = static_cast<float>(rng.uniform(0.0, 1.0));
    m.z = static_cast<float>(rng.uniform(0.0, 1.0));
    // Power-law weights: a few dominant clusters, many small ones.
    m.w = static_cast<float>(std::pow(rng.uniform(0.05, 1.0), 2.5));
    masses.push_back(m);
  }
  const float angle = 0.02f * t;  // slow rotation over the time series
  const float ca = std::cos(angle), sa = std::sin(angle);

  Volume v(dims);
  for (int z = 0; z < dims.nz; ++z) {
    for (int y = 0; y < dims.ny; ++y) {
      for (int x = 0; x < dims.nx; ++x) {
        const float fx = static_cast<float>(x), fy = static_cast<float>(y),
                    fz = static_cast<float>(z);
        // Three octaves of smooth noise: the filamentary background.
        float val = 0.20f * smooth_noise(seed, fx, fy, fz, 32.0f) +
                    0.12f * smooth_noise(seed ^ 1, fx, fy, fz, 16.0f) +
                    0.06f * smooth_noise(seed ^ 2, fx, fy, fz, 8.0f);
        // Rotating point masses (clusters).
        const float ux = fx / dims.nx - 0.5f;
        const float uy = fy / dims.ny - 0.5f;
        const float rx = ca * ux - sa * uy + 0.5f;
        const float ry = sa * ux + ca * uy + 0.5f;
        const float rz = fz / dims.nz;
        for (const Mass& m : masses) {
          const float dx = rx - m.x, dy = ry - m.y, dz = rz - m.z;
          const float d2 = dx * dx + dy * dy + dz * dz;
          val += 0.25f * m.w / (1.0f + 900.0f * d2);
        }
        v.at(x, y, z) = std::min(val, 1.0f);
      }
    }
  }
  return v;
}

AmrHierarchy generate_amr_hierarchy(const Volume& v, int levels,
                                    int boxes_per_level, std::uint64_t seed) {
  AmrHierarchy h;
  h.levels = levels;
  const Dims d = v.dims();
  h.boxes.push_back(AmrBox{0, 0, 0, 0, static_cast<float>(d.nx),
                           static_cast<float>(d.ny), static_cast<float>(d.nz)});
  float lo, hi;
  v.min_max(lo, hi);
  if (hi <= lo) return h;

  core::Rng rng(seed);
  for (int level = 1; level < levels; ++level) {
    // Refine around cells whose value exceeds a rising threshold.
    const float threshold = lo + (hi - lo) * (0.4f + 0.2f * level);
    const float box_half =
        static_cast<float>(std::min({d.nx, d.ny, d.nz})) / (4.0f * (level + 1));
    int placed = 0;
    int attempts = 0;
    while (placed < boxes_per_level && attempts < boxes_per_level * 64) {
      ++attempts;
      const int x = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(d.nx)));
      const int y = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(d.ny)));
      const int z = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(d.nz)));
      if (v.at(x, y, z) < threshold) continue;
      AmrBox b;
      b.level = level;
      b.x0 = std::max(0.0f, x - box_half);
      b.y0 = std::max(0.0f, y - box_half);
      b.z0 = std::max(0.0f, z - box_half);
      b.x1 = std::min(static_cast<float>(d.nx), x + box_half);
      b.y1 = std::min(static_cast<float>(d.ny), y + box_half);
      b.z1 = std::min(static_cast<float>(d.nz), z + box_half);
      h.boxes.push_back(b);
      ++placed;
    }
  }
  return h;
}

std::vector<LineSegment> amr_wireframe(const AmrHierarchy& h) {
  std::vector<LineSegment> out;
  out.reserve(h.boxes.size() * 12);
  for (const AmrBox& b : h.boxes) {
    const float xs[2] = {b.x0, b.x1};
    const float ys[2] = {b.y0, b.y1};
    const float zs[2] = {b.z0, b.z1};
    auto seg = [&](float ax, float ay, float az, float bx, float by, float bz) {
      out.push_back(LineSegment{ax, ay, az, bx, by, bz, b.level});
    };
    // 4 edges along X, 4 along Y, 4 along Z.
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        seg(xs[0], ys[j], zs[k], xs[1], ys[j], zs[k]);
        seg(xs[j], ys[0], zs[k], xs[j], ys[1], zs[k]);
        seg(xs[j], ys[k], zs[0], xs[j], ys[k], zs[1]);
      }
    }
  }
  return out;
}

std::size_t wireframe_byte_size(const std::vector<LineSegment>& segments) {
  // 6 float32 endpoints + int32 level per segment on the wire.
  return segments.size() * (6 * sizeof(float) + sizeof(std::int32_t));
}

}  // namespace visapult::vol
