// Synthetic scientific datasets.
//
// Substitutes for the paper's proprietary inputs: the reactive-chemistry
// combustion simulation (Beckner & Bell, NERSC) and the hydrodynamic
// cosmology simulation (Borrill, NERSC).  The generators produce
// time-varying float32 grids with the same statistical character the
// visualization exercises -- smooth advected fronts for combustion, clumpy
// multi-scale density for cosmology -- at any grid size, so experiments can
// run at the paper's 640x256x256x265-step scale (via the simulator) or
// scaled down for real-execution tests.
#pragma once

#include <cstdint>
#include <vector>

#include "vol/volume.h"

namespace visapult::vol {

// Combustion: advecting flame front.  A set of seeded Gaussian "flame
// kernels" drift along +X with sinusoidal transverse wander and slowly
// modulated intensity; a background fuel gradient fills the domain.  `t` is
// the timestep index; the same (dims, seed) gives a deterministic series.
Volume generate_combustion(Dims dims, int t, std::uint64_t seed = 42);

// Cosmology: multi-scale clumpy density built from three octaves of
// value-noise plus power-law point masses, slowly rotating with t.
Volume generate_cosmology(Dims dims, int t, std::uint64_t seed = 7);

// ---- AMR hierarchy ----------------------------------------------------------
//
// Figure 3 shows "vector geometry (line segments) representing the adaptive
// grid created and used by the combustion simulation".  AmrBox is one
// refined patch; generate_amr_hierarchy refines where the field magnitude
// is large, level by level, and amr_wireframe turns the boxes into the line
// segments the viewer draws.

struct AmrBox {
  int level = 0;        // 0 = coarsest
  // Box bounds in *level-0 cell* coordinates (refinement keeps a common frame).
  float x0 = 0, y0 = 0, z0 = 0;
  float x1 = 0, y1 = 0, z1 = 0;
};

struct AmrHierarchy {
  std::vector<AmrBox> boxes;
  int levels = 0;
};

// Build a hierarchy over `v`: level-0 covers everything; each finer level
// contains boxes (of shrinking size) around cells whose value exceeds a
// rising threshold fraction of the max.
AmrHierarchy generate_amr_hierarchy(const Volume& v, int levels = 3,
                                    int boxes_per_level = 8,
                                    std::uint64_t seed = 11);

// One line segment, in the same level-0 cell coordinates.
struct LineSegment {
  float ax = 0, ay = 0, az = 0;
  float bx = 0, by = 0, bz = 0;
  int level = 0;
};

// 12 wireframe edges per box.
std::vector<LineSegment> amr_wireframe(const AmrHierarchy& h);

// Serialized size of the wireframe ("geometric data is typically tens of
// kilobytes for the AMR grid data per timestep").
std::size_t wireframe_byte_size(const std::vector<LineSegment>& segments);

}  // namespace visapult::vol
